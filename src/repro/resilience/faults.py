"""Deterministic unit-level fault injection (the executor side).

The chaos harness has two halves: :mod:`repro.store.chaos` injects
*store* faults (latency, transient errors, torn batches), this module
injects *execution* faults -- units that die, flake, or hang.  Together
they are the test substrate proving that retries, quarantine and lease
takeover converge to the bit-identical fault-free result.

:class:`FaultInjectingExecutor` is a :class:`~repro.runner.executors.
SerialExecutor` whose execution hook consults a :class:`FaultPlan`
before running each unit.  Faults are keyed by the unit's ``seed_path``
(the stable cell identity a test can name without computing hashes) and
counted per *attempt*, so a "transient" cell fails its first N attempts
and then succeeds -- exercising the retry path end to end.  Injection is
fully deterministic: same plan, same unit list, same failures.

Serial on purpose: injected faults are in-process state (attempt
counters), which cannot cross a process-pool boundary.  Fleet tests get
fault-injecting workers by giving each :class:`~repro.runner.fleet.
FleetRunner` its own instance as the local executor.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

from repro.resilience.errors import UnitExecutionError
from repro.runner.executors import SerialExecutor
from repro.runner.units import UnitResult, WorkUnit, execute_unit

#: Cell identity faults are keyed by (``WorkUnit.seed_path``).
CellPath = Tuple[int, ...]


@dataclass(frozen=True)
class FaultPlan:
    """Which cells fail, and how.

    Attributes
    ----------
    poison:
        Cells that raise :class:`UnitExecutionError` on *every* attempt
        -- the unit can only end in ``raise``/``skip``/``quarantine``.
    transient:
        Cells that fail their first N attempts, then execute normally;
        with ``max_retries >= N`` the unit recovers.
    hang:
        Cells whose first N attempts sleep ``hang_seconds`` before
        executing -- with ``unit_timeout < hang_seconds`` the watchdog
        converts the hang into a failed (retryable) attempt.
    """

    poison: FrozenSet[CellPath] = frozenset()
    transient: Dict[CellPath, int] = field(default_factory=dict)
    hang: Dict[CellPath, int] = field(default_factory=dict)
    hang_seconds: float = 0.5


class FaultInjectingExecutor(SerialExecutor):
    """Serial executor that injects the faults a :class:`FaultPlan` names.

    ``injected`` counts what actually fired (``"poison"``,
    ``"transient"``, ``"hang"``), so tests assert the faults happened
    rather than trusting that they were configured.
    """

    def __init__(self, plan: FaultPlan, policy=None):
        super().__init__(policy=policy)
        self.plan = plan
        self.injected: Counter = Counter()
        self._attempts: Counter = Counter()
        self._lock = threading.Lock()

    def _execute_one(self, unit: WorkUnit) -> UnitResult:
        path = tuple(unit.seed_path)
        with self._lock:
            attempt = self._attempts[path]
            self._attempts[path] += 1
        if path in self.plan.poison:
            with self._lock:
                self.injected["poison"] += 1
            raise UnitExecutionError(
                f"injected poison fault (cell {path}, attempt {attempt})"
            )
        if attempt < self.plan.transient.get(path, 0):
            with self._lock:
                self.injected["transient"] += 1
            raise UnitExecutionError(
                f"injected transient fault (cell {path}, attempt {attempt})"
            )
        if attempt < self.plan.hang.get(path, 0):
            with self._lock:
                self.injected["hang"] += 1
            time.sleep(self.plan.hang_seconds)
        return execute_unit(unit)


__all__ = ["CellPath", "FaultInjectingExecutor", "FaultPlan"]
