"""Store-backed quarantine report: which units failed, and how to rerun.

When a failure policy says ``on_error="quarantine"``, a unit that
exhausted its attempts is recorded *in the result store itself* under a
prefixed key -- machine-readable, shared by every fleet worker, and
inspectable later with ``python -m repro cache info``.  Each record
carries the unit's self-describing payload and the exact
``python -m repro rerun-unit`` command, so a quarantined cell can be
retried on any machine (and ``rerun-unit --store`` heals the store by
writing the result and deleting the quarantine record).

Quarantine keys are the unit key behind the ``q-`` prefix: distinct from
every result key (unit keys are pure hex), and ``"q-"[:2]`` is still a
two-character shard, so the json-dir backend's ``??/*.json`` layout and
prefix scans keep working unchanged.  The payload's ``schema`` field is
the non-numeric ``"quarantine/v1"``, which
:func:`repro.store.codec.decode_payload` rejects -- a quarantine record
can never satisfy a result lookup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.resilience.policy import UnitFailure
from repro.runner.units import WorkUnit
from repro.store.base import ResultStore
from repro.store.codec import rerun_command

#: Prefix distinguishing quarantine records from result entries.  Two
#: characters on purpose: json-dir shards on ``key[:2]``, so quarantine
#: records land in one ``q-/`` shard directory next to the hex shards.
QUARANTINE_PREFIX = "q-"

#: Payload schema token of quarantine records.  Deliberately not an
#: integer: ``decode_payload`` requires ``int(schema) == RESULT_SCHEMA``,
#: so these records are invisible to result lookups by construction.
QUARANTINE_SCHEMA = "quarantine/v1"


def quarantine_key(unit_key: str) -> str:
    """The store key holding the quarantine record of ``unit_key``."""
    return QUARANTINE_PREFIX + unit_key


def is_quarantine_payload(payload: Dict[str, Any]) -> bool:
    return payload.get("schema") == QUARANTINE_SCHEMA


@dataclass(frozen=True)
class QuarantineEntry:
    """One decoded quarantine record."""

    unit_key: str
    seed_scheme: str
    seed_path: tuple
    run_start: int
    run_stop: int
    error_type: str
    message: str
    attempts: int
    worker: str
    rerun: str
    unit_payload: Dict[str, Any]

    def describe(self) -> str:
        return (
            f"unit {self.unit_key[:12]} (cell {tuple(self.seed_path)}, runs "
            f"[{self.run_start}, {self.run_stop})): {self.error_type}: "
            f"{self.message} [{self.attempts} attempt(s), worker "
            f"{self.worker or '-'}]"
        )

    def as_failure(self) -> UnitFailure:
        """The recorded verdict as a :class:`UnitFailure` (fleet absorption)."""
        return UnitFailure(
            unit_key=self.unit_key,
            seed_path=tuple(self.seed_path),
            run_start=self.run_start,
            run_stop=self.run_stop,
            error_type=self.error_type,
            message=self.message,
            attempts=self.attempts,
            unit_payload=self.unit_payload,
        )


def quarantine_record(
    failure: UnitFailure, *, worker: Optional[str] = None
) -> Dict[str, Any]:
    """The store payload of one quarantined unit.

    ``schema`` and ``seed_scheme`` come first, mirroring result entries,
    so the json-dir backend's prefix-based scheme scan classifies
    quarantine records without reading whole files.
    """
    unit = WorkUnit.from_payload(failure.unit_payload)
    return {
        "schema": QUARANTINE_SCHEMA,
        "seed_scheme": unit.seed_scheme,
        "unit_key": failure.unit_key,
        "seed_path": list(failure.seed_path),
        "run_start": failure.run_start,
        "run_stop": failure.run_stop,
        "error_type": failure.error_type,
        "message": failure.message,
        "attempts": failure.attempts,
        "worker": worker or "",
        "quarantined": time.time(),
        "rerun_command": rerun_command(unit),
        "unit": failure.unit_payload,
    }


def write_quarantine(
    store: ResultStore, failure: UnitFailure, *, worker: Optional[str] = None
) -> str:
    """Record ``failure`` in the store; returns the quarantine key.

    Idempotent upsert like every store write: two fleet workers
    quarantining the same poisoned unit converge on one record.
    """
    key = quarantine_key(failure.unit_key)
    store.put_record(key, quarantine_record(failure, worker=worker))
    return key


def is_quarantined(store: ResultStore, unit_key: str) -> bool:
    """Whether ``unit_key`` has a quarantine record in ``store``."""
    payload = store.get_record(quarantine_key(unit_key))
    return payload is not None and is_quarantine_payload(payload)


def read_quarantine(store: ResultStore, unit_key: str) -> Optional[QuarantineEntry]:
    """The decoded quarantine record of ``unit_key``, if any."""
    key = quarantine_key(unit_key)
    payload = store.get_record(key)
    if payload is None:
        return None
    return _decode_entry(key, payload)


def clear_quarantine(store: ResultStore, unit_key: str) -> bool:
    """Remove the quarantine record of ``unit_key`` (after a healing rerun)."""
    return store.delete_record(quarantine_key(unit_key))


def _decode_entry(key: str, payload: Dict[str, Any]) -> Optional[QuarantineEntry]:
    if not is_quarantine_payload(payload):
        return None
    try:
        return QuarantineEntry(
            unit_key=str(payload.get("unit_key") or key[len(QUARANTINE_PREFIX):]),
            seed_scheme=str(payload.get("seed_scheme") or "per-run"),
            seed_path=tuple(payload.get("seed_path") or ()),
            run_start=int(payload.get("run_start", 0)),
            run_stop=int(payload.get("run_stop", 0)),
            error_type=str(payload.get("error_type") or "Exception"),
            message=str(payload.get("message") or ""),
            attempts=int(payload.get("attempts", 1)),
            worker=str(payload.get("worker") or ""),
            rerun=str(payload.get("rerun_command") or ""),
            unit_payload=dict(payload.get("unit") or {}),
        )
    except (ValueError, TypeError):
        return None


def quarantine_entries(store: ResultStore) -> List[QuarantineEntry]:
    """Every quarantine record in ``store``, sorted by unit key."""
    entries = []
    for record in store.records():
        entry = _decode_entry(record.key, record.payload)
        if entry is not None:
            entries.append(entry)
    return sorted(entries, key=lambda entry: entry.unit_key)


def format_quarantine_report(entries: List[QuarantineEntry]) -> str:
    """Human-readable quarantine section (``cache info``, post-run report)."""
    if not entries:
        return "quarantine: empty"
    lines = [f"quarantine: {len(entries)} unit(s)"]
    for entry in entries:
        lines.append(f"  {entry.describe()}")
        if entry.rerun:
            lines.append(f"    rerun: {entry.rerun}")
    return "\n".join(lines)


__all__ = [
    "QUARANTINE_PREFIX",
    "QUARANTINE_SCHEMA",
    "QuarantineEntry",
    "clear_quarantine",
    "format_quarantine_report",
    "is_quarantine_payload",
    "is_quarantined",
    "quarantine_entries",
    "quarantine_key",
    "quarantine_record",
    "read_quarantine",
    "write_quarantine",
]
