"""Structured error taxonomy of the failure-policy layer.

Every failure the runner/fleet/store stack can act on is one of these
types, so policy code dispatches on class, never on string matching:

* :class:`StoreUnavailableError` -- a *transient* store failure (locked
  database, flaky filesystem, injected chaos fault).  The retry layer
  (:class:`~repro.resilience.retry.RetryingStore`) treats exactly this
  type as retryable; anything else a backend raises is permanent.
* :class:`UnitExecutionError` -- one execution attempt of a work unit
  raised.  The fault-injection harness raises it for "killed" units.
* :class:`UnitTimeoutError` -- one execution attempt of a work unit
  exceeded the policy's ``unit_timeout``.  A subclass of
  :class:`UnitExecutionError`: a hung unit is a failed attempt.
* :class:`PoisonUnitError` -- a unit failed **every** attempt the policy
  allowed.  Raised (``on_error="raise"``) or converted into a
  skip/quarantine record, carrying the structured
  :class:`~repro.resilience.policy.UnitFailure` either way.

The hierarchy is rooted at :class:`ResilienceError` so callers can catch
the whole family at once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.policy import UnitFailure


class ResilienceError(RuntimeError):
    """Base class of every failure-policy error."""


class StoreUnavailableError(ResilienceError):
    """A transient result-store failure (retryable).

    Backends raise this for conditions that a bounded retry can outlast
    (``sqlite3.OperationalError: database is locked``, a flaky network
    filesystem, an injected chaos fault).  Permanent conditions -- schema
    corruption, a closed connection, a missing database -- keep their
    original exception types and are never retried.
    """


class UnitExecutionError(ResilienceError):
    """One execution attempt of a work unit raised."""


class UnitTimeoutError(UnitExecutionError):
    """One execution attempt of a work unit exceeded ``unit_timeout``."""


class PoisonUnitError(ResilienceError):
    """A work unit failed every attempt its failure policy allowed.

    Carries the structured :class:`~repro.resilience.policy.UnitFailure`
    as :attr:`failure`, so the coordinator that catches it can still
    quarantine or report the unit.
    """

    def __init__(self, message: str, failure: Optional["UnitFailure"] = None):
        super().__init__(message)
        self.failure = failure


__all__ = [
    "ResilienceError",
    "StoreUnavailableError",
    "UnitExecutionError",
    "UnitTimeoutError",
    "PoisonUnitError",
]
