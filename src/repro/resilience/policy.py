"""Failure policies: retries, deterministic backoff, timeouts, outcomes.

A :class:`FailurePolicy` says what happens when executing a work unit
fails: how many times to retry, how long to back off between attempts,
how long one attempt may run, and what to do once every attempt is spent
(``raise`` aborts the sweep, ``skip`` drops the unit, ``quarantine``
additionally records it in the store-backed quarantine report).

Backoff is **deterministic**: the jitter is derived from a SHA-256 hash
of the unit key and the attempt index, never from ``random()``, so a
rerun of a faulty sweep sleeps the exact same schedule -- reproducibility
extends to the failure path.  The same policy object also carries the
store-retry knobs the :class:`~repro.resilience.retry.RetryingStore`
wrapper uses, so one object configures the whole resilience layer.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.resilience.errors import UnitTimeoutError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.units import UnitResult, WorkUnit

#: Valid ``on_error`` actions, in escalation order.
ON_ERROR_ACTIONS = ("raise", "skip", "quarantine")


def deterministic_jitter(token: str) -> float:
    """A reproducible fraction in ``[0, 1)`` derived from ``token``.

    SHA-256 of the token, first eight bytes as an integer -- no global
    random state, so two processes (or two reruns) computing the jitter
    for the same unit key and attempt sleep identically.
    """
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class FailurePolicy:
    """What to do when executing a unit (or talking to the store) fails.

    Attributes
    ----------
    max_retries:
        Extra execution attempts after the first failure (0 keeps the
        historical fail-fast behaviour).
    backoff_base, backoff_max:
        Exponential backoff between unit attempts: attempt ``n`` sleeps
        ``min(backoff_max, backoff_base * 2**n)`` scaled by a
        deterministic jitter in ``[0.5, 1.5)`` derived from the unit key.
    unit_timeout:
        Seconds one execution attempt may run; ``None`` disables the
        watchdog.  A timed-out attempt raises
        :class:`~repro.resilience.errors.UnitTimeoutError` and counts as
        a failed attempt (so it is retried like any other failure).
    on_error:
        ``"raise"`` -- a unit that exhausts its attempts raises
        :class:`~repro.resilience.errors.PoisonUnitError` (default;
        matches the historical crash-the-sweep behaviour).
        ``"skip"`` -- the unit is dropped; its cell is aggregated from
        the surviving runs.  ``"quarantine"`` -- like skip, plus a
        machine-readable quarantine record (unit snapshot, error, exact
        re-run command) is written to the result store.
    store_retries, store_backoff_base, store_backoff_max:
        Retry budget of the :class:`~repro.resilience.retry.RetryingStore`
        wrapper for transient store failures; the same deterministic
        backoff shape, keyed by operation name.
    """

    max_retries: int = 0
    backoff_base: float = 0.1
    backoff_max: float = 30.0
    unit_timeout: Optional[float] = None
    on_error: str = "raise"
    store_retries: int = 3
    store_backoff_base: float = 0.05
    store_backoff_max: float = 2.0

    def __post_init__(self) -> None:
        if self.on_error not in ON_ERROR_ACTIONS:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_ACTIONS}, got {self.on_error!r}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries!r}")
        if self.store_retries < 0:
            raise ValueError(
                f"store_retries must be >= 0, got {self.store_retries!r}"
            )
        if self.unit_timeout is not None and self.unit_timeout <= 0:
            raise ValueError(
                f"unit_timeout must be positive or None, got {self.unit_timeout!r}"
            )
        for name in ("backoff_base", "backoff_max", "store_backoff_base",
                     "store_backoff_max"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    @property
    def attempts(self) -> int:
        """Total execution attempts per unit (first try + retries)."""
        return self.max_retries + 1

    def backoff_delay(self, key: str, attempt: int) -> float:
        """Seconds to sleep before retry ``attempt`` (0-based) of ``key``."""
        base = min(self.backoff_max, self.backoff_base * (2.0**attempt))
        return base * (0.5 + deterministic_jitter(f"{key}:{attempt}"))

    def store_backoff_delay(self, token: str, attempt: int) -> float:
        """Backoff before store-retry ``attempt`` of the operation ``token``."""
        base = min(self.store_backoff_max, self.store_backoff_base * (2.0**attempt))
        return base * (0.5 + deterministic_jitter(f"store:{token}:{attempt}"))


#: The policy used where resilience is wanted but none was configured:
#: fail-fast unit handling (historical behaviour) with modest store
#: retries, so a fleet survives a briefly-locked database out of the box.
DEFAULT_POLICY = FailurePolicy()


def resolve_policy(policy: Optional[FailurePolicy]) -> Optional[FailurePolicy]:
    """Validate a ``failure_policy=`` argument (``None`` passes through)."""
    if policy is None or isinstance(policy, FailurePolicy):
        return policy
    raise TypeError(
        f"failure_policy must be a FailurePolicy or None, got {type(policy).__name__}"
    )


@dataclass(frozen=True)
class UnitFailure:
    """Structured record of one unit that failed all its attempts.

    Picklable (it crosses process-pool boundaries) and self-contained:
    ``unit_payload`` is the unit's :meth:`~repro.runner.units.WorkUnit.
    to_payload` snapshot, so the failure alone is enough to quarantine,
    report, and re-run the unit on any machine.
    """

    unit_key: str
    seed_path: Tuple[int, ...]
    run_start: int
    run_stop: int
    error_type: str
    message: str
    attempts: int
    unit_payload: Dict[str, Any]

    def describe(self) -> str:
        return (
            f"unit {self.unit_key[:12]} (cell {self.seed_path}, runs "
            f"[{self.run_start}, {self.run_stop})) failed "
            f"{self.attempts} attempt(s): {self.error_type}: {self.message}"
        )


@dataclass(frozen=True)
class UnitOutcome:
    """Result of pushing one unit through a failure policy: exactly one
    of ``result`` (success) or ``failure`` (attempts exhausted) is set."""

    result: Optional["UnitResult"] = None
    failure: Optional[UnitFailure] = None


ExecuteFn = Callable[["WorkUnit"], "UnitResult"]


def _attempt_with_timeout(
    unit: WorkUnit, execute: ExecuteFn, timeout: Optional[float]
) -> UnitResult:
    """One execution attempt, bounded by ``timeout`` seconds.

    The attempt runs on a daemon watchdog thread; on timeout the thread
    is abandoned (Python cannot kill it) and the attempt counts as
    failed.  A hung attempt therefore leaks one daemon thread until it
    returns -- acceptable for the rare pathological unit, and the reason
    the watchdog only exists when a timeout was explicitly configured.
    """
    if timeout is None:
        return execute(unit)
    box: Dict[str, Any] = {}

    def target() -> None:
        try:
            box["result"] = execute(unit)
        except BaseException as exc:  # delivered to the waiting thread
            box["error"] = exc

    thread = threading.Thread(target=target, name="unit-watchdog", daemon=True)
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        raise UnitTimeoutError(
            f"unit execution exceeded unit_timeout={timeout:g}s "
            f"(cell {unit.seed_path}, runs [{unit.run_start}, {unit.run_stop}))"
        )
    if "error" in box:
        raise box["error"]
    return box["result"]


def run_unit_with_policy(
    unit: WorkUnit,
    policy: FailurePolicy,
    *,
    execute: Optional[ExecuteFn] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> UnitOutcome:
    """Execute one unit under a failure policy and report the outcome.

    Retries with deterministic backoff on any ``Exception`` (including
    :class:`~repro.resilience.errors.UnitTimeoutError` from the
    watchdog); ``KeyboardInterrupt``/``SystemExit`` always propagate.
    Never raises for a failed unit -- converting an exhausted failure
    into raise/skip/quarantine is the *caller's* dispatch, so this
    function stays picklable-friendly for process-pool workers.
    """
    from repro.store.codec import unit_key

    if execute is None:
        from repro.runner.units import execute_unit as execute

    key = unit_key(unit)
    last: Optional[BaseException] = None
    for attempt in range(policy.attempts):
        if attempt:
            sleep(policy.backoff_delay(key, attempt - 1))
        try:
            result = _attempt_with_timeout(unit, execute, policy.unit_timeout)
            return UnitOutcome(result=result)
        except Exception as exc:
            last = exc
    return UnitOutcome(
        failure=UnitFailure(
            unit_key=key,
            seed_path=unit.seed_path,
            run_start=unit.run_start,
            run_stop=unit.run_stop,
            error_type=type(last).__name__,
            message=str(last),
            attempts=policy.attempts,
            unit_payload=unit.to_payload(),
        )
    )


def run_units_with_policy(
    units: List[WorkUnit], policy: FailurePolicy
) -> List[UnitOutcome]:
    """Process-pool dispatch granularity of the resilient execution path."""
    return [run_unit_with_policy(unit, policy) for unit in units]


def failure_summary(failure: UnitFailure) -> Dict[str, Any]:
    """Compact JSON-compatible summary (sweep metadata, run reports)."""
    summary = dataclasses.asdict(failure)
    summary.pop("unit_payload")
    summary["seed_path"] = list(failure.seed_path)
    return summary


__all__ = [
    "ON_ERROR_ACTIONS",
    "DEFAULT_POLICY",
    "FailurePolicy",
    "UnitFailure",
    "UnitOutcome",
    "deterministic_jitter",
    "failure_summary",
    "resolve_policy",
    "run_unit_with_policy",
    "run_units_with_policy",
]
