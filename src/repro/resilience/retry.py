"""Store-side resilience: bounded retries around any result store.

:class:`RetryingStore` wraps a :class:`~repro.store.base.ResultStore`
and retries exactly the failures backends mark as *transient*
(:class:`~repro.resilience.errors.StoreUnavailableError`) with the
policy's deterministic exponential backoff.  Everything else -- schema
errors, closed connections, programming errors -- propagates untouched
on the first raise.

The wrapper is **lease-aware**: for ``claim`` and ``heartbeat`` the TTL
the caller passes is also the retry budget's ceiling -- the total time
spent backing off never exceeds half the TTL, so a retried heartbeat can
never itself be the reason a lease expired, and a retried claim never
outlives the lease it is trying to take.

The wrapper is transparent: ``backend``/``uri()``/``stats`` delegate to
the wrapped store, so engine counters, CLI output and test assertions
see the store itself, not the wrapper.  Unknown attributes (e.g. the
sqlite backend's ``provenance``) fall through via ``__getattr__``.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.resilience.errors import StoreUnavailableError
from repro.resilience.policy import DEFAULT_POLICY, FailurePolicy
from repro.runner.units import UnitResult, WorkUnit
from repro.store.base import Lease, ResultStore, StoreRecord

logger = logging.getLogger("repro.resilience.retry")


@dataclass
class RetryStats:
    """How often the wrapper had to retry (and how often it gave up)."""

    retries: int = 0
    gave_up: int = 0


class RetryingStore(ResultStore):
    """Bounded-backoff retry wrapper around any result store."""

    def __init__(self, store: ResultStore, policy: Optional[FailurePolicy] = None):
        # No super().__init__(): stats delegates to the wrapped store so
        # hit/miss/write counters stay in one place.
        self.inner = store
        self.policy = policy if policy is not None else DEFAULT_POLICY
        self.retry_stats = RetryStats()

    @classmethod
    def wrap(
        cls, store: Optional[ResultStore], policy: Optional[FailurePolicy] = None
    ) -> Optional[ResultStore]:
        """Wrap ``store`` unless it is ``None`` or already wrapped."""
        if store is None or isinstance(store, RetryingStore):
            return store
        return cls(store, policy)

    # -- delegated identity ----------------------------------------------

    @property
    def backend(self) -> str:  # type: ignore[override]
        return self.inner.backend

    @property
    def supports_leases(self) -> bool:  # type: ignore[override]
        return self.inner.supports_leases

    @property
    def stats(self):  # type: ignore[override]
        return self.inner.stats

    @stats.setter
    def stats(self, value) -> None:  # pragma: no cover - ABC init compat
        self.inner.stats = value

    def location(self) -> str:
        return self.inner.location()

    def uri(self) -> str:
        return self.inner.uri()

    def __getattr__(self, name: str) -> Any:
        # Backend extras (sqlite's ``provenance``, chaos counters, ...).
        return getattr(self.inner, name)

    # -- the retry loop --------------------------------------------------

    def _retry(
        self,
        token: str,
        operation: Callable[..., Any],
        *args: Any,
        budget: Optional[float] = None,
    ) -> Any:
        """Run ``operation(*args)``, retrying transient failures.

        ``budget`` caps the *total* seconds spent backing off (lease-aware
        calls pass ``ttl / 2``); the attempt count is always capped by the
        policy's ``store_retries``.  Positional arguments are passed
        through rather than closed over so the fault-free fast path --
        every store call a healthy sweep makes -- allocates no closure.
        """
        policy = self.policy
        slept = 0.0
        for attempt in range(policy.store_retries + 1):
            try:
                return operation(*args)
            except StoreUnavailableError as exc:
                if attempt >= policy.store_retries:
                    self.retry_stats.gave_up += 1
                    raise
                delay = policy.store_backoff_delay(token, attempt)
                if budget is not None and slept + delay > budget:
                    self.retry_stats.gave_up += 1
                    raise
                logger.warning(
                    "transient store error on %s (attempt %d/%d, retrying in "
                    "%.3fs): %s",
                    token, attempt + 1, policy.store_retries + 1, delay, exc,
                )
                self.retry_stats.retries += 1
                time.sleep(delay)
                slept += delay
        raise AssertionError("unreachable")  # pragma: no cover

    # -- record-level API ------------------------------------------------

    def get_record(self, key: str) -> Optional[Dict[str, Any]]:
        return self._retry(f"get:{key}", self.inner.get_record, key)

    def put_record(
        self,
        key: str,
        payload: Dict[str, Any],
        *,
        unit: Optional[WorkUnit] = None,
    ) -> None:
        self._retry(
            f"put:{key}", lambda: self.inner.put_record(key, payload, unit=unit)
        )

    def delete_record(self, key: str) -> bool:
        return self._retry(f"delete:{key}", self.inner.delete_record, key)

    def records(self) -> Iterator[StoreRecord]:
        # Iterators cannot be transparently re-driven mid-stream; a
        # transient failure here surfaces to the caller (migration
        # retries whole entries, not scans).
        return self.inner.records()

    # -- unit-level API --------------------------------------------------

    def get(self, unit: WorkUnit) -> Optional[UnitResult]:
        return self._retry("get-unit", self.inner.get, unit)

    def put(self, unit: WorkUnit, result: UnitResult) -> None:
        self._retry("put-unit", self.inner.put, unit, result)

    def put_many(self, items: Iterable[Tuple[WorkUnit, UnitResult]]) -> int:
        # Materialise once: a torn batch must be retried in full, and the
        # write is an idempotent upsert so re-sending already-landed
        # entries converges on identical rows.
        batch = list(items)
        return self._retry("put-many", self.inner.put_many, batch)

    # -- summaries -------------------------------------------------------

    def __len__(self) -> int:
        return self._retry("len", self.inner.__len__)

    def size_bytes(self) -> int:
        return self._retry("size", self.inner.size_bytes)

    def scheme_counts(self) -> Dict[str, int]:
        return self._retry("scheme-counts", self.inner.scheme_counts)

    def clear(self, scheme: Optional[str] = None) -> int:
        return self._retry("clear", self.inner.clear, scheme)

    # -- lease protocol (lease-aware budgets) ----------------------------

    def claim(self, key: str, worker: str, ttl: float) -> bool:
        return self._retry(
            f"claim:{key}", self.inner.claim, key, worker, ttl, budget=ttl / 2.0
        )

    def heartbeat(self, keys: Iterable[str], worker: str, ttl: float) -> int:
        batch = list(keys)
        return self._retry(
            "heartbeat", self.inner.heartbeat, batch, worker, ttl,
            budget=ttl / 2.0,
        )

    def release(self, key: str, worker: str) -> None:
        self._retry(f"release:{key}", self.inner.release, key, worker)

    def leases(self) -> List[Lease]:
        return self._retry("leases", self.inner.leases)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        self.inner.close()


__all__ = ["RetryStats", "RetryingStore"]
