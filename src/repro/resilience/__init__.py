"""Failure policies, fault injection, and graceful degradation.

The resilience layer threads one :class:`FailurePolicy` object through
the whole runner/fleet/store stack:

* :mod:`repro.resilience.errors` -- the structured error taxonomy
  (transient vs permanent store failures, failed vs hung vs poisoned
  units) every other component dispatches on.
* :mod:`repro.resilience.policy` -- the :class:`FailurePolicy` itself:
  unit retries with deterministic (hash-derived, ``random()``-free)
  backoff, per-attempt timeouts, and the ``raise``/``skip``/
  ``quarantine`` escalation for units that exhaust their attempts.
* :mod:`repro.resilience.retry` -- :class:`RetryingStore`, the bounded,
  lease-aware retry wrapper that keeps transient store failures (a
  locked sqlite database, a flaky filesystem) from killing a sweep.
* :mod:`repro.resilience.report` -- the store-backed quarantine report:
  machine-readable records of quarantined units with the exact
  ``python -m repro rerun-unit`` command that retries each one.
* :mod:`repro.resilience.faults` -- deterministic unit-level fault
  injection (imported explicitly by tests and the chaos CI job; not
  re-exported here to keep the import graph acyclic).

The companion ``chaos+<backend>`` store wrapper lives in
:mod:`repro.store.chaos` and is registered with the store registry like
any other backend.
"""

from repro.resilience.errors import (
    PoisonUnitError,
    ResilienceError,
    StoreUnavailableError,
    UnitExecutionError,
    UnitTimeoutError,
)
from repro.resilience.policy import (
    DEFAULT_POLICY,
    ON_ERROR_ACTIONS,
    FailurePolicy,
    UnitFailure,
    UnitOutcome,
    deterministic_jitter,
    failure_summary,
    resolve_policy,
    run_unit_with_policy,
    run_units_with_policy,
)
from repro.resilience.report import (
    QuarantineEntry,
    clear_quarantine,
    format_quarantine_report,
    is_quarantined,
    quarantine_entries,
    quarantine_key,
    read_quarantine,
    write_quarantine,
)
from repro.resilience.retry import RetryingStore

__all__ = [
    "DEFAULT_POLICY",
    "ON_ERROR_ACTIONS",
    "FailurePolicy",
    "PoisonUnitError",
    "QuarantineEntry",
    "ResilienceError",
    "RetryingStore",
    "StoreUnavailableError",
    "UnitExecutionError",
    "UnitFailure",
    "UnitOutcome",
    "UnitTimeoutError",
    "clear_quarantine",
    "deterministic_jitter",
    "failure_summary",
    "format_quarantine_report",
    "is_quarantined",
    "quarantine_entries",
    "quarantine_key",
    "read_quarantine",
    "resolve_policy",
    "run_unit_with_policy",
    "run_units_with_policy",
    "write_quarantine",
]
