"""Reproduction of Neumann et al., "Impacts of Packet Scheduling and Packet
Loss Distribution on FEC Performances: Observations and Recommendations"
(INRIA RR-5578, 2005).

The package is organised as a set of small, composable subsystems:

``repro.galois``
    GF(2^8) arithmetic and matrix algebra used by the Reed-Solomon code.
``repro.fec``
    The FEC framework and the three codes studied in the paper: RSE
    (Reed-Solomon erasure), LDGM Staircase and LDGM Triangle.
``repro.channel``
    Packet-loss channel models, most importantly the two-state Gilbert
    (Markov) model, plus the analytic decodability limits of figure 6.
``repro.scheduling``
    The six transmission models (Tx_model_1..6), interleavers, the
    repetition baseline of section 4.2 and the reception model of section 5.
``repro.core``
    The simulation engine: single runs, (p, q) grid sweeps, experiment
    presets for every figure/table, the n_sent optimiser and the
    recommendation engine of section 6.
``repro.fastpath``
    The vectorised decode fast path: precompiled per-code decoder
    prototypes, closed-form batched RSE/repetition decoding, the O(log n)
    checkpointed gallop+bisect search for LDGM.  Bit-identical to the
    incremental path and on by default (``fastpath=False`` opts out).
``repro.pipeline``
    The batched run-synthesis pipeline feeding the fast path: whole-unit
    transmission schedules (``schedule_batch``), loss masks
    (``loss_mask_batch``) and received-batch assembly as arrays, with
    columnar ``RunResultBatch`` results -- bit-identical to the per-run
    front end for any seed.
``repro.seeds``
    The versioned seed-scheme subsystem: run-stream derivation as a
    first-class strategy object.  ``"per-run"`` (default) reproduces the
    historical ``SeedSequence``-per-run streams bit-for-bit; ``"unit"``
    derives one counter-based Philox generator per work unit so the
    stochastic stages draw whole ``(runs, n)`` blocks in one call.
``repro.store``
    Pluggable result-store backends behind one ``ResultStore`` contract:
    the byte-compatible ``json-dir`` file layout (default), a single-file
    WAL-mode ``sqlite`` store with indexed lookups and per-unit
    provenance, and an in-memory backend for tests -- plus verified
    migration between them and the work-unit lease protocol that fleet
    execution builds on.
``repro.runner``
    The parallel experiment-execution engine: deterministic work-unit
    sharding, serial / process-pool executors, resumable result stores,
    cooperative coordinator-free fleet execution over lease-capable
    stores, and the ``python -m repro`` CLI.
``repro.adaptive``
    The adaptive sweep controller: sequential stopping per grid cell
    (Wilson interval on decode probability, t-interval on mean
    inefficiency) with geometric run-count escalation, and bisection
    refinement of the decode-probability cliff -- planned as ordinary
    work units, so adaptive results cache, fleet, and stay bit-identical
    to fixed sweeps at the same per-cell run counts.
``repro.flute``
    A small in-process FLUTE/ALC-like file-delivery substrate showing the
    codes and schedulers in their motivating context.
``repro.analysis``
    Table formatting, ASCII surfaces, CSV export and comparison reports.

Quickstart
----------

>>> from repro import simulate_grid, GilbertChannel
>>> from repro.core import SimulationConfig
>>> config = SimulationConfig(code="ldgm-triangle", tx_model="tx_model_2",
...                           k=500, expansion_ratio=2.5)
>>> result = simulate_grid(config, p_values=[0.0, 0.05], q_values=[0.5, 1.0],
...                        runs=3, seed=1)
>>> result.mean_inefficiency.shape
(2, 2)
"""

from repro.adaptive import AdaptiveConfig, adaptive_grid
from repro.channel import (
    BernoulliChannel,
    GilbertChannel,
    PerfectChannel,
    TraceChannel,
)
from repro.core import (
    SimulationConfig,
    Simulator,
    simulate_grid,
    simulate_once,
)
from repro.fec import (
    LDGMCode,
    LDGMStaircaseCode,
    LDGMTriangleCode,
    ReedSolomonCode,
    make_code,
)
from repro.fastpath import simulate_batch, simulate_batch_columnar
from repro.pipeline import synthesize_runs
from repro.runner import (
    FleetRunner,
    ProcessExecutor,
    ResultCache,
    SerialExecutor,
    run_grid,
)
from repro.scheduling import make_tx_model
from repro.seeds import available_schemes, get_scheme
from repro.store import (
    JsonDirStore,
    MemoryStore,
    ResultStore,
    SqliteStore,
    migrate_store,
    resolve_store,
)

__version__ = "1.4.0"

__all__ = [
    "AdaptiveConfig",
    "adaptive_grid",
    "BernoulliChannel",
    "GilbertChannel",
    "PerfectChannel",
    "TraceChannel",
    "SimulationConfig",
    "Simulator",
    "simulate_grid",
    "simulate_once",
    "LDGMCode",
    "LDGMStaircaseCode",
    "LDGMTriangleCode",
    "ReedSolomonCode",
    "make_code",
    "make_tx_model",
    "FleetRunner",
    "ProcessExecutor",
    "ResultCache",
    "SerialExecutor",
    "run_grid",
    "JsonDirStore",
    "MemoryStore",
    "ResultStore",
    "SqliteStore",
    "migrate_store",
    "resolve_store",
    "simulate_batch",
    "simulate_batch_columnar",
    "synthesize_runs",
    "available_schemes",
    "get_scheme",
    "__version__",
]
