"""Two-state Gilbert (Markov) packet-loss model.

The model of section 3.2 of the paper: a *no-loss* state in which packets
are delivered and a *loss* state in which packets are erased.  ``p`` is the
probability of moving from no-loss to loss between two packets, ``q`` the
probability of moving back.  The long-run ("global") loss probability is
``p / (p + q)`` and the mean loss-burst length is ``1 / q``.

Special cases (also noted in the paper):

* ``p = 0`` -- perfect channel (no loss ever).
* ``q = 1 - p`` -- independent, identically distributed (Bernoulli) losses.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.channel.base import LossModel
from repro.kernels import KernelSpec, get_backend
from repro.utils.rng import ensure_rng
from repro.utils.validation import validate_probability

#: The (p, q) grid used for every 3-D figure of the paper, in percent.
PAPER_GRID_PERCENT: tuple[int, ...] = (0, 1, 5, 10, 15, 20, 30, 40, 50, 60, 70, 80, 90, 100)


def paper_grid() -> tuple[list[float], list[float]]:
    """The 14 x 14 (p, q) grid of the paper, as probabilities in [0, 1]."""
    values = [value / 100.0 for value in PAPER_GRID_PERCENT]
    return list(values), list(values)


class GilbertChannel(LossModel):
    """Two-state Markov loss model.

    Parameters
    ----------
    p:
        Probability of transitioning from the no-loss state to the loss
        state between two consecutive packets.
    q:
        Probability of transitioning from the loss state back to the
        no-loss state.
    """

    def __init__(self, p: float, q: float):
        self.p = validate_probability(p, "p")
        self.q = validate_probability(q, "q")

    @property
    def global_loss_probability(self) -> float:
        """Stationary probability of the loss state, ``p / (p + q)``."""
        if self.p == 0.0:
            return 0.0
        if self.p + self.q == 0.0:
            return 0.0
        return self.p / (self.p + self.q)

    @property
    def stationary_distribution(self) -> tuple[float, float]:
        """(P[no-loss], P[loss]) under the stationary regime."""
        loss = self.global_loss_probability
        return 1.0 - loss, loss

    @property
    def mean_burst_length(self) -> float:
        """Expected length of a loss burst (``1 / q``; ``inf`` if q == 0)."""
        if self.q == 0.0:
            return float("inf")
        return 1.0 / self.q

    @property
    def mean_gap_length(self) -> float:
        """Expected length of a loss-free run (``1 / p``; ``inf`` if p == 0)."""
        if self.p == 0.0:
            return float("inf")
        return 1.0 / self.p

    @property
    def is_memoryless(self) -> bool:
        """True when the model degenerates to IID (Bernoulli) losses."""
        return abs(self.q - (1.0 - self.p)) < 1e-12

    #: Geometric sojourn lengths are drawn in batches of this many runs.
    _SOJOURN_BATCH = 256

    def loss_mask(
        self,
        count: int,
        rng: Optional[np.random.Generator] = None,
        *,
        kernel: KernelSpec = None,
    ) -> np.ndarray:
        """Simulate ``count`` packet transmissions started in steady state.

        The chain is memoryless, so given the initial state (drawn from the
        stationary distribution) the residual sojourn times are geometric.
        Sojourn lengths are drawn here in batches -- one uniform for the
        initial state, then alternating geometric batches, exactly the draw
        sequence of :meth:`_loss_mask_serial` -- and expanded into the mask
        by the selected :mod:`repro.kernels` backend (vectorised
        ``np.repeat`` on numpy, a compiled loop on numba).  Every backend
        consumes the generator identically and produces masks bit-identical
        to the historical serial chain for any seed.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        rng = ensure_rng(rng)
        mask = np.empty(count, dtype=bool)
        if count == 0:
            return mask
        if self.p == 0.0:
            mask[:] = False
            return mask
        if self.q == 0.0:
            # Stationary distribution puts all mass on the loss state.
            mask[:] = True
            return mask

        backend = get_backend(kernel)
        batch_size = self._SOJOURN_BATCH
        in_loss_state = bool(rng.random() < self.global_loss_probability)
        filled = 0
        while filled < count:
            gap_runs = rng.geometric(self.p, size=batch_size)
            burst_runs = rng.geometric(self.q, size=batch_size)
            # An even number of sojourns per batch leaves the state
            # unchanged, so ``in_loss_state`` is loop-invariant.
            filled = backend.fill_sojourns(
                mask, filled, in_loss_state, gap_runs, burst_runs
            )
        return mask

    def _loss_mask_serial(
        self, count: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Historical sojourn-by-sojourn chain (seed-compatible reference).

        Kept verbatim so the equivalence tests can prove that the vectorised
        :meth:`loss_mask` consumes the generator identically and produces
        bit-identical masks.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        rng = ensure_rng(rng)
        mask = np.empty(count, dtype=bool)
        if count == 0:
            return mask
        if self.p == 0.0:
            mask[:] = False
            return mask
        if self.q == 0.0:
            mask[:] = True
            return mask

        in_loss_state = bool(rng.random() < self.global_loss_probability)
        filled = 0
        batch_size = self._SOJOURN_BATCH
        while filled < count:
            gap_runs = rng.geometric(self.p, size=batch_size)
            burst_runs = rng.geometric(self.q, size=batch_size)
            for index in range(batch_size):
                run = int(burst_runs[index] if in_loss_state else gap_runs[index])
                run = min(run, count - filled)
                mask[filled : filled + run] = in_loss_state
                filled += run
                in_loss_state = not in_loss_state
                if filled >= count:
                    break
        return mask

    def __repr__(self) -> str:
        return f"GilbertChannel(p={self.p}, q={self.q})"


__all__ = ["GilbertChannel", "PAPER_GRID_PERCENT", "paper_grid"]
