"""Two-state Gilbert (Markov) packet-loss model.

The model of section 3.2 of the paper: a *no-loss* state in which packets
are delivered and a *loss* state in which packets are erased.  ``p`` is the
probability of moving from no-loss to loss between two packets, ``q`` the
probability of moving back.  The long-run ("global") loss probability is
``p / (p + q)`` and the mean loss-burst length is ``1 / q``.

Special cases (also noted in the paper):

* ``p = 0`` -- perfect channel (no loss ever).
* ``q = 1 - p`` -- independent, identically distributed (Bernoulli) losses.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.channel.base import LossModel
from repro.kernels import KernelSpec, get_backend
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import validate_probability

#: The (p, q) grid used for every 3-D figure of the paper, in percent.
PAPER_GRID_PERCENT: tuple[int, ...] = (0, 1, 5, 10, 15, 20, 30, 40, 50, 60, 70, 80, 90, 100)


def paper_grid() -> tuple[list[float], list[float]]:
    """The 14 x 14 (p, q) grid of the paper, as probabilities in [0, 1]."""
    values = [value / 100.0 for value in PAPER_GRID_PERCENT]
    return list(values), list(values)


class GilbertChannel(LossModel):
    """Two-state Markov loss model.

    Parameters
    ----------
    p:
        Probability of transitioning from the no-loss state to the loss
        state between two consecutive packets.
    q:
        Probability of transitioning from the loss state back to the
        no-loss state.
    """

    def __init__(self, p: float, q: float):
        self.p = validate_probability(p, "p")
        self.q = validate_probability(q, "q")

    @property
    def global_loss_probability(self) -> float:
        """Stationary probability of the loss state, ``p / (p + q)``."""
        if self.p == 0.0:
            return 0.0
        if self.p + self.q == 0.0:
            return 0.0
        return self.p / (self.p + self.q)

    @property
    def stationary_distribution(self) -> tuple[float, float]:
        """(P[no-loss], P[loss]) under the stationary regime."""
        loss = self.global_loss_probability
        return 1.0 - loss, loss

    @property
    def mean_burst_length(self) -> float:
        """Expected length of a loss burst (``1 / q``; ``inf`` if q == 0)."""
        if self.q == 0.0:
            return float("inf")
        return 1.0 / self.q

    @property
    def mean_gap_length(self) -> float:
        """Expected length of a loss-free run (``1 / p``; ``inf`` if p == 0)."""
        if self.p == 0.0:
            return float("inf")
        return 1.0 / self.p

    @property
    def is_memoryless(self) -> bool:
        """True when the model degenerates to IID (Bernoulli) losses."""
        return abs(self.q - (1.0 - self.p)) < 1e-12

    @property
    def uses_rng(self) -> bool:
        """False for the degenerate all-received / all-lost chains."""
        return self.p != 0.0 and self.q != 0.0

    #: Geometric sojourn lengths are drawn in batches of this many runs.
    _SOJOURN_BATCH = 256

    def loss_mask(
        self,
        count: int,
        rng: Optional[np.random.Generator] = None,
        *,
        kernel: KernelSpec = None,
    ) -> np.ndarray:
        """Simulate ``count`` packet transmissions started in steady state.

        The chain is memoryless, so given the initial state (drawn from the
        stationary distribution) the residual sojourn times are geometric.
        Sojourn lengths are drawn here in batches -- one uniform for the
        initial state, then alternating geometric batches, exactly the draw
        sequence of :meth:`_loss_mask_serial` -- and expanded into the mask
        by the selected :mod:`repro.kernels` backend (vectorised
        ``np.repeat`` on numpy, a compiled loop on numba).  Every backend
        consumes the generator identically and produces masks bit-identical
        to the historical serial chain for any seed.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        mask = np.empty(count, dtype=bool)
        self._fill_mask(mask, ensure_rng(rng), get_backend(kernel))
        return mask

    def loss_mask_batch(
        self,
        count: int,
        rngs: Sequence[RandomState],
        *,
        kernel: KernelSpec = None,
    ) -> np.ndarray:
        """One mask per generator, filled into a single ``(runs, count)`` array.

        The chain draws stay per run -- they are what defines each run's
        stream, so row ``i`` consumes ``rngs[i]`` exactly like
        :meth:`loss_mask` would -- but everything around them is batched:
        the first sojourn batch of every run is drawn into two
        ``(runs, batch)`` matrices and expanded by **one**
        ``fill_sojourns_batch`` kernel call (for typical parameters that
        first batch covers the whole mask), and only the rare rows whose
        sojourns fall short continue chain-style.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        runs = len(rngs)
        if self.p == 0.0:
            return np.broadcast_to(np.zeros(count, dtype=bool), (runs, count))
        if self.q == 0.0:
            return np.broadcast_to(np.ones(count, dtype=bool), (runs, count))
        masks = np.empty((runs, count), dtype=bool)
        if count == 0 or runs == 0:
            return masks
        backend = get_backend(kernel)
        batch_size = self._SOJOURN_BATCH
        loss_probability = self.global_loss_probability
        states = np.empty(runs, dtype=bool)
        gap_runs = np.empty((runs, batch_size), dtype=np.int64)
        burst_runs = np.empty((runs, batch_size), dtype=np.int64)
        extras: dict[int, list] = {}
        for index, rng in enumerate(rngs):
            rng = ensure_rng(rng)
            states[index] = rng.random() < loss_probability
            gap = rng.geometric(self.p, size=batch_size)
            burst = rng.geometric(self.q, size=batch_size)
            gap_runs[index] = gap
            burst_runs[index] = burst
            # The serial chain draws a run's continuation batches *before*
            # the next run's draws, which matters when runs share one
            # generator -- so pre-draw them here, inside the per-run loop.
            # A batch falls short exactly when its uncapped sojourn total
            # does (capping only shortens the final used sojourn).  The
            # fill consumes ONE sojourn per index -- ``burst[i]`` in the
            # loss state, ``gap[i]`` otherwise, alternating -- so the
            # total is the strided alternating sum, and each batch's even
            # sojourn count leaves the starting state unchanged.
            in_loss_state = bool(states[index])

            def batch_total(gap_batch: np.ndarray, burst_batch: np.ndarray) -> int:
                first, second = (
                    (burst_batch, gap_batch) if in_loss_state else (gap_batch, burst_batch)
                )
                # Tiny p/q saturate rng.geometric near 2**63 - 1, so the
                # raw sum could overflow (and a wrapped negative total
                # would draw batches forever); capping each sojourn at
                # ``count`` cannot change whether the total reaches it.
                return int(np.minimum(first[0::2], count).sum()) + int(
                    np.minimum(second[1::2], count).sum()
                )

            covered = batch_total(gap, burst)
            while covered < count:
                gap = rng.geometric(self.p, size=batch_size)
                burst = rng.geometric(self.q, size=batch_size)
                extras.setdefault(index, []).append((gap, burst))
                covered += batch_total(gap, burst)
        filled = backend.fill_sojourns_batch(masks, states, gap_runs, burst_runs)
        for index, batches in extras.items():
            # An even number of sojourns per batch leaves the state
            # unchanged, so the initial state still applies.
            row, row_filled = masks[index], int(filled[index])
            in_loss_state = bool(states[index])
            for gap, burst in batches:
                row_filled = backend.fill_sojourns(
                    row, row_filled, in_loss_state, gap, burst
                )
        return masks

    def loss_mask_batch_unit(
        self,
        count: int,
        rng,
        runs: int,
        *,
        kernel: KernelSpec = None,
    ) -> np.ndarray:
        """One mask per run, all sojourns drawn from ONE shared generator.

        The ``"unit"`` seed scheme's block path (:mod:`repro.seeds`): the
        per-run pre-draw loop of :meth:`loss_mask_batch` disappears
        entirely.  Initial states come from one ``(runs,)`` uniform draw,
        the first sojourn batch of *every* run from two ``(runs, batch)``
        geometric draws, and the whole block is expanded by a single
        ``fill_sojourns_batch`` kernel call with per-row fill offsets; only
        the rare rows whose first batch falls short of ``count`` continue
        chain-style (in row order, so the draw order stays deterministic).
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if self.p == 0.0:
            return np.broadcast_to(np.zeros(count, dtype=bool), (runs, count))
        if self.q == 0.0:
            return np.broadcast_to(np.ones(count, dtype=bool), (runs, count))
        masks = np.empty((runs, count), dtype=bool)
        if count == 0 or runs == 0:
            return masks
        rng = ensure_rng(rng)
        backend = get_backend(kernel)
        batch_size = self._SOJOURN_BATCH
        states = rng.random(runs) < self.global_loss_probability
        gap_runs = rng.geometric(self.p, size=(runs, batch_size))
        burst_runs = rng.geometric(self.q, size=(runs, batch_size))
        filled = backend.fill_sojourns_batch(masks, states, gap_runs, burst_runs)
        # Unlike loss_mask_batch, the continuation draws here come *after*
        # the fill (one shared generator, no per-run ordering to
        # preserve), so the kernel's fill counts directly identify the
        # rare rows whose first batch fell short.
        for index in np.flatnonzero(filled < count):
            row, row_filled = masks[index], int(filled[index])
            in_loss_state = bool(states[index])
            while row_filled < count:
                gap = rng.geometric(self.p, size=batch_size)
                burst = rng.geometric(self.q, size=batch_size)
                row_filled = backend.fill_sojourns(
                    row, row_filled, in_loss_state, gap, burst
                )
        return masks

    def _fill_mask(
        self, mask: np.ndarray, rng: np.random.Generator, backend
    ) -> None:
        """Fill a preallocated mask with one run's chain (shared hot loop)."""
        count = mask.size
        if count == 0:
            return
        if self.p == 0.0:
            mask[:] = False
            return
        if self.q == 0.0:
            # Stationary distribution puts all mass on the loss state.
            mask[:] = True
            return
        batch_size = self._SOJOURN_BATCH
        in_loss_state = bool(rng.random() < self.global_loss_probability)
        filled = 0
        while filled < count:
            gap_runs = rng.geometric(self.p, size=batch_size)
            burst_runs = rng.geometric(self.q, size=batch_size)
            # An even number of sojourns per batch leaves the state
            # unchanged, so ``in_loss_state`` is loop-invariant.
            filled = backend.fill_sojourns(
                mask, filled, in_loss_state, gap_runs, burst_runs
            )

    def _loss_mask_serial(
        self, count: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Historical sojourn-by-sojourn chain (seed-compatible reference).

        Kept verbatim so the equivalence tests can prove that the vectorised
        :meth:`loss_mask` consumes the generator identically and produces
        bit-identical masks.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        rng = ensure_rng(rng)
        mask = np.empty(count, dtype=bool)
        if count == 0:
            return mask
        if self.p == 0.0:
            mask[:] = False
            return mask
        if self.q == 0.0:
            mask[:] = True
            return mask

        in_loss_state = bool(rng.random() < self.global_loss_probability)
        filled = 0
        batch_size = self._SOJOURN_BATCH
        while filled < count:
            gap_runs = rng.geometric(self.p, size=batch_size)
            burst_runs = rng.geometric(self.q, size=batch_size)
            for index in range(batch_size):
                run = int(burst_runs[index] if in_loss_state else gap_runs[index])
                run = min(run, count - filled)
                mask[filled : filled + run] = in_loss_state
                filled += run
                in_loss_state = not in_loss_state
                if filled >= count:
                    break
        return mask

    def __repr__(self) -> str:
        return f"GilbertChannel(p={self.p}, q={self.q})"


__all__ = ["GilbertChannel", "PAPER_GRID_PERCENT", "paper_grid"]
