"""Two-state Gilbert (Markov) packet-loss model.

The model of section 3.2 of the paper: a *no-loss* state in which packets
are delivered and a *loss* state in which packets are erased.  ``p`` is the
probability of moving from no-loss to loss between two packets, ``q`` the
probability of moving back.  The long-run ("global") loss probability is
``p / (p + q)`` and the mean loss-burst length is ``1 / q``.

Special cases (also noted in the paper):

* ``p = 0`` -- perfect channel (no loss ever).
* ``q = 1 - p`` -- independent, identically distributed (Bernoulli) losses.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.channel.base import LossModel
from repro.utils.rng import ensure_rng
from repro.utils.validation import validate_probability

#: The (p, q) grid used for every 3-D figure of the paper, in percent.
PAPER_GRID_PERCENT: tuple[int, ...] = (0, 1, 5, 10, 15, 20, 30, 40, 50, 60, 70, 80, 90, 100)


def paper_grid() -> tuple[list[float], list[float]]:
    """The 14 x 14 (p, q) grid of the paper, as probabilities in [0, 1]."""
    values = [value / 100.0 for value in PAPER_GRID_PERCENT]
    return list(values), list(values)


class GilbertChannel(LossModel):
    """Two-state Markov loss model.

    Parameters
    ----------
    p:
        Probability of transitioning from the no-loss state to the loss
        state between two consecutive packets.
    q:
        Probability of transitioning from the loss state back to the
        no-loss state.
    """

    def __init__(self, p: float, q: float):
        self.p = validate_probability(p, "p")
        self.q = validate_probability(q, "q")

    @property
    def global_loss_probability(self) -> float:
        """Stationary probability of the loss state, ``p / (p + q)``."""
        if self.p == 0.0:
            return 0.0
        if self.p + self.q == 0.0:
            return 0.0
        return self.p / (self.p + self.q)

    @property
    def stationary_distribution(self) -> tuple[float, float]:
        """(P[no-loss], P[loss]) under the stationary regime."""
        loss = self.global_loss_probability
        return 1.0 - loss, loss

    @property
    def mean_burst_length(self) -> float:
        """Expected length of a loss burst (``1 / q``; ``inf`` if q == 0)."""
        if self.q == 0.0:
            return float("inf")
        return 1.0 / self.q

    @property
    def mean_gap_length(self) -> float:
        """Expected length of a loss-free run (``1 / p``; ``inf`` if p == 0)."""
        if self.p == 0.0:
            return float("inf")
        return 1.0 / self.p

    @property
    def is_memoryless(self) -> bool:
        """True when the model degenerates to IID (Bernoulli) losses."""
        return abs(self.q - (1.0 - self.p)) < 1e-12

    #: Geometric sojourn lengths are drawn in batches of this many runs.
    _SOJOURN_BATCH = 256

    def loss_mask(self, count: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Simulate ``count`` packet transmissions started in steady state.

        The chain is memoryless, so given the initial state (drawn from the
        stationary distribution) the residual sojourn times are geometric.
        Sojourn lengths are drawn in batches and expanded into the mask with
        ``np.repeat`` -- no Python loop over packets or sojourns.  The draw
        sequence is identical to :meth:`_loss_mask_serial` (one uniform for
        the initial state, then alternating geometric batches), so masks are
        bit-identical to the historical serial chain for any seed.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        rng = ensure_rng(rng)
        mask = np.empty(count, dtype=bool)
        if count == 0:
            return mask
        if self.p == 0.0:
            mask[:] = False
            return mask
        if self.q == 0.0:
            # Stationary distribution puts all mass on the loss state.
            mask[:] = True
            return mask

        batch_size = self._SOJOURN_BATCH
        in_loss_state = bool(rng.random() < self.global_loss_probability)
        even_position = np.arange(batch_size) % 2 == 0
        filled = 0
        while filled < count:
            gap_runs = rng.geometric(self.p, size=batch_size)
            burst_runs = rng.geometric(self.q, size=batch_size)
            # The serial chain consumes sojourn ``index`` from the array of
            # its current state and toggles the state after every sojourn,
            # so the states alternate along the batch and each array only
            # contributes its even or odd positions.
            states = np.where(even_position, in_loss_state, not in_loss_state)
            runs = np.where(states, burst_runs, gap_runs)
            remaining = count - filled
            # Cap sojourns at the remaining space, as the serial chain does
            # per sojourn; tiny p/q make rng.geometric saturate at 2**63 - 1
            # and an uncapped cumulative sum would overflow.  The cap cannot
            # change which sojourn crosses ``remaining`` or any earlier one.
            runs = np.minimum(runs, remaining)
            cumulative = np.cumsum(runs)
            if cumulative[-1] >= remaining:
                # The batch overshoots: truncate the final sojourn so the
                # expansion ends exactly at ``count`` (the serial chain caps
                # each sojourn at the remaining space the same way).
                cut = int(np.searchsorted(cumulative, remaining))
                runs = runs[: cut + 1].copy()
                runs[cut] = remaining - (cumulative[cut - 1] if cut else 0)
                mask[filled:] = np.repeat(states[: cut + 1], runs)
                filled = count
            else:
                segment = np.repeat(states, runs)
                mask[filled : filled + segment.size] = segment
                filled += segment.size
                # An even number of sojourns leaves the state unchanged.
        return mask

    def _loss_mask_serial(
        self, count: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Historical sojourn-by-sojourn chain (seed-compatible reference).

        Kept verbatim so the equivalence tests can prove that the vectorised
        :meth:`loss_mask` consumes the generator identically and produces
        bit-identical masks.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        rng = ensure_rng(rng)
        mask = np.empty(count, dtype=bool)
        if count == 0:
            return mask
        if self.p == 0.0:
            mask[:] = False
            return mask
        if self.q == 0.0:
            mask[:] = True
            return mask

        in_loss_state = bool(rng.random() < self.global_loss_probability)
        filled = 0
        batch_size = self._SOJOURN_BATCH
        while filled < count:
            gap_runs = rng.geometric(self.p, size=batch_size)
            burst_runs = rng.geometric(self.q, size=batch_size)
            for index in range(batch_size):
                run = int(burst_runs[index] if in_loss_state else gap_runs[index])
                run = min(run, count - filled)
                mask[filled : filled + run] = in_loss_state
                filled += run
                in_loss_state = not in_loss_state
                if filled >= count:
                    break
        return mask

    def __repr__(self) -> str:
        return f"GilbertChannel(p={self.p}, q={self.q})"


__all__ = ["GilbertChannel", "PAPER_GRID_PERCENT", "paper_grid"]
