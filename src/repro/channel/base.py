"""Base class for packet-loss channel models."""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from repro.utils.rng import RandomState, ensure_rng


class LossModel(abc.ABC):
    """A packet erasure channel.

    A loss model only decides, for a sequence of packet transmissions,
    which packets are erased; content is never corrupted (erasure channel,
    as in the paper).
    """

    @property
    def uses_rng(self) -> bool:
        """Whether :meth:`loss_mask` draws from the generator.

        Deterministic channels (perfect, periodic bursts, trace replay
        without a random offset) override this to return False, which lets
        the batched pipeline broadcast one mask over a work unit and
        relaxes draw-ordering constraints when runs share one generator.
        """
        return True

    @abc.abstractmethod
    def loss_mask(
        self,
        count: int,
        rng: Optional[np.random.Generator] = None,
        *,
        kernel=None,
    ) -> np.ndarray:
        """Return a boolean array of length ``count``; ``True`` marks a *lost* packet.

        ``kernel`` optionally selects a :mod:`repro.kernels` backend for
        models with a kernelised hot loop (the Gilbert sojourn fill);
        models without one accept and ignore it, so callers can thread
        their backend without per-channel special cases.  Masks are
        bit-identical for any ``kernel`` value.
        """

    def loss_mask_batch(
        self,
        count: int,
        rngs: Sequence[RandomState],
        *,
        kernel=None,
    ) -> np.ndarray:
        """Loss masks for a whole work unit as one ``(runs, count)`` array.

        Row ``i`` must be exactly what ``self.loss_mask(count, rngs[i])``
        would return, with the generators consumed in run order -- the
        batched pipeline relies on this draw-identity.  The default
        implementation guarantees it by calling :meth:`loss_mask` per run;
        the built-in channels override it with vectorised draws (or a
        broadcast view for deterministic models -- treat the result as
        read-only).
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        masks = np.empty((len(rngs), count), dtype=bool)
        for row, rng in zip(masks, rngs):
            row[:] = self.loss_mask(count, ensure_rng(rng), kernel=kernel)
        return masks

    def loss_mask_batch_unit(
        self,
        count: int,
        rng: RandomState,
        runs: int,
        *,
        kernel=None,
    ) -> np.ndarray:
        """Loss masks for a whole work unit drawn from ONE shared generator.

        The ``"unit"`` seed scheme's entry point (:mod:`repro.seeds`):
        every run's mask comes from the single unit generator, so overrides
        draw whole ``(runs, count)`` blocks in one call (a uniform matrix
        for Bernoulli, block geometrics plus one sojourn-fill kernel call
        for Gilbert).  Rows must be distributed exactly like
        :meth:`loss_mask` results and the draw order must be deterministic
        for a given generator state; block draws are *not* bit-identical to
        per-run calls -- the unit scheme defines its streams by this
        method's draw order.  The default loops :meth:`loss_mask` over the
        shared generator so duck-typed models work unchanged.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        rng = ensure_rng(rng)
        masks = np.empty((runs, count), dtype=bool)
        for row in masks:
            row[:] = self.loss_mask(count, rng, kernel=kernel)
        return masks

    def reception_mask(self, count: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Complement of :meth:`loss_mask`: ``True`` marks a received packet."""
        return ~self.loss_mask(count, rng)

    def transmit(self, indices: np.ndarray, rng: RandomState = None) -> np.ndarray:
        """Filter a schedule of packet indices through the channel.

        Returns the sub-sequence of ``indices`` that survives, preserving
        the transmission order.
        """
        rng = ensure_rng(rng)
        indices = np.asarray(indices)
        mask = self.loss_mask(indices.size, rng)
        return indices[~mask]

    @property
    @abc.abstractmethod
    def global_loss_probability(self) -> float:
        """Long-run fraction of packets lost."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(p_global={self.global_loss_probability:.4f})"


__all__ = ["LossModel"]
