"""Memoryless loss models: Bernoulli (IID) losses and the perfect channel.

Both are special cases of the Gilbert model (``q = 1 - p`` and ``p = 0``
respectively) but are provided as explicit classes because they are common
baselines and cheaper to simulate.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.channel.base import LossModel
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import validate_probability


class BernoulliChannel(LossModel):
    """Independent, identically distributed packet losses."""

    def __init__(self, loss_rate: float):
        self.loss_rate = validate_probability(loss_rate, "loss_rate")

    @property
    def uses_rng(self) -> bool:
        return 0.0 < self.loss_rate < 1.0

    @property
    def global_loss_probability(self) -> float:
        return self.loss_rate

    def loss_mask(
        self,
        count: int,
        rng: Optional[np.random.Generator] = None,
        *,
        kernel=None,
    ) -> np.ndarray:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        rng = ensure_rng(rng)
        if self.loss_rate == 0.0:
            return np.zeros(count, dtype=bool)
        if self.loss_rate == 1.0:
            return np.ones(count, dtype=bool)
        return rng.random(count) < self.loss_rate

    def loss_mask_batch(
        self,
        count: int,
        rngs: Sequence[RandomState],
        *,
        kernel=None,
    ) -> np.ndarray:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        runs = len(rngs)
        if self.loss_rate == 0.0:
            return np.broadcast_to(np.zeros(count, dtype=bool), (runs, count))
        if self.loss_rate == 1.0:
            return np.broadcast_to(np.ones(count, dtype=bool), (runs, count))
        # One uniform matrix, filled row by row straight from each run's
        # generator (``random(out=...)`` consumes the stream exactly like
        # ``random(count)``), compared against the rate in one shot.
        draws = np.empty((runs, count), dtype=np.float64)
        for row, rng in zip(draws, rngs):
            ensure_rng(rng).random(out=row)
        return draws < self.loss_rate

    def loss_mask_batch_unit(
        self,
        count: int,
        rng,
        runs: int,
        *,
        kernel=None,
    ) -> np.ndarray:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if self.loss_rate == 0.0:
            return np.broadcast_to(np.zeros(count, dtype=bool), (runs, count))
        if self.loss_rate == 1.0:
            return np.broadcast_to(np.ones(count, dtype=bool), (runs, count))
        # The whole unit's uniforms in ONE draw from the shared generator.
        return ensure_rng(rng).random((runs, count)) < self.loss_rate

    def __repr__(self) -> str:
        return f"BernoulliChannel(loss_rate={self.loss_rate})"


class PerfectChannel(LossModel):
    """A channel that never loses packets."""

    uses_rng = False

    @property
    def global_loss_probability(self) -> float:
        return 0.0

    def loss_mask(
        self,
        count: int,
        rng: Optional[np.random.Generator] = None,
        *,
        kernel=None,
    ) -> np.ndarray:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return np.zeros(count, dtype=bool)

    def loss_mask_batch(
        self,
        count: int,
        rngs: Sequence[RandomState],
        *,
        kernel=None,
    ) -> np.ndarray:
        return np.broadcast_to(self.loss_mask(count), (len(rngs), count))

    def loss_mask_batch_unit(
        self,
        count: int,
        rng,
        runs: int,
        *,
        kernel=None,
    ) -> np.ndarray:
        return np.broadcast_to(self.loss_mask(count), (runs, count))

    def __repr__(self) -> str:
        return "PerfectChannel()"


__all__ = ["BernoulliChannel", "PerfectChannel"]
