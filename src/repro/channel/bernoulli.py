"""Memoryless loss models: Bernoulli (IID) losses and the perfect channel.

Both are special cases of the Gilbert model (``q = 1 - p`` and ``p = 0``
respectively) but are provided as explicit classes because they are common
baselines and cheaper to simulate.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.channel.base import LossModel
from repro.utils.rng import ensure_rng
from repro.utils.validation import validate_probability


class BernoulliChannel(LossModel):
    """Independent, identically distributed packet losses."""

    def __init__(self, loss_rate: float):
        self.loss_rate = validate_probability(loss_rate, "loss_rate")

    @property
    def global_loss_probability(self) -> float:
        return self.loss_rate

    def loss_mask(
        self,
        count: int,
        rng: Optional[np.random.Generator] = None,
        *,
        kernel=None,
    ) -> np.ndarray:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        rng = ensure_rng(rng)
        if self.loss_rate == 0.0:
            return np.zeros(count, dtype=bool)
        if self.loss_rate == 1.0:
            return np.ones(count, dtype=bool)
        return rng.random(count) < self.loss_rate

    def __repr__(self) -> str:
        return f"BernoulliChannel(loss_rate={self.loss_rate})"


class PerfectChannel(LossModel):
    """A channel that never loses packets."""

    @property
    def global_loss_probability(self) -> float:
        return 0.0

    def loss_mask(
        self,
        count: int,
        rng: Optional[np.random.Generator] = None,
        *,
        kernel=None,
    ) -> np.ndarray:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return np.zeros(count, dtype=bool)

    def __repr__(self) -> str:
        return "PerfectChannel()"


__all__ = ["BernoulliChannel", "PerfectChannel"]
