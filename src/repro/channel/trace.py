"""Trace-replay loss model.

The paper points out that Gilbert parameters can be fitted from packet-loss
traces (e.g. the GSM traces of [8] or the Internet traces of [16]).  The
:class:`TraceChannel` closes the loop: it replays a recorded loss trace
directly, and :func:`fit_gilbert_parameters` estimates the ``(p, q)`` pair
of the Gilbert model that best matches a trace, so measured channels can be
plugged into the rest of the library.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.channel.base import LossModel
from repro.utils.rng import RandomState, ensure_rng


class TraceChannel(LossModel):
    """Replay a recorded loss trace.

    Parameters
    ----------
    trace:
        Sequence of booleans/0-1 values; truthy entries mark lost packets.
    cyclic:
        If ``True`` (default) the trace wraps around when more packets than
        the trace length are transmitted; otherwise the excess packets are
        assumed received.
    random_offset:
        If ``True``, each call to :meth:`loss_mask` starts the replay at a
        random position of the trace (useful to decorrelate simulation runs
        that share one measured trace).
    """

    def __init__(
        self,
        trace: Sequence[int] | np.ndarray,
        *,
        cyclic: bool = True,
        random_offset: bool = False,
    ):
        trace = np.asarray(trace).astype(bool)
        if trace.ndim != 1 or trace.size == 0:
            raise ValueError("trace must be a non-empty 1-D sequence")
        self.trace = trace
        self.cyclic = cyclic
        self.random_offset = random_offset

    @property
    def uses_rng(self) -> bool:
        return self.random_offset

    @property
    def global_loss_probability(self) -> float:
        return float(np.count_nonzero(self.trace)) / self.trace.size

    def loss_mask(
        self,
        count: int,
        rng: Optional[np.random.Generator] = None,
        *,
        kernel=None,
    ) -> np.ndarray:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        rng = ensure_rng(rng)
        offset = int(rng.integers(self.trace.size)) if self.random_offset else 0
        if count == 0:
            return np.zeros(0, dtype=bool)
        if self.cyclic:
            positions = (np.arange(count) + offset) % self.trace.size
            return self.trace[positions]
        mask = np.zeros(count, dtype=bool)
        available = min(count, self.trace.size - offset)
        mask[:available] = self.trace[offset : offset + available]
        return mask

    def loss_mask_batch(
        self,
        count: int,
        rngs: Sequence[RandomState],
        *,
        kernel=None,
    ) -> np.ndarray:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        runs = len(rngs)
        if not self.random_offset:
            return np.broadcast_to(self.loss_mask(count), (runs, count))
        # One offset draw per run (the serial path draws it even for
        # count == 0), then the replay is a single vectorised gather.
        offsets = np.fromiter(
            (int(ensure_rng(rng).integers(self.trace.size)) for rng in rngs),
            dtype=np.int64,
            count=runs,
        )
        if count == 0:
            return np.zeros((runs, 0), dtype=bool)
        return self._replay(offsets, count)

    def loss_mask_batch_unit(
        self,
        count: int,
        rng: RandomState,
        runs: int,
        *,
        kernel=None,
    ) -> np.ndarray:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if not self.random_offset:
            return np.broadcast_to(self.loss_mask(count), (runs, count))
        # All per-run offsets in ONE draw from the shared unit generator.
        offsets = ensure_rng(rng).integers(self.trace.size, size=runs)
        if count == 0:
            return np.zeros((runs, 0), dtype=bool)
        return self._replay(offsets.astype(np.int64), count)

    def _replay(self, offsets: np.ndarray, count: int) -> np.ndarray:
        """Gather the trace at one offset per run (shared batch tail)."""
        positions = offsets[:, None] + np.arange(count, dtype=np.int64)
        if self.cyclic:
            return self.trace[positions % self.trace.size]
        masks = np.zeros((offsets.size, count), dtype=bool)
        in_trace = positions < self.trace.size
        masks[in_trace] = self.trace[positions[in_trace]]
        return masks

    def __repr__(self) -> str:
        return (
            f"TraceChannel(length={self.trace.size}, "
            f"loss_rate={self.global_loss_probability:.4f}, cyclic={self.cyclic})"
        )


def fit_gilbert_parameters(trace: Sequence[int] | np.ndarray) -> tuple[float, float]:
    """Estimate Gilbert ``(p, q)`` parameters from a loss trace.

    ``p`` is estimated as the fraction of received packets followed by a
    loss, ``q`` as the fraction of lost packets followed by a reception --
    the maximum-likelihood estimators for a two-state Markov chain.
    """
    trace = np.asarray(trace).astype(bool)
    if trace.ndim != 1 or trace.size < 2:
        raise ValueError("trace must contain at least two packets")
    current, following = trace[:-1], trace[1:]
    received_count = int(np.count_nonzero(~current))
    lost_count = int(np.count_nonzero(current))
    p = float(np.count_nonzero(~current & following)) / received_count if received_count else 0.0
    q = float(np.count_nonzero(current & ~following)) / lost_count if lost_count else 1.0
    return p, q


__all__ = ["TraceChannel", "fit_gilbert_parameters"]
