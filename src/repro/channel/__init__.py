"""Packet-loss channel models.

The paper models the channel as a packet erasure channel driven by the
two-state Gilbert (Markov) model of section 3.2; the Bernoulli (memoryless)
and perfect channels are its special cases.  A trace-replay channel and a
deterministic periodic-burst channel are provided for controlled tests.

:mod:`repro.channel.limits` implements the analytic decodability limits of
figure 6 (the (p, q) region in which no FEC code can possibly decode).
"""

from repro.channel.base import LossModel
from repro.channel.bernoulli import BernoulliChannel, PerfectChannel
from repro.channel.gilbert import GilbertChannel, PAPER_GRID_PERCENT, paper_grid
from repro.channel.limits import (
    decodable_region,
    expected_received_fraction,
    is_decodable,
    minimum_q_for_decoding,
)
from repro.channel.periodic import PeriodicBurstChannel
from repro.channel.trace import TraceChannel

__all__ = [
    "LossModel",
    "GilbertChannel",
    "BernoulliChannel",
    "PerfectChannel",
    "TraceChannel",
    "PeriodicBurstChannel",
    "PAPER_GRID_PERCENT",
    "paper_grid",
    "minimum_q_for_decoding",
    "is_decodable",
    "decodable_region",
    "expected_received_fraction",
]
