"""Analytic decodability limits in the (p, q) plane (figure 6 of the paper).

A receiver gets on average ``n_sent * (1 - p_global)`` packets, with
``p_global = p / (p + q)``.  Decoding requires at least ``inef_ratio * k``
packets, so the boundary of the feasible region is

    q = p * inef_ratio / (n_sent / k - inef_ratio)

(the paper's equation, rearranged).  Points below that curve cannot be
decoded by *any* FEC code; this is a property of the channel, not of a code.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.utils.validation import validate_probability


def expected_received_fraction(p: float, q: float, nsent_over_k: float) -> float:
    """Expected number of received packets divided by ``k``.

    This is the ``n_received / k`` curve plotted alongside the inefficiency
    ratio in the paper's figures.
    """
    p = validate_probability(p, "p")
    q = validate_probability(q, "q")
    if nsent_over_k <= 0:
        raise ValueError(f"nsent_over_k must be positive, got {nsent_over_k}")
    if p == 0.0:
        p_global = 0.0
    elif p + q == 0.0:
        p_global = 0.0
    else:
        p_global = p / (p + q)
    return nsent_over_k * (1.0 - p_global)


def minimum_q_for_decoding(
    p: float,
    expansion_ratio: float,
    *,
    inef_ratio: float = 1.0,
    nsent_over_k: Optional[float] = None,
) -> float:
    """Smallest ``q`` for which decoding is possible on average at a given ``p``.

    Parameters
    ----------
    p:
        Gilbert parameter (no-loss -> loss transition probability).
    expansion_ratio:
        The code's ``n / k``.
    inef_ratio:
        Decoding inefficiency assumed for the bound (1.0 = ideal MDS code,
        the lower bound used for figure 6).
    nsent_over_k:
        Number of packets actually sent divided by ``k``; defaults to the
        expansion ratio (send everything).

    Returns
    -------
    float
        The limiting ``q`` value, clipped to [0, 1].  ``inf`` is returned if
        no ``q`` can make decoding possible (e.g. sending fewer than
        ``inef_ratio * k`` packets).
    """
    p = validate_probability(p, "p")
    if inef_ratio < 1.0:
        raise ValueError(f"inef_ratio must be >= 1, got {inef_ratio}")
    if nsent_over_k is None:
        nsent_over_k = float(expansion_ratio)
    if nsent_over_k > float(expansion_ratio) + 1e-12:
        raise ValueError("cannot send more packets than the code produces")
    if nsent_over_k <= inef_ratio:
        return 0.0 if p == 0.0 else float("inf")
    if p == 0.0:
        return 0.0
    return min(1.0, p * inef_ratio / (nsent_over_k - inef_ratio))


def is_decodable(
    p: float,
    q: float,
    expansion_ratio: float,
    *,
    inef_ratio: float = 1.0,
    nsent_over_k: Optional[float] = None,
) -> bool:
    """Whether the average number of received packets reaches ``inef_ratio * k``."""
    q = validate_probability(q, "q")
    limit = minimum_q_for_decoding(
        p, expansion_ratio, inef_ratio=inef_ratio, nsent_over_k=nsent_over_k
    )
    return q >= limit


def decodable_region(
    p_values: Sequence[float],
    q_values: Sequence[float],
    expansion_ratio: float,
    *,
    inef_ratio: float = 1.0,
    nsent_over_k: Optional[float] = None,
) -> np.ndarray:
    """Boolean matrix (len(p) x len(q)) of the decodable region of figure 6."""
    result = np.zeros((len(p_values), len(q_values)), dtype=bool)
    for i, p in enumerate(p_values):
        for j, q in enumerate(q_values):
            result[i, j] = is_decodable(
                p, q, expansion_ratio, inef_ratio=inef_ratio, nsent_over_k=nsent_over_k
            )
    return result


__all__ = [
    "expected_received_fraction",
    "minimum_q_for_decoding",
    "is_decodable",
    "decodable_region",
]
