"""Deterministic periodic-burst loss model.

Not part of the paper's evaluation, but invaluable for controlled unit and
integration tests: exactly ``burst_length`` consecutive packets are lost out
of every ``period`` packets, starting at ``offset``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.channel.base import LossModel
from repro.utils.rng import RandomState
from repro.utils.validation import validate_positive_int


class PeriodicBurstChannel(LossModel):
    """Lose ``burst_length`` packets out of every ``period`` packets."""

    uses_rng = False

    def __init__(self, period: int, burst_length: int, offset: int = 0):
        self.period = validate_positive_int(period, "period")
        if burst_length < 0:
            raise ValueError(f"burst_length must be >= 0, got {burst_length}")
        if burst_length > period:
            raise ValueError(
                f"burst_length ({burst_length}) cannot exceed period ({period})"
            )
        self.burst_length = int(burst_length)
        self.offset = int(offset) % self.period

    @property
    def global_loss_probability(self) -> float:
        return self.burst_length / self.period

    def loss_mask(
        self,
        count: int,
        rng: Optional[np.random.Generator] = None,
        *,
        kernel=None,
    ) -> np.ndarray:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        positions = (np.arange(count) + self.offset) % self.period
        return positions < self.burst_length

    def loss_mask_batch(
        self,
        count: int,
        rngs: Sequence[RandomState],
        *,
        kernel=None,
    ) -> np.ndarray:
        return np.broadcast_to(self.loss_mask(count), (len(rngs), count))

    def loss_mask_batch_unit(
        self,
        count: int,
        rng: RandomState,
        runs: int,
        *,
        kernel=None,
    ) -> np.ndarray:
        return np.broadcast_to(self.loss_mask(count), (runs, count))

    def __repr__(self) -> str:
        return (
            f"PeriodicBurstChannel(period={self.period}, "
            f"burst_length={self.burst_length}, offset={self.offset})"
        )


__all__ = ["PeriodicBurstChannel"]
