"""Work-unit model of the parallel experiment-execution engine.

A sweep -- a (p, q) grid or a 1-D parameter series -- is sharded into
independent :class:`WorkUnit` cells, each covering one point of the sweep
and a contiguous range of runs.  Each unit's random streams are derived by
a named :mod:`repro.seeds` scheme: the default ``"per-run"`` scheme gives
every run ``SeedSequence([base_seed, *seed_path, run])`` -- exactly what
the serial sweeps in :mod:`repro.core.sweep` have always used
(``[base_seed, i, j, run]`` for grids, ``[base_seed, index, run]`` for
series), so executing the units serially, in parallel, or reloading them
from the on-disk cache produces bit-identical results.  The counter-based
``"unit"`` scheme derives one Philox generator per unit instead, which
lets the synthesis pipeline draw whole ``(runs, n)`` blocks; its results
differ from ``"per-run"`` (the scheme is part of the cache key) but are
equally deterministic across executors and cache states.

Units are plain picklable dataclasses: they cross process boundaries for
the process-pool executor and are hashed into cache keys by
:mod:`repro.runner.cache`.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.gilbert import GilbertChannel
from repro.core.config import SimulationConfig
from repro.core.metrics import RunResult, RunResultBatch
from repro.core.simulator import Simulator
from repro.kernels.threads import (
    ThreadSpec,
    normalize_thread_spec,
    thread_count_context,
)
from repro.seeds import SchemeSpec, UnitStreams, get_scheme, resolve_scheme_name

#: Cell identifier inside one sweep: ``(i, j)`` for grids, ``(index,)`` for
#: 1-D series.  It doubles as the seed salt, so two cells of the same sweep
#: never share a random stream.
SeedPath = Tuple[int, ...]


@dataclass(frozen=True)
class WorkUnit:
    """One independent shard of a sweep: a cell and a contiguous run range.

    Attributes
    ----------
    config:
        Full simulation configuration for this cell (already specialised:
        for parameter sweeps the swept value is baked in).
    p, q:
        Gilbert channel parameters of the cell.
    seed_path:
        Position of the cell inside the sweep, mixed into every run seed.
    run_start, run_stop:
        Half-open range of run indices covered by this unit.
    base_seed:
        Normalised top-level seed of the sweep.
    fresh_code_per_run:
        Rebuild the FEC code from the run generator for every run (instead
        of reusing one code built from the code seed).
    code_seed_path:
        Salt for the shared code seed: ``None`` builds the code from
        ``default_rng(base_seed)`` (the grid sweep's historical behaviour),
        a tuple builds it from ``SeedSequence([base_seed, *path])`` (used by
        parameter sweeps so neighbouring indices cannot collide).
    fastpath:
        Execute the unit's run range as one vectorised batch through
        :mod:`repro.fastpath` (bit-identical to the incremental path, so
        the flag is *not* part of the cache key); ``False`` keeps the
        per-run reference loop.
    kernel:
        :mod:`repro.kernels` backend name for the batch decode (``None``
        resolves ``REPRO_KERNEL`` / auto in the executing process).  All
        backends are bit-identical, so like ``fastpath`` this is excluded
        from the cache key; kept a plain string so units stay picklable.
    kernel_threads:
        Thread-count request for the compiled kernels' row-parallel
        loops, normalised to ``None`` / ``"auto"`` / a digit string
        (:func:`repro.kernels.threads.normalize_thread_spec`); ``None``
        resolves ``REPRO_KERNEL_THREADS`` / auto in the executing
        process.  Thread counts are bit-identical, so like ``kernel``
        this is excluded from the cache key.
    seed_scheme:
        Name of the :mod:`repro.seeds` scheme deriving this unit's random
        streams.  Unlike ``fastpath``/``kernel`` the scheme changes the
        drawn streams, so it **is** part of the cache key.  Stored as the
        resolved name (never ``None``) so units are self-describing when
        they cross process boundaries.
    """

    config: SimulationConfig
    p: float
    q: float
    seed_path: SeedPath
    run_start: int
    run_stop: int
    base_seed: int
    fresh_code_per_run: bool = False
    code_seed_path: Optional[SeedPath] = None
    fastpath: bool = True
    kernel: Optional[str] = None
    kernel_threads: Optional[str] = None
    seed_scheme: str = "per-run"

    @property
    def runs(self) -> int:
        return self.run_stop - self.run_start

    def to_payload(self) -> Dict[str, object]:
        """JSON-compatible snapshot of the unit (store provenance records).

        The snapshot is self-contained: :meth:`from_payload` rebuilds an
        equal unit on any machine, which is what makes one stored unit
        re-executable from its provenance record alone
        (``python -m repro rerun-unit``).
        """
        return {
            "config": dataclasses.asdict(self.config),
            "p": self.p,
            "q": self.q,
            "seed_path": list(self.seed_path),
            "run_start": self.run_start,
            "run_stop": self.run_stop,
            "base_seed": self.base_seed,
            "fresh_code_per_run": self.fresh_code_per_run,
            "code_seed_path": None
            if self.code_seed_path is None
            else list(self.code_seed_path),
            "fastpath": self.fastpath,
            "kernel": self.kernel,
            "kernel_threads": self.kernel_threads,
            "seed_scheme": self.seed_scheme,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "WorkUnit":
        """Rebuild a unit from a :meth:`to_payload` snapshot."""
        fields = dict(payload)
        config = SimulationConfig(**fields.pop("config"))
        seed_path = tuple(int(x) for x in fields.pop("seed_path"))
        code_seed_path = fields.pop("code_seed_path", None)
        if code_seed_path is not None:
            code_seed_path = tuple(int(x) for x in code_seed_path)
        return cls(
            config=config,
            seed_path=seed_path,
            code_seed_path=code_seed_path,
            **fields,
        )


@dataclass(frozen=True)
class UnitResult:
    """Raw per-run outcomes of one executed :class:`WorkUnit`.

    The per-run ratio lists (not their means) are kept so that results of
    run-sharded units can be re-concatenated in run order and aggregated
    exactly as the serial loop would have; ``inefficiency_ratios`` only
    contains the decoded runs, matching :class:`repro.core.metrics.CellStats`.
    """

    seed_path: SeedPath
    run_start: int
    run_stop: int
    inefficiency_ratios: Tuple[float, ...]
    received_ratios: Tuple[float, ...]
    failures: int


def plan_units(
    configs: Sequence[Tuple[SeedPath, SimulationConfig, float, float]],
    *,
    runs: int,
    base_seed: int,
    fresh_code_per_run: bool = False,
    code_seed_by_path: bool = False,
    runs_per_unit: Optional[int] = None,
    first_run: int = 0,
    fastpath: bool = True,
    kernel: Optional[str] = None,
    kernel_threads: ThreadSpec = None,
    seed_scheme: SchemeSpec = None,
) -> List[WorkUnit]:
    """Shard a sweep into work units.

    Parameters
    ----------
    configs:
        One ``(seed_path, config, p, q)`` tuple per cell, in sweep order.
    runs_per_unit:
        Split each cell into units of at most this many runs; ``None``
        keeps one unit per cell (the cache granularity used by default).
        Under the ``"unit"`` seed scheme the sharding also selects the
        counter windows, so it is part of the stream definition there.
    first_run:
        Plan only the run range ``[first_run, runs)`` of each cell.  The
        adaptive controller uses this to *extend* already-executed cells
        round by round; keeping ``first_run`` a multiple of
        ``runs_per_unit`` keeps the chunk boundaries identical to a
        from-zero plan, which is what makes adaptive results (including
        their unit-scheme counter windows and cache keys) bit-identical
        to a fixed sweep's.
    code_seed_by_path:
        Derive each cell's shared code seed from its ``seed_path`` instead
        of the sweep-wide ``base_seed`` (parameter-sweep behaviour).
    fastpath:
        Execute each unit's run range as one vectorised batch (default).
    kernel:
        Kernel-backend name for the batch decode (``None``: env / auto).
    kernel_threads:
        Thread-count request for the compiled kernels (``None``: env /
        auto); validated and normalised here so a bad ``--kernel-threads``
        fails at planning time, not inside a worker.
    seed_scheme:
        :mod:`repro.seeds` scheme deriving the run streams (``None``:
        ``REPRO_SEED_SCHEME`` / ``"per-run"``); resolved here so every
        planned unit carries an explicit scheme name.
    """
    chunk = runs if runs_per_unit is None else max(1, int(runs_per_unit))
    first_run = int(first_run)
    if first_run < 0:
        raise ValueError(f"first_run must be >= 0, got {first_run}")
    scheme_name = resolve_scheme_name(seed_scheme)
    threads_spec = normalize_thread_spec(kernel_threads)
    units: List[WorkUnit] = []
    for seed_path, config, p, q in configs:
        for run_start in range(first_run, runs, chunk):
            units.append(
                WorkUnit(
                    config=config,
                    p=float(p),
                    q=float(q),
                    seed_path=tuple(int(x) for x in seed_path),
                    run_start=run_start,
                    run_stop=min(run_start + chunk, runs),
                    base_seed=int(base_seed),
                    fresh_code_per_run=bool(fresh_code_per_run),
                    code_seed_path=tuple(int(x) for x in seed_path)
                    if code_seed_by_path
                    else None,
                    fastpath=bool(fastpath),
                    kernel=kernel,
                    kernel_threads=threads_spec,
                    seed_scheme=scheme_name,
                )
            )
    return units


#: Per-process memo of shared FEC codes, keyed by the code-defining parts of
#: the unit.  Building an LDGM parity-check matrix or a Vandermonde table is
#: far more expensive than a handful of runs, so worker processes build each
#: distinct code once and reuse it across the units they execute.  Compiled
#: decoder prototypes ride the cached instances (and the module-level memo
#: in :mod:`repro.fastpath.prototypes`), so the bound also bounds how often
#: a worker recompiles: it comfortably covers a paper figure's distinct
#: configs plus a long parameter series, where the old bound of 8 thrashed
#: on resumed/repeated units.  The lock makes the check-then-build race
#: safe for thread-executor workers sharing this cache.
_CODE_CACHE: Dict[tuple, object] = {}
_CODE_CACHE_MAX = 64
_CODE_CACHE_LOCK = threading.Lock()


def _shared_code_key(unit: WorkUnit) -> tuple:
    from repro.store.codec import config_token

    return (config_token(unit.config), unit.base_seed, unit.code_seed_path)


def _shared_code(unit: WorkUnit):
    from repro.fastpath.prototypes import set_prototype_memo_token

    key = _shared_code_key(unit)
    with _CODE_CACHE_LOCK:
        code = _CODE_CACHE.get(key)
        if code is None:
            if unit.code_seed_path is None:
                seed = np.random.default_rng(unit.base_seed)
            else:
                seed = np.random.default_rng(
                    np.random.SeedSequence([unit.base_seed, *unit.code_seed_path])
                )
            code = unit.config.build_code(seed=seed)
            # The key is the code's *semantic* identity (the build is a
            # pure function of config + seed), so a rebuilt instance may
            # reuse prototypes compiled for an evicted twin.
            set_prototype_memo_token(code, key)
            if len(_CODE_CACHE) >= _CODE_CACHE_MAX:
                _CODE_CACHE.pop(next(iter(_CODE_CACHE)))
            _CODE_CACHE[key] = code
    return code


def warm_unit(unit: WorkUnit) -> None:
    """Pre-build the shared state ``unit`` will need: code + prototype.

    Called by pool initializers so a fresh worker pays the per-process
    code build and prototype compile during pool start-up (in parallel
    across workers) instead of serialised inside its first chunk.
    Best-effort by design: units whose execution would not touch the
    shared caches (fresh code per run, incremental path) warm nothing,
    and kernel resolution degrades exactly as it would at execution time.
    """
    if unit.fresh_code_per_run or not unit.fastpath:
        return
    from repro.fastpath.prototypes import compile_prototype
    from repro.kernels.registry import get_backend_for_run

    compile_prototype(_shared_code(unit), get_backend_for_run(unit.kernel))


def warm_units(units: Sequence[WorkUnit], limit: int = 8) -> List[WorkUnit]:
    """One representative unit per distinct shared-code identity.

    The pre-warm set a pool initializer should compile, capped so the
    initializer stays cheap for sweeps with very many configurations.
    """
    seen = set()
    representatives: List[WorkUnit] = []
    for unit in units:
        if unit.fresh_code_per_run or not unit.fastpath:
            continue
        key = (_shared_code_key(unit), unit.kernel)
        if key in seen:
            continue
        seen.add(key)
        representatives.append(unit)
        if len(representatives) >= limit:
            break
    return representatives


def _unit_streams(unit: WorkUnit) -> UnitStreams:
    """Resolve the unit's random streams through its seed scheme."""
    return get_scheme(unit.seed_scheme).unit_streams(
        unit.base_seed, unit.seed_path, unit.run_start, unit.run_stop
    )


def _run_rng(unit: WorkUnit, run: int) -> np.random.Generator:
    return _unit_streams(unit).run_rng(run)


def _unit_batch(unit: WorkUnit) -> RunResultBatch:
    """Columnar outcomes of one unit, in run order.

    The whole run range flows through the :mod:`repro.pipeline` batched
    run-synthesis pipeline as arrays (fastpath) or is decoded by the
    incremental reference decoder (``fastpath=False``); either way the
    cell metrics are computed from columns, never from per-run objects.

    The kernel backend is resolved here, in the *executing* process,
    through the degrading run-time resolver: a backend that cannot be
    constructed on this host (missing compiler, broken numba install)
    falls back down the ``auto`` chain with a logged warning instead of
    killing the unit -- all backends are bit-identical, so degradation
    never changes results.  The unit's ``kernel_threads`` request scopes
    the whole execution (synthesis *and* decode), so every compiled
    kernel call under it resolves the same thread count.
    """
    with thread_count_context(unit.kernel_threads):
        return _unit_batch_impl(unit)


def _unit_batch_impl(unit: WorkUnit) -> RunResultBatch:
    from repro.fastpath import simulate_batch_columnar
    from repro.kernels.registry import get_backend_for_run

    kernel = get_backend_for_run(unit.kernel)
    tx_model = unit.config.build_tx_model()
    channel = GilbertChannel(unit.p, unit.q)
    streams = _unit_streams(unit)
    runs = range(unit.run_start, unit.run_stop)

    if not unit.fresh_code_per_run:
        code = _shared_code(unit)
        if unit.fastpath:
            # The whole run range is one vectorised batch.  Under the
            # per-run scheme each run keeps its own generator, so the
            # batch is bit-identical to the incremental loop; under the
            # unit scheme the streams are defined by the block draws.
            return simulate_batch_columnar(
                code,
                tx_model,
                channel,
                streams,
                nsent=unit.config.nsent,
                kernel=kernel,
            )
        if streams.unit_rng is not None:
            # Unit-batching scheme: the front end is scheme-defined block
            # draws, so synthesise it exactly as the fast path would and
            # only swap the decoder for the incremental reference.
            from repro.fastpath import decode_batch_incremental
            from repro.pipeline.synthesis import synthesize_runs_unit

            synthesis = synthesize_runs_unit(
                code.layout,
                tx_model,
                channel,
                streams.unit_rng,
                streams.runs,
                nsent=unit.config.nsent,
                kernel=kernel,
            )
            return decode_batch_incremental(code, synthesis)
        simulator = Simulator(code, tx_model, channel)
        return RunResultBatch.from_results(
            [
                simulator.run(streams.run_rng(run), nsent=unit.config.nsent)
                for run in runs
            ]
        )

    # Fresh code per run: the code must be drawn from the run generator
    # *before* the schedule, so each run is its own batch of one (the
    # unit scheme gives every run its own counter window here).
    if unit.fastpath:
        batches: List[RunResultBatch] = []
        for run in runs:
            run_rng = streams.run_rng(run)
            code = unit.config.build_code(seed=run_rng)
            batches.append(
                simulate_batch_columnar(
                    code,
                    tx_model,
                    channel,
                    [run_rng],
                    nsent=unit.config.nsent,
                    kernel=kernel,
                )
            )
        return RunResultBatch.concatenate(batches)
    results: List[RunResult] = []
    for run in runs:
        run_rng = streams.run_rng(run)
        code = unit.config.build_code(seed=run_rng)
        results.append(
            Simulator(code, tx_model, channel).run(run_rng, nsent=unit.config.nsent)
        )
    return RunResultBatch.from_results(results)


def execute_unit(unit: WorkUnit) -> UnitResult:
    """Run every transmission of one unit and collect the raw outcomes.

    The per-run ratio columns come straight off the unit's
    :class:`~repro.core.metrics.RunResultBatch` -- two vectorised
    divisions per unit instead of one property pair per run.
    """
    batch = _unit_batch(unit)
    return UnitResult(
        seed_path=unit.seed_path,
        run_start=unit.run_start,
        run_stop=unit.run_stop,
        inefficiency_ratios=tuple(batch.inefficiency_ratios().tolist()),
        received_ratios=tuple(batch.received_ratios().tolist()),
        failures=batch.failures,
    )


def execute_units(units: Sequence[WorkUnit]) -> List[UnitResult]:
    """Execute a chunk of units (the process-pool dispatch granularity)."""
    return [execute_unit(unit) for unit in units]


def merge_cell(results: Iterable[UnitResult]) -> Tuple[float, float, int]:
    """Aggregate one cell's unit results into the paper's per-cell metrics.

    Returns ``(mean_inefficiency, mean_received_ratio, failures)``.  The
    per-run lists are concatenated in run order before averaging, so the
    outcome is bit-identical to the serial loop regardless of how the cell
    was sharded; a cell where any run failed has NaN mean inefficiency
    (the paper's plotting rule).
    """
    ordered = sorted(results, key=lambda result: result.run_start)
    inefficiency: List[float] = []
    received: List[float] = []
    failures = 0
    for result in ordered:
        inefficiency.extend(result.inefficiency_ratios)
        received.extend(result.received_ratios)
        failures += result.failures
    mean_inefficiency = (
        float(np.mean(inefficiency)) if failures == 0 and inefficiency else float("nan")
    )
    mean_received = float(np.mean(received)) if received else float("nan")
    return mean_inefficiency, mean_received, failures


__all__ = [
    "SeedPath",
    "WorkUnit",
    "UnitResult",
    "plan_units",
    "execute_unit",
    "execute_units",
    "warm_unit",
    "warm_units",
    "merge_cell",
]
