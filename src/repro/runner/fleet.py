"""Cooperative fleet execution over a shared lease-capable result store.

A *fleet* is N independent runner processes -- on one box or a shared
filesystem -- pointed at the same store, each running the same sweep:

.. code-block:: bash

    python -m repro run fig09 --store sqlite:fig09.db --fleet &
    python -m repro run fig09 --store sqlite:fig09.db --fleet &

There is **no coordinator**.  Each worker plans the identical unit list
(units are pure functions of the sweep description), then loops:

1. atomically :meth:`~repro.store.ResultStore.claim` a batch of
   still-open units under a TTL lease -- the store guarantees exactly one
   claimer wins each unit, which is what makes duplicated execution
   impossible among live workers,
2. absorb results other workers finished (a claim that fails names a
   unit that is either done -- read it -- or leased by a live peer),
3. execute the claimed units on the local executor (serial or process
   pool) while a daemon thread heartbeats the held leases so long units
   survive their TTL,
4. upsert each result and release its lease -- the write happens *before*
   the release, so a unit is never both unleased and unfinished.

Crash tolerance falls out of the lease TTL: a worker that dies mid-unit
stops heartbeating, its leases expire, and any other worker's next claim
takes them over and re-executes.  Results are deterministic per seed
scheme and writes are idempotent upserts, so takeover (or even a race
where a zombie finishes late) converges on identical bytes.  Every worker
keeps looping until *every* unit of its plan has a result in the store,
so each member of the fleet returns the complete, bit-identical sweep.
"""

from __future__ import annotations

import logging
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.resilience.errors import PoisonUnitError, StoreUnavailableError
from repro.resilience.policy import FailurePolicy, UnitFailure, resolve_policy
from repro.resilience.report import read_quarantine, write_quarantine
from repro.resilience.retry import RetryingStore
from repro.runner.executors import Executor, OnFailure, OnResult, SerialExecutor
from repro.runner.units import UnitResult, WorkUnit
from repro.store.base import ResultStore
from repro.store.codec import decode_payload, unit_key

logger = logging.getLogger("repro.fleet")

#: Default lease TTL: long enough that one chunk of tiny-scale units plus
#: scheduling jitter never outlives it between heartbeats, short enough
#: that a crashed worker's units are reclaimed promptly.
DEFAULT_LEASE_TTL = 30.0


def default_worker_id() -> str:
    """Fleet-unique worker identity: ``<hostname>:<pid>``."""
    return f"{socket.gethostname()}:{os.getpid()}"


@dataclass
class FleetStats:
    """What one fleet worker did during a run."""

    executed: int = 0
    absorbed: int = 0
    reclaim_waits: int = 0
    failed: int = 0
    executed_keys: List[str] = field(default_factory=list)
    failed_keys: List[str] = field(default_factory=list)


#: Consecutive heartbeat failures tolerated before the thread gives up.
#: Anything transient (a locked sqlite file, an NFS hiccup) clears well
#: inside this window; past it the leases are expiring anyway, so the
#: worker must stop executing rather than race its own takeover.
HEARTBEAT_FAILURE_LIMIT = 5


class _Heartbeat:
    """Daemon thread refreshing the leases a worker currently holds.

    Transient store errors (:class:`StoreUnavailableError`) are logged and
    retried on the next tick; :data:`HEARTBEAT_FAILURE_LIMIT` consecutive
    misses -- or any unexpected exception -- stop the thread and surface
    through :attr:`failure`, which the fleet loop checks every iteration.
    A heartbeat that dies silently is worse than one that crashes the run:
    the worker would keep executing units whose leases have expired and
    been taken over, reintroducing the duplicated execution the lease
    protocol exists to prevent.
    """

    def __init__(self, store: ResultStore, worker: str, ttl: float, interval: float):
        self._store = store
        self._worker = worker
        self._ttl = ttl
        self._interval = interval
        self._held: Set[str] = set()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._failure: Optional[BaseException] = None
        self._misses = 0

    def hold(self, keys: Sequence[str]) -> None:
        with self._lock:
            self._held.update(keys)

    def drop(self, key: str) -> None:
        with self._lock:
            self._held.discard(key)

    @property
    def failure(self) -> Optional[BaseException]:
        with self._lock:
            return self._failure

    def _beat_once(self) -> bool:
        """Refresh the held leases; True when a heartbeat actually ran."""
        with self._lock:
            keys = sorted(self._held)
        if not keys:
            return False
        self._store.heartbeat(keys, self._worker, self._ttl)
        return True

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                beat = self._beat_once()
            except StoreUnavailableError as error:
                self._misses += 1
                logger.warning(
                    "fleet heartbeat for %s missed a beat (%d/%d): %s",
                    self._worker,
                    self._misses,
                    HEARTBEAT_FAILURE_LIMIT,
                    error,
                )
                if self._misses >= HEARTBEAT_FAILURE_LIMIT:
                    with self._lock:
                        self._failure = StoreUnavailableError(
                            f"fleet heartbeat for {self._worker} gave up after "
                            f"{self._misses} consecutive store failures: {error}"
                        )
                    return
            except BaseException as error:  # pragma: no cover - defensive
                with self._lock:
                    self._failure = error
                return
            else:
                # Only an actual successful heartbeat is evidence the
                # store recovered; an idle (no leases held) tick is not.
                if beat:
                    self._misses = 0

    def __enter__(self) -> "_Heartbeat":
        self._thread = threading.Thread(
            target=self._run, name="fleet-heartbeat", daemon=True
        )
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()


class FleetRunner:
    """Executor-shaped front end of the work-unit lease protocol.

    Implements the :class:`~repro.runner.executors.Executor` protocol
    (``run(units, on_result)``), so the engine drops it in where a plain
    executor would go; the difference is that units are only executed
    under a store lease, and units another fleet member finished are
    loaded instead of executed.

    Parameters
    ----------
    store:
        The shared, lease-capable result store.
    executor:
        Local executor for claimed units (default: serial).  With a
        process or thread pool, claimed batches fan out over local
        workers while the lease heartbeat runs in the coordinating
        process.  Units carry their ``kernel_threads`` spec, so a fleet
        member executes claimed units with OpenMP row-parallel compiled
        kernels exactly like a standalone runner would (``auto`` divides
        physical cores by the local executor's worker count).
    worker_id:
        Fleet-unique identity (default ``<hostname>:<pid>``).
    lease_ttl:
        Seconds a claimed unit stays leased without a heartbeat.
    heartbeat_interval:
        Seconds between lease refreshes (default: a third of the TTL).
    poll_interval:
        Seconds to sleep when every open unit is leased elsewhere.
    claim_batch:
        Units to claim per loop iteration (default: enough to keep the
        local executor's workers busy).
    policy:
        Optional :class:`FailurePolicy`.  When set, the store is wrapped
        in a :class:`RetryingStore` (claims/heartbeats/writes survive
        transient outages) and failed units follow the policy's
        ``on_error`` action: ``quarantine`` writes a store-backed
        quarantine record *before* releasing the lease, so peers see the
        verdict and never re-execute the poison unit.
    """

    def __init__(
        self,
        store: ResultStore,
        *,
        executor: Optional[Executor] = None,
        worker_id: Optional[str] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        heartbeat_interval: Optional[float] = None,
        poll_interval: Optional[float] = None,
        claim_batch: Optional[int] = None,
        policy: Optional[FailurePolicy] = None,
    ):
        if not store.supports_leases:
            raise store._lease_unsupported()
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl!r}")
        self.policy = resolve_policy(policy)
        if self.policy is not None:
            store = RetryingStore.wrap(store, self.policy)
        self.store = store
        self.executor: Executor = (
            executor if executor is not None else SerialExecutor(policy=self.policy)
        )
        self.worker_id = worker_id if worker_id is not None else default_worker_id()
        self.lease_ttl = float(lease_ttl)
        self.heartbeat_interval = (
            float(heartbeat_interval)
            if heartbeat_interval is not None
            else self.lease_ttl / 3.0
        )
        self.poll_interval = (
            float(poll_interval)
            if poll_interval is not None
            else min(0.2, self.lease_ttl / 10.0)
        )
        if claim_batch is None:
            # Keep a process pool saturated; the serial executor claims
            # in small batches so late joiners still get a share.
            claim_batch = 2 * int(getattr(self.executor, "workers", 1))
        self.claim_batch = max(1, int(claim_batch))
        self.stats = FleetStats()

    def run(
        self,
        units: Sequence[WorkUnit],
        on_result: OnResult,
        on_failure: Optional[OnFailure] = None,
    ) -> None:
        pending: Dict[str, WorkUnit] = {unit_key(unit): unit for unit in units}
        key_by_identity: Dict[Tuple[tuple, int], str] = {
            (unit.seed_path, unit.run_start): key for key, unit in pending.items()
        }
        quarantining = (
            self.policy is not None
            and self.policy.on_error == "quarantine"
            and on_failure is not None
        )

        def check_heartbeat(heartbeat: "_Heartbeat") -> None:
            failure = heartbeat.failure
            if failure is not None:
                raise failure

        def absorb_quarantined(key: str) -> bool:
            """Adopt a peer's quarantine verdict instead of re-executing."""
            if not quarantining:
                return False
            entry = read_quarantine(self.store, key)
            if entry is None:
                return False
            del pending[key]
            self.stats.failed += 1
            self.stats.failed_keys.append(key)
            on_failure(entry.as_failure())
            return True

        with _Heartbeat(
            self.store, self.worker_id, self.lease_ttl, self.heartbeat_interval
        ) as heartbeat:
            while pending:
                check_heartbeat(heartbeat)
                # 1. Claim a batch.  The store arbitrates: every open
                # unit is won by exactly one live worker.  A failed claim
                # means the unit is finished or leased elsewhere -- only
                # those few keys need a read, which keeps each round at
                # O(batch) store operations instead of a full rescan of
                # everything still pending.
                claimed: List[WorkUnit] = []
                contested: List[str] = []
                for key, unit in pending.items():
                    if len(claimed) >= self.claim_batch:
                        break
                    if self.store.claim(key, self.worker_id, self.lease_ttl):
                        claimed.append(unit)
                    else:
                        contested.append(key)

                # 2. Absorb contested units another fleet member already
                # completed.  Raw record reads: polling must not distort
                # the store's hit/miss statistics.
                for key in contested:
                    payload = self.store.get_record(key)
                    result = None if payload is None else decode_payload(payload)
                    if result is not None:
                        del pending[key]
                        self.stats.absorbed += 1
                        on_result(result)

                # A claim can also win a unit a peer already condemned
                # (quarantine releases the lease after writing the
                # verdict); adopting the record instead of re-executing
                # is what keeps a poisoned unit from burning every
                # worker's retry budget in turn.
                survivors: List[WorkUnit] = []
                for unit in claimed:
                    key = unit_key(unit)
                    if absorb_quarantined(key):
                        self.store.release(key, self.worker_id)
                    else:
                        survivors.append(unit)
                claimed = survivors
                if not pending:
                    break

                if not claimed:
                    # Everything open is leased elsewhere: wait for the
                    # owners to finish (absorbed next round) or for their
                    # leases to expire (claimed next round).
                    self.stats.reclaim_waits += 1
                    time.sleep(self.poll_interval)
                    continue

                # 3. Execute the claimed batch locally, heartbeating the
                # held leases; 4. persist before releasing, so a unit is
                # never both unleased and unfinished.
                heartbeat.hold([unit_key(unit) for unit in claimed])

                def on_executed(result: UnitResult) -> None:
                    check_heartbeat(heartbeat)
                    key = key_by_identity[(result.seed_path, result.run_start)]
                    unit = pending.pop(key)
                    self.store.put(unit, result)
                    self.store.release(key, self.worker_id)
                    heartbeat.drop(key)
                    self.stats.executed += 1
                    self.stats.executed_keys.append(key)
                    on_result(result)

                def on_failed(failure: UnitFailure) -> None:
                    # Verdict before release: a unit is never both
                    # unleased and unaccounted-for.  Peers that claim the
                    # released lease find the record and absorb it.
                    key = failure.unit_key
                    pending.pop(key, None)
                    if self.policy is not None and self.policy.on_error == "quarantine":
                        write_quarantine(self.store, failure, worker=self.worker_id)
                    self.store.release(key, self.worker_id)
                    heartbeat.drop(key)
                    self.stats.failed += 1
                    self.stats.failed_keys.append(key)
                    if on_failure is not None:
                        on_failure(failure)

                try:
                    if self.policy is None:
                        # Historical two-argument call, preserved so
                        # executor stubs written against the old protocol
                        # keep working when no policy is in play.
                        self.executor.run(claimed, on_executed)
                    else:
                        self.executor.run(claimed, on_executed, on_failed)
                except PoisonUnitError:
                    # on_error="raise": free the batch's outstanding
                    # leases so a restarted run (or a peer) is not stuck
                    # waiting out the TTL on units this worker will
                    # never finish.
                    for unit in claimed:
                        key = unit_key(unit)
                        if key in pending:
                            self.store.release(key, self.worker_id)
                            heartbeat.drop(key)
                    raise


__all__ = [
    "DEFAULT_LEASE_TTL",
    "HEARTBEAT_FAILURE_LIMIT",
    "FleetRunner",
    "FleetStats",
    "default_worker_id",
]
