"""Parallel experiment-execution engine.

The runner turns the library's sweeps into batches of independent,
picklable work units, executes them serially or on a process pool, caches
finished units on disk and reassembles the historical result containers --
bit-identically, whatever the execution strategy:

* :mod:`repro.runner.units` -- the work-unit model and seed derivation.
* :mod:`repro.runner.executors` -- serial and process-pool executors.
* :mod:`repro.runner.cache` -- the resumable on-disk result cache.
* :mod:`repro.runner.engine` -- planning, caching, execution, aggregation.
* :mod:`repro.runner.cli` -- the ``python -m repro`` command-line front end.

The public sweep API (``repro.core.sweep``), the experiment presets and
the benchmark harness are thin wrappers over :func:`run_grid` /
:func:`run_series`.
"""

from repro.runner.cache import DEFAULT_CACHE_DIR, CacheStats, ResultCache, unit_key
from repro.runner.engine import run_grid, run_series
from repro.runner.executors import ProcessExecutor, SerialExecutor, resolve_executor
from repro.runner.units import UnitResult, WorkUnit, execute_unit, plan_units

__all__ = [
    "DEFAULT_CACHE_DIR",
    "CacheStats",
    "ResultCache",
    "unit_key",
    "run_grid",
    "run_series",
    "ProcessExecutor",
    "SerialExecutor",
    "resolve_executor",
    "UnitResult",
    "WorkUnit",
    "execute_unit",
    "plan_units",
]
