"""Parallel experiment-execution engine.

The runner turns the library's sweeps into batches of independent,
picklable work units, executes them serially or on a process pool, caches
finished units on disk and reassembles the historical result containers --
bit-identically, whatever the execution strategy:

* :mod:`repro.runner.units` -- the work-unit model and seed derivation.
* :mod:`repro.runner.executors` -- serial and process-pool executors.
* :mod:`repro.runner.cache` -- compatibility adapter over the ``json-dir``
  backend of the pluggable result-store subsystem (:mod:`repro.store`).
* :mod:`repro.runner.fleet` -- cooperative fleet execution: work-unit
  leases over a shared store, so N coordinator-free processes split one
  sweep with no duplicated work and crash tolerance.
* :mod:`repro.runner.engine` -- planning, caching, execution, aggregation.
* :mod:`repro.runner.cli` -- the ``python -m repro`` command-line front end.

The public sweep API (``repro.core.sweep``), the experiment presets and
the benchmark harness are thin wrappers over :func:`run_grid` /
:func:`run_series`.
"""

from repro.runner.cache import DEFAULT_CACHE_DIR, CacheStats, ResultCache, unit_key
from repro.runner.engine import run_grid, run_series
from repro.runner.executors import ProcessExecutor, SerialExecutor, resolve_executor
from repro.runner.fleet import (
    DEFAULT_LEASE_TTL,
    FleetRunner,
    FleetStats,
    default_worker_id,
)
from repro.runner.units import UnitResult, WorkUnit, execute_unit, plan_units

__all__ = [
    "DEFAULT_CACHE_DIR",
    "DEFAULT_LEASE_TTL",
    "CacheStats",
    "FleetRunner",
    "FleetStats",
    "ResultCache",
    "default_worker_id",
    "unit_key",
    "run_grid",
    "run_series",
    "ProcessExecutor",
    "SerialExecutor",
    "resolve_executor",
    "UnitResult",
    "WorkUnit",
    "execute_unit",
    "plan_units",
]
