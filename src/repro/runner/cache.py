"""On-disk result cache of the experiment-execution engine.

Every executed :class:`~repro.runner.units.WorkUnit` is stored as one small
JSON file under a cache root (``.repro_cache/`` by default), keyed by a
SHA-256 hash of the canonical description of the unit: the code-defining
fields of its :class:`~repro.core.config.SimulationConfig`, the channel
point, the run range, the seed derivation and a format version.  Because
the per-run seeds are pure functions of that description, a cache hit is
guaranteed to contain exactly what re-simulating would have produced, which
makes interrupted sweeps resumable: re-running an experiment skips every
cell that already completed and simulates only the missing ones.

JSON serialises floats via ``repr`` (shortest round-trip form), so ratios
reloaded from the cache are bit-identical to freshly computed ones.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.config import SimulationConfig
from repro.runner.units import UnitResult, WorkUnit
from repro.seeds import get_scheme

#: Default cache root, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Key-derivation version: bump when the canonical unit description (the
#: hashed fields) changes shape.  Version 2 added the seed-scheme token.
CACHE_FORMAT_VERSION = 2

#: On-disk entry schema: bump when the stored payload changes shape.
#: Schema 2 added the ``schema`` and ``seed_scheme`` fields; entries with
#: any other schema (including pre-schema ones) are treated as misses, not
#: errors, so stale caches degrade to re-simulation.
RESULT_SCHEMA = 2


def config_token(config: SimulationConfig) -> str:
    """Canonical JSON token of the result-defining fields of a config.

    The display ``label`` is excluded: relabelling a configuration must not
    invalidate its cached results.
    """
    payload = {
        "code": config.code,
        "tx_model": config.tx_model,
        "k": config.k,
        "expansion_ratio": config.expansion_ratio,
        "nsent": config.nsent,
        "code_options": config.code_options,
        "tx_options": config.tx_options,
    }
    return json.dumps(payload, sort_keys=True, default=repr)


def unit_key(unit: WorkUnit) -> str:
    """Stable SHA-256 cache key of one work unit.

    The seed-scheme *token* (name + stream-format version) is part of the
    key: schemes draw different streams, so results of one scheme must
    never satisfy a lookup under another -- unlike ``fastpath``/``kernel``,
    which are bit-identical wall-clock knobs and stay excluded.
    """
    payload = {
        "version": CACHE_FORMAT_VERSION,
        "config": config_token(unit.config),
        "p": unit.p,
        "q": unit.q,
        "seed_path": list(unit.seed_path),
        "run_start": unit.run_start,
        "run_stop": unit.run_stop,
        "base_seed": unit.base_seed,
        "fresh_code_per_run": unit.fresh_code_per_run,
        "code_seed_path": None
        if unit.code_seed_path is None
        else list(unit.code_seed_path),
        "seed_scheme": get_scheme(unit.seed_scheme).token(),
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return digest


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0


class ResultCache:
    """File-per-unit result cache under a root directory.

    Entries are sharded into 256 subdirectories by the first two hex digits
    of the key to keep directory listings small at paper scale (a 14 x 14
    grid times six configurations is ~1200 cells per figure).
    Writes go through a temporary file plus ``os.replace`` so a crashed or
    killed run never leaves a truncated entry behind.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, unit: WorkUnit) -> Optional[UnitResult]:
        """Return the cached result of ``unit``, or ``None`` on a miss."""
        path = self._path(unit_key(unit))
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if int(payload.get("schema", 1)) != RESULT_SCHEMA:
                # An entry written by a different cache generation: a
                # miss, never an error -- re-simulating beats aborting.
                self.stats.misses += 1
                return None
            result = UnitResult(
                seed_path=tuple(payload["seed_path"]),
                run_start=int(payload["run_start"]),
                run_stop=int(payload["run_stop"]),
                inefficiency_ratios=tuple(payload["inefficiency_ratios"]),
                received_ratios=tuple(payload["received_ratios"]),
                failures=int(payload["failures"]),
            )
        except (OSError, ValueError, KeyError, TypeError):
            # A truncated, hand-edited or otherwise malformed entry is a
            # miss: re-simulating one cell beats aborting a resumable sweep.
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, unit: WorkUnit, result: UnitResult) -> None:
        """Persist the result of one executed unit."""
        path = self._path(unit_key(unit))
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": RESULT_SCHEMA,
            "seed_scheme": unit.seed_scheme,
            "seed_path": list(result.seed_path),
            "run_start": result.run_start,
            "run_stop": result.run_stop,
            "inefficiency_ratios": list(result.inefficiency_ratios),
            "received_ratios": list(result.received_ratios),
            "failures": result.failures,
        }
        handle, tmp_path = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(payload, stream)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.stats.writes += 1

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    def size_bytes(self) -> int:
        """Total on-disk size of the cache entries."""
        if not self.root.is_dir():
            return 0
        return sum(path.stat().st_size for path in self.root.glob("??/*.json"))

    #: ``put`` writes ``schema`` and ``seed_scheme`` first, so the scheme
    #: always sits inside the first few dozen bytes of an entry.
    _SCHEME_FIELD = re.compile(r'"seed_scheme"\s*:\s*"([^"]*)"')

    def scheme_counts(self) -> Dict[str, int]:
        """Entry counts per seed scheme (``cache info``'s breakdown).

        Reads only a short prefix of each entry (the scheme is one of the
        first fields written), so the breakdown stays cheap even for
        paper-scale caches whose per-run ratio lists dominate the bytes.
        Entries written before the scheme field existed (or unreadable
        ones) are reported under ``"pre-seeds"`` -- they are misses on
        lookup but still occupy disk, so the breakdown accounts for them.
        """
        counts: Counter = Counter()
        if not self.root.is_dir():
            return {}
        for path in self.root.glob("??/*.json"):
            try:
                with open(path, encoding="utf-8", errors="replace") as stream:
                    head = stream.read(512)
            except OSError:
                head = ""
            match = self._SCHEME_FIELD.search(head)
            counts[match.group(1) if match else "pre-seeds"] += 1
        return dict(sorted(counts.items()))

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("??/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for shard in self.root.glob("??"):
            try:
                shard.rmdir()
            except OSError:
                pass
        return removed


__all__ = [
    "DEFAULT_CACHE_DIR",
    "CACHE_FORMAT_VERSION",
    "RESULT_SCHEMA",
    "CacheStats",
    "ResultCache",
    "config_token",
    "unit_key",
]
