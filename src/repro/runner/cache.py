"""On-disk result cache of the experiment-execution engine.

Every executed :class:`~repro.runner.units.WorkUnit` is stored as one small
JSON file under a cache root (``.repro_cache/`` by default), keyed by a
SHA-256 hash of the canonical description of the unit: the code-defining
fields of its :class:`~repro.core.config.SimulationConfig`, the channel
point, the run range, the seed derivation and a format version.  Because
the per-run seeds are pure functions of that description, a cache hit is
guaranteed to contain exactly what re-simulating would have produced, which
makes interrupted sweeps resumable: re-running an experiment skips every
cell that already completed and simulates only the missing ones.

JSON serialises floats via ``repr`` (shortest round-trip form), so ratios
reloaded from the cache are bit-identical to freshly computed ones.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.core.config import SimulationConfig
from repro.runner.units import UnitResult, WorkUnit

#: Default cache root, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Bump when the unit result format or the seed scheme changes.
CACHE_FORMAT_VERSION = 1


def config_token(config: SimulationConfig) -> str:
    """Canonical JSON token of the result-defining fields of a config.

    The display ``label`` is excluded: relabelling a configuration must not
    invalidate its cached results.
    """
    payload = {
        "code": config.code,
        "tx_model": config.tx_model,
        "k": config.k,
        "expansion_ratio": config.expansion_ratio,
        "nsent": config.nsent,
        "code_options": config.code_options,
        "tx_options": config.tx_options,
    }
    return json.dumps(payload, sort_keys=True, default=repr)


def unit_key(unit: WorkUnit) -> str:
    """Stable SHA-256 cache key of one work unit."""
    payload = {
        "version": CACHE_FORMAT_VERSION,
        "config": config_token(unit.config),
        "p": unit.p,
        "q": unit.q,
        "seed_path": list(unit.seed_path),
        "run_start": unit.run_start,
        "run_stop": unit.run_stop,
        "base_seed": unit.base_seed,
        "fresh_code_per_run": unit.fresh_code_per_run,
        "code_seed_path": None
        if unit.code_seed_path is None
        else list(unit.code_seed_path),
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return digest


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0


class ResultCache:
    """File-per-unit result cache under a root directory.

    Entries are sharded into 256 subdirectories by the first two hex digits
    of the key to keep directory listings small at paper scale (a 14 x 14
    grid times six configurations is ~1200 cells per figure).
    Writes go through a temporary file plus ``os.replace`` so a crashed or
    killed run never leaves a truncated entry behind.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, unit: WorkUnit) -> Optional[UnitResult]:
        """Return the cached result of ``unit``, or ``None`` on a miss."""
        path = self._path(unit_key(unit))
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            result = UnitResult(
                seed_path=tuple(payload["seed_path"]),
                run_start=int(payload["run_start"]),
                run_stop=int(payload["run_stop"]),
                inefficiency_ratios=tuple(payload["inefficiency_ratios"]),
                received_ratios=tuple(payload["received_ratios"]),
                failures=int(payload["failures"]),
            )
        except (OSError, ValueError, KeyError, TypeError):
            # A truncated, hand-edited or otherwise malformed entry is a
            # miss: re-simulating one cell beats aborting a resumable sweep.
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, unit: WorkUnit, result: UnitResult) -> None:
        """Persist the result of one executed unit."""
        path = self._path(unit_key(unit))
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "seed_path": list(result.seed_path),
            "run_start": result.run_start,
            "run_stop": result.run_stop,
            "inefficiency_ratios": list(result.inefficiency_ratios),
            "received_ratios": list(result.received_ratios),
            "failures": result.failures,
        }
        handle, tmp_path = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(payload, stream)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.stats.writes += 1

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    def size_bytes(self) -> int:
        """Total on-disk size of the cache entries."""
        if not self.root.is_dir():
            return 0
        return sum(path.stat().st_size for path in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("??/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for shard in self.root.glob("??"):
            try:
                shard.rmdir()
            except OSError:
                pass
        return removed


__all__ = [
    "DEFAULT_CACHE_DIR",
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "ResultCache",
    "config_token",
    "unit_key",
]
