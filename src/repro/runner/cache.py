"""Backwards-compatible adapter over the ``json-dir`` result store.

The on-disk result cache grew into a pluggable subsystem
(:mod:`repro.store`): canonical keys and payloads live in
:mod:`repro.store.codec`, the historical ``.repro_cache/`` file layout is
the ``json-dir`` backend (:mod:`repro.store.json_dir`), and sqlite /
in-memory backends sit behind the same :class:`~repro.store.ResultStore`
contract.  This module keeps the original import surface --
``ResultCache``, ``unit_key``, ``config_token``, the format-version
constants -- pointing at the store subsystem, so every pre-store call
site (``cache=ResultCache(dir)``, key derivation in tests, the CLI)
keeps working unchanged, on unchanged bytes.
"""

from __future__ import annotations

from repro.store.base import StoreStats as CacheStats
from repro.store.codec import (
    CACHE_FORMAT_VERSION,
    RESULT_SCHEMA,
    config_token,
    unit_key,
)
from repro.store.json_dir import DEFAULT_CACHE_DIR, JsonDirStore


class ResultCache(JsonDirStore):
    """File-per-unit result cache: the ``json-dir`` store under its
    historical name.  See :class:`repro.store.json_dir.JsonDirStore`."""


__all__ = [
    "DEFAULT_CACHE_DIR",
    "CACHE_FORMAT_VERSION",
    "RESULT_SCHEMA",
    "CacheStats",
    "ResultCache",
    "config_token",
    "unit_key",
]
