"""Executors: strategies for running a batch of work units.

Three strategies are provided behind one tiny interface
(``run(units, on_result)``):

* :class:`SerialExecutor` runs units in order in the calling process --
  zero overhead, and the unit order (hence the progress-callback order)
  matches the historical serial sweep loops exactly.
* :class:`ProcessExecutor` fans units out over a
  ``concurrent.futures.ProcessPoolExecutor`` in chunks.  Because every
  unit derives its own seeds, completion order does not matter: the engine
  reassembles cells by their ``seed_path``, so parallel results are
  bit-identical to serial ones.  Each worker process pre-warms the
  shared-code + compiled-prototype caches in its pool initializer, so the
  per-process compile cost is paid at pool start-up, in parallel.
* :class:`ThreadExecutor` fans units out over an in-process thread pool:
  no pickling, and every worker shares the per-backend compiled-prototype
  cache, the shared-code cache and NumPy buffers.  The compiled kernels
  drop the GIL for the duration of their C calls, so thread workers
  compose with the kernels' own OpenMP row-parallelism; both executors
  declare their worker count to :mod:`repro.kernels.threads` so ``auto``
  kernel-thread counts obey the oversubscription rule (executor workers x
  kernel threads <= physical cores).

``on_result`` is always invoked in the calling process and thread (for
the pools: as futures complete), which is what bridges worker progress
back to the user's progress callback and lets the engine write the
result store from a single thread.

Both executors optionally carry a
:class:`~repro.resilience.policy.FailurePolicy`.  Without one (the
default) a unit that raises kills the run exactly as it always did.
With one, each unit is retried with deterministic backoff (and an
optional per-attempt timeout), and a unit that exhausts its attempts is
*dispatched*: ``on_error="raise"`` raises
:class:`~repro.resilience.errors.PoisonUnitError`, the skip/quarantine
actions hand a structured :class:`~repro.resilience.policy.UnitFailure`
to the ``on_failure`` callback.  The retry loop runs inside the worker
process (outcomes are picklable), so the policy costs nothing on the
fault-free path.

:class:`~repro.runner.fleet.FleetRunner` implements the same protocol on
top of a shared result store's lease API, wrapping one of these executors
for the units it wins -- an executor is "how this process runs units",
the fleet runner is "which units this process gets to run".  Executors
expose their local parallelism as a ``workers`` attribute so the fleet
runner can size its claim batches.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from functools import partial
from typing import Callable, Optional, Protocol, Sequence, Union

from repro.kernels.threads import set_worker_divisor, worker_divisor_context
from repro.resilience.errors import PoisonUnitError
from repro.resilience.policy import (
    FailurePolicy,
    UnitFailure,
    UnitOutcome,
    resolve_policy,
    run_unit_with_policy,
    run_units_with_policy,
)
from repro.runner.units import (
    UnitResult,
    WorkUnit,
    execute_unit,
    execute_units,
    warm_unit,
    warm_units,
)
from repro.utils.validation import validate_positive_int

OnResult = Callable[[UnitResult], None]
OnFailure = Callable[[UnitFailure], None]


class Executor(Protocol):
    """Anything that can execute work units and stream back results."""

    def run(
        self,
        units: Sequence[WorkUnit],
        on_result: OnResult,
        on_failure: Optional[OnFailure] = None,
    ) -> None: ...


def deliver_outcome(
    outcome: UnitOutcome,
    policy: FailurePolicy,
    on_result: OnResult,
    on_failure: Optional[OnFailure],
) -> None:
    """Dispatch one policy outcome: result, failure callback, or raise.

    ``on_error="raise"`` (and a missing ``on_failure`` sink, whatever the
    action) escalates to :class:`PoisonUnitError` carrying the structured
    failure -- the caller that configured skip/quarantine always provides
    the sink, so the error path cannot silently drop units.
    """
    if outcome.result is not None:
        on_result(outcome.result)
        return
    failure = outcome.failure
    assert failure is not None
    if policy.on_error == "raise" or on_failure is None:
        raise PoisonUnitError(failure.describe(), failure)
    on_failure(failure)


class SerialExecutor:
    """Execute units one after the other in the calling process."""

    #: Local parallelism (fleet claim-batch sizing).
    workers = 1

    def __init__(self, policy: Optional[FailurePolicy] = None):
        self.policy = resolve_policy(policy)

    def _execute_one(self, unit: WorkUnit) -> UnitResult:
        """Execution hook (fault-injecting test executors override it)."""
        return execute_unit(unit)

    def run(
        self,
        units: Sequence[WorkUnit],
        on_result: OnResult,
        on_failure: Optional[OnFailure] = None,
    ) -> None:
        if self.policy is None:
            for unit in units:
                on_result(self._execute_one(unit))
            return
        for unit in units:
            outcome = run_unit_with_policy(
                unit, self.policy, execute=self._execute_one
            )
            deliver_outcome(outcome, self.policy, on_result, on_failure)


def _pool_context() -> multiprocessing.context.BaseContext:
    """A fork-safe multiprocessing context for the process pool.

    Plain ``fork`` is off the table once compiled kernels may have run
    OpenMP regions in the parent: libgomp's thread-team state does not
    survive ``fork()``, and a forked worker entering its first parallel
    region deadlocks.  ``forkserver`` sidesteps this -- the server
    process is started by exec before any kernel runs, so its children
    are always OpenMP-clean -- with ``spawn`` as the portable fallback
    where ``forkserver`` is unavailable.
    """
    try:
        return multiprocessing.get_context("forkserver")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def _init_pool_worker(warm: Sequence[WorkUnit], divisor: int) -> None:
    """Process-pool worker initializer: thread divisor + cache pre-warm.

    Runs once per worker process, at pool start-up: declares the pool
    size to the kernel-thread resolver (so ``auto`` kernel threads obey
    the oversubscription rule) and pre-compiles the shared codes and
    decoder prototypes the planned units will need -- in parallel across
    workers, instead of serialised inside each worker's first chunk.
    Warming is strictly an optimisation, so any failure is swallowed:
    execution will rebuild (or degrade) exactly as it would have.
    """
    set_worker_divisor(divisor)
    for unit in warm:
        try:
            warm_unit(unit)
        except Exception:  # pragma: no cover - warming must never kill a pool
            pass


class ProcessExecutor:
    """Execute units on a process pool with chunked dispatch.

    Parameters
    ----------
    workers:
        Pool size; defaults to ``os.cpu_count()``.
    chunk_size:
        Units per task sent to a worker.  The default targets about four
        chunks per worker, which amortises pickling overhead while keeping
        the pool balanced when cells have very different costs (decoding
        failures are much cheaper than successes).
    max_pending:
        Cap on in-flight chunks, so planning a paper-scale sweep does not
        enqueue tens of thousands of futures at once.
    policy:
        Optional :class:`FailurePolicy`.  The retry loop runs inside each
        worker process; outcomes come back picklable and are dispatched
        (result / failure / raise) in the calling process.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        chunk_size: Optional[int] = None,
        max_pending: Optional[int] = None,
        policy: Optional[FailurePolicy] = None,
    ):
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = validate_positive_int(workers, "workers")
        if chunk_size is not None:
            chunk_size = validate_positive_int(chunk_size, "chunk_size")
        self.chunk_size = chunk_size
        self.max_pending = (
            validate_positive_int(max_pending, "max_pending")
            if max_pending is not None
            else 4 * self.workers
        )
        self.policy = resolve_policy(policy)

    def _chunks(self, units: Sequence[WorkUnit]) -> list[list[WorkUnit]]:
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            size = max(1, len(units) // (4 * self.workers))
        return [list(units[i : i + size]) for i in range(0, len(units), size)]

    def run(
        self,
        units: Sequence[WorkUnit],
        on_result: OnResult,
        on_failure: Optional[OnFailure] = None,
    ) -> None:
        if not units:
            return
        if self.policy is None:
            task = execute_units
        else:
            task = partial(run_units_with_policy, policy=self.policy)
        chunks = self._chunks(units)
        pool_size = min(self.workers, len(chunks))
        with ProcessPoolExecutor(
            max_workers=pool_size,
            mp_context=_pool_context(),
            initializer=_init_pool_worker,
            initargs=(warm_units(units), pool_size),
        ) as pool:
            pending = set()
            queued = iter(chunks)
            exhausted = False
            while pending or not exhausted:
                while not exhausted and len(pending) < self.max_pending:
                    chunk = next(queued, None)
                    if chunk is None:
                        exhausted = True
                        break
                    pending.add(pool.submit(task, chunk))
                if not pending:
                    break
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    if self.policy is None:
                        for result in future.result():
                            on_result(result)
                    else:
                        for outcome in future.result():
                            deliver_outcome(
                                outcome, self.policy, on_result, on_failure
                            )


class ThreadExecutor:
    """Execute units on an in-process thread pool: shared memory, no pickling.

    Worker threads share the per-backend compiled-prototype cache, the
    shared-code cache and every NumPy buffer directly, so the pickling
    and per-process compile costs of :class:`ProcessExecutor` vanish.
    Pure-Python stages still serialise on the GIL, but the compiled
    kernels (and NumPy's own released-GIL regions) run concurrently --
    ctypes drops the GIL for the duration of each C call -- which makes
    thread workers compose with the kernels' OpenMP row-parallelism.

    While dispatching, the executor declares its worker count to
    :mod:`repro.kernels.threads`, so ``kernel_threads="auto"`` resolves
    to ``physical_cores // workers`` per unit: the oversubscription rule
    (executor threads x kernel threads <= cores) holds by construction.

    Completion order does not matter -- every unit derives its own seeds
    and the engine reassembles cells by ``seed_path`` -- so results are
    bit-identical to the serial and process executors.  ``on_result`` /
    ``on_failure`` are invoked in the calling thread.

    Parameters
    ----------
    workers:
        Thread count; defaults to ``os.cpu_count()``.
    max_pending:
        Cap on in-flight units (default ``4 * workers``), bounding the
        retained futures for paper-scale unit lists.
    policy:
        Optional :class:`FailurePolicy`; the retry loop runs inside the
        worker thread, dispatch happens in the calling thread.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        max_pending: Optional[int] = None,
        policy: Optional[FailurePolicy] = None,
    ):
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = validate_positive_int(workers, "workers")
        self.max_pending = (
            validate_positive_int(max_pending, "max_pending")
            if max_pending is not None
            else 4 * self.workers
        )
        self.policy = resolve_policy(policy)

    def _execute_one(self, unit: WorkUnit) -> UnitResult:
        """Execution hook (fault-injecting test executors override it)."""
        return execute_unit(unit)

    def _task(self, unit: WorkUnit):
        if self.policy is None:
            return self._execute_one(unit)
        return run_unit_with_policy(unit, self.policy, execute=self._execute_one)

    def run(
        self,
        units: Sequence[WorkUnit],
        on_result: OnResult,
        on_failure: Optional[OnFailure] = None,
    ) -> None:
        if not units:
            return
        with worker_divisor_context(self.workers), ThreadPoolExecutor(
            max_workers=min(self.workers, len(units)),
            thread_name_prefix="repro-unit",
        ) as pool:
            pending = set()
            queued = iter(units)
            exhausted = False
            while pending or not exhausted:
                while not exhausted and len(pending) < self.max_pending:
                    unit = next(queued, None)
                    if unit is None:
                        exhausted = True
                        break
                    pending.add(pool.submit(self._task, unit))
                if not pending:
                    break
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    if self.policy is None:
                        on_result(future.result())
                    else:
                        deliver_outcome(
                            future.result(), self.policy, on_result, on_failure
                        )


def resolve_executor(
    executor: Union[str, Executor, None],
    workers: Optional[int] = None,
    policy: Optional[FailurePolicy] = None,
) -> Executor:
    """Build an executor from the user-facing ``executor``/``workers`` knobs.

    ``executor`` may be an executor instance (returned as-is -- the caller
    owns its policy), ``"serial"``, ``"process"``, ``"thread"``, or
    ``None`` -- which picks the process pool when more than one worker was
    requested and the serial path otherwise (the thread pool is opt-in:
    it wins when the workload is dominated by released-GIL kernel time,
    the process pool when pure-Python stages dominate).
    """
    if executor is None:
        executor = "process" if workers is not None and workers > 1 else "serial"
    if not isinstance(executor, str):
        return executor
    name = executor.lower()
    if name == "serial":
        return SerialExecutor(policy=policy)
    if name == "process":
        return ProcessExecutor(workers, policy=policy)
    if name == "thread":
        return ThreadExecutor(workers, policy=policy)
    raise ValueError(
        f"unknown executor {executor!r}; available: 'serial', 'process', 'thread'"
    )


__all__ = [
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "ThreadExecutor",
    "resolve_executor",
    "deliver_outcome",
    "OnResult",
    "OnFailure",
]
