"""Executors: strategies for running a batch of work units.

Two strategies are provided behind one tiny interface
(``run(units, on_result)``):

* :class:`SerialExecutor` runs units in order in the calling process --
  zero overhead, and the unit order (hence the progress-callback order)
  matches the historical serial sweep loops exactly.
* :class:`ProcessExecutor` fans units out over a
  ``concurrent.futures.ProcessPoolExecutor`` in chunks.  Because every
  unit derives its own seeds, completion order does not matter: the engine
  reassembles cells by their ``seed_path``, so parallel results are
  bit-identical to serial ones.

``on_result`` is always invoked in the calling process (for the process
pool: as futures complete), which is what bridges worker progress back to
the user's progress callback and lets the engine write the result store
from a single process.

Both executors optionally carry a
:class:`~repro.resilience.policy.FailurePolicy`.  Without one (the
default) a unit that raises kills the run exactly as it always did.
With one, each unit is retried with deterministic backoff (and an
optional per-attempt timeout), and a unit that exhausts its attempts is
*dispatched*: ``on_error="raise"`` raises
:class:`~repro.resilience.errors.PoisonUnitError`, the skip/quarantine
actions hand a structured :class:`~repro.resilience.policy.UnitFailure`
to the ``on_failure`` callback.  The retry loop runs inside the worker
process (outcomes are picklable), so the policy costs nothing on the
fault-free path.

:class:`~repro.runner.fleet.FleetRunner` implements the same protocol on
top of a shared result store's lease API, wrapping one of these executors
for the units it wins -- an executor is "how this process runs units",
the fleet runner is "which units this process gets to run".  Executors
expose their local parallelism as a ``workers`` attribute so the fleet
runner can size its claim batches.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from functools import partial
from typing import Callable, Optional, Protocol, Sequence, Union

from repro.resilience.errors import PoisonUnitError
from repro.resilience.policy import (
    FailurePolicy,
    UnitFailure,
    UnitOutcome,
    resolve_policy,
    run_unit_with_policy,
    run_units_with_policy,
)
from repro.runner.units import UnitResult, WorkUnit, execute_unit, execute_units
from repro.utils.validation import validate_positive_int

OnResult = Callable[[UnitResult], None]
OnFailure = Callable[[UnitFailure], None]


class Executor(Protocol):
    """Anything that can execute work units and stream back results."""

    def run(
        self,
        units: Sequence[WorkUnit],
        on_result: OnResult,
        on_failure: Optional[OnFailure] = None,
    ) -> None: ...


def deliver_outcome(
    outcome: UnitOutcome,
    policy: FailurePolicy,
    on_result: OnResult,
    on_failure: Optional[OnFailure],
) -> None:
    """Dispatch one policy outcome: result, failure callback, or raise.

    ``on_error="raise"`` (and a missing ``on_failure`` sink, whatever the
    action) escalates to :class:`PoisonUnitError` carrying the structured
    failure -- the caller that configured skip/quarantine always provides
    the sink, so the error path cannot silently drop units.
    """
    if outcome.result is not None:
        on_result(outcome.result)
        return
    failure = outcome.failure
    assert failure is not None
    if policy.on_error == "raise" or on_failure is None:
        raise PoisonUnitError(failure.describe(), failure)
    on_failure(failure)


class SerialExecutor:
    """Execute units one after the other in the calling process."""

    #: Local parallelism (fleet claim-batch sizing).
    workers = 1

    def __init__(self, policy: Optional[FailurePolicy] = None):
        self.policy = resolve_policy(policy)

    def _execute_one(self, unit: WorkUnit) -> UnitResult:
        """Execution hook (fault-injecting test executors override it)."""
        return execute_unit(unit)

    def run(
        self,
        units: Sequence[WorkUnit],
        on_result: OnResult,
        on_failure: Optional[OnFailure] = None,
    ) -> None:
        if self.policy is None:
            for unit in units:
                on_result(self._execute_one(unit))
            return
        for unit in units:
            outcome = run_unit_with_policy(
                unit, self.policy, execute=self._execute_one
            )
            deliver_outcome(outcome, self.policy, on_result, on_failure)


class ProcessExecutor:
    """Execute units on a process pool with chunked dispatch.

    Parameters
    ----------
    workers:
        Pool size; defaults to ``os.cpu_count()``.
    chunk_size:
        Units per task sent to a worker.  The default targets about four
        chunks per worker, which amortises pickling overhead while keeping
        the pool balanced when cells have very different costs (decoding
        failures are much cheaper than successes).
    max_pending:
        Cap on in-flight chunks, so planning a paper-scale sweep does not
        enqueue tens of thousands of futures at once.
    policy:
        Optional :class:`FailurePolicy`.  The retry loop runs inside each
        worker process; outcomes come back picklable and are dispatched
        (result / failure / raise) in the calling process.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        chunk_size: Optional[int] = None,
        max_pending: Optional[int] = None,
        policy: Optional[FailurePolicy] = None,
    ):
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = validate_positive_int(workers, "workers")
        if chunk_size is not None:
            chunk_size = validate_positive_int(chunk_size, "chunk_size")
        self.chunk_size = chunk_size
        self.max_pending = (
            validate_positive_int(max_pending, "max_pending")
            if max_pending is not None
            else 4 * self.workers
        )
        self.policy = resolve_policy(policy)

    def _chunks(self, units: Sequence[WorkUnit]) -> list[list[WorkUnit]]:
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            size = max(1, len(units) // (4 * self.workers))
        return [list(units[i : i + size]) for i in range(0, len(units), size)]

    def run(
        self,
        units: Sequence[WorkUnit],
        on_result: OnResult,
        on_failure: Optional[OnFailure] = None,
    ) -> None:
        if not units:
            return
        if self.policy is None:
            task = execute_units
        else:
            task = partial(run_units_with_policy, policy=self.policy)
        chunks = self._chunks(units)
        with ProcessPoolExecutor(max_workers=min(self.workers, len(chunks))) as pool:
            pending = set()
            queued = iter(chunks)
            exhausted = False
            while pending or not exhausted:
                while not exhausted and len(pending) < self.max_pending:
                    chunk = next(queued, None)
                    if chunk is None:
                        exhausted = True
                        break
                    pending.add(pool.submit(task, chunk))
                if not pending:
                    break
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    if self.policy is None:
                        for result in future.result():
                            on_result(result)
                    else:
                        for outcome in future.result():
                            deliver_outcome(
                                outcome, self.policy, on_result, on_failure
                            )


def resolve_executor(
    executor: Union[str, Executor, None],
    workers: Optional[int] = None,
    policy: Optional[FailurePolicy] = None,
) -> Executor:
    """Build an executor from the user-facing ``executor``/``workers`` knobs.

    ``executor`` may be an executor instance (returned as-is -- the caller
    owns its policy), ``"serial"``, ``"process"``, or ``None`` -- which
    picks the process pool when more than one worker was requested and the
    serial path otherwise.
    """
    if executor is None:
        executor = "process" if workers is not None and workers > 1 else "serial"
    if not isinstance(executor, str):
        return executor
    name = executor.lower()
    if name == "serial":
        return SerialExecutor(policy=policy)
    if name == "process":
        return ProcessExecutor(workers, policy=policy)
    raise ValueError(
        f"unknown executor {executor!r}; available: 'serial', 'process'"
    )


__all__ = [
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "resolve_executor",
    "deliver_outcome",
    "OnResult",
    "OnFailure",
]
