"""Sweep orchestration: plan units, consult the cache, execute, aggregate.

This is the layer the public sweep API (:mod:`repro.core.sweep`), the
experiment presets (:mod:`repro.core.experiments`), the benchmark harness
and the ``python -m repro`` CLI all sit on.  It owns the sequencing:

1. shard the sweep into :class:`~repro.runner.units.WorkUnit` cells,
2. satisfy what it can from the :class:`~repro.runner.cache.ResultCache`,
3. hand the remaining units to an executor (serial or process pool),
4. write fresh results back to the cache as they stream in,
5. aggregate the cells into the same :class:`~repro.core.metrics.GridResult`
   / :class:`~repro.core.metrics.SeriesResult` containers the serial loops
   have always produced -- bit-identical for a given seed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.channel.gilbert import paper_grid
from repro.core.config import SimulationConfig
from repro.core.metrics import GridResult, SeriesResult
from repro.resilience.policy import (
    FailurePolicy,
    UnitFailure,
    failure_summary,
    resolve_policy,
)
from repro.resilience.report import write_quarantine
from repro.resilience.retry import RetryingStore
from repro.runner.executors import Executor, resolve_executor
from repro.runner.fleet import DEFAULT_LEASE_TTL, FleetRunner
from repro.kernels.threads import ThreadSpec
from repro.runner.units import (
    SeedPath,
    UnitResult,
    WorkUnit,
    merge_cell,
    plan_units,
)
from repro.seeds import SchemeSpec, resolve_scheme_name
from repro.store import ResultStore, resolve_store
from repro.utils.rng import RandomState, as_seed_int
from repro.utils.validation import validate_positive_int

ProgressCallback = Callable[[int, int], None]

#: ``executor=`` accepts a name, an instance, or None (auto from workers).
ExecutorSpec = Union[str, Executor, None]

#: ``cache=`` accepts a ready store, a store URI (``"sqlite:results.db"``),
#: a bare json-dir directory path, or None (caching disabled).
CacheSpec = Union[ResultStore, str, None]


def _execute(
    units: Sequence[WorkUnit],
    *,
    executor: ExecutorSpec,
    workers: Optional[int],
    cache: Optional[ResultStore],
    progress: Optional[ProgressCallback],
    total_cells: int,
    fleet: bool = False,
    lease_ttl: Optional[float] = None,
    worker_id: Optional[str] = None,
    failure_policy: Optional[FailurePolicy] = None,
) -> Tuple[Dict[Tuple[SeedPath, int], UnitResult], List[UnitFailure]]:
    """Run a planned unit list through store + executor.

    Results are keyed by ``(seed_path, run_start)``.  Progress is reported
    in completed *cells* (sweep points), the unit the historical progress
    callback used; cached cells count as done immediately.

    With ``fleet=True`` the pending units go through the store's lease
    protocol (:class:`~repro.runner.fleet.FleetRunner`) instead of
    straight to the executor: concurrent processes sharing the store
    split the units between them, and units finished elsewhere are loaded
    rather than executed.  The fleet runner persists results itself
    (write-before-release), so the engine skips its own ``put``.

    With a ``failure_policy``, store traffic goes through a
    :class:`RetryingStore`, units retry per the policy, and units that
    exhaust their attempts are returned as the second element (empty on a
    fully clean run) instead of aborting the sweep -- unless the policy
    says ``on_error="raise"``, which escalates the first poison unit.
    Skipped/quarantined cells aggregate from whatever results they do
    have (a wholly failed cell becomes the paper's NaN rule).
    """
    failure_policy = resolve_policy(failure_policy)
    if failure_policy is not None:
        cache = RetryingStore.wrap(cache, failure_policy)
    results: Dict[Tuple[SeedPath, int], UnitResult] = {}
    failures: List[UnitFailure] = []
    units_per_cell: Dict[SeedPath, int] = {}
    for unit in units:
        units_per_cell[unit.seed_path] = units_per_cell.get(unit.seed_path, 0) + 1

    done_units_per_cell: Dict[SeedPath, int] = {}
    done_cells = 0

    def note_done(seed_path: SeedPath) -> None:
        nonlocal done_cells
        done_units_per_cell[seed_path] = done_units_per_cell.get(seed_path, 0) + 1
        if done_units_per_cell[seed_path] == units_per_cell[seed_path]:
            done_cells += 1
            if progress is not None:
                progress(done_cells, total_cells)

    pending: List[WorkUnit] = []
    for unit in units:
        cached = cache.get(unit) if cache is not None else None
        if cached is not None:
            results[(unit.seed_path, unit.run_start)] = cached
            note_done(unit.seed_path)
        else:
            pending.append(unit)

    if pending:
        unit_by_key = {(unit.seed_path, unit.run_start): unit for unit in pending}

        def on_result(result: UnitResult) -> None:
            key = (result.seed_path, result.run_start)
            results[key] = result
            if cache is not None and not fleet:
                cache.put(unit_by_key[key], result)
            note_done(result.seed_path)

        def on_failure(failure: UnitFailure) -> None:
            failures.append(failure)
            if (
                not fleet
                and cache is not None
                and failure_policy is not None
                and failure_policy.on_error == "quarantine"
            ):
                # The fleet runner writes its own quarantine records
                # (verdict-before-release ordering); solo runs record
                # them here so ``cache info`` sees them either way.
                write_quarantine(cache, failure)
            note_done(failure.seed_path)

        runner: Executor = resolve_executor(executor, workers, failure_policy)
        if fleet:
            if cache is None:
                raise ValueError(
                    "fleet execution needs a shared result store; pass "
                    "cache= a lease-capable store (e.g. 'sqlite:results.db')"
                )
            runner = FleetRunner(
                cache,
                executor=runner,
                worker_id=worker_id,
                lease_ttl=lease_ttl if lease_ttl is not None else DEFAULT_LEASE_TTL,
                policy=failure_policy,
            )
        if failure_policy is None:
            runner.run(pending, on_result)
        else:
            runner.run(pending, on_result, on_failure)

    return results, failures


def _cell_results(
    results: Dict[Tuple[SeedPath, int], UnitResult], seed_path: SeedPath
) -> List[UnitResult]:
    return [result for key, result in results.items() if key[0] == seed_path]


def run_grid(
    config: SimulationConfig,
    p_values: Optional[Sequence[float]] = None,
    q_values: Optional[Sequence[float]] = None,
    *,
    runs: int = 10,
    seed: RandomState = 0,
    fresh_code_per_run: bool = False,
    progress: Optional[ProgressCallback] = None,
    executor: ExecutorSpec = "serial",
    workers: Optional[int] = None,
    cache: CacheSpec = None,
    runs_per_unit: Optional[int] = None,
    fastpath: bool = True,
    kernel: Optional[str] = None,
    kernel_threads: ThreadSpec = None,
    seed_scheme: SchemeSpec = None,
    fleet: bool = False,
    lease_ttl: Optional[float] = None,
    worker_id: Optional[str] = None,
    failure_policy: Optional[FailurePolicy] = None,
) -> GridResult:
    """Sweep the Gilbert (p, q) grid for one configuration.

    Under the default ``"per-run"`` seed scheme this is seed-compatible
    with the historical serial ``simulate_grid``: every (i, j, run) triple
    draws from ``SeedSequence([base_seed, i, j, run])`` and the shared
    code is built from ``default_rng(base_seed)``, so any executor/cache
    combination returns bit-identical arrays.  ``seed_scheme`` selects a
    different :mod:`repro.seeds` derivation (``None``: env / default);
    the resolved name is recorded in the grid metadata.

    ``fleet=True`` executes the sweep cooperatively: units are claimed
    from the shared ``cache`` store under TTL leases
    (:mod:`repro.runner.fleet`), so several processes running this exact
    call against one store split the grid without duplicating work, and
    every process returns the complete, bit-identical result.
    """
    runs = validate_positive_int(runs, "runs")
    scheme_name = resolve_scheme_name(seed_scheme)
    if p_values is None or q_values is None:
        default_p, default_q = paper_grid()
        p_values = default_p if p_values is None else p_values
        q_values = default_q if q_values is None else q_values
    p_values = np.asarray(list(p_values), dtype=float)
    q_values = np.asarray(list(q_values), dtype=float)

    base_seed = as_seed_int(seed)
    cells = [
        ((i, j), config, float(p), float(q))
        for i, p in enumerate(p_values)
        for j, q in enumerate(q_values)
    ]
    units = plan_units(
        cells,
        runs=runs,
        base_seed=base_seed,
        fresh_code_per_run=fresh_code_per_run,
        runs_per_unit=runs_per_unit,
        fastpath=fastpath,
        kernel=kernel,
        kernel_threads=kernel_threads,
        seed_scheme=scheme_name,
    )
    results, unit_failures = _execute(
        units,
        executor=executor,
        workers=workers,
        cache=resolve_store(cache),
        progress=progress,
        total_cells=len(cells),
        fleet=fleet,
        lease_ttl=lease_ttl,
        worker_id=worker_id,
        failure_policy=failure_policy,
    )

    shape = (p_values.size, q_values.size)
    mean_inefficiency = np.full(shape, np.nan)
    mean_received = np.full(shape, np.nan)
    failure_counts = np.zeros(shape, dtype=np.int64)
    for i in range(p_values.size):
        for j in range(q_values.size):
            inefficiency, received, failures = merge_cell(
                _cell_results(results, (i, j))
            )
            mean_inefficiency[i, j] = inefficiency
            mean_received[i, j] = received
            failure_counts[i, j] = failures

    metadata = {
        "code": config.code,
        "tx_model": config.tx_model,
        "k": config.k,
        "expansion_ratio": config.expansion_ratio,
        "nsent": config.nsent,
        "seed": base_seed,
        "seed_scheme": scheme_name,
    }
    if unit_failures:
        metadata["failed_units"] = [failure_summary(f) for f in unit_failures]
    return GridResult(
        p_values=p_values,
        q_values=q_values,
        mean_inefficiency=mean_inefficiency,
        mean_received_ratio=mean_received,
        failure_counts=failure_counts,
        runs=runs,
        label=config.display_label,
        metadata=metadata,
    )


def run_adaptive(
    config: SimulationConfig,
    p_values: Optional[Sequence[float]] = None,
    q_values: Optional[Sequence[float]] = None,
    *,
    runs: int = 100,
    seed: RandomState = 0,
    adaptive=True,
    fresh_code_per_run: bool = False,
    progress: Optional[ProgressCallback] = None,
    executor: ExecutorSpec = "serial",
    workers: Optional[int] = None,
    cache: CacheSpec = None,
    fastpath: bool = True,
    kernel: Optional[str] = None,
    kernel_threads: ThreadSpec = None,
    seed_scheme: SchemeSpec = None,
    fleet: bool = False,
    lease_ttl: Optional[float] = None,
    worker_id: Optional[str] = None,
    failure_policy: Optional[FailurePolicy] = None,
) -> GridResult:
    """Adaptive grid sweep: sequential stopping per cell, same engine.

    ``runs`` is the per-cell *budget*; the controller in
    :mod:`repro.adaptive` extends each cell round by round (through
    :func:`_execute`, so caching/fleet/failure policies apply unchanged)
    and stops it as soon as its confidence intervals are narrow enough.
    ``adaptive`` takes an :class:`repro.adaptive.AdaptiveConfig`, a
    kwargs dict, or ``True`` for the defaults.  Settled cells are
    bit-identical to :func:`run_grid` at the same per-cell run count
    (with ``runs_per_unit=min_runs``), under both seed schemes.
    """
    from repro.adaptive.controller import adaptive_grid

    return adaptive_grid(
        config,
        p_values,
        q_values,
        runs=runs,
        seed=seed,
        adaptive=adaptive,
        fresh_code_per_run=fresh_code_per_run,
        progress=progress,
        executor=executor,
        workers=workers,
        cache=cache,
        fastpath=fastpath,
        kernel=kernel,
        kernel_threads=kernel_threads,
        seed_scheme=seed_scheme,
        fleet=fleet,
        lease_ttl=lease_ttl,
        worker_id=worker_id,
        failure_policy=failure_policy,
    )


def run_series(
    configs: Sequence[SimulationConfig],
    parameter_values: Sequence[float],
    *,
    parameter_name: str = "parameter",
    p: float = 0.0,
    q: float = 1.0,
    runs: int = 10,
    seed: RandomState = 0,
    fresh_code_per_run: bool = False,
    progress: Optional[ProgressCallback] = None,
    executor: ExecutorSpec = "serial",
    workers: Optional[int] = None,
    cache: CacheSpec = None,
    runs_per_unit: Optional[int] = None,
    fastpath: bool = True,
    kernel: Optional[str] = None,
    kernel_threads: ThreadSpec = None,
    seed_scheme: SchemeSpec = None,
    fleet: bool = False,
    lease_ttl: Optional[float] = None,
    worker_id: Optional[str] = None,
    failure_policy: Optional[FailurePolicy] = None,
    label: str = "",
) -> SeriesResult:
    """Sweep a pre-built list of configurations at a fixed (p, q) point.

    ``configs[index]`` is evaluated with run seeds
    ``SeedSequence([base_seed, index, run])`` and a per-index shared code
    built from ``SeedSequence([base_seed, index])``.  Configurations are
    materialised by the caller (rather than passing a factory callable) so
    units stay picklable for the process-pool executor.  ``fleet=True``
    splits the units cooperatively across processes sharing the ``cache``
    store, as in :func:`run_grid`.
    """
    runs = validate_positive_int(runs, "runs")
    if len(configs) != len(parameter_values):
        raise ValueError(
            f"got {len(configs)} configs for {len(parameter_values)} parameter values"
        )
    base_seed = as_seed_int(seed)
    scheme_name = resolve_scheme_name(seed_scheme)
    values = np.asarray(list(parameter_values), dtype=float)
    cells = [
        ((index,), config, float(p), float(q)) for index, config in enumerate(configs)
    ]
    units = plan_units(
        cells,
        runs=runs,
        base_seed=base_seed,
        fresh_code_per_run=fresh_code_per_run,
        code_seed_by_path=True,
        runs_per_unit=runs_per_unit,
        fastpath=fastpath,
        kernel=kernel,
        kernel_threads=kernel_threads,
        seed_scheme=scheme_name,
    )
    results, unit_failures = _execute(
        units,
        executor=executor,
        workers=workers,
        cache=resolve_store(cache),
        progress=progress,
        total_cells=len(cells),
        fleet=fleet,
        lease_ttl=lease_ttl,
        worker_id=worker_id,
        failure_policy=failure_policy,
    )

    means = np.full(values.size, np.nan)
    cell_failures_array = np.zeros(values.size, dtype=np.int64)
    for index in range(values.size):
        mean_inefficiency, _received, cell_failures = merge_cell(
            _cell_results(results, (index,))
        )
        means[index] = mean_inefficiency
        cell_failures_array[index] = cell_failures

    metadata = {"seed": base_seed, "seed_scheme": scheme_name}
    if unit_failures:
        metadata["failed_units"] = [failure_summary(f) for f in unit_failures]
    return SeriesResult(
        parameter_name=parameter_name,
        parameter_values=values,
        mean_inefficiency=means,
        failure_counts=cell_failures_array,
        runs=runs,
        label=label,
        metadata=metadata,
    )


__all__ = [
    "ProgressCallback",
    "ExecutorSpec",
    "CacheSpec",
    "run_grid",
    "run_adaptive",
    "run_series",
]
