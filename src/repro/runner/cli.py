"""Command-line front end: ``python -m repro``.

Subcommands
-----------
``list-experiments``
    Table of every figure/table preset and the available scales.
``run``
    Execute one experiment preset at a chosen scale, with ``--workers``
    for process-pool parallelism, the on-disk result cache for resumable
    runs (``--no-cache`` to disable), the vectorised batch decoder
    (``--no-fastpath`` falls back to the incremental reference path --
    results are bit-identical either way), ``--kernel`` to pin a
    :mod:`repro.kernels` backend for the decode hot loops (numpy / numba
    / cext / python; default ``auto``), ``--seed-scheme`` to pick the
    :mod:`repro.seeds` run-stream derivation (``per-run`` reproduces the
    historical streams bit-for-bit; ``unit`` batches a whole work unit's
    draws from one counter-based generator), and optional CSV /
    appendix-style table output through the analysis layer.
``cache``
    Inspect (``cache info``) or empty (``cache clear``) the result cache.

Examples
--------
::

    python -m repro list-experiments
    python -m repro run fig09 --scale tiny --workers 4
    python -m repro run table5 --scale small --runs 2 --csv-dir results/
    python -m repro cache info
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.csvio import grid_to_csv, label_slug
from repro.analysis.tables import format_grid_table
from repro.core.experiments import (
    EXPERIMENTS,
    SCALES,
    TABLE_TO_EXPERIMENT,
    get_experiment,
    run_experiment,
)
from repro.kernels import KernelUnavailableError, get_backend
from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.seeds import resolve_scheme_name


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduce the figures and tables of Neumann et al. (2005) with "
            "the parallel experiment-execution engine."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "list-experiments", help="list experiment presets and scales"
    )

    run = subparsers.add_parser("run", help="run one experiment preset")
    run.add_argument(
        "experiment",
        help="experiment or table id (e.g. fig09, table5); see list-experiments",
    )
    run.add_argument(
        "--scale",
        default="small",
        choices=sorted(SCALES),
        help="experiment scale (default: small)",
    )
    run.add_argument("--runs", type=int, default=None, help="override runs per grid point")
    run.add_argument("--seed", type=int, default=0, help="top-level seed (default: 0)")
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size; omit or 1 for the serial executor",
    )
    run.add_argument(
        "--executor",
        choices=("serial", "process"),
        default=None,
        help="force an executor (default: process when --workers > 1)",
    )
    cache_group = run.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--resume",
        action="store_true",
        help="use the on-disk result cache to skip completed cells (default)",
    )
    cache_group.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache entirely",
    )
    run.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result-cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    run.add_argument(
        "--fastpath",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "decode each work unit as one vectorised batch (default; "
            "bit-identical to --no-fastpath, which keeps the incremental "
            "reference path)"
        ),
    )
    run.add_argument(
        "--kernel",
        default=None,
        metavar="BACKEND",
        help=(
            "kernel backend for the decode hot loops: 'numpy' (reference), "
            "'numba' (JIT, needs numba installed), 'cext' (compiled on "
            "demand with the system C compiler), 'python' (uncompiled "
            "loops), or 'auto' (default: numba if importable, else cext "
            "if a compiler is present, else numpy).  Results are "
            "bit-identical across backends.  Also settable via the "
            "REPRO_KERNEL environment variable"
        ),
    )
    run.add_argument(
        "--seed-scheme",
        default=None,
        metavar="SCHEME",
        help=(
            "seed scheme deriving the per-run random streams: 'per-run' "
            "(default; the historical bit-reproducible "
            "SeedSequence-per-run streams) or 'unit' (one counter-based "
            "Philox generator per work unit; whole-unit block draws, "
            "deterministic but a different stream, cached separately).  "
            "Also settable via the REPRO_SEED_SCHEME environment variable"
        ),
    )
    run.add_argument(
        "--csv-dir",
        default=None,
        help="write one CSV grid per configuration into this directory",
    )
    run.add_argument(
        "--table",
        action="store_true",
        help="print the full appendix-style table for every configuration",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress the progress meter"
    )

    cache = subparsers.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument("action", choices=("info", "clear"))
    cache.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result-cache directory (default: {DEFAULT_CACHE_DIR})",
    )

    return parser


def _cmd_list_experiments(out) -> int:
    print("Experiments:", file=out)
    for experiment_id in sorted(EXPERIMENTS):
        spec = EXPERIMENTS[experiment_id]
        print(
            f"  {experiment_id:8s} {spec.paper_reference:22s} "
            f"{len(spec.configs):2d} configs  {spec.title}",
            file=out,
        )
    print("\nAppendix tables:", file=out)
    for table_id in sorted(TABLE_TO_EXPERIMENT):
        experiment_id, code, ratio = TABLE_TO_EXPERIMENT[table_id]
        print(
            f"  {table_id:8s} -> {experiment_id} ({code}, ratio {ratio})", file=out
        )
    print("\nScales:", file=out)
    for name in ("tiny", "small", "paper"):
        scale = SCALES[name]
        grid = len(scale.grid_percent)
        print(
            f"  {name:6s} k={scale.k:<6d} runs={scale.runs:<4d} grid={grid}x{grid}",
            file=out,
        )
    return 0


def _cmd_run(args, out, err) -> int:
    spec = get_experiment(args.experiment)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    total_configs = len(spec.configs)
    # Resolve the kernel up front so an unknown/unavailable backend fails
    # fast with a clear message instead of deep inside a worker process --
    # an explicit --kernel is validated even under --no-fastpath (where it
    # is otherwise unused).
    kernel_name = (
        get_backend(args.kernel).name
        if args.fastpath or args.kernel is not None
        else None
    )
    if not args.fastpath:
        kernel_name = None
    # Resolve the scheme up front too: an unknown --seed-scheme (or a
    # stale REPRO_SEED_SCHEME) fails fast with the registered names.
    scheme_name = resolve_scheme_name(args.seed_scheme)

    print(
        f"{spec.paper_reference}: {spec.title}\n"
        f"scale={args.scale} seed={args.seed} seed-scheme={scheme_name} "
        f"workers={args.workers or 1} cache={'off' if cache is None else args.cache_dir} "
        f"fastpath={'on' if args.fastpath else 'off'}"
        + (f" kernel={kernel_name}" if kernel_name else ""),
        file=out,
    )

    started = time.perf_counter()
    config_index = 0

    def progress(done: int, total: int) -> None:
        if args.quiet:
            return
        print(
            f"\r  config {config_index}/{total_configs}: {done}/{total} grid points",
            end="",
            file=err,
            flush=True,
        )

    def per_config_progress(index: int):
        nonlocal config_index
        config_index = index
        return progress

    results = run_experiment(
        args.experiment,
        scale=args.scale,
        seed=args.seed,
        runs=args.runs,
        executor=args.executor,
        workers=args.workers,
        cache=cache,
        fastpath=args.fastpath,
        kernel=kernel_name,
        seed_scheme=scheme_name,
        progress_factory=per_config_progress,
    )
    if not args.quiet:
        print(file=err)
    elapsed = time.perf_counter() - started

    for label, grid in results.items():
        print(
            f"  {label:55s} inefficiency {grid.min_inefficiency():.3f}"
            f"..{grid.max_inefficiency():.3f} "
            f"(mean {grid.mean_over_decodable():.3f}), "
            f"decodable on {grid.coverage:.0%} of the grid",
            file=out,
        )
    if args.table:
        for label, grid in results.items():
            print(file=out)
            print(format_grid_table(grid, title=label), file=out)

    if args.csv_dir is not None:
        csv_dir = Path(args.csv_dir)
        csv_dir.mkdir(parents=True, exist_ok=True)
        for label, grid in results.items():
            destination = csv_dir / f"{spec.experiment_id}_{label_slug(label)}.csv"
            grid_to_csv(grid, destination)
            print(f"  wrote {destination}", file=out)

    summary = f"done in {elapsed:.1f}s"
    if cache is not None:
        summary += (
            f" (cache: {cache.stats.hits} hits, {cache.stats.misses} misses,"
            f" {cache.stats.writes} writes)"
        )
    print(summary, file=out)
    return 0


def _cmd_cache(args, out) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "info":
        entries = len(cache)
        print(
            f"cache {cache.root}: {entries} entries, "
            f"{cache.size_bytes() / 1024:.1f} KiB",
            file=out,
        )
        for scheme, count in cache.scheme_counts().items():
            print(f"  seed-scheme {scheme}: {count} entries", file=out)
        return 0
    removed = cache.clear()
    print(f"cache {cache.root}: removed {removed} entries", file=out)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    out, err = sys.stdout, sys.stderr
    try:
        if args.command == "list-experiments":
            return _cmd_list_experiments(out)
        if args.command == "run":
            return _cmd_run(args, out, err)
        if args.command == "cache":
            return _cmd_cache(args, out)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=err)
        return 2
    except (ValueError, TypeError, KernelUnavailableError) as exc:
        print(f"error: {exc}", file=err)
        return 2
    except KeyboardInterrupt:
        print("\ninterrupted (completed cells are cached; rerun to resume)", file=err)
        return 130
    return 0


__all__ = ["main"]
