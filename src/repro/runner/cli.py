"""Command-line front end: ``python -m repro``.

Subcommands
-----------
``list-experiments``
    Table of every figure/table preset and the available scales.
``run``
    Execute one experiment preset at a chosen scale, with ``--workers``
    for pool parallelism (``--executor thread`` for the shared-memory
    pool, ``--kernel-threads`` for OpenMP row-parallel compiled
    kernels), a pluggable result store for resumable
    runs (``--store sqlite:results.db`` / ``--cache-dir`` for the default
    json-dir layout, ``--no-cache`` to disable), cooperative **fleet
    execution** (``--fleet``: several processes pointed at one shared
    store split the sweep under TTL leases with no coordinator), the
    vectorised batch decoder (``--no-fastpath`` falls back to the
    incremental reference path -- results are bit-identical either way),
    ``--kernel`` to pin a :mod:`repro.kernels` backend, ``--seed-scheme``
    to pick the :mod:`repro.seeds` run-stream derivation, and optional
    CSV / appendix-style table output through the analysis layer.
``cache``
    Inspect (``cache info``), empty (``cache clear``, optionally
    ``--scheme`` for one seed scheme's entries), migrate
    (``cache migrate SRC DST``) or serve (``cache serve SRC --host
    --port [--token]``: front the store with the HTTP server so remote
    workers reach it via ``--store http:HOST:PORT``) a result store;
    every action accepts a store URI (``json-dir:PATH``, ``sqlite:PATH``,
    ``memory:NAME``, ``http:HOST:PORT`` or a bare json-dir path).
``rerun-unit``
    Re-execute one work unit from its provenance payload (the exact
    command recorded by the sqlite backend) and print the result payload.

Examples
--------
::

    python -m repro list-experiments
    python -m repro run fig09 --scale tiny --workers 4
    python -m repro run fig09 --scale small --store sqlite:fig09.db --fleet
    python -m repro run table5 --scale small --runs 2 --csv-dir results/
    python -m repro cache info --store sqlite:fig09.db
    python -m repro cache migrate .repro_cache sqlite:results.db
    python -m repro cache serve sqlite:fig09.db --host 0.0.0.0 --port 8737
    python -m repro run fig09 --store http:192.0.2.10:8737 --fleet
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.adaptive import AdaptiveConfig, plan_first_round
from repro.analysis.csvio import grid_to_csv, label_slug
from repro.analysis.tables import format_grid_table, format_runs_table
from repro.core.experiments import (
    EXPERIMENTS,
    SCALES,
    TABLE_TO_EXPERIMENT,
    get_experiment,
    run_experiment,
)
from repro.kernels import KernelUnavailableError, get_backend, normalize_thread_spec
from repro.resilience import (
    ON_ERROR_ACTIONS,
    FailurePolicy,
    ResilienceError,
    clear_quarantine,
    format_quarantine_report,
    quarantine_entries,
)
from repro.runner.cache import DEFAULT_CACHE_DIR
from repro.runner.fleet import DEFAULT_LEASE_TTL
from repro.runner.units import WorkUnit, execute_unit, plan_units
from repro.seeds import resolve_scheme_name
from repro.store import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    HttpStoreError,
    LeaseUnsupportedError,
    ResultStore,
    StoreServer,
    encode_result,
    migrate_store,
    resolve_store,
)
from repro.store.codec import unit_key as compute_unit_key


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduce the figures and tables of Neumann et al. (2005) with "
            "the parallel experiment-execution engine."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "list-experiments", help="list experiment presets and scales"
    )

    run = subparsers.add_parser("run", help="run one experiment preset")
    run.add_argument(
        "experiment",
        help="experiment or table id (e.g. fig09, table5); see list-experiments",
    )
    run.add_argument(
        "--scale",
        default="small",
        choices=sorted(SCALES),
        help="experiment scale (default: small)",
    )
    run.add_argument("--runs", type=int, default=None, help="override runs per grid point")
    run.add_argument("--seed", type=int, default=0, help="top-level seed (default: 0)")
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size; omit or 1 for the serial executor",
    )
    run.add_argument(
        "--executor",
        choices=("serial", "process", "thread"),
        default=None,
        help=(
            "force an executor: 'serial', 'process' (pickling pool, the "
            "default when --workers > 1), or 'thread' (shared-memory pool "
            "-- compiled kernels release the GIL, so thread workers share "
            "the prototype cache instead of re-pickling it)"
        ),
    )
    cache_group = run.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--resume",
        action="store_true",
        help="use the on-disk result store to skip completed cells (default)",
    )
    cache_group.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result store entirely",
    )
    run.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"json-dir store directory (default: {DEFAULT_CACHE_DIR})",
    )
    run.add_argument(
        "--store",
        default=None,
        metavar="URI",
        help=(
            "result-store URI: 'json-dir:PATH' (the historical file-per-"
            "unit layout), 'sqlite:PATH' (single-file indexed store, "
            "recommended for large sweeps and fleets), 'memory:NAME', "
            "'http:HOST:PORT' (a remote store behind 'cache serve' -- "
            "what multi-host fleets use), or a bare directory path "
            "(json-dir).  Overrides --cache-dir"
        ),
    )
    run.add_argument(
        "--fleet",
        action="store_true",
        help=(
            "cooperative fleet execution: claim work units from the shared "
            "--store under TTL leases, so several processes running this "
            "exact command split the sweep with no coordinator and no "
            "duplicated work; every process prints the complete result"
        ),
    )
    run.add_argument(
        "--lease-ttl",
        type=float,
        default=DEFAULT_LEASE_TTL,
        metavar="SECONDS",
        help=(
            "fleet lease time-to-live; a worker that stops heartbeating "
            f"has its units reclaimed after this long (default: "
            f"{DEFAULT_LEASE_TTL:.0f}s)"
        ),
    )
    run.add_argument(
        "--worker-id",
        default=None,
        metavar="ID",
        help="fleet worker identity (default: <hostname>:<pid>)",
    )
    run.add_argument(
        "--fastpath",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "decode each work unit as one vectorised batch (default; "
            "bit-identical to --no-fastpath, which keeps the incremental "
            "reference path)"
        ),
    )
    run.add_argument(
        "--kernel",
        default=None,
        metavar="BACKEND",
        help=(
            "kernel backend for the decode hot loops: 'numpy' (reference), "
            "'numba' (JIT, needs numba installed), 'cext' (compiled on "
            "demand with the system C compiler), 'python' (uncompiled "
            "loops), or 'auto' (default: numba if importable, else cext "
            "if a compiler is present, else numpy).  Results are "
            "bit-identical across backends.  Also settable via the "
            "REPRO_KERNEL environment variable"
        ),
    )
    run.add_argument(
        "--kernel-threads",
        default=None,
        metavar="THREADS",
        help=(
            "row-parallel thread count for compiled kernels (cext with "
            "OpenMP): a positive integer or 'auto' (physical cores divided "
            "by the executor's worker count, so executor workers x kernel "
            "threads never oversubscribes the socket).  Bit-identical at "
            "any value.  Also settable via the REPRO_KERNEL_THREADS "
            "environment variable"
        ),
    )
    run.add_argument(
        "--seed-scheme",
        default=None,
        metavar="SCHEME",
        help=(
            "seed scheme deriving the per-run random streams: 'per-run' "
            "(default; the historical bit-reproducible "
            "SeedSequence-per-run streams) or 'unit' (one counter-based "
            "Philox generator per work unit; whole-unit block draws, "
            "deterministic but a different stream, cached separately).  "
            "Also settable via the REPRO_SEED_SCHEME environment variable"
        ),
    )
    run.add_argument(
        "--adaptive",
        action="store_true",
        help=(
            "adaptive sweep: stop each grid cell as soon as its Wilson "
            "interval on the decode probability (--ci-width) and its "
            "t-interval on the mean inefficiency (--rel-tol) are settled "
            "at --confidence, escalating run counts geometrically up to "
            "the budget (--max-runs / --runs / the scale's runs).  "
            "Settled cells are bit-identical to a fixed sweep at the "
            "same per-cell run count"
        ),
    )
    run.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        metavar="LEVEL",
        help="confidence level of the adaptive stopping intervals (default: 0.95)",
    )
    run.add_argument(
        "--ci-width",
        type=float,
        default=0.25,
        metavar="WIDTH",
        help=(
            "maximum Wilson-interval width on the decode probability for "
            "a cell to settle (default: 0.25)"
        ),
    )
    run.add_argument(
        "--rel-tol",
        type=float,
        default=0.02,
        metavar="FRACTION",
        help=(
            "maximum t-interval half-width on the mean inefficiency, as a "
            "fraction of the mean, for a fully-decoding cell to settle "
            "(default: 0.02)"
        ),
    )
    run.add_argument(
        "--min-runs",
        type=int,
        default=8,
        metavar="N",
        help=(
            "adaptive first-round run count and planning chunk size "
            "(default: 8); the determinism contract compares against a "
            "fixed sweep sharded at this granularity"
        ),
    )
    run.add_argument(
        "--max-runs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "adaptive per-cell run budget (default: --runs, else the "
            "scale's runs); cells that refuse to settle stop here"
        ),
    )
    run.add_argument(
        "--refine-cliff",
        nargs="?",
        type=float,
        const=0.01,
        default=None,
        metavar="RESOLUTION",
        help=(
            "after the adaptive grid settles, bisect (p, q) between "
            "decodable/undecodable neighbours until the decode cliff is "
            "localised to this resolution (default when given without a "
            "value: 0.01); implies --adaptive.  Refined cells appear in "
            "the grid metadata and the summary"
        ),
    )
    run.add_argument(
        "--dry-run",
        action="store_true",
        help=(
            "plan the sweep and print the unit counts (for --adaptive: "
            "the first round's) without executing anything"
        ),
    )
    run.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "retry a failing work unit up to N times with deterministic "
            "exponential backoff before applying --on-error (default: "
            "no failure policy -- the first unit error aborts the run)"
        ),
    )
    run.add_argument(
        "--unit-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "treat a work-unit attempt running longer than this as failed "
            "(counts against --max-retries)"
        ),
    )
    run.add_argument(
        "--on-error",
        choices=ON_ERROR_ACTIONS,
        default=None,
        help=(
            "what to do with a unit that exhausts its retries: 'raise' "
            "aborts the run (default), 'skip' drops the unit (its cell "
            "aggregates from the surviving runs), 'quarantine' also "
            "records it in the store with the exact rerun command "
            "(inspect with 'cache info', heal with 'rerun-unit --store')"
        ),
    )
    run.add_argument(
        "--store-retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "retry a transiently failing store operation (connection "
            "refused, timeout, 5xx, locked database) up to N times with "
            "deterministic backoff before giving up (default: 3 when any "
            "failure-policy flag is set; raise it so fleet workers ride "
            "out a result-store server restart)"
        ),
    )
    run.add_argument(
        "--csv-dir",
        default=None,
        help="write one CSV grid per configuration into this directory",
    )
    run.add_argument(
        "--table",
        action="store_true",
        help="print the full appendix-style table for every configuration",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress the progress meter"
    )

    cache = subparsers.add_parser(
        "cache", help="inspect, clear or migrate a result store"
    )
    cache.add_argument(
        "action",
        choices=("info", "clear", "migrate", "serve"),
        help=(
            "info: entry count, size and per-scheme breakdown; clear: "
            "delete entries (all, or one --scheme's); migrate: copy every "
            "entry from SOURCE to DEST, verifying the round-trip; serve: "
            "front the SOURCE store with the HTTP result-store server so "
            "remote fleet workers reach it via --store http:HOST:PORT"
        ),
    )
    cache.add_argument(
        "source",
        nargs="?",
        default=None,
        metavar="SOURCE",
        help="migrate: source store URI; serve: the store to front",
    )
    cache.add_argument(
        "dest",
        nargs="?",
        default=None,
        metavar="DEST",
        help="migrate: destination store URI or json-dir path",
    )
    cache.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"json-dir store directory (default: {DEFAULT_CACHE_DIR})",
    )
    cache.add_argument(
        "--store",
        default=None,
        metavar="URI",
        help="store URI for info/clear (overrides --cache-dir)",
    )
    cache.add_argument(
        "--scheme",
        default=None,
        metavar="NAME",
        help=(
            "restrict clear/migrate to entries of one seed scheme "
            "(e.g. 'per-run/v1', 'unit/v1')"
        ),
    )
    cache.add_argument(
        "--no-verify",
        action="store_true",
        help="migrate: skip the per-entry round-trip verification",
    )
    cache.add_argument(
        "--host",
        default=DEFAULT_HOST,
        help=(
            f"serve: bind address (default: {DEFAULT_HOST}; use 0.0.0.0 "
            f"to accept remote workers)"
        ),
    )
    cache.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=(
            f"serve: bind port (default: {DEFAULT_PORT}; 0 binds an "
            f"ephemeral port and prints it)"
        ),
    )
    cache.add_argument(
        "--token",
        default=None,
        metavar="SECRET",
        help=(
            "serve: require this bearer token from every client (workers "
            "append '?token=SECRET' to their http: store URI)"
        ),
    )

    rerun = subparsers.add_parser(
        "rerun-unit",
        help="re-execute one work unit from its provenance payload",
    )
    rerun.add_argument(
        "payload",
        help=(
            "the work unit's JSON payload as recorded in store provenance "
            "('-' reads it from stdin)"
        ),
    )
    rerun.add_argument(
        "--store",
        default=None,
        metavar="URI",
        help=(
            "also write the result into this store and clear the unit's "
            "quarantine record, healing a quarantined cell in place"
        ),
    )

    return parser


def _cmd_list_experiments(out) -> int:
    print("Experiments:", file=out)
    for experiment_id in sorted(EXPERIMENTS):
        spec = EXPERIMENTS[experiment_id]
        print(
            f"  {experiment_id:8s} {spec.paper_reference:22s} "
            f"{len(spec.configs):2d} configs  {spec.title}",
            file=out,
        )
    print("\nAppendix tables:", file=out)
    for table_id in sorted(TABLE_TO_EXPERIMENT):
        experiment_id, code, ratio = TABLE_TO_EXPERIMENT[table_id]
        print(
            f"  {table_id:8s} -> {experiment_id} ({code}, ratio {ratio})", file=out
        )
    print("\nScales:", file=out)
    for name in ("tiny", "small", "paper"):
        scale = SCALES[name]
        grid = len(scale.grid_percent)
        print(
            f"  {name:6s} k={scale.k:<6d} runs={scale.runs:<4d} grid={grid}x{grid}",
            file=out,
        )
    return 0


def _open_store(args) -> Optional[ResultStore]:
    """Resolve the run/cache commands' store flags to a store (or None)."""
    if getattr(args, "no_cache", False):
        return None
    if args.store is not None:
        return resolve_store(args.store)
    return resolve_store(args.cache_dir)


def _cmd_run(args, out, err) -> int:
    spec = get_experiment(args.experiment)
    cache = _open_store(args)
    if args.fleet and cache is None:
        raise ValueError("--fleet needs a shared result store; drop --no-cache")
    total_configs = len(spec.configs)
    # Resolve the kernel up front so an unknown/unavailable backend fails
    # fast with a clear message instead of deep inside a worker process --
    # an explicit --kernel is validated even under --no-fastpath (where it
    # is otherwise unused).
    kernel_name = (
        get_backend(args.kernel).name
        if args.fastpath or args.kernel is not None
        else None
    )
    if not args.fastpath:
        kernel_name = None
    # Same fail-fast treatment for the thread spec: a typo'd
    # --kernel-threads dies here, not inside a pool worker.
    kernel_threads = normalize_thread_spec(args.kernel_threads)
    # Resolve the scheme up front too: an unknown --seed-scheme (or a
    # stale REPRO_SEED_SCHEME) fails fast with the registered names.
    scheme_name = resolve_scheme_name(args.seed_scheme)
    policy = None
    if (
        args.max_retries is not None
        or args.unit_timeout is not None
        or args.on_error is not None
        or args.store_retries is not None
    ):
        policy_kwargs = {}
        if args.store_retries is not None:
            policy_kwargs["store_retries"] = args.store_retries
        policy = FailurePolicy(
            max_retries=args.max_retries if args.max_retries is not None else 0,
            unit_timeout=args.unit_timeout,
            on_error=args.on_error if args.on_error is not None else "raise",
            **policy_kwargs,
        )
    if policy is not None and policy.on_error == "quarantine" and cache is None:
        raise ValueError("--on-error quarantine needs a result store; drop --no-cache")

    adaptive_cfg = None
    if args.adaptive or args.refine_cliff is not None:
        adaptive_cfg = AdaptiveConfig(
            confidence=args.confidence,
            ci_width=args.ci_width,
            rel_tol=args.rel_tol,
            min_runs=args.min_runs,
            refine_cliff=args.refine_cliff is not None,
            refine_resolution=(
                args.refine_cliff if args.refine_cliff is not None else 0.01
            ),
        )
    elif args.max_runs is not None:
        raise ValueError("--max-runs needs --adaptive (or --refine-cliff)")
    runs_arg = args.runs
    if adaptive_cfg is not None and args.max_runs is not None:
        runs_arg = args.max_runs

    if args.dry_run:
        if cache is not None:
            cache.close()
        scale = SCALES[args.scale]
        budget = runs_arg if runs_arg is not None else scale.runs
        total_units = 0
        for config in spec.scaled_configs(scale):
            if adaptive_cfg is not None:
                units = plan_first_round(
                    config,
                    scale.p_values,
                    scale.q_values,
                    runs=budget,
                    seed=args.seed,
                    adaptive=adaptive_cfg,
                    fastpath=args.fastpath,
                    kernel=kernel_name,
                    kernel_threads=kernel_threads,
                    seed_scheme=scheme_name,
                )
                kind = (
                    f"first adaptive round, "
                    f"{min(adaptive_cfg.min_runs, budget)} runs/cell "
                    f"of a {budget}-run budget"
                )
            else:
                cells = [
                    ((i, j), config, float(p), float(q))
                    for i, p in enumerate(scale.p_values)
                    for j, q in enumerate(scale.q_values)
                ]
                units = plan_units(
                    cells,
                    runs=budget,
                    base_seed=args.seed,
                    fastpath=args.fastpath,
                    kernel=kernel_name,
                    kernel_threads=kernel_threads,
                    seed_scheme=scheme_name,
                )
                kind = f"{budget} runs/cell"
            total_units += len(units)
            print(
                f"  {config.display_label:55s} {len(units):4d} units ({kind})",
                file=out,
            )
        print(
            f"dry run: {total_units} units planned across "
            f"{total_configs} configs; nothing executed",
            file=out,
        )
        return 0

    print(
        f"{spec.paper_reference}: {spec.title}\n"
        f"scale={args.scale} seed={args.seed} seed-scheme={scheme_name} "
        f"workers={args.workers or 1} "
        f"store={'off' if cache is None else cache.uri()} "
        f"fastpath={'on' if args.fastpath else 'off'}"
        + (f" kernel={kernel_name}" if kernel_name else "")
        + (f" kernel-threads={kernel_threads}" if kernel_threads else "")
        + (f" fleet=on ttl={args.lease_ttl:g}s" if args.fleet else "")
        + (
            f" retries={policy.max_retries} on-error={policy.on_error}"
            if policy is not None
            else ""
        )
        + (
            f" adaptive=on confidence={adaptive_cfg.confidence:g}"
            f" ci-width={adaptive_cfg.ci_width:g}"
            f" rel-tol={adaptive_cfg.rel_tol:g}"
            + (
                f" refine-cliff={adaptive_cfg.refine_resolution:g}"
                if adaptive_cfg.refine_cliff
                else ""
            )
            if adaptive_cfg is not None
            else ""
        ),
        file=out,
    )

    started = time.perf_counter()
    config_index = 0

    def progress(done: int, total: int) -> None:
        if args.quiet:
            return
        print(
            f"\r  config {config_index}/{total_configs}: {done}/{total} grid points",
            end="",
            file=err,
            flush=True,
        )

    def per_config_progress(index: int):
        nonlocal config_index
        config_index = index
        return progress

    quarantined = []
    try:
        results = run_experiment(
            args.experiment,
            scale=args.scale,
            seed=args.seed,
            runs=runs_arg,
            executor=args.executor,
            workers=args.workers,
            cache=cache,
            fastpath=args.fastpath,
            kernel=kernel_name,
            kernel_threads=kernel_threads,
            seed_scheme=scheme_name,
            fleet=args.fleet,
            lease_ttl=args.lease_ttl,
            worker_id=args.worker_id,
            failure_policy=policy,
            adaptive=adaptive_cfg,
            progress_factory=per_config_progress,
        )
        if policy is not None and policy.on_error == "quarantine" and cache is not None:
            quarantined = quarantine_entries(cache)
    finally:
        if cache is not None:
            cache.close()
    if not args.quiet:
        print(file=err)
    elapsed = time.perf_counter() - started

    for label, grid in results.items():
        print(
            f"  {label:55s} inefficiency {grid.min_inefficiency():.3f}"
            f"..{grid.max_inefficiency():.3f} "
            f"(mean {grid.mean_over_decodable():.3f}), "
            f"decodable on {grid.coverage:.0%} of the grid",
            file=out,
        )
        adaptive_meta = grid.metadata.get("adaptive")
        if adaptive_meta:
            line = (
                f"    adaptive: {adaptive_meta['executed_runs']}"
                f"/{adaptive_meta['exhaustive_runs']} runs executed "
                f"({adaptive_meta['saved_fraction']:.0%} saved, "
                f"{adaptive_meta['rounds']} rounds)"
            )
            refined = adaptive_meta.get("refined")
            if refined is not None:
                line += (
                    f"; {len(refined)} refined cells localise "
                    f"{len(adaptive_meta['cliffs'])} cliff edges to "
                    f"{adaptive_meta['resolution']:g}"
                )
            print(line, file=out)
    if args.table:
        for label, grid in results.items():
            print(file=out)
            print(format_grid_table(grid, title=label), file=out)
            if grid.metadata.get("adaptive"):
                print(file=out)
                print(
                    format_runs_table(grid, title=f"{label} (runs per cell)"),
                    file=out,
                )

    if args.csv_dir is not None:
        csv_dir = Path(args.csv_dir)
        csv_dir.mkdir(parents=True, exist_ok=True)
        for label, grid in results.items():
            destination = csv_dir / f"{spec.experiment_id}_{label_slug(label)}.csv"
            grid_to_csv(grid, destination)
            print(f"  wrote {destination}", file=out)

    if quarantined:
        print(format_quarantine_report(quarantined), file=out)

    summary = f"done in {elapsed:.1f}s"
    if cache is not None:
        summary += (
            f" (cache: {cache.stats.hits} hits, {cache.stats.misses} misses,"
            f" {cache.stats.writes} writes)"
        )
    print(summary, file=out)
    return 0


def _cmd_cache_serve(args, out) -> int:
    if args.source is None:
        raise ValueError(
            "cache serve needs the store to front, e.g. "
            "'cache serve sqlite:results.db'"
        )
    with resolve_store(args.source) as store:
        server = StoreServer(
            store, host=args.host, port=args.port, token=args.token
        )
        print(
            f"serving {store.uri()} on http://{server.host}:{server.port}"
            + (" (token required)" if args.token else ""),
            file=out,
            flush=True,
        )
        worker_uri = server.store_uri() + ("?token=..." if args.token else "")
        print(
            f"workers: python -m repro run <experiment> "
            f"--store {worker_uri} --fleet",
            file=out,
            flush=True,
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("\nserver stopped", file=out)
        finally:
            server.shutdown()
    return 0


def _cmd_cache(args, out) -> int:
    if args.action == "serve":
        return _cmd_cache_serve(args, out)
    if args.action == "migrate":
        if args.source is None or args.dest is None:
            raise ValueError("cache migrate needs SOURCE and DEST store URIs")
        with resolve_store(args.source) as source, resolve_store(args.dest) as dest:
            report = migrate_store(
                source,
                dest,
                scheme=args.scheme,
                verify=not args.no_verify,
            )
            print(
                f"migrated {source.uri()} -> {dest.uri()}: {report.summary()}",
                file=out,
            )
        return 0

    if args.source is not None or args.dest is not None:
        raise ValueError(f"cache {args.action} takes no positional arguments")
    with _open_store(args) as store:
        if args.action == "info":
            info = store.info()
            print(
                f"store {store.uri()} [{info.backend}]: {info.entries} entries, "
                f"{info.size_bytes / 1024:.1f} KiB",
                file=out,
            )
            for scheme, count in info.scheme_counts.items():
                print(f"  seed-scheme {scheme}: {count} entries", file=out)
            entries = quarantine_entries(store)
            if entries:
                print(format_quarantine_report(entries), file=out)
            return 0
        removed = store.clear(scheme=args.scheme)
        scope = f" ({args.scheme} entries)" if args.scheme is not None else ""
        print(f"store {store.uri()}: removed {removed} entries{scope}", file=out)
    return 0


def _cmd_rerun_unit(args, out) -> int:
    text = sys.stdin.read() if args.payload == "-" else args.payload
    unit = WorkUnit.from_payload(json.loads(text))
    result = execute_unit(unit)
    print(json.dumps(encode_result(unit, result)), file=out)
    if args.store is not None:
        with resolve_store(args.store) as store:
            store.put(unit, result)
            healed = clear_quarantine(store, compute_unit_key(unit))
        print(
            f"stored unit {compute_unit_key(unit)[:12]} in {args.store}"
            + (" (quarantine record cleared)" if healed else ""),
            file=out,
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    out, err = sys.stdout, sys.stderr
    try:
        if args.command == "list-experiments":
            return _cmd_list_experiments(out)
        if args.command == "run":
            return _cmd_run(args, out, err)
        if args.command == "cache":
            return _cmd_cache(args, out)
        if args.command == "rerun-unit":
            return _cmd_rerun_unit(args, out)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=err)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: invalid unit payload: {exc}", file=err)
        return 2
    except (
        ValueError,
        TypeError,
        KernelUnavailableError,
        LeaseUnsupportedError,
        ResilienceError,
        HttpStoreError,
    ) as exc:
        print(f"error: {exc}", file=err)
        return 2
    except KeyboardInterrupt:
        print("\ninterrupted (completed cells are cached; rerun to resume)", file=err)
        return 130
    return 0


__all__ = ["main"]
