"""Pure-numpy reference backend: lockstep bisection + chain-aware cascade.

This is the always-available backend and the behavioural reference for the
compiled ones.  The LDGM decode is the gallop+bisect prefix search of the
fast path: the peeling state of a whole batch of runs is stacked into flat
arrays, a *checkpoint* is kept at every run's highest known-undecodable
prefix, and each probe applies only its delta packets, cascading reveals
in vectorised rounds.

Two structure-aware twists keep the round count low on the staircase /
triangle codes, whose bidiagonal parity part otherwise forces one frontier
round per link of a long sequential reveal chain:

* **Chain-aware cascade** -- when the prototype detected the bidiagonal
  structure, a frontier parity that borders a run of *chain-eligible*
  check rows (rows whose only unknowns are their two staircase parities,
  recognised in O(1) from the packed count|sum word) resolves the whole
  run in one vectorised scan instead of one round per link.
* **Seen-mask dedup** -- frontier deduplication uses a reused scratch
  buffer indexed by node id instead of a sort; the cascade calls it every
  round and the sort dominated small frontiers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.kernels.base import (
    COUNT_SHIFT,
    NOT_DECODED,
    SENTINEL_WORD,
    SUM_MASK,
    KernelBackend,
    ReceivedBatch,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fastpath.prototypes import LDGMPrototype

#: Reused empty frontier.
_EMPTY = np.zeros(0, dtype=np.int64)


class _PeelState:
    """Stacked peeling state of a batch of runs (one block per run).

    Per-row state is one ``int64`` word: ``unknown_count << 40 | id_sum``,
    where ``id_sum`` is the *sum* of the row's still-unknown column ids.
    Like the incremental decoder's XOR accumulator, the sum of a single
    remaining element identifies it -- but a sum also updates by plain
    subtraction, so removing a known node from a row is a single fused
    ``packed -= (1 << 40) + node`` and cannot borrow across the fields
    (the id sum of the remaining unknowns never goes negative).
    """

    __slots__ = ("packed", "known", "source_counts")

    def __init__(self, packed: np.ndarray, known: np.ndarray, source_counts: np.ndarray):
        self.packed = packed
        self.known = known
        self.source_counts = source_counts

    def copy(self) -> "_PeelState":
        return _PeelState(
            self.packed.copy(), self.known.copy(), self.source_counts.copy()
        )

    def adopt(
        self, other: "_PeelState", runs: np.ndarray, num_checks: int, n: int
    ) -> None:
        """Overwrite the state blocks of ``runs`` with ``other``'s."""
        self.packed.reshape(-1, num_checks)[runs] = other.packed.reshape(
            -1, num_checks
        )[runs]
        self.known.reshape(-1, n)[runs] = other.known.reshape(-1, n)[runs]
        self.source_counts[runs] = other.source_counts[runs]


def _dedup(nodes: np.ndarray, scratch: np.ndarray) -> np.ndarray:
    """Deduplicate node ids with a reused seen-mask scratch buffer.

    ``scratch`` is an int64 array of -1 covering the flat node space; each
    distinct value keeps its latest occurrence, preserving arrival order
    of the survivors.  Replaces the historical sort-based unique: the
    cascade calls this once per round and the O(m log m) sort dominated
    the typically tiny frontiers.  Touched entries are reset to -1 before
    returning, so the buffer is clean for the next round.
    """
    if nodes.size <= 1:
        return nodes
    order = np.arange(nodes.size, dtype=np.int64)
    scratch[nodes] = order
    keep = scratch[nodes] == order
    out = nodes[keep]
    scratch[out] = -1
    return out


class NumpyBackend(KernelBackend):
    """Vectorised reference backend (always available)."""

    name = "numpy"
    stacks_batches = True

    def __init__(self) -> None:
        #: Diagnostics of the most recent :meth:`ldgm_decode_batch` call:
        #: total cascade rounds and chain scans (read by tests/benchmarks).
        self.last_rounds = 0
        self.last_chain_scans = 0

    # ------------------------------------------------------------------
    # LDGM decode: gallop+bisect prefix search over stacked peeling state.
    # ------------------------------------------------------------------

    def ldgm_decode_batch(
        self, prototype: "LDGMPrototype", batch: ReceivedBatch
    ) -> Tuple[np.ndarray, np.ndarray]:
        self.last_rounds = 0
        self.last_chain_scans = 0
        k = prototype.k
        n = prototype.n
        lengths = batch.lengths
        num_runs = batch.num_runs
        decoded = np.zeros(num_runs, dtype=bool)
        n_necessary = np.full(num_runs, NOT_DECODED, dtype=np.int64)

        # Fewer than k packets can never decode (each packet contributes one
        # equation; recovering k independent sources needs at least k), so
        # the checkpoint starts at prefix k - 1 and runs shorter than k are
        # failures outright.
        candidates = np.nonzero(lengths >= k)[0]
        if candidates.size == 0:
            return decoded, n_necessary

        # Stack the candidate runs' sequences into one flat node-id space
        # (node + run * n) with a single gather over the batch's flat
        # array -- the batch itself was flattened once per work unit, so
        # probes and checkpoints only ever index, never copy, per probe.
        cand_lengths = lengths[candidates]
        num = candidates.size
        seq_offsets = np.zeros(num, dtype=np.int64)
        np.cumsum(cand_lengths[:-1], out=seq_offsets[1:])
        total = int(cand_lengths.sum())
        ends = np.cumsum(cand_lengths)
        positions = np.arange(total, dtype=np.int64) + np.repeat(
            batch.offsets[candidates] - (ends - cand_lengths), cand_lengths
        )
        seq_flat = batch.flat[positions]
        seq_flat += np.repeat(np.arange(num, dtype=np.int64) * n, cand_lengths)

        #: Seen-mask scratch over the stacked node space, kept at -1
        #: between dedup calls.
        scratch = np.full(num * n, -1, dtype=np.int64)

        # Unified gallop-then-bisect search, lockstep across runs, with a
        # checkpoint at every run's lo prefix (always undecodable).  The
        # typical decode point sits a few percent above k, so doubling
        # steps from k touch far fewer packets than a wide bisection --
        # and a failed probe *becomes* the checkpoint, so its packet
        # applications and cascades are never repeated.  ``hi = -1`` marks
        # runs still galloping (no decodable prefix seen yet).
        chain_flat = (
            np.tile(prototype.chain_expected, num)
            if prototype.chain_expected is not None
            else None
        )
        lo = np.full(num, k - 1, dtype=np.int64)
        hi = np.full(num, -1, dtype=np.int64)
        step = np.full(num, max(8, k >> 5), dtype=np.int64)
        checkpoint = self._fresh_state(prototype, num)
        everyone = np.arange(num, dtype=np.int64)
        self._advance(
            prototype,
            checkpoint,
            seq_flat,
            seq_offsets,
            everyone,
            np.zeros(num, dtype=np.int64),
            lo,
            scratch,
            chain_flat,
        )
        probe: Optional[_PeelState] = None
        while True:
            galloping = hi < 0
            active = np.nonzero(
                (galloping & (lo < cand_lengths)) | (~galloping & (hi - lo > 1))
            )[0]
            if active.size == 0:
                break
            target = np.where(
                galloping[active],
                np.minimum(lo[active] + step[active], cand_lengths[active]),
                (lo[active] + hi[active]) // 2,
            )
            # One probe buffer, reused across iterations: only the blocks of
            # the runs probing this iteration are refreshed from the
            # checkpoint (the advance below never reads the others -- stale
            # blocks are discarded by the selective adopt after the probe).
            if probe is None:
                probe = checkpoint.copy()
            else:
                probe.adopt(checkpoint, active, prototype.num_checks + 1, n)
            self._advance(
                prototype,
                probe,
                seq_flat,
                seq_offsets,
                active,
                lo[active],
                target,
                scratch,
                chain_flat,
            )
            ok = probe.source_counts[active] >= k
            hi[active[ok]] = target[ok]
            failed = active[~ok]
            lo[failed] = target[~ok]
            step[failed] <<= 1
            # A failed probe is the peeling state at its target prefix:
            # adopt it as the checkpoint instead of ever re-peeling.
            checkpoint.adopt(probe, failed, prototype.num_checks + 1, n)
        found = hi >= 0
        decoded[candidates[found]] = True
        n_necessary[candidates[found]] = hi[found]
        return decoded, n_necessary

    def _fresh_state(self, prototype: "LDGMPrototype", num_runs: int) -> _PeelState:
        """Stacked no-packets-yet state: the prototype replicated per run.

        Every run's block carries ``num_checks`` real rows plus the sentinel
        row that absorbs the padded adjacency's ghost updates.  Its initial
        unknown count (2**22) dwarfs any realistic number of ghost hits, so
        it can never reach one and trigger a reveal; nor can the subtracted
        id sums borrow into a range that would (the total subtracted stays
        far below the initial word).
        """
        per_run = np.concatenate([prototype.row_packed, [SENTINEL_WORD]])
        return _PeelState(
            np.tile(per_run, num_runs),
            np.zeros(num_runs * prototype.n, dtype=bool),
            np.zeros(num_runs, dtype=np.int64),
        )

    def _advance(
        self,
        prototype: "LDGMPrototype",
        state: _PeelState,
        seq_flat: np.ndarray,
        seq_offsets: np.ndarray,
        runs: np.ndarray,
        start: np.ndarray,
        stop: np.ndarray,
        scratch: np.ndarray,
        chain_flat: Optional[np.ndarray],
    ) -> None:
        """Apply packets ``start[i]..stop[i]`` of each run in ``runs``.

        Equivalent to feeding the packets one at a time to the incremental
        decoder: receptions and the nodes they reveal propagate in
        vectorised rounds until the cascade dies out or a run recovers all
        ``k`` sources (completed runs stop cascading, like the incremental
        decoder's early return).
        """
        N, k = prototype.n, prototype.k
        known = state.known
        deltas = stop - start
        total = int(deltas.sum())
        if total == 0:
            return
        ends = np.cumsum(deltas)
        positions = np.arange(total, dtype=np.int64) + np.repeat(
            seq_offsets[runs] + start - (ends - deltas), deltas
        )
        packets = seq_flat[positions]
        # Packets already known -- duplicates in the schedule or nodes the
        # cascade recovered before they arrived -- are no-ops, exactly as in
        # the incremental decoder.
        frontier = _dedup(packets[~known[packets]], scratch)
        frontier = frontier[state.source_counts[frontier // N] < k]

        #: Lazily-built membership mask of this advance's runs: the
        #: full-state trigger scan must not pick up rows of runs outside
        #: the probe (a reused probe buffer leaves stale blocks behind).
        run_mask: Optional[np.ndarray] = None
        packed = state.packed
        row_stride = prototype.num_checks + 1
        col_indptr = prototype.col_indptr
        col_degrees = prototype.col_degrees
        col_rows = prototype.col_rows
        padded = prototype.col_rows_padded
        if padded is not None:
            # Fresh sentinel words: their headroom bounds the padded
            # table's ghost hits per _advance call, not per decode.
            packed[prototype.num_checks :: row_stride] = SENTINEL_WORD
        while frontier.size:
            self.last_rounds += 1
            known[frontier] = True
            run_of, local = np.divmod(frontier, N)
            newly_sources = local < k
            if newly_sources.any():
                state.source_counts += np.bincount(
                    run_of[newly_sources], minlength=state.source_counts.size
                )
            # One fused update per (row, node) edge: decrement the unknown
            # count (high bits) and remove the node from the id sum (low
            # bits) of every touched row.  Two expansion strategies: the
            # dense padded table (one 2-D gather; ghost slots land on the
            # sentinels) when padding is tight, exact CSR edge lists
            # (repeat/arange gather) when padding would be mostly ghost
            # traffic -- triangle parities can sit in many below-diagonal
            # rows.
            if padded is not None:
                rows = padded[local] + (run_of * row_stride)[:, None]
                np.subtract.at(
                    packed, rows, local[:, None] + (np.int64(1) << COUNT_SHIFT)
                )
                edge_total = rows.size
            else:
                degrees = col_degrees[local]
                edge_total = int(degrees.sum())
                if edge_total == 0:
                    frontier = _EMPTY
                    continue
                edge_ends = np.cumsum(degrees)
                edge_pos = np.arange(edge_total, dtype=np.int64) + np.repeat(
                    col_indptr[local] - (edge_ends - degrees), degrees
                )
                edge_runs = np.repeat(run_of, degrees)
                rows = col_rows[edge_pos] + edge_runs * row_stride
                np.subtract.at(
                    packed,
                    rows,
                    np.repeat(local, degrees) + (np.int64(1) << COUNT_SHIFT),
                )
            # A row at one unknown reveals it: the id sum *is* the node.
            # Small rounds gather the touched rows' words (a row may appear
            # several times; the dedup below collapses the repeats); bulk
            # rounds scan the whole state instead, which is cheaper than
            # gathering more edge words than there are rows.  The scan may
            # also pick up rows of completed runs parked at one unknown --
            # the completion filter drops them, exactly like the
            # incremental decoder's early return (completion cannot be
            # undone, so the extra peeling could only waste time).
            if edge_total > packed.size // 2:
                trig_rows = np.nonzero((packed >> COUNT_SHIFT) == 1)[0]
                trigger_runs = trig_rows // row_stride
                if run_mask is None:
                    run_mask = np.zeros(state.source_counts.size, dtype=bool)
                    run_mask[runs] = True
                member = run_mask[trigger_runs]
                trig_rows = trig_rows[member]
                trigger_runs = trigger_runs[member]
                if prototype.has_unit_rows and trig_rows.size:
                    # Rows whose INITIAL count is 1 are never peeled by
                    # the incremental decoder until something decrements
                    # them; the scan must not reveal them while they still
                    # hold their pristine word.
                    touched = (
                        packed[trig_rows]
                        != prototype.row_packed[trig_rows % row_stride]
                    )
                    trig_rows = trig_rows[touched]
                    trigger_runs = trigger_runs[touched]
                if trig_rows.size == 0:
                    frontier = _EMPTY
                    continue
                words = packed[trig_rows]
                nodes = (words & SUM_MASK) + trigger_runs * np.int64(N)
            else:
                words = packed[rows]
                trigger = (words >> COUNT_SHIFT) == 1
                if not trigger.any():
                    frontier = _EMPTY
                    continue
                trigger_runs = (
                    rows[trigger] // row_stride
                    if padded is not None
                    else edge_runs[trigger]
                )
                nodes = (words[trigger] & SUM_MASK) + trigger_runs * np.int64(N)
            nodes = nodes[(~known[nodes]) & (state.source_counts[trigger_runs] < k)]
            nodes = _dedup(nodes, scratch)
            if chain_flat is not None and nodes.size:
                nodes = _dedup(
                    self._extend_chain(
                        prototype, state, nodes, chain_flat, row_stride
                    ),
                    scratch,
                )
            frontier = nodes

    #: First/largest window of the chain walk.  The walk starts small --
    #: most bordering stretches are a handful of links, and a wide gather
    #: for every walk would dwarf the rounds it saves -- and grows
    #: geometrically for the long chains that actually matter, so a chain
    #: of length L costs O(log L) dispatches over O(L) gathered rows.
    _CHAIN_WINDOW_FIRST = 8
    _CHAIN_WINDOW_MAX = 64

    def _extend_chain(
        self,
        prototype: "LDGMPrototype",
        state: _PeelState,
        nodes: np.ndarray,
        chain_flat: np.ndarray,
        row_stride: int,
    ) -> np.ndarray:
        """Resolve staircase reveal chains bordering the frontier at once.

        ``nodes`` are about to become known.  A check row is *chain
        eligible* when its only unknowns are its two bidiagonal parities --
        recognised by comparing its packed word against the precomputed
        ``chain_expected`` word (count 2, id sum ``(k+j-1) + (k+j)``; the
        prototype proved at compile time that no other pair of the row's
        columns can produce that word).  A frontier parity ``k+j`` bordered
        by eligible rows therefore resolves the whole consecutive run of
        them -- entering at row ``j`` cascades upstream, at row ``j+1``
        downstream, and every parity of the maximal eligible run is
        revealed.  The round-synchronous loop would take one round per
        link; this walks all bordering chains together in windowed gathers
        (:attr:`_CHAIN_WINDOW_FIRST` links per numpy dispatch, growing
        geometrically) and applies the resolved stretches to the peeling
        state directly.
        """
        N, k = prototype.n, prototype.k
        packed = state.packed
        local = nodes % N
        is_parity = local >= k
        if not is_parity.any():
            return nodes
        parities = nodes[is_parity]
        run_of = parities // N
        row = parities - run_of * N - k  # check row owning the parity
        base = run_of * row_stride + row
        # Quick gather check before any walk: is a bordering row eligible?
        # (Row ``j`` upstream, ``j+1`` downstream; ``chain_expected`` is -1
        # at row 0 and the sentinel slot, so boundaries disqualify freely.)
        up = packed[base] == chain_flat[base]
        down = packed[base + 1] == chain_flat[base + 1]
        hit = up | down
        if not hit.any():
            return nodes
        self.last_chain_scans += 1
        # Anchor rows: the eligible rows bordering the entries.  An
        # avalanche reveals many *consecutive* parities of a run, whose
        # anchors all sit in the same eligible stretch -- collapse each
        # consecutive anchor group so the stretch is walked once from each
        # end, not once per entry.
        anchors = np.unique(np.concatenate([base[up], base[down] + 1]))
        group_start = np.empty(anchors.size, dtype=bool)
        group_start[0] = True
        np.greater(np.diff(anchors), 1, out=group_start[1:])
        g_first = anchors[group_start]
        g_last = anchors[np.concatenate([group_start[1:], [True]])]
        groups = g_first.size
        walk_pos = np.concatenate([g_first - 1, g_last + 1])
        walk_sign = np.concatenate(
            [
                np.full(groups, -1, dtype=np.int64),
                np.full(groups, 1, dtype=np.int64),
            ]
        )
        lengths = self._chain_run_length(packed, chain_flat, walk_pos, walk_sign)
        # Maximal eligible stretches [a, b): rows a..b-1 eligible, so
        # parities k+(a-1) .. k+(b-1) of the stretch all reveal.  Distinct
        # anchor groups may share a stretch; resolve each start once.
        a, first_of = np.unique(g_first - lengths[:groups], return_index=True)
        b = (g_last + 1 + lengths[groups:])[first_of]
        kept = np.ones(nodes.size, dtype=bool)
        kept[np.nonzero(is_parity)[0][hit]] = False
        return self._resolve_stretches(
            prototype, state, nodes[kept], a, b, row_stride
        )

    def _resolve_stretches(
        self,
        prototype: "LDGMPrototype",
        state: _PeelState,
        survivors: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        row_stride: int,
    ) -> np.ndarray:
        """Apply resolved chain stretches directly to the peeling state.

        Every bidiagonal edge of a stretch parity lands inside the stretch
        -- rows there lose both their parities, so their packed words
        become exactly zero -- or on one of the stretch's two boundary
        rows; the triangle's extra below-diagonal edges are routed through
        the prototype's parity-extra CSR (an extra edge can never point
        into a stretch: a chain-eligible row's extra parity is already
        known).  The stretch parities are marked known here and never
        enter the frontier, which removes the bulk of the bidiagonal
        codes' scatter-update traffic; the entries that led into the
        stretches were already dropped from ``survivors`` (their
        application is part of the stretch updates), and whatever the
        boundary/extra decrements reveal joins the next frontier.
        """
        N, k = prototype.n, prototype.k
        num_checks = prototype.num_checks
        packed = state.packed
        known = state.known
        a_run = a // row_stride
        a_loc = a - a_run * row_stride
        counts_rows = b - a
        # Stretch rows lose both their parities: count 2 -> 0, sum -> 0.
        row_total = int(counts_rows.sum())
        row_ends = np.cumsum(counts_rows)
        stretch_rows = np.arange(row_total, dtype=np.int64) + np.repeat(
            a - (row_ends - counts_rows), counts_rows
        )
        packed[stretch_rows] = 0
        # Stretch parities k+(a-1) .. k+(b-1) become known without ever
        # entering the frontier.
        counts_par = counts_rows + 1
        par_total = int(counts_par.sum())
        par_ends = np.cumsum(counts_par)
        par_t = np.arange(par_total, dtype=np.int64) + np.repeat(
            a_loc - 1 - (par_ends - counts_par), counts_par
        )
        par_runs = np.repeat(a_run, counts_par)
        par_nodes = par_runs * np.int64(N) + k + par_t
        known[par_nodes] = True
        # Boundary rows: row a-1 loses the stretch's first parity (its own),
        # row b its last (its previous) -- unless the stretch ends at the
        # final check row.  Batched through subtract.at: one row can be the
        # boundary of two stretches, exactly like repeated rows in the
        # cascade's scatter update.
        has_down = (b - a_run * row_stride) < num_checks
        update_rows = np.concatenate([a - 1, b[has_down]])
        update_locals = np.concatenate(
            [k + a_loc - 1, k + (b - a_run * row_stride)[has_down] - 1]
        )
        update_runs = np.concatenate([a_run, a_run[has_down]])
        # Extra below-diagonal edges of the stretch parities (triangle).
        extra_degrees = prototype.parity_extra_degrees[par_t]
        extra_total = int(extra_degrees.sum())
        if extra_total:
            extra_ends = np.cumsum(extra_degrees)
            extra_pos = np.arange(extra_total, dtype=np.int64) + np.repeat(
                prototype.parity_extra_indptr[par_t]
                - (extra_ends - extra_degrees),
                extra_degrees,
            )
            extra_runs = np.repeat(par_runs, extra_degrees)
            update_rows = np.concatenate(
                [
                    update_rows,
                    prototype.parity_extra_rows[extra_pos]
                    + extra_runs * row_stride,
                ]
            )
            update_locals = np.concatenate(
                [update_locals, np.repeat(k + par_t, extra_degrees)]
            )
            update_runs = np.concatenate([update_runs, extra_runs])
        np.subtract.at(
            packed, update_rows, update_locals + (np.int64(1) << COUNT_SHIFT)
        )
        words = packed[update_rows]
        trigger = (words >> COUNT_SHIFT) == 1
        if not trigger.any():
            return survivors
        trigger_runs = update_runs[trigger]
        candidates = (words[trigger] & SUM_MASK) + trigger_runs * np.int64(N)
        candidates = candidates[
            (~known[candidates]) & (state.source_counts[trigger_runs] < k)
        ]
        return np.concatenate([survivors, candidates])

    def _chain_run_length(
        self,
        packed: np.ndarray,
        chain_flat: np.ndarray,
        pos: np.ndarray,
        sign: np.ndarray,
    ) -> np.ndarray:
        """Consecutive chain-eligible rows from each ``pos``, walking ``sign``.

        Windowed with geometric growth: each iteration gathers the next
        ``window`` rows per still-walking chain (``sign`` gives each walk's
        direction) and finds the first non-eligible one, so short chains
        (the common case) cost one tiny gather and a length-L chain costs
        O(log L) dispatches.  Walks never escape their run block: row 0 and
        the sentinel slot carry the impossible expected word, and the index
        clip at the array edges lands on one of them.
        """
        window = self._CHAIN_WINDOW_FIRST
        total = np.zeros(pos.size, dtype=np.int64)
        alive = np.arange(pos.size, dtype=np.int64)
        cur = pos.copy()
        limit = packed.size - 1
        while alive.size:
            offsets = np.arange(window, dtype=np.int64)
            index = cur[alive, None] + offsets[None, :] * sign[alive, None]
            index.clip(0, limit, out=index)
            # A sentinel True column makes argmax itself the run length
            # (a full-window run yields ``window``, marking the walk alive).
            blocked = np.ones((index.shape[0], window + 1), dtype=bool)
            np.not_equal(packed[index], chain_flat[index], out=blocked[:, :window])
            lengths = blocked.argmax(axis=1)
            total[alive] += lengths
            alive = alive[lengths == window]
            cur[alive] += window * sign[alive]
            window = min(window * 4, self._CHAIN_WINDOW_MAX)
        return total

    # ------------------------------------------------------------------
    # Gilbert sojourn fill.
    # ------------------------------------------------------------------

    def fill_sojourns(
        self,
        mask: np.ndarray,
        filled: int,
        in_loss_state: bool,
        gap_runs: np.ndarray,
        burst_runs: np.ndarray,
    ) -> int:
        """Vectorised sojourn expansion (``np.repeat``; no per-packet loop).

        The serial chain consumes sojourn ``index`` from the array of its
        current state and toggles the state after every sojourn, so the
        states alternate along the batch and each array only contributes
        its even or odd positions.
        """
        count = mask.shape[0]
        even_position = np.arange(gap_runs.shape[0]) % 2 == 0
        states = np.where(even_position, in_loss_state, not in_loss_state)
        runs = np.where(states, burst_runs, gap_runs)
        remaining = count - filled
        # Cap sojourns at the remaining space, as the serial chain does
        # per sojourn; tiny p/q make rng.geometric saturate at 2**63 - 1
        # and an uncapped cumulative sum would overflow.  The cap cannot
        # change which sojourn crosses ``remaining`` or any earlier one.
        runs = np.minimum(runs, remaining)
        cumulative = np.cumsum(runs)
        if cumulative[-1] >= remaining:
            # The batch overshoots: truncate the final sojourn so the
            # expansion ends exactly at ``count`` (the serial chain caps
            # each sojourn at the remaining space the same way).
            cut = int(np.searchsorted(cumulative, remaining))
            runs = runs[: cut + 1].copy()
            runs[cut] = remaining - (cumulative[cut - 1] if cut else 0)
            mask[filled:] = np.repeat(states[: cut + 1], runs)
            return count
        segment = np.repeat(states, runs)
        mask[filled : filled + segment.size] = segment
        return filled + segment.size


__all__ = ["NumpyBackend"]
