"""Kernel-backend interface and the flattened received-batch container.

A :class:`KernelBackend` owns the *hot loops* of the decode path -- the
LDGM peeling cascade behind the gallop+bisect prefix search and the
Gilbert sojourn fill -- behind a small, swappable surface.  Everything
else (prototype compilation, closed-form RSE/repetition counting, the
run/sweep orchestration) is backend-independent numpy.

All backends are **bit-identical**: for any input they must produce
exactly the arrays the incremental reference decoder produces.  The test
suite enforces this across every registered backend, so a backend is a
pure wall-clock knob, never a semantics knob.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.fastpath.prototypes import LDGMPrototype

#: ``n_necessary`` sentinel in the integer result array of a batch decode
#: for runs that never decode.
NOT_DECODED = -1

#: Bit position splitting a packed peeling word into (unknown count, id sum).
COUNT_SHIFT = 40
SUM_MASK = (1 << COUNT_SHIFT) - 1

#: Word of the per-run sentinel row appended after the real check rows: a
#: huge unknown count that can never reach one, so it separates run blocks
#: in the stacked state (the chain walk stops on it) without ever
#: triggering a reveal.  No update ever lands on it.
SENTINEL_WORD = np.int64(1) << (COUNT_SHIFT + 22)


@dataclass(frozen=True)
class ReceivedBatch:
    """A batch of received-index sequences, flattened once.

    The decoders used to re-concatenate the per-run arrays on every call
    (and the LDGM prefix search again per probe); flattening once per work
    unit and slicing by offsets makes a sub-batch a pair of views instead
    of a copy.

    Attributes
    ----------
    flat:
        All runs' received packet indices concatenated, in run order
        (plain per-code indices; no run stacking applied).
    offsets:
        Start of each run inside ``flat`` (``int64``, one per run).
    lengths:
        Number of indices of each run (``int64``, one per run).
    """

    flat: np.ndarray
    offsets: np.ndarray
    lengths: np.ndarray

    @classmethod
    def from_sequences(cls, received: Sequence[np.ndarray]) -> "ReceivedBatch":
        """Flatten a list of per-run index arrays into one batch."""
        lengths = np.fromiter(
            (r.size for r in received), dtype=np.int64, count=len(received)
        )
        offsets = np.zeros(len(received), dtype=np.int64)
        if lengths.size:
            np.cumsum(lengths[:-1], out=offsets[1:])
        if lengths.sum() == 0:
            flat = np.zeros(0, dtype=np.int64)
        else:
            flat = np.concatenate(
                [np.asarray(r, dtype=np.int64) for r in received]
            )
        return cls(flat=flat, offsets=offsets, lengths=lengths)

    @classmethod
    def coerce(cls, received) -> "ReceivedBatch":
        """Accept either a ready batch or a sequence of per-run arrays."""
        if isinstance(received, ReceivedBatch):
            return received
        return cls.from_sequences(received)

    @property
    def num_runs(self) -> int:
        return int(self.lengths.size)

    def __len__(self) -> int:
        return self.num_runs

    def run(self, index: int) -> np.ndarray:
        """View of one run's received sequence."""
        start = int(self.offsets[index])
        return self.flat[start : start + int(self.lengths[index])]

    def sequences(self) -> Iterator[np.ndarray]:
        """Iterate per-run views (for fallback/incremental consumers)."""
        for index in range(self.num_runs):
            yield self.run(index)

    def slice(self, start: int, stop: int) -> "ReceivedBatch":
        """Sub-batch of runs ``start..stop`` -- views, no data copy."""
        if start == 0 and stop >= self.num_runs:
            return self
        lengths = self.lengths[start:stop]
        offsets = self.offsets[start:stop]
        if lengths.size == 0:
            return ReceivedBatch(
                flat=self.flat[:0], offsets=offsets, lengths=lengths
            )
        base = int(offsets[0])
        end = int(offsets[-1] + lengths[-1])
        return ReceivedBatch(
            flat=self.flat[base:end], offsets=offsets - base, lengths=lengths
        )


class KernelBackend(abc.ABC):
    """One implementation of the decode hot loops.

    Backends are stateless (safe to share across codes, threads use the
    GIL anyway) and selected through :func:`repro.kernels.get_backend`.
    """

    #: Registry name; also what ``REPRO_KERNEL`` / ``--kernel`` match.
    name: str = "abstract"

    #: Whether :meth:`ldgm_decode_batch` stacks the whole batch's peeling
    #: state into one allocation (the numpy lockstep search does); callers
    #: chunk such batches to bound peak memory.  Per-run backends leave it
    #: False and take batches of any size.
    stacks_batches: bool = False

    @abc.abstractmethod
    def ldgm_decode_batch(
        self, prototype: "LDGMPrototype", batch: ReceivedBatch
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched minimal-decodable-prefix search over an LDGM prototype.

        Returns ``(decoded, n_necessary)`` exactly as the incremental
        decoder would: ``n_necessary`` is the 1-based arrival position of
        the packet completing decoding, ``-1`` where the run never decodes.
        """

    @abc.abstractmethod
    def fill_sojourns(
        self,
        mask: np.ndarray,
        filled: int,
        in_loss_state: bool,
        gap_runs: np.ndarray,
        burst_runs: np.ndarray,
    ) -> int:
        """Expand one batch of Gilbert sojourn lengths into ``mask``.

        The sojourns alternate starting from ``in_loss_state`` (the batch
        has even length, so the caller's state is unchanged after a full
        batch); each sojourn is capped at the space remaining, exactly as
        the serial reference chain caps it.  Returns the new fill count.
        """

    def fill_sojourns_batch(
        self,
        masks: np.ndarray,
        states: np.ndarray,
        gap_runs: np.ndarray,
        burst_runs: np.ndarray,
    ) -> np.ndarray:
        """Expand one sojourn batch per run into the rows of ``masks``.

        ``masks`` is ``(runs, count)``; ``states`` the per-run initial
        states; ``gap_runs``/``burst_runs`` are ``(runs, batch)`` matrices
        of drawn sojourn lengths.  Row ``i`` is filled exactly like
        ``fill_sojourns(masks[i], 0, states[i], gap_runs[i],
        burst_runs[i])``; rows whose batch does not cover ``count`` are
        left partially filled (the caller continues them chain-style).
        Returns the per-run fill counts.  Backends with a compiled batch
        kernel override this to amortise the per-row call overhead.
        """
        filled = np.empty(masks.shape[0], dtype=np.int64)
        for index in range(masks.shape[0]):
            filled[index] = self.fill_sojourns(
                masks[index], 0, bool(states[index]), gap_runs[index], burst_runs[index]
            )
        return filled

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<{type(self).__name__} name={self.name!r}>"


__all__ = [
    "KernelBackend",
    "ReceivedBatch",
    "NOT_DECODED",
    "COUNT_SHIFT",
    "SUM_MASK",
    "SENTINEL_WORD",
]
