"""Loop-style kernels shared by the ``python`` and ``numba`` backends.

These functions are written in the restricted subset of Python/numpy that
``numba.njit`` compiles in nopython mode: scalar loops over preallocated
arrays, no Python objects, no fancy indexing.  The ``numba`` backend
compiles them verbatim; the ``python`` backend runs them as-is, which keeps
the exact code the JIT executes testable (and the equivalence suite
meaningful) on machines without numba.

Inside a compiled kernel the incremental peeling algorithm *is* the fast
one: each run walks its received sequence once, cascading reveals through
an explicit stack, so ``n_necessary`` falls out of the walk directly -- no
prefix bisection, no lockstep batching, no per-round dispatch overhead.
The bookkeeping mirrors the symbolic decoder exactly (per-row unknown
count plus an id *sum* standing in for the XOR accumulator: the sum of a
single remaining unknown identifies it), so results are bit-identical.
"""

from __future__ import annotations

import numpy as np


def ldgm_peel_batch(
    col_indptr: np.ndarray,
    col_rows: np.ndarray,
    init_counts: np.ndarray,
    init_sums: np.ndarray,
    flat: np.ndarray,
    offsets: np.ndarray,
    lengths: np.ndarray,
    k: int,
    n: int,
    decoded: np.ndarray,
    n_necessary: np.ndarray,
) -> None:
    """Incremental peeling decode of every run in a flattened batch.

    Parameters mirror the prototype's precompiled arrays: ``col_indptr`` /
    ``col_rows`` is the column-to-check-row CSR adjacency, ``init_counts``
    / ``init_sums`` the no-packets-yet per-row state that every run copies.
    ``decoded`` (bool) and ``n_necessary`` (int64, preset to -1) are filled
    in place, one entry per run.
    """
    num_checks = init_counts.shape[0]
    for run in range(lengths.shape[0]):
        counts = init_counts.copy()
        sums = init_sums.copy()
        known = np.zeros(n, dtype=np.bool_)
        # Each check row crosses "one unknown left" at most once over the
        # whole run, so reveal pushes are bounded by num_checks (+1 for the
        # packet that starts a cascade).
        stack = np.empty(num_checks + 1, dtype=np.int64)
        sources = 0
        start = offsets[run]
        end = start + lengths[run]
        complete = False
        for pos in range(start, end):
            node = flat[pos]
            if known[node]:
                # Duplicate packet, or a node an earlier cascade already
                # recovered: a no-op, exactly as in the incremental decoder.
                continue
            top = 0
            stack[0] = node
            while top >= 0:
                v = stack[top]
                top -= 1
                if known[v]:
                    continue
                known[v] = True
                if v < k:
                    sources += 1
                    if sources == k:
                        # All sources recovered: stop mid-cascade, like the
                        # incremental decoder's early return on completion.
                        n_necessary[run] = pos - start + 1
                        complete = True
                        break
                for edge in range(col_indptr[v], col_indptr[v + 1]):
                    row = col_rows[edge]
                    counts[row] -= 1
                    sums[row] -= v
                    if counts[row] == 1:
                        # One unknown left: its id sum *is* the node.
                        candidate = sums[row]
                        if not known[candidate]:
                            top += 1
                            stack[top] = candidate
            if complete:
                break
        decoded[run] = complete


def fill_sojourns(
    mask: np.ndarray,
    filled: int,
    in_loss_state: bool,
    gap_runs: np.ndarray,
    burst_runs: np.ndarray,
) -> int:
    """Expand one batch of Gilbert sojourn lengths into ``mask``.

    The historical serial chain, minus the geometric draws (the caller
    draws them so every backend consumes the generator identically):
    sojourns alternate between the loss and no-loss state starting from
    ``in_loss_state``, each capped at the space remaining.
    """
    count = mask.shape[0]
    state = in_loss_state
    for index in range(gap_runs.shape[0]):
        length = burst_runs[index] if state else gap_runs[index]
        remaining = count - filled
        if length > remaining:
            length = remaining
        for position in range(filled, filled + length):
            mask[position] = state
        filled += length
        state = not state
        if filled >= count:
            break
    return filled


__all__ = ["ldgm_peel_batch", "fill_sojourns"]
