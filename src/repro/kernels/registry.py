"""Kernel-backend registry and selection.

Resolution order for :func:`get_backend`:

1. an explicit ``kernel=`` argument (a name or a ready backend instance),
2. the ``REPRO_KERNEL`` environment variable,
3. ``auto``: the best compiled backend that works on this machine --
   ``numba`` when importable, else ``cext`` when a C compiler is on the
   PATH, else the ``numpy`` reference (:data:`AUTO_ORDER`).

Backends are instantiated lazily and cached per name, so the numba import
(and JIT warm-up / C compile) is only ever paid when the backend is
actually selected.
Asking explicitly for an unavailable backend raises
:class:`KernelUnavailableError` with an actionable message instead of
silently degrading -- silent degradation is reserved for ``auto``.
"""

from __future__ import annotations

import importlib.util
import logging
import os
from typing import Callable, Dict, Optional, Tuple, Union

from repro.kernels.base import KernelBackend

logger = logging.getLogger("repro.kernels")

#: Environment variable consulted when no explicit kernel is given.
ENV_VAR = "REPRO_KERNEL"

#: ``kernel=`` arguments accepted everywhere: a registry name, a ready
#: backend instance, or None (environment / auto resolution).
KernelSpec = Union[str, KernelBackend, None]


class KernelUnavailableError(RuntimeError):
    """A known kernel backend cannot be constructed on this machine."""


_FACTORIES: Dict[str, Callable[[], KernelBackend]] = {}
_INSTANCES: Dict[str, KernelBackend] = {}


def register_backend(
    name: str, factory: Callable[[], KernelBackend], *, replace: bool = False
) -> None:
    """Register a backend factory under ``name`` (lowercase).

    Third-party backends registered here become selectable through
    ``REPRO_KERNEL`` / ``--kernel`` / ``kernel=`` like the built-ins.
    """
    key = name.strip().lower()
    if not replace and key in _FACTORIES:
        raise ValueError(f"kernel backend {key!r} is already registered")
    _FACTORIES[key] = factory
    _INSTANCES.pop(key, None)


def numba_available() -> bool:
    """Whether the numba backend could be constructed (spec check only)."""
    return importlib.util.find_spec("numba") is not None


def cext_compiler_available() -> bool:
    """Whether a C compiler for the cext backend is on the PATH."""
    from repro.kernels.cext import compiler

    return compiler() is not None


def cext_openmp_enabled() -> Optional[bool]:
    """Whether the cext library was built with OpenMP (``None``: no cext).

    Provenance helper for BENCH entries and the CLI header: ``True`` means
    threaded peel/sojourn kernels, ``False`` the serial-fallback build
    (probe compile failed), ``None`` that the backend cannot be
    constructed here at all.
    """
    if not cext_compiler_available():
        return None
    try:
        backend = _construct("cext")
    except KernelUnavailableError:
        return None
    return bool(getattr(backend, "openmp", False))


#: ``auto`` preference order: compiled backends first, numpy always last
#: (it can never fail to construct).
AUTO_ORDER: Tuple[str, ...] = ("numba", "cext", "numpy")


def available_backends() -> Tuple[str, ...]:
    """Names selectable on this machine, in registration order.

    Availability is probed cheaply (import spec / compiler on PATH); a
    listed compiled backend can still fail to construct in degenerate
    environments, which ``auto`` degrades through and an explicit request
    reports as :class:`KernelUnavailableError`.
    """
    names = []
    for name in _FACTORIES:
        if name == "numba" and not numba_available():
            continue
        if name == "cext" and not cext_compiler_available():
            continue
        names.append(name)
    return tuple(names)


def default_backend_name() -> str:
    """What ``auto`` resolves to on this machine."""
    usable = available_backends()
    for name in AUTO_ORDER:
        if name in usable:
            return name
    return "numpy"


def _construct(name: str) -> KernelBackend:
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown kernel backend {name!r}; registered: "
            f"{', '.join(sorted(_FACTORIES))}"
        )
    try:
        instance = factory()
    except ImportError as exc:
        raise KernelUnavailableError(
            f"kernel backend {name!r} is not available on this machine "
            f"({exc}); install it or select kernel='auto' / 'numpy'"
        ) from exc
    _INSTANCES[name] = instance
    return instance


def get_backend(kernel: KernelSpec = None) -> KernelBackend:
    """Resolve a kernel spec to a backend instance (cached per name)."""
    if isinstance(kernel, KernelBackend):
        return kernel
    if kernel is None:
        kernel = os.environ.get(ENV_VAR, "").strip() or "auto"
    name = kernel.strip().lower()
    if name != "auto":
        return _construct(name)
    # auto: best compiled backend that actually constructs, else numpy --
    # never an error (explicit selection is where failures surface).
    for candidate in AUTO_ORDER:
        if candidate not in _FACTORIES:
            continue
        if candidate == "numba" and not numba_available():
            continue
        if candidate == "cext" and not cext_compiler_available():
            continue
        try:
            return _construct(candidate)
        except KernelUnavailableError:
            continue
    return _construct("numpy")


def get_backend_for_run(kernel: KernelSpec = None) -> KernelBackend:
    """Resolve a kernel for an *already running* sweep, degrading on failure.

    Planning-time resolution (:func:`get_backend`) fails fast so a typo'd
    ``--kernel`` aborts before any simulation.  At run time the trade-off
    flips: a backend that resolved on the coordinator can still fail to
    construct in a worker process (no C compiler on this host, a numba
    install that crashes on import), and aborting a half-finished sweep
    over a wall-clock knob would throw away work.  All kernel backends
    are bit-identical, so the safe move is to fall back down the ``auto``
    chain with a logged warning and keep the results flowing.
    """
    try:
        return get_backend(kernel)
    except (KernelUnavailableError, ValueError) as error:
        requested = kernel
        if requested is None:
            requested = os.environ.get(ENV_VAR, "").strip() or "auto"
        logger.warning(
            "kernel backend %r failed to construct at run time (%s); "
            "falling back to auto selection",
            requested,
            error,
        )
        # ``auto`` never raises; it degrades through AUTO_ORDER down to
        # numpy.  Passed explicitly so a broken REPRO_KERNEL value is
        # not consulted a second time.
        return get_backend("auto")


def _numpy_factory() -> KernelBackend:
    from repro.kernels.numpy_backend import NumpyBackend

    return NumpyBackend()


def _python_factory() -> KernelBackend:
    from repro.kernels.python_backend import PythonBackend

    return PythonBackend()


def _numba_factory() -> KernelBackend:
    from repro.kernels.numba_backend import NumbaBackend

    return NumbaBackend()


def _cext_factory() -> KernelBackend:
    from repro.kernels.cext import CExtBackend

    return CExtBackend()


register_backend("numpy", _numpy_factory)
register_backend("numba", _numba_factory)
register_backend("cext", _cext_factory)
register_backend("python", _python_factory)


__all__ = [
    "ENV_VAR",
    "AUTO_ORDER",
    "KernelSpec",
    "KernelUnavailableError",
    "register_backend",
    "available_backends",
    "default_backend_name",
    "numba_available",
    "cext_compiler_available",
    "cext_openmp_enabled",
    "get_backend",
    "get_backend_for_run",
]
