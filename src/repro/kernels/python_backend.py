"""Plain-Python loop backend: the uncompiled twin of the numba backend.

Runs the exact kernel functions of :mod:`repro.kernels.loops` without a
JIT.  Far slower than the ``numpy`` backend (Python-level loops over every
packet), it exists so the code the numba backend compiles stays testable
-- and provably bit-identical -- on machines without numba; the
cross-backend equivalence suite exercises it unconditionally.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

import numpy as np

from repro.kernels import loops
from repro.kernels.base import NOT_DECODED, KernelBackend, ReceivedBatch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fastpath.prototypes import LDGMPrototype


class PythonBackend(KernelBackend):
    """Uncompiled loop kernels (testing / reference for ``numba``)."""

    name = "python"

    #: Kernel entry points; the numba backend swaps in their JIT twins.
    _peel = staticmethod(loops.ldgm_peel_batch)
    _fill = staticmethod(loops.fill_sojourns)

    def ldgm_decode_batch(
        self, prototype: "LDGMPrototype", batch: ReceivedBatch
    ) -> Tuple[np.ndarray, np.ndarray]:
        decoded = np.zeros(batch.num_runs, dtype=bool)
        n_necessary = np.full(batch.num_runs, NOT_DECODED, dtype=np.int64)
        if batch.flat.size:
            self._peel(
                prototype.col_indptr,
                prototype.col_rows,
                prototype.row_degrees,
                prototype.row_sums,
                batch.flat,
                batch.offsets,
                batch.lengths,
                prototype.k,
                prototype.n,
                decoded,
                n_necessary,
            )
        return decoded, n_necessary

    def fill_sojourns(
        self,
        mask: np.ndarray,
        filled: int,
        in_loss_state: bool,
        gap_runs: np.ndarray,
        burst_runs: np.ndarray,
    ) -> int:
        return int(self._fill(mask, filled, in_loss_state, gap_runs, burst_runs))


__all__ = ["PythonBackend"]
