"""Pluggable kernel backends for the decode hot loops.

The fast path's remaining wall-clock cost is concentrated in three loops:
the LDGM batch-peel cascade, the gallop+bisect prefix search it serves,
and the Gilbert sojourn fill.  This package puts them behind a swappable
:class:`~repro.kernels.base.KernelBackend`:

* ``numpy`` -- the always-available vectorised reference, with a
  chain-aware cascade for the bidiagonal (staircase/triangle) parity
  structures.
* ``numba`` -- the loop kernels of :mod:`repro.kernels.loops` JIT-compiled
  to machine code; auto-selected when numba is importable, never required.
* ``cext`` -- the same kernels in C, compiled on demand with the system
  compiler (``cc -O2``) and loaded via ctypes; auto-selected when numba
  is absent but a compiler is present.
* ``python`` -- the loop kernels uncompiled, so the compiled code paths
  stay testable without numba or a C toolchain.

Selection: ``kernel=`` kwargs threaded through ``compile_prototype``,
``Simulator.run_many``, the runner work units and ``python -m repro run
--kernel``; the ``REPRO_KERNEL`` environment variable; or ``auto`` (the
default).  Every backend is bit-identical to the incremental reference
decoder -- the equivalence suite enforces it -- so the choice is purely a
wall-clock knob.
"""

from repro.kernels.base import (
    COUNT_SHIFT,
    NOT_DECODED,
    SENTINEL_WORD,
    SUM_MASK,
    KernelBackend,
    ReceivedBatch,
)
from repro.kernels.registry import (
    AUTO_ORDER,
    ENV_VAR,
    KernelSpec,
    KernelUnavailableError,
    available_backends,
    cext_compiler_available,
    default_backend_name,
    get_backend,
    get_backend_for_run,
    numba_available,
    register_backend,
)

__all__ = [
    "KernelBackend",
    "ReceivedBatch",
    "NOT_DECODED",
    "COUNT_SHIFT",
    "SUM_MASK",
    "SENTINEL_WORD",
    "ENV_VAR",
    "KernelSpec",
    "KernelUnavailableError",
    "register_backend",
    "available_backends",
    "default_backend_name",
    "numba_available",
    "cext_compiler_available",
    "AUTO_ORDER",
    "get_backend",
    "get_backend_for_run",
]
