"""Pluggable kernel backends for the decode hot loops.

The fast path's remaining wall-clock cost is concentrated in three loops:
the LDGM batch-peel cascade, the gallop+bisect prefix search it serves,
and the Gilbert sojourn fill.  This package puts them behind a swappable
:class:`~repro.kernels.base.KernelBackend`:

* ``numpy`` -- the always-available vectorised reference, with a
  chain-aware cascade for the bidiagonal (staircase/triangle) parity
  structures.
* ``numba`` -- the loop kernels of :mod:`repro.kernels.loops` JIT-compiled
  to machine code; auto-selected when numba is importable, never required.
* ``cext`` -- the same kernels in C, compiled on demand with the system
  compiler (``cc -O2``) and loaded via ctypes; auto-selected when numba
  is absent but a compiler is present.
* ``python`` -- the loop kernels uncompiled, so the compiled code paths
  stay testable without numba or a C toolchain.

Selection: ``kernel=`` kwargs threaded through ``compile_prototype``,
``Simulator.run_many``, the runner work units and ``python -m repro run
--kernel``; the ``REPRO_KERNEL`` environment variable; or ``auto`` (the
default).  Every backend is bit-identical to the incremental reference
decoder -- the equivalence suite enforces it -- so the choice is purely a
wall-clock knob.

The compiled ``cext`` kernels additionally run row-parallel over a work
unit's runs (OpenMP, with a probed serial fallback); the thread count is
the ``kernel_threads`` knob of :mod:`repro.kernels.threads` -- threaded
through the same call sites as ``kernel``, resolved from
``REPRO_KERNEL_THREADS`` / ``auto`` = physical cores divided by the
executor's worker count, and bit-identical at any value.
"""

from repro.kernels.base import (
    COUNT_SHIFT,
    NOT_DECODED,
    SENTINEL_WORD,
    SUM_MASK,
    KernelBackend,
    ReceivedBatch,
)
from repro.kernels.registry import (
    AUTO_ORDER,
    ENV_VAR,
    KernelSpec,
    KernelUnavailableError,
    available_backends,
    cext_compiler_available,
    cext_openmp_enabled,
    default_backend_name,
    get_backend,
    get_backend_for_run,
    numba_available,
    register_backend,
)
from repro.kernels.threads import (
    THREADS_ENV_VAR,
    ThreadSpec,
    current_thread_count,
    normalize_thread_spec,
    physical_cores,
    resolve_thread_count,
    set_worker_divisor,
    thread_count_context,
    worker_divisor_context,
)

__all__ = [
    "KernelBackend",
    "ReceivedBatch",
    "NOT_DECODED",
    "COUNT_SHIFT",
    "SUM_MASK",
    "SENTINEL_WORD",
    "ENV_VAR",
    "KernelSpec",
    "KernelUnavailableError",
    "register_backend",
    "available_backends",
    "default_backend_name",
    "numba_available",
    "cext_compiler_available",
    "cext_openmp_enabled",
    "AUTO_ORDER",
    "get_backend",
    "get_backend_for_run",
    "THREADS_ENV_VAR",
    "ThreadSpec",
    "normalize_thread_spec",
    "physical_cores",
    "resolve_thread_count",
    "current_thread_count",
    "thread_count_context",
    "set_worker_divisor",
    "worker_divisor_context",
]
