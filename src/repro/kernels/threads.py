"""Kernel thread-count resolution: the ``kernel_threads`` knob.

The compiled kernels (:mod:`repro.kernels.cext`) can run their per-run
loops row-parallel with OpenMP.  Runs within a work unit are independent
rows -- each run writes its own ``decoded[run]`` / ``n_necessary[run]``
slot and peels on private scratch -- so parallel-over-runs is *exact*:
1 thread and N threads produce bit-identical arrays, and the thread count
is a pure wall-clock knob (excluded from cache keys, like ``kernel``).

Resolution order, mirroring the kernel-backend selection:

1. an explicit ``kernel_threads=`` argument (``--kernel-threads`` on the
   CLI, the ``kernel_threads`` field of a :class:`~repro.runner.units.WorkUnit`),
2. the ``REPRO_KERNEL_THREADS`` environment variable,
3. ``auto`` (the default): the machine's physical core count divided by
   the number of executor workers sharing this process' socket.

The division in step 3 is the **oversubscription rule**: executor workers
x kernel threads never exceeds the physical cores.  Executors declare
their local parallelism through :func:`worker_divisor` before dispatching
units (the thread executor in-process, the process pool via its worker
initializer), so ``--workers 4 --kernel-threads auto`` on a 16-core box
gives each worker 4 kernel threads instead of 4x16 runnable threads.

The *requested* spec travels as data (a normalised string on the work
unit); the *resolved* integer is looked up at the kernel call site via
:func:`current_thread_count`, scoped by :func:`thread_count_context` in
the executing process.  The context is thread-local, so thread-executor
workers cannot race each other's resolution.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator, Optional, Union

#: Environment variable consulted when no explicit thread count is given.
THREADS_ENV_VAR = "REPRO_KERNEL_THREADS"

#: ``kernel_threads=`` arguments accepted everywhere: a positive integer,
#: a numeric string, ``"auto"``, or None (environment / auto resolution).
ThreadSpec = Union[int, str, None]

_local = threading.local()

#: Executor workers sharing this process' cores; ``auto`` divides by it.
_worker_divisor = 1

_physical_cores: Optional[int] = None


def normalize_thread_spec(spec: ThreadSpec) -> Optional[str]:
    """Validate a thread spec and normalise it to ``None``/``"auto"``/digits.

    The normalised form is what :class:`~repro.runner.units.WorkUnit`
    stores (a plain string keeps units picklable and JSON-clean), and a
    bad ``--kernel-threads`` fails here, at planning time, not inside a
    worker.
    """
    if spec is None:
        return None
    if isinstance(spec, str):
        value = spec.strip().lower()
        if not value:
            return None
        if value == "auto":
            return "auto"
        try:
            spec = int(value)
        except ValueError:
            raise ValueError(
                f"kernel_threads must be a positive integer or 'auto', got {spec!r}"
            ) from None
    if isinstance(spec, bool) or not isinstance(spec, int) or spec < 1:
        raise ValueError(
            f"kernel_threads must be a positive integer or 'auto', got {spec!r}"
        )
    return str(spec)


def physical_cores() -> int:
    """Physical core count (``auto``'s numerator), hyperthreads excluded.

    Parsed from ``/proc/cpuinfo`` where available -- oversubscribing
    hyperthreads buys nothing for these memory-bound loops -- with
    ``os.cpu_count()`` as the portable fallback.
    """
    global _physical_cores
    if _physical_cores is None:
        _physical_cores = _count_physical_cores()
    return _physical_cores


def _count_physical_cores() -> int:
    fallback = os.cpu_count() or 1
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError:
        return fallback
    cores = set()
    physical_id = core_id = None
    for line in text.splitlines():
        key, _, value = line.partition(":")
        key = key.strip()
        if key == "physical id":
            physical_id = value.strip()
        elif key == "core id":
            core_id = value.strip()
        elif not line.strip():
            if core_id is not None:
                cores.add((physical_id, core_id))
            physical_id = core_id = None
    if core_id is not None:
        cores.add((physical_id, core_id))
    count = len(cores)
    return count if count > 0 else fallback


def set_worker_divisor(workers: int) -> int:
    """Declare how many executor workers share this process' cores.

    Returns the previous divisor so callers can restore it; ``auto``
    thread counts become ``max(1, physical_cores() // workers)``.
    """
    global _worker_divisor
    previous = _worker_divisor
    _worker_divisor = max(1, int(workers))
    return previous


def worker_divisor() -> int:
    """The currently declared executor-worker divisor."""
    return _worker_divisor


@contextmanager
def worker_divisor_context(workers: int) -> Iterator[None]:
    """Scope :func:`set_worker_divisor` to a dispatch loop."""
    previous = set_worker_divisor(workers)
    try:
        yield
    finally:
        set_worker_divisor(previous)


def _spec_stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


@contextmanager
def thread_count_context(spec: ThreadSpec) -> Iterator[None]:
    """Make ``spec`` the active thread request for this thread's kernels.

    ``None`` is a no-op (an enclosing context, the environment, or
    ``auto`` resolves instead), so nesting ``kernel_threads=None`` calls
    inside an explicit selection inherits the outer choice.
    """
    normalized = normalize_thread_spec(spec)
    if normalized is None:
        yield
        return
    stack = _spec_stack()
    stack.append(normalized)
    try:
        yield
    finally:
        stack.pop()


def resolve_thread_count(spec: ThreadSpec = None) -> int:
    """Resolve a thread spec to a concrete positive thread count."""
    normalized = normalize_thread_spec(spec)
    if normalized is None:
        normalized = normalize_thread_spec(os.environ.get(THREADS_ENV_VAR))
    if normalized is None or normalized == "auto":
        return max(1, physical_cores() // _worker_divisor)
    return int(normalized)


def current_thread_count() -> int:
    """The thread count a kernel call should use *right now*.

    The innermost :func:`thread_count_context` wins; outside any context
    the environment / ``auto`` chain resolves (so direct backend calls in
    tests and notebooks honour ``REPRO_KERNEL_THREADS`` too).
    """
    stack = getattr(_local, "stack", None)
    if stack:
        return resolve_thread_count(stack[-1])
    return resolve_thread_count(None)


__all__ = [
    "THREADS_ENV_VAR",
    "ThreadSpec",
    "normalize_thread_spec",
    "physical_cores",
    "set_worker_divisor",
    "worker_divisor",
    "worker_divisor_context",
    "thread_count_context",
    "resolve_thread_count",
    "current_thread_count",
]
