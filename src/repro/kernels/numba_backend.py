"""Numba JIT backend: the loop kernels compiled to machine code.

Importing this module requires numba; the registry treats the resulting
``ImportError`` as "backend unavailable" and the ``auto`` selection falls
back to the ``numpy`` backend, so the dependency stays strictly optional.

The kernels themselves live in :mod:`repro.kernels.loops` and are shared
verbatim with the ``python`` backend -- what the JIT executes is exactly
the code the no-numba test legs verify.  ``cache=True`` persists the
compiled artefacts next to ``loops.py`` so only the first process on a
machine pays the compile time.
"""

from __future__ import annotations

import numba

from repro.kernels import loops
from repro.kernels.python_backend import PythonBackend

_jit = numba.njit(cache=True, nogil=True)


class NumbaBackend(PythonBackend):
    """JIT-compiled loop kernels (auto-selected when numba is importable)."""

    name = "numba"

    _peel = staticmethod(_jit(loops.ldgm_peel_batch))
    _fill = staticmethod(_jit(loops.fill_sojourns))


def numba_version() -> str:
    """Version string of the numba the kernels were compiled with."""
    return numba.__version__


__all__ = ["NumbaBackend", "numba_version"]
