"""On-demand C extension backend: the loop kernels compiled with the
system C compiler.

The same two kernels as :mod:`repro.kernels.loops`, written in C,
compiled once per machine with ``cc -O2 -shared -fPIC`` into a cache
directory keyed by the source hash, and loaded through :mod:`ctypes` --
no build-time dependency, no pip package, and fully optional: when no C
compiler is available (or the compile fails, e.g. in a sandbox without a
writable cache), importing this module raises ``ImportError`` and the
registry treats the backend as unavailable, with ``auto`` falling back
to the numpy reference.

Like the numba backend, this is a pure wall-clock knob: the C loops
mirror :mod:`repro.kernels.loops` statement for statement, and the
cross-backend equivalence suite pins them to the incremental decoder.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Tuple

import numpy as np

from repro.kernels.base import NOT_DECODED, KernelBackend, ReceivedBatch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fastpath.prototypes import LDGMPrototype

#: C translation of :func:`repro.kernels.loops.ldgm_peel_batch` and
#: :func:`repro.kernels.loops.fill_sojourns`.  Keep the two in lockstep:
#: the cross-backend tests enforce bit-identical behaviour, and the
#: Python loops are the readable specification of these kernels.
_C_SOURCE = r"""
#include <stdint.h>
#include <string.h>

void ldgm_peel_batch(
    const int64_t *col_indptr, const int64_t *col_rows,
    const int64_t *init_counts, const int64_t *init_sums,
    const int64_t *flat, const int64_t *offsets, const int64_t *lengths,
    int64_t num_runs, int64_t k, int64_t n, int64_t num_checks,
    int64_t *counts, int64_t *sums, uint8_t *known, int64_t *stack,
    uint8_t *decoded, int64_t *n_necessary)
{
    for (int64_t run = 0; run < num_runs; run++) {
        memcpy(counts, init_counts, (size_t)num_checks * sizeof(int64_t));
        memcpy(sums, init_sums, (size_t)num_checks * sizeof(int64_t));
        memset(known, 0, (size_t)n);
        int64_t sources = 0;
        int64_t start = offsets[run];
        int64_t end = start + lengths[run];
        int complete = 0;
        for (int64_t pos = start; pos < end && !complete; pos++) {
            int64_t node = flat[pos];
            if (known[node])
                continue; /* duplicate or already recovered: a no-op */
            int64_t top = 0;
            stack[0] = node;
            while (top >= 0) {
                int64_t v = stack[top--];
                if (known[v])
                    continue;
                known[v] = 1;
                if (v < k && ++sources == k) {
                    /* all sources recovered: stop mid-cascade, like the
                       incremental decoder's early return */
                    n_necessary[run] = pos - start + 1;
                    complete = 1;
                    break;
                }
                for (int64_t e = col_indptr[v]; e < col_indptr[v + 1]; e++) {
                    int64_t r = col_rows[e];
                    counts[r] -= 1;
                    sums[r] -= v;
                    if (counts[r] == 1) {
                        /* one unknown left: its id sum IS the node */
                        int64_t u = sums[r];
                        if (!known[u])
                            stack[++top] = u;
                    }
                }
            }
        }
        decoded[run] = (uint8_t)complete;
    }
}

int64_t fill_sojourns(
    uint8_t *mask, int64_t filled, int64_t count, int in_loss_state,
    const int64_t *gap_runs, const int64_t *burst_runs, int64_t batch)
{
    int state = in_loss_state;
    for (int64_t i = 0; i < batch; i++) {
        int64_t length = state ? burst_runs[i] : gap_runs[i];
        int64_t remaining = count - filled;
        if (length > remaining)
            length = remaining;
        memset(mask + filled, state, (size_t)length);
        filled += length;
        state = !state;
        if (filled >= count)
            break;
    }
    return filled;
}

void fill_sojourns_batch(
    uint8_t *masks, int64_t count, const uint8_t *states,
    const int64_t *gap_runs, const int64_t *burst_runs,
    int64_t num_runs, int64_t batch, int64_t *filled_out)
{
    for (int64_t run = 0; run < num_runs; run++) {
        filled_out[run] = fill_sojourns(
            masks + run * count, 0, count, states[run],
            gap_runs + run * batch, burst_runs + run * batch, batch);
    }
}
"""

_I64 = ctypes.POINTER(ctypes.c_int64)
_U8 = ctypes.POINTER(ctypes.c_uint8)


def _cache_dir() -> Path:
    base = os.environ.get("XDG_CACHE_HOME", "").strip() or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(base) / "repro-kernels"


def compiler() -> str | None:
    """The C compiler used for the extension, or None when absent."""
    return shutil.which(os.environ.get("CC", "").strip() or "cc")


def _build_library() -> Path:
    """Compile the kernels into the cache (once per source revision).

    Every environment failure -- no compiler, compile error, unwritable
    cache directory -- surfaces as ``ImportError`` so the registry treats
    the backend as unavailable and ``auto`` degrades to numpy instead of
    crashing the decode.
    """
    cc = compiler()
    if cc is None:
        raise ImportError("no C compiler (cc) on PATH for the cext backend")
    digest = hashlib.sha256(_C_SOURCE.encode("utf-8")).hexdigest()[:16]
    target = _cache_dir() / f"peel-{digest}.so"
    try:
        if target.exists():
            return target
        target.parent.mkdir(parents=True, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=target.parent) as build_dir:
            source = Path(build_dir) / "peel.c"
            source.write_text(_C_SOURCE, encoding="utf-8")
            artefact = Path(build_dir) / "peel.so"
            result = subprocess.run(
                [cc, "-O2", "-shared", "-fPIC", "-o", str(artefact), str(source)],
                capture_output=True,
                text=True,
            )
            if result.returncode != 0:
                raise ImportError(
                    f"C compile of the cext kernels failed: {result.stderr.strip()}"
                )
            # Atomic publish so concurrent processes never load a
            # half-written library; losing the race is fine, the content
            # is identical.
            os.replace(artefact, target)
    except OSError as exc:
        raise ImportError(f"cext kernel build failed: {exc}") from exc
    return target


def _load_library() -> ctypes.CDLL:
    try:
        lib = ctypes.CDLL(str(_build_library()))
    except OSError as exc:
        raise ImportError(f"cext kernel library failed to load: {exc}") from exc
    lib.ldgm_peel_batch.restype = None
    lib.ldgm_peel_batch.argtypes = [
        _I64, _I64, _I64, _I64, _I64, _I64, _I64,
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
        _I64, _I64, _U8, _I64, _U8, _I64,
    ]
    lib.fill_sojourns.restype = ctypes.c_int64
    lib.fill_sojourns.argtypes = [
        _U8, ctypes.c_int64, ctypes.c_int64, ctypes.c_int,
        _I64, _I64, ctypes.c_int64,
    ]
    lib.fill_sojourns_batch.restype = None
    lib.fill_sojourns_batch.argtypes = [
        _U8, ctypes.c_int64, _U8, _I64, _I64,
        ctypes.c_int64, ctypes.c_int64, _I64,
    ]
    return lib


def _i64(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.int64)


class CExtBackend(KernelBackend):
    """Loop kernels compiled on demand with the system C compiler."""

    name = "cext"

    def __init__(self) -> None:
        self._lib = _load_library()

    def ldgm_decode_batch(
        self, prototype: "LDGMPrototype", batch: ReceivedBatch
    ) -> Tuple[np.ndarray, np.ndarray]:
        num_runs = batch.num_runs
        decoded = np.zeros(num_runs, dtype=np.uint8)
        n_necessary = np.full(num_runs, NOT_DECODED, dtype=np.int64)
        if batch.flat.size:
            num_checks = prototype.num_checks
            counts = np.empty(num_checks, dtype=np.int64)
            sums = np.empty(num_checks, dtype=np.int64)
            known = np.empty(prototype.n, dtype=np.uint8)
            stack = np.empty(num_checks + 2, dtype=np.int64)
            flat = _i64(batch.flat)
            offsets = _i64(batch.offsets)
            lengths = _i64(batch.lengths)
            self._lib.ldgm_peel_batch(
                prototype.col_indptr.ctypes.data_as(_I64),
                prototype.col_rows.ctypes.data_as(_I64),
                prototype.row_degrees.ctypes.data_as(_I64),
                prototype.row_sums.ctypes.data_as(_I64),
                flat.ctypes.data_as(_I64),
                offsets.ctypes.data_as(_I64),
                lengths.ctypes.data_as(_I64),
                num_runs,
                prototype.k,
                prototype.n,
                num_checks,
                counts.ctypes.data_as(_I64),
                sums.ctypes.data_as(_I64),
                known.ctypes.data_as(_U8),
                stack.ctypes.data_as(_I64),
                decoded.ctypes.data_as(_U8),
                n_necessary.ctypes.data_as(_I64),
            )
        return decoded.astype(bool), n_necessary

    def fill_sojourns(
        self,
        mask: np.ndarray,
        filled: int,
        in_loss_state: bool,
        gap_runs: np.ndarray,
        burst_runs: np.ndarray,
    ) -> int:
        return int(
            self._lib.fill_sojourns(
                mask.ctypes.data_as(_U8),
                int(filled),
                int(mask.shape[0]),
                int(bool(in_loss_state)),
                _i64(gap_runs).ctypes.data_as(_I64),
                _i64(burst_runs).ctypes.data_as(_I64),
                int(gap_runs.shape[0]),
            )
        )

    def fill_sojourns_batch(
        self,
        masks: np.ndarray,
        states: np.ndarray,
        gap_runs: np.ndarray,
        burst_runs: np.ndarray,
    ) -> np.ndarray:
        # One C call fills every row: the per-row ctypes marshalling of the
        # loop default (~20 us/run) is what this kernel exists to remove.
        num_runs, count = masks.shape
        filled = np.empty(num_runs, dtype=np.int64)
        if not masks.flags.c_contiguous:  # pragma: no cover - caller allocates
            return super().fill_sojourns_batch(masks, states, gap_runs, burst_runs)
        if num_runs:
            self._lib.fill_sojourns_batch(
                # A view, not a copy: the C rows must land in the caller's
                # array (bool and uint8 share the memory layout).
                masks.view(np.uint8).ctypes.data_as(_U8),
                int(count),
                np.ascontiguousarray(states, dtype=np.uint8).ctypes.data_as(_U8),
                _i64(gap_runs).ctypes.data_as(_I64),
                _i64(burst_runs).ctypes.data_as(_I64),
                int(num_runs),
                int(gap_runs.shape[1]),
                filled.ctypes.data_as(_I64),
            )
        return filled


__all__ = ["CExtBackend", "compiler"]
