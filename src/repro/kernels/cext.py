"""On-demand C extension backend: the loop kernels compiled with the
system C compiler.

The same two kernels as :mod:`repro.kernels.loops`, written in C,
compiled once per machine with ``cc -O2 -shared -fPIC`` into a cache
directory keyed by the source hash, and loaded through :mod:`ctypes` --
no build-time dependency, no pip package, and fully optional: when no C
compiler is available (or the compile fails, e.g. in a sandbox without a
writable cache), importing this module raises ``ImportError`` and the
registry treats the backend as unavailable, with ``auto`` falling back
to the numpy reference.

The per-run loops are row-parallel with OpenMP when the probe compile
with ``-fopenmp`` succeeds; when it fails the build falls back to a
pthread-free serial library with one logged warning (the ``#pragma omp``
lines are inert without the flag, so both builds share one source).
Runs are independent rows -- each writes only its own output slot and
peels on per-thread scratch, and there are no cross-run reductions in
these kernels (the lockstep probe reductions live in the numpy backend,
which stays serial) -- so 1 thread and N threads are bit-identical and
the thread count (``REPRO_KERNEL_THREADS`` / ``kernel_threads=`` /
``--kernel-threads``) is a pure wall-clock knob.  ctypes drops the GIL
for the duration of every foreign call, which is what lets thread-
executor workers overlap these kernels on top of kernel threads.

Like the numba backend, this is a pure wall-clock knob: the C loops
mirror :mod:`repro.kernels.loops` statement for statement, and the
cross-backend equivalence suite pins them to the incremental decoder.
"""

from __future__ import annotations

import ctypes
import hashlib
import logging
import os
import shlex
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Tuple

import numpy as np

from repro.kernels.base import NOT_DECODED, KernelBackend, ReceivedBatch
from repro.kernels.threads import current_thread_count

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fastpath.prototypes import LDGMPrototype

logger = logging.getLogger("repro.kernels")

#: C translation of :func:`repro.kernels.loops.ldgm_peel_batch` and
#: :func:`repro.kernels.loops.fill_sojourns`.  Keep the two in lockstep:
#: the cross-backend tests enforce bit-identical behaviour, and the
#: Python loops are the readable specification of these kernels.
#:
#: Without ``-fopenmp`` the pragmas are ignored and ``_OPENMP`` is
#: undefined, so the same source builds the serial fallback library.
#: ``REPRO_POISON_OPENMP`` (injected via ``CFLAGS``) force-fails the
#: OpenMP probe compile only, which is how CI and the degradation test
#: exercise the fallback on machines where OpenMP works.
_C_SOURCE = r"""
#include <stdint.h>
#include <string.h>

#ifdef _OPENMP
#include <omp.h>
#ifdef REPRO_POISON_OPENMP
#error "OpenMP probe poisoned (REPRO_POISON_OPENMP in CFLAGS)"
#endif
#endif

int peel_openmp(void)
{
#ifdef _OPENMP
    return 1;
#else
    return 0;
#endif
}

void ldgm_peel_batch(
    const int64_t *col_indptr, const int64_t *col_rows,
    const int64_t *init_counts, const int64_t *init_sums,
    const int64_t *flat, const int64_t *offsets, const int64_t *lengths,
    int64_t num_runs, int64_t k, int64_t n, int64_t num_checks,
    int64_t *counts, int64_t *sums, uint8_t *known, int64_t *stack,
    uint8_t *decoded, int64_t *n_necessary, int64_t num_threads)
{
    /* Runs are independent rows: every run writes only decoded[run] /
       n_necessary[run] and works on its thread's private scratch slice,
       so the parallel schedule cannot affect results.  num_threads is
       the caller-resolved team size; scratch is (num_threads, ...). */
    (void)num_threads;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) num_threads((int)num_threads)
#endif
    for (int64_t run = 0; run < num_runs; run++) {
        int64_t slot = 0;
#ifdef _OPENMP
        slot = (int64_t)omp_get_thread_num();
#endif
        int64_t *counts_t = counts + slot * num_checks;
        int64_t *sums_t = sums + slot * num_checks;
        uint8_t *known_t = known + slot * n;
        int64_t *stack_t = stack + slot * (num_checks + 2);
        memcpy(counts_t, init_counts, (size_t)num_checks * sizeof(int64_t));
        memcpy(sums_t, init_sums, (size_t)num_checks * sizeof(int64_t));
        memset(known_t, 0, (size_t)n);
        int64_t sources = 0;
        int64_t start = offsets[run];
        int64_t end = start + lengths[run];
        int complete = 0;
        for (int64_t pos = start; pos < end && !complete; pos++) {
            int64_t node = flat[pos];
            if (known_t[node])
                continue; /* duplicate or already recovered: a no-op */
            int64_t top = 0;
            stack_t[0] = node;
            while (top >= 0) {
                int64_t v = stack_t[top--];
                if (known_t[v])
                    continue;
                known_t[v] = 1;
                if (v < k && ++sources == k) {
                    /* all sources recovered: stop mid-cascade, like the
                       incremental decoder's early return */
                    n_necessary[run] = pos - start + 1;
                    complete = 1;
                    break;
                }
                for (int64_t e = col_indptr[v]; e < col_indptr[v + 1]; e++) {
                    int64_t r = col_rows[e];
                    counts_t[r] -= 1;
                    sums_t[r] -= v;
                    if (counts_t[r] == 1) {
                        /* one unknown left: its id sum IS the node */
                        int64_t u = sums_t[r];
                        if (!known_t[u])
                            stack_t[++top] = u;
                    }
                }
            }
        }
        decoded[run] = (uint8_t)complete;
    }
}

int64_t fill_sojourns(
    uint8_t *mask, int64_t filled, int64_t count, int in_loss_state,
    const int64_t *gap_runs, const int64_t *burst_runs, int64_t batch)
{
    int state = in_loss_state;
    for (int64_t i = 0; i < batch; i++) {
        int64_t length = state ? burst_runs[i] : gap_runs[i];
        int64_t remaining = count - filled;
        if (length > remaining)
            length = remaining;
        memset(mask + filled, state, (size_t)length);
        filled += length;
        state = !state;
        if (filled >= count)
            break;
    }
    return filled;
}

void fill_sojourns_batch(
    uint8_t *masks, int64_t count, const uint8_t *states,
    const int64_t *gap_runs, const int64_t *burst_runs,
    int64_t num_runs, int64_t batch, int64_t *filled_out,
    int64_t num_threads)
{
    /* Row-parallel like the peel: each run fills its own mask row and
       filled_out slot from its own sojourn columns, no shared state. */
    (void)num_threads;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads((int)num_threads)
#endif
    for (int64_t run = 0; run < num_runs; run++) {
        filled_out[run] = fill_sojourns(
            masks + run * count, 0, count, states[run],
            gap_runs + run * batch, burst_runs + run * batch, batch);
    }
}
"""

_I64 = ctypes.POINTER(ctypes.c_int64)
_U8 = ctypes.POINTER(ctypes.c_uint8)


def _cache_dir() -> Path:
    base = os.environ.get("XDG_CACHE_HOME", "").strip() or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(base) / "repro-kernels"


def compiler() -> str | None:
    """The C compiler used for the extension, or None when absent."""
    return shutil.which(os.environ.get("CC", "").strip() or "cc")


def _extra_cflags() -> list[str]:
    """User/CI-supplied compile flags (``CFLAGS``), applied to both builds.

    This is also the OpenMP-probe poison hook: ``-DREPRO_POISON_OPENMP``
    makes the ``-fopenmp`` probe compile fail by construction while the
    serial fallback (where ``_OPENMP`` is undefined) still builds.
    """
    return shlex.split(os.environ.get("CFLAGS", ""))


def _compile(cc: str, source: Path, artefact: Path, *, openmp: bool):
    command = [cc, "-O2", "-shared", "-fPIC"]
    if openmp:
        command.append("-fopenmp")
    command += [*_extra_cflags(), "-o", str(artefact), str(source)]
    return subprocess.run(command, capture_output=True, text=True)


def _build_library() -> Path:
    """Compile the kernels into the cache (once per source revision).

    The OpenMP build (``-fopenmp``) is probed first; when the probe
    compile fails -- no libgomp, a compiler without OpenMP support, a
    poisoned ``CFLAGS`` -- one warning is logged and the same source is
    rebuilt serial (the pragmas are inert without the flag), so the
    backend degrades to single-threaded kernels instead of disappearing.
    The cache name encodes source + ``CFLAGS`` + variant, so a cached
    serial fallback never masks an OpenMP build from a different
    environment (and vice versa).

    Every environment failure -- no compiler, compile error, unwritable
    cache directory -- surfaces as ``ImportError`` so the registry treats
    the backend as unavailable and ``auto`` degrades to numpy instead of
    crashing the decode.
    """
    cc = compiler()
    if cc is None:
        raise ImportError("no C compiler (cc) on PATH for the cext backend")
    seed = "\x00".join([_C_SOURCE, *_extra_cflags()])
    digest = hashlib.sha256(seed.encode("utf-8")).hexdigest()[:16]
    cache = _cache_dir()
    omp_target = cache / f"peel-{digest}-omp.so"
    serial_target = cache / f"peel-{digest}-serial.so"
    try:
        if omp_target.exists():
            return omp_target
        if serial_target.exists():
            # A previous probe in this environment already failed; stay
            # serial without recompiling (the warning still fires at
            # load time, once per process).
            return serial_target
        cache.mkdir(parents=True, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=cache) as build_dir:
            source = Path(build_dir) / "peel.c"
            source.write_text(_C_SOURCE, encoding="utf-8")
            artefact = Path(build_dir) / "peel.so"
            probe = _compile(cc, source, artefact, openmp=True)
            if probe.returncode == 0:
                # Atomic publish so concurrent processes never load a
                # half-written library; losing the race is fine, the
                # content is identical.
                os.replace(artefact, omp_target)
                return omp_target
            _warn_openmp_unavailable(
                f"probe compile with -fopenmp failed: {probe.stderr.strip()}"
            )
            result = _compile(cc, source, artefact, openmp=False)
            if result.returncode != 0:
                raise ImportError(
                    f"C compile of the cext kernels failed: {result.stderr.strip()}"
                )
            os.replace(artefact, serial_target)
            return serial_target
    except OSError as exc:
        raise ImportError(f"cext kernel build failed: {exc}") from exc


_openmp_warned = False


def _warn_openmp_unavailable(detail: str) -> None:
    """One warning per process when the threaded build is unavailable.

    Degradation must be loud but never fatal and never result-changing:
    the serial kernels are bit-identical, only slower.
    """
    global _openmp_warned
    if _openmp_warned:
        return
    _openmp_warned = True
    logger.warning(
        "cext OpenMP unavailable (%s); serving single-threaded cext kernels "
        "(results unchanged, kernel_threads forced to 1)",
        detail,
    )


def _load_library() -> ctypes.CDLL:
    try:
        lib = ctypes.CDLL(str(_build_library()))
    except OSError as exc:
        raise ImportError(f"cext kernel library failed to load: {exc}") from exc
    lib.peel_openmp.restype = ctypes.c_int
    lib.peel_openmp.argtypes = []
    lib.ldgm_peel_batch.restype = None
    lib.ldgm_peel_batch.argtypes = [
        _I64, _I64, _I64, _I64, _I64, _I64, _I64,
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
        _I64, _I64, _U8, _I64, _U8, _I64, ctypes.c_int64,
    ]
    lib.fill_sojourns.restype = ctypes.c_int64
    lib.fill_sojourns.argtypes = [
        _U8, ctypes.c_int64, ctypes.c_int64, ctypes.c_int,
        _I64, _I64, ctypes.c_int64,
    ]
    lib.fill_sojourns_batch.restype = None
    lib.fill_sojourns_batch.argtypes = [
        _U8, ctypes.c_int64, _U8, _I64, _I64,
        ctypes.c_int64, ctypes.c_int64, _I64, ctypes.c_int64,
    ]
    if not lib.peel_openmp():
        _warn_openmp_unavailable("library built without OpenMP")
    return lib


def _i64(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.int64)


class CExtBackend(KernelBackend):
    """Loop kernels compiled on demand with the system C compiler.

    The batch kernels run row-parallel over runs when the library was
    built with OpenMP; the team size comes from the active
    ``kernel_threads`` resolution (:func:`~repro.kernels.threads.current_thread_count`)
    at call time, clamped to the batch size.  A serial-fallback library
    pins it to 1.  Either way the results are bit-identical -- threads
    are a wall-clock knob, like the backend choice itself.
    """

    name = "cext"

    def __init__(self) -> None:
        self._lib = _load_library()
        #: Whether the loaded library was built with OpenMP (provenance).
        self.openmp = bool(self._lib.peel_openmp())

    def _team_size(self, num_runs: int) -> int:
        if not self.openmp:
            return 1
        return max(1, min(current_thread_count(), num_runs))

    def ldgm_decode_batch(
        self, prototype: "LDGMPrototype", batch: ReceivedBatch
    ) -> Tuple[np.ndarray, np.ndarray]:
        num_runs = batch.num_runs
        decoded = np.zeros(num_runs, dtype=np.uint8)
        n_necessary = np.full(num_runs, NOT_DECODED, dtype=np.int64)
        if batch.flat.size:
            num_checks = prototype.num_checks
            threads = self._team_size(num_runs)
            # One scratch slice per thread: rows of these (threads, ...)
            # arrays are private to their OpenMP thread, which is what
            # keeps N-thread peeling bit-identical to 1-thread.
            counts = np.empty((threads, num_checks), dtype=np.int64)
            sums = np.empty((threads, num_checks), dtype=np.int64)
            known = np.empty((threads, prototype.n), dtype=np.uint8)
            stack = np.empty((threads, num_checks + 2), dtype=np.int64)
            flat = _i64(batch.flat)
            offsets = _i64(batch.offsets)
            lengths = _i64(batch.lengths)
            self._lib.ldgm_peel_batch(
                prototype.col_indptr.ctypes.data_as(_I64),
                prototype.col_rows.ctypes.data_as(_I64),
                prototype.row_degrees.ctypes.data_as(_I64),
                prototype.row_sums.ctypes.data_as(_I64),
                flat.ctypes.data_as(_I64),
                offsets.ctypes.data_as(_I64),
                lengths.ctypes.data_as(_I64),
                num_runs,
                prototype.k,
                prototype.n,
                num_checks,
                counts.ctypes.data_as(_I64),
                sums.ctypes.data_as(_I64),
                known.ctypes.data_as(_U8),
                stack.ctypes.data_as(_I64),
                decoded.ctypes.data_as(_U8),
                n_necessary.ctypes.data_as(_I64),
                threads,
            )
        return decoded.astype(bool), n_necessary

    def fill_sojourns(
        self,
        mask: np.ndarray,
        filled: int,
        in_loss_state: bool,
        gap_runs: np.ndarray,
        burst_runs: np.ndarray,
    ) -> int:
        return int(
            self._lib.fill_sojourns(
                mask.ctypes.data_as(_U8),
                int(filled),
                int(mask.shape[0]),
                int(bool(in_loss_state)),
                _i64(gap_runs).ctypes.data_as(_I64),
                _i64(burst_runs).ctypes.data_as(_I64),
                int(gap_runs.shape[0]),
            )
        )

    def fill_sojourns_batch(
        self,
        masks: np.ndarray,
        states: np.ndarray,
        gap_runs: np.ndarray,
        burst_runs: np.ndarray,
    ) -> np.ndarray:
        # One C call fills every row: the per-row ctypes marshalling of the
        # loop default (~20 us/run) is what this kernel exists to remove.
        num_runs, count = masks.shape
        filled = np.empty(num_runs, dtype=np.int64)
        if not masks.flags.c_contiguous:  # pragma: no cover - caller allocates
            return super().fill_sojourns_batch(masks, states, gap_runs, burst_runs)
        if num_runs:
            self._lib.fill_sojourns_batch(
                # A view, not a copy: the C rows must land in the caller's
                # array (bool and uint8 share the memory layout).
                masks.view(np.uint8).ctypes.data_as(_U8),
                int(count),
                np.ascontiguousarray(states, dtype=np.uint8).ctypes.data_as(_U8),
                _i64(gap_runs).ctypes.data_as(_I64),
                _i64(burst_runs).ctypes.data_as(_I64),
                int(num_runs),
                int(gap_runs.shape[1]),
                filled.ctypes.data_as(_I64),
                self._team_size(num_runs),
            )
        return filled


__all__ = ["CExtBackend", "compiler"]
