"""Random-number-generator helpers.

Every stochastic component of the library (channel models, schedulers,
parity-check-matrix builders, the simulator) accepts either a seed or a
``numpy.random.Generator``.  Centralising the conversion here keeps the rest
of the code base deterministic and easy to test.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(random_state: RandomState = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None`` (fresh entropy), an integer seed, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).

    Raises
    ------
    TypeError
        If ``random_state`` is of an unsupported type.
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    if isinstance(random_state, np.random.SeedSequence):
        return np.random.default_rng(random_state)
    raise TypeError(
        f"random_state must be None, an int, a SeedSequence or a Generator, "
        f"got {type(random_state).__name__}"
    )


def spawn_rngs(random_state: RandomState, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators.

    The generators are derived from a single seed sequence so that a sweep
    over many simulation runs is reproducible from one top-level seed while
    each run still sees an independent stream.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(random_state, np.random.SeedSequence):
        seq = random_state
    elif isinstance(random_state, np.random.Generator):
        # Derive a seed sequence from the generator to keep determinism.
        # Four 63-bit words give the sequence a full 128+ bits of entropy;
        # funnelling everything through a single 63-bit draw (the original
        # code) narrowed the downstream state space enough to risk stream
        # collisions between independently spawned families.
        entropy = random_state.integers(0, 2**63 - 1, size=4)
        seq = np.random.SeedSequence([int(word) for word in entropy])
    elif random_state is None:
        seq = np.random.SeedSequence()
    else:
        seq = np.random.SeedSequence(int(random_state))
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def as_seed_int(seed: RandomState) -> int:
    """Collapse any accepted seed type to a plain ``int``.

    The sweep and runner layers key their per-run ``SeedSequence`` streams
    (and the on-disk result cache) off a single integer, so every seed type
    accepted by :func:`ensure_rng` must normalise to one deterministically.
    ``None`` maps to 0 for backwards compatibility with the original sweep
    code; a ``Generator`` consumes one draw and is therefore only
    reproducible if the caller controls the generator state.
    """
    if seed is None:
        return 0
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    if isinstance(seed, np.random.SeedSequence):
        return int(seed.generate_state(1, dtype=np.uint64)[0])
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**31 - 1))
    raise TypeError(f"unsupported seed type {type(seed).__name__}")


def derive_seed(random_state: RandomState, *salt: Union[int, str]) -> int:
    """Derive a deterministic integer seed from ``random_state`` and a salt.

    Useful to give named sub-components (e.g. "channel", "scheduler")
    reproducible but distinct streams.
    """
    base = 0 if random_state is None else _as_int(random_state)
    mixed = np.random.SeedSequence([base, *(_salt_to_int(s) for s in salt)])
    return int(mixed.generate_state(1, dtype=np.uint64)[0])


def _as_int(random_state: RandomState) -> int:
    if isinstance(random_state, (int, np.integer)):
        return int(random_state)
    if isinstance(random_state, np.random.Generator):
        return int(random_state.integers(0, 2**63 - 1))
    if isinstance(random_state, np.random.SeedSequence):
        return int(random_state.generate_state(1, dtype=np.uint64)[0])
    raise TypeError(f"cannot derive an integer seed from {type(random_state).__name__}")


def _salt_to_int(salt: Union[int, str]) -> int:
    if isinstance(salt, (int, np.integer)):
        return int(salt) & 0xFFFFFFFF
    return sum(ord(c) * 257**i for i, c in enumerate(salt)) & 0xFFFFFFFF


def iter_run_rngs(seed: RandomState, runs: int) -> Iterable[np.random.Generator]:
    """Yield one generator per simulation run, reproducibly."""
    yield from spawn_rngs(seed, runs)


__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "as_seed_int",
    "derive_seed",
    "iter_run_rngs",
    "RandomState",
]
