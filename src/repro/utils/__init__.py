"""Small shared utilities: RNG handling and argument validation."""

from repro.utils.rng import as_seed_int, ensure_rng, spawn_rngs
from repro.utils.validation import (
    validate_expansion_ratio,
    validate_fraction,
    validate_positive_int,
    validate_probability,
)

__all__ = [
    "as_seed_int",
    "ensure_rng",
    "spawn_rngs",
    "validate_positive_int",
    "validate_probability",
    "validate_fraction",
    "validate_expansion_ratio",
]
