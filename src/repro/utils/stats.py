"""Small-sample interval statistics without scipy.

The adaptive sweep controller (:mod:`repro.adaptive`) stops a grid cell
once two confidence intervals are narrow enough:

* the **Wilson score interval** on the cell's decode probability --
  well-behaved at the boundary cases (0 or n successes out of n) where
  the naive Wald interval collapses to zero width, which is exactly the
  regime settled grid cells live in;
* the **Student-t interval** on the mean inefficiency ratio of the
  decoded runs.

Both need distribution quantiles the standard library does not provide,
so they are implemented here from scratch: the inverse normal CDF via
Acklam's rational approximation (relative error < 1.15e-9), and the
Student-t quantile by bisecting the t CDF, which is computed through the
regularized incomplete beta function (Lentz's continued fraction, the
Numerical Recipes formulation).  Accuracy is far beyond what a stopping
rule needs and is pinned against table values in the test suite.
"""

from __future__ import annotations

import math
from typing import Tuple

__all__ = [
    "normal_quantile",
    "regularized_incomplete_beta",
    "student_t_cdf",
    "t_quantile",
    "wilson_interval",
    "mean_interval_halfwidth",
]


# Acklam's inverse-normal-CDF coefficients.
_A = (
    -3.969683028665376e01,
    2.209460984245205e02,
    -2.759285104469687e02,
    1.383577518672690e02,
    -3.066479806614716e01,
    2.506628277459239e00,
)
_B = (
    -5.447609879822406e01,
    1.615858368580409e02,
    -1.556989798598866e02,
    6.680131188771972e01,
    -1.328068155288572e01,
)
_C = (
    -7.784894002430293e-03,
    -3.223964580411365e-01,
    -2.400758277161838e00,
    -2.549732539343734e00,
    4.374664141464968e00,
    2.938163982698783e00,
)
_D = (
    7.784695709041462e-03,
    3.224671290700398e-01,
    2.445134137142996e00,
    3.754408661907416e00,
)
_P_LOW = 0.02425


def normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's approximation).

    ``p`` must be in the open interval (0, 1).
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"normal_quantile needs 0 < p < 1, got {p}")
    if p < _P_LOW:
        q = math.sqrt(-2.0 * math.log(p))
        return (
            ((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]
        ) / ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0)
    if p > 1.0 - _P_LOW:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(
            ((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]
        ) / ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0)
    q = p - 0.5
    r = q * q
    return (
        (((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r + _A[4]) * r + _A[5])
        * q
        / (((((_B[0] * r + _B[1]) * r + _B[2]) * r + _B[3]) * r + _B[4]) * r + 1.0)
    )


def _beta_continued_fraction(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (modified Lentz)."""
    tiny = 1e-300
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 300):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    return h


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b)."""
    if a <= 0.0 or b <= 0.0:
        raise ValueError(f"incomplete beta needs a, b > 0, got a={a}, b={b}")
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log(1.0 - x)
    )
    front = math.exp(ln_front)
    # Use the continued fraction directly where it converges fast,
    # and the symmetry relation on the other side.
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_continued_fraction(a, b, x) / a
    return 1.0 - front * _beta_continued_fraction(b, a, 1.0 - x) / b


def student_t_cdf(t: float, df: float) -> float:
    """CDF of Student's t distribution with ``df`` degrees of freedom."""
    if df <= 0.0:
        raise ValueError(f"student_t_cdf needs df > 0, got {df}")
    if t == 0.0:
        return 0.5
    x = df / (df + t * t)
    tail = 0.5 * regularized_incomplete_beta(df / 2.0, 0.5, x)
    return 1.0 - tail if t > 0.0 else tail


def t_quantile(p: float, df: float) -> float:
    """Inverse CDF of Student's t distribution (bisection on the CDF).

    ``p`` must be in (0, 1); ``df`` may be any positive real.  For the
    degrees of freedom a stopping rule sees (df >= 1) the bisection
    converges to ~1e-12 absolute in the ~100 iterations used here.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"t_quantile needs 0 < p < 1, got {p}")
    if df <= 0.0:
        raise ValueError(f"t_quantile needs df > 0, got {df}")
    if p == 0.5:
        return 0.0
    # Bracket the root around the normal quantile, expanding for the
    # heavy tails of small df.
    guess = normal_quantile(p)
    width = max(1.0, abs(guess)) * 2.0
    lo, hi = guess - width, guess + width
    while student_t_cdf(lo, df) > p:
        lo -= width
        width *= 2.0
    while student_t_cdf(hi, df) < p:
        hi += width
        width *= 2.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if mid == lo or mid == hi:
            break
        if student_t_cdf(mid, df) < p:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Returns ``(low, high)``; with zero trials the interval is the whole
    [0, 1] (nothing is known yet).
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError(
            f"wilson_interval needs 0 <= successes <= trials, "
            f"got successes={successes}, trials={trials}"
        )
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if trials == 0:
        return (0.0, 1.0)
    z = normal_quantile(0.5 + confidence / 2.0)
    n = float(trials)
    phat = successes / n
    z2 = z * z
    denominator = 1.0 + z2 / n
    center = (phat + z2 / (2.0 * n)) / denominator
    half = (
        z * math.sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denominator
    )
    return (max(0.0, center - half), min(1.0, center + half))


def mean_interval_halfwidth(
    count: int, variance: float, confidence: float = 0.95
) -> float:
    """Half-width of the Student-t confidence interval on a sample mean.

    ``variance`` is the sample variance (ddof=1).  Returns ``inf`` when
    fewer than two observations exist (no variance estimate yet) and 0.0
    for a degenerate zero-variance sample.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if count < 2 or not math.isfinite(variance):
        return float("inf")
    if variance <= 0.0:
        return 0.0
    t = t_quantile(0.5 + confidence / 2.0, df=count - 1)
    return t * math.sqrt(variance / count)
