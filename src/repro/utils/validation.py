"""Argument validation helpers shared across the library.

All helpers raise ``ValueError`` (or ``TypeError`` for wrong types) with a
message naming the offending parameter, so call sites stay compact.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def validate_positive_int(value: int, name: str, minimum: int = 1) -> int:
    """Return ``value`` as ``int`` if it is an integer >= ``minimum``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def validate_probability(value: float, name: str) -> float:
    """Return ``value`` as ``float`` if it lies in the closed interval [0, 1]."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a number, got {value!r}") from exc
    if not np.isfinite(value) or value < 0.0 or value > 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def validate_fraction(value: float, name: str, *, allow_zero: bool = True) -> float:
    """Return ``value`` as ``float`` if it lies in [0, 1] (or (0, 1] if not allow_zero)."""
    value = validate_probability(value, name)
    if not allow_zero and value == 0.0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def validate_expansion_ratio(value: float, name: str = "expansion_ratio") -> float:
    """Return ``value`` as ``float`` if it is a valid FEC expansion ratio (> 1)."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a number, got {value!r}") from exc
    if not np.isfinite(value) or value <= 1.0:
        raise ValueError(f"{name} must be > 1 (n > k), got {value}")
    return value


def validate_k_n(k: int, n: int) -> tuple[int, int]:
    """Validate a (k, n) code dimension pair."""
    k = validate_positive_int(k, "k")
    n = validate_positive_int(n, "n")
    if n <= k:
        raise ValueError(f"n must be > k for a FEC code, got k={k}, n={n}")
    return k, n


__all__ = [
    "validate_positive_int",
    "validate_probability",
    "validate_fraction",
    "validate_expansion_ratio",
    "validate_k_n",
]
