"""Name-based registry of transmission models."""

from __future__ import annotations

from typing import Callable, Dict

from repro.scheduling.base import TransmissionModel
from repro.scheduling.rx_models import RxModel1
from repro.scheduling.tx_models import (
    TxModel1,
    TxModel2,
    TxModel3,
    TxModel4,
    TxModel5,
    TxModel6,
)

TxModelFactory = Callable[..., TransmissionModel]

_REGISTRY: Dict[str, TxModelFactory] = {}

_ALIASES: Dict[str, str] = {
    "tx1": "tx_model_1",
    "tx2": "tx_model_2",
    "tx3": "tx_model_3",
    "tx4": "tx_model_4",
    "tx5": "tx_model_5",
    "tx6": "tx_model_6",
    "interleaving": "tx_model_5",
    "random": "tx_model_4",
    "sequential": "tx_model_1",
    "rx1": "rx_model_1",
}


def register_tx_model(name: str, factory: TxModelFactory) -> None:
    """Register a transmission-model factory under ``name`` (lower-case)."""
    key = name.lower()
    if key in _REGISTRY:
        raise ValueError(f"a transmission model named {name!r} is already registered")
    _REGISTRY[key] = factory


def available_tx_models() -> list[str]:
    """Names of all registered transmission models, sorted."""
    return sorted(_REGISTRY)


def resolve_tx_model_name(name: str) -> str:
    key = name.lower().strip()
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown transmission model {name!r}; available: "
            f"{', '.join(available_tx_models())}"
        )
    return key


def make_tx_model(name: str, **kwargs) -> TransmissionModel:
    """Instantiate a transmission model by name.

    >>> make_tx_model("tx_model_6", source_fraction=0.2).name
    'tx_model_6'
    """
    key = resolve_tx_model_name(name)
    return _REGISTRY[key](**kwargs)


register_tx_model("tx_model_1", TxModel1)
register_tx_model("tx_model_2", TxModel2)
register_tx_model("tx_model_3", TxModel3)
register_tx_model("tx_model_4", TxModel4)
register_tx_model("tx_model_5", TxModel5)
register_tx_model("tx_model_6", TxModel6)
register_tx_model("rx_model_1", RxModel1)

__all__ = [
    "register_tx_model",
    "available_tx_models",
    "resolve_tx_model_name",
    "make_tx_model",
]
