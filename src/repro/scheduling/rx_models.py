"""Reception models (section 5 of the paper).

A reception model directly specifies which packets a receiver obtains and
in what order, bypassing the transmission/loss decomposition.  It is
expressed with the :class:`~repro.scheduling.base.TransmissionModel`
interface and simulated over a perfect channel.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.fec.packet import PacketLayout
from repro.scheduling.base import TransmissionModel
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import validate_positive_int


class RxModel1(TransmissionModel):
    """Receive a fixed number of source packets first, then all parity
    packets in random order (Rx_model_1, section 5.1).

    Parameters
    ----------
    num_source_packets:
        How many source packets the receiver obtains before the parity
        stream starts.  The paper sweeps this value (figure 14) and finds a
        sweet spot around 400-1000 packets for k = 20000.
    pick_randomly:
        If ``True`` (default) the received source packets are a random
        subset; otherwise the first ``num_source_packets`` in object order.
    """

    name = "rx_model_1"

    def __init__(self, num_source_packets: int, *, pick_randomly: bool = True):
        self.num_source_packets = validate_positive_int(
            num_source_packets, "num_source_packets", minimum=0
        )
        self.pick_randomly = pick_randomly

    def schedule(self, layout: PacketLayout, rng: RandomState = None) -> np.ndarray:
        rng = ensure_rng(rng)
        count = min(self.num_source_packets, layout.k)
        source = layout.source_indices
        if self.pick_randomly:
            chosen = rng.choice(source, size=count, replace=False) if count else np.zeros(0, dtype=np.int64)
        else:
            chosen = source[:count]
        parity = layout.parity_indices.copy()
        rng.shuffle(parity)
        return np.concatenate([chosen, parity])

    def schedule_batch(
        self, layout: PacketLayout, rngs: Sequence[RandomState]
    ) -> np.ndarray:
        count = min(self.num_source_packets, layout.k)
        source = layout.source_indices
        parity = layout.parity_indices
        out = np.empty((len(rngs), count + parity.size), dtype=np.int64)
        out[:, count:] = parity
        if not self.pick_randomly:
            out[:, :count] = source[:count]
        # Serial draw order per run: the source subset is chosen first,
        # then the parity stream is shuffled.
        for row, rng in zip(out, rngs):
            rng = ensure_rng(rng)
            if self.pick_randomly and count:
                row[:count] = rng.choice(source, size=count, replace=False)
            rng.shuffle(row[count:])
        return out

    def schedule_batch_unit(
        self, layout: PacketLayout, rng: RandomState, runs: int
    ) -> np.ndarray:
        rng = ensure_rng(rng)
        count = min(self.num_source_packets, layout.k)
        source = layout.source_indices
        parity = layout.parity_indices
        out = np.empty((runs, count + parity.size), dtype=np.int64)
        out[:, count:] = parity
        if self.pick_randomly and count:
            # Uniform subset per row via one block permutation (see
            # ``TxModel6.schedule_batch_unit``).
            pool = np.empty((runs, source.size), dtype=np.int64)
            pool[:] = source
            rng.permuted(pool, axis=1, out=pool)
            out[:, :count] = pool[:, :count]
        elif count:
            out[:, :count] = source[:count]
        rng.permuted(out[:, count:], axis=1, out=out[:, count:])
        return out

    def __repr__(self) -> str:
        return (
            f"RxModel1(num_source_packets={self.num_source_packets}, "
            f"pick_randomly={self.pick_randomly})"
        )


__all__ = ["RxModel1"]
