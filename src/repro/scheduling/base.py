"""Base class for transmission (and reception) models."""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.fec.packet import PacketLayout
from repro.utils.rng import RandomState, ensure_rng


class TransmissionModel(abc.ABC):
    """Decides the order in which encoding packets are transmitted.

    A schedule is an array of global packet indices.  It usually contains
    every index in ``[0, n)`` exactly once, but a model may also choose to
    send only a subset (``tx_model_6``) -- the simulator takes the schedule
    at face value.
    """

    #: Registry name, e.g. ``"tx_model_2"``.
    name: str = "abstract"

    @abc.abstractmethod
    def schedule(self, layout: PacketLayout, rng: RandomState = None) -> np.ndarray:
        """Return the transmission order as an array of global packet indices."""

    def description(self) -> str:
        """One-line human description (defaults to the class docstring)."""
        doc = (self.__doc__ or "").strip().splitlines()
        return doc[0] if doc else self.name

    def validate_schedule(self, layout: PacketLayout, schedule: np.ndarray) -> np.ndarray:
        """Sanity-check a schedule produced by :meth:`schedule`."""
        schedule = np.asarray(schedule, dtype=np.int64)
        if schedule.ndim != 1:
            raise ValueError("schedule must be a 1-D array of packet indices")
        if schedule.size and (schedule.min() < 0 or schedule.max() >= layout.n):
            raise ValueError(
                f"schedule contains indices outside [0, {layout.n})"
            )
        return schedule

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


__all__ = ["TransmissionModel"]
