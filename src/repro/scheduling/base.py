"""Base class for transmission (and reception) models."""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from repro.fec.packet import PacketLayout
from repro.utils.rng import RandomState, ensure_rng


class TransmissionModel(abc.ABC):
    """Decides the order in which encoding packets are transmitted.

    A schedule is an array of global packet indices.  It usually contains
    every index in ``[0, n)`` exactly once, but a model may also choose to
    send only a subset (``tx_model_6``) -- the simulator takes the schedule
    at face value.
    """

    #: Registry name, e.g. ``"tx_model_2"``.
    name: str = "abstract"

    #: Whether :meth:`schedule` draws from the generator.  Deterministic
    #: models (``tx_model_1``, ``tx_model_5``) set this False, which lets
    #: the batched pipeline compute their schedule once and broadcast it
    #: over a work unit, and relaxes the draw-ordering constraints when
    #: runs share one generator.
    uses_rng: bool = True

    @abc.abstractmethod
    def schedule(self, layout: PacketLayout, rng: RandomState = None) -> np.ndarray:
        """Return the transmission order as an array of global packet indices."""

    def schedule_batch(self, layout: PacketLayout, rngs: Sequence[RandomState]):
        """Schedules for a whole work unit, one row per run.

        Row ``i`` must be exactly what ``self.schedule(layout, rngs[i])``
        would return, with the generators consumed in run order -- the
        batched pipeline relies on this draw-identity, and the default
        implementation guarantees it by calling :meth:`schedule` per run
        (vectorising only the stacking).  Models whose schedules draw
        nothing are computed once and broadcast (a read-only view).

        Returns a ``(runs, length)`` ``int64`` array when every run's
        schedule has the same length (all built-in models), or the list of
        per-run arrays when lengths differ -- the generators are already
        consumed either way, so the pipeline assembles ragged rows as-is
        rather than re-drawing.
        """
        if not self.uses_rng:
            template = np.asarray(self.schedule(layout, None), dtype=np.int64)
            if template.ndim != 1:
                return [template] * len(rngs)
            return np.broadcast_to(template, (len(rngs), template.size))
        rows = [
            np.asarray(self.schedule(layout, rng), dtype=np.int64) for rng in rngs
        ]
        shapes = {row.shape for row in rows}
        if len(shapes) != 1 or len(next(iter(shapes))) != 1:
            return rows
        return np.stack(rows)

    def schedule_batch_unit(
        self, layout: PacketLayout, rng: RandomState, runs: int
    ):
        """Schedules for a whole work unit drawn from ONE shared generator.

        This is the ``"unit"`` seed scheme's entry point
        (:mod:`repro.seeds`): unlike :meth:`schedule_batch`, every run's
        randomness comes from the single unit generator, so overrides are
        free to draw whole ``(runs, length)`` blocks in one call (e.g.
        ``Generator.permuted`` row shuffles) instead of looping per run.
        Block draws are *not* bit-identical to per-run :meth:`schedule`
        calls on the same generator -- the unit scheme defines its streams
        by this method's draw order -- but each row must be distributed
        exactly like a :meth:`schedule` result, and the draw order must be
        deterministic for a given generator state.

        The default implementation loops :meth:`schedule` over the shared
        generator (deterministic, sequential consumption), so duck-typed
        third-party models work under the unit scheme unchanged.  Returns
        a dense ``(runs, length)`` ``int64`` array or a ragged row list,
        exactly like :meth:`schedule_batch`.
        """
        if not self.uses_rng:
            return self.schedule_batch(layout, [None] * runs)
        rng = ensure_rng(rng)
        rows = [
            np.asarray(self.schedule(layout, rng), dtype=np.int64)
            for _ in range(runs)
        ]
        shapes = {row.shape for row in rows}
        if len(shapes) != 1 or len(next(iter(shapes))) != 1:
            return rows
        return np.stack(rows)

    def description(self) -> str:
        """One-line human description (defaults to the class docstring)."""
        doc = (self.__doc__ or "").strip().splitlines()
        return doc[0] if doc else self.name

    def validate_schedule(self, layout: PacketLayout, schedule: np.ndarray) -> np.ndarray:
        """Sanity-check a schedule produced by :meth:`schedule`."""
        schedule = np.asarray(schedule, dtype=np.int64)
        if schedule.ndim != 1:
            raise ValueError("schedule must be a 1-D array of packet indices")
        if schedule.size and (schedule.min() < 0 or schedule.max() >= layout.n):
            raise ValueError(
                f"schedule contains indices outside [0, {layout.n})"
            )
        return schedule

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


__all__ = ["TransmissionModel"]
