"""Packet transmission scheduling (the paper's Tx/Rx models).

A transmission model decides in which order the ``n`` encoding packets of an
object are put on the wire.  Section 4 of the paper evaluates six of them:

* ``tx_model_1`` -- source packets sequentially, then parity sequentially.
* ``tx_model_2`` -- source packets sequentially, then parity randomly.
* ``tx_model_3`` -- parity packets sequentially, then source randomly.
* ``tx_model_4`` -- everything in a fully random order.
* ``tx_model_5`` -- interleaving (per-block round robin for RSE, proportional
  source/parity interleaving for LDGM).
* ``tx_model_6`` -- a random 20% of the source packets mixed randomly with
  all parity packets (the rest of the source packets are never sent).

Section 5 additionally defines a *reception* model, ``rx_model_1``: the
receiver first obtains a configurable number of source packets, then all
parity packets in random order.  Reception models are expressed with the
same interface and simulated over a perfect channel.
"""

from repro.scheduling.base import TransmissionModel
from repro.scheduling.interleaver import block_interleave, proportional_interleave
from repro.scheduling.registry import available_tx_models, make_tx_model, register_tx_model
from repro.scheduling.rx_models import RxModel1
from repro.scheduling.tx_models import (
    TxModel1,
    TxModel2,
    TxModel3,
    TxModel4,
    TxModel5,
    TxModel6,
)

__all__ = [
    "TransmissionModel",
    "TxModel1",
    "TxModel2",
    "TxModel3",
    "TxModel4",
    "TxModel5",
    "TxModel6",
    "RxModel1",
    "block_interleave",
    "proportional_interleave",
    "make_tx_model",
    "register_tx_model",
    "available_tx_models",
]
