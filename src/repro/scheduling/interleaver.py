"""Interleaving helpers used by Tx_model_5.

Two flavours are needed (section 4.7 of the paper):

* **Block interleaving** for RSE: transmit one packet of every block in
  turn, so the packets of a single block are spread as far apart as
  possible and a loss burst touches every block a little instead of one
  block a lot.
* **Proportional interleaving** for the single-block LDGM codes: alternate
  source and parity packets so that the source/parity transmission rates
  follow the expansion ratio (one source packet for every ``n/k - 1``
  parity packets on average).

Both interleavers are vectorised (a lexsort for the round robin, a
closed-form Bresenham emission count for the proportional merge); the
original per-position loops are kept as ``_*_reference`` so the test suite
can prove the vectorised forms emit identical schedules.
"""

from __future__ import annotations

import numpy as np

from repro.fec.packet import PacketLayout


def block_interleave(layout: PacketLayout) -> np.ndarray:
    """Round-robin over blocks: packet ``j`` of block 0, of block 1, ...

    Within each block packets are taken in order (source packets first, then
    parity), matching the classic interleaver used with Reed-Solomon codes.
    Computed as one stable sort by (within-block position, block id).
    """
    per_block = [block.all_indices for block in layout.blocks]
    sizes = np.fromiter(
        (indices.size for indices in per_block), dtype=np.int64, count=len(per_block)
    )
    total = int(sizes.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    flat = np.concatenate(per_block).astype(np.int64, copy=False)
    block_ids = np.repeat(np.arange(len(per_block), dtype=np.int64), sizes)
    starts = np.zeros(len(per_block), dtype=np.int64)
    np.cumsum(sizes[:-1], out=starts[1:])
    position = np.arange(total, dtype=np.int64) - np.repeat(starts, sizes)
    return flat[np.lexsort((block_ids, position))]


def _block_interleave_reference(layout: PacketLayout) -> np.ndarray:
    """Per-position loop (the original form; test reference)."""
    per_block = [block.all_indices for block in layout.blocks]
    longest = max(indices.size for indices in per_block)
    schedule: list[int] = []
    for position in range(longest):
        for indices in per_block:
            if position < indices.size:
                schedule.append(int(indices[position]))
    return np.array(schedule, dtype=np.int64)


def proportional_interleave(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Merge two packet streams so their rates stay proportional throughout.

    The classic "Bresenham merge": at every position the stream that is most
    behind its target proportion emits the next packet.  With ``first`` the
    source packets and ``second`` the parity packets this realises the
    paper's "one source packet then n/k - 1 parity packets" schedule for any
    (possibly non-integer) expansion ratio.

    The per-position loop has a closed form: after ``m`` emissions the first
    stream has contributed ``max(ceil(m * F / T), m - S)`` packets (the
    ceiling follows from "emit while behind the target"; the ``m - S`` floor
    is the second stream running dry), so the whole emission pattern is one
    vectorised ceil + diff.  ``F / T`` is evaluated in float64 exactly as
    the loop's comparison was, keeping the output bit-identical to
    :func:`_proportional_interleave_reference`.
    """
    first = np.asarray(first, dtype=np.int64)
    second = np.asarray(second, dtype=np.int64)
    total = first.size + second.size
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    emitted = np.arange(1, total + 1, dtype=np.int64)
    need_first = emitted * first.size / total
    taken_first = np.maximum(
        np.ceil(need_first).astype(np.int64), emitted - second.size
    )
    from_first = np.diff(taken_first, prepend=0) == 1
    schedule = np.empty(total, dtype=np.int64)
    schedule[from_first] = first
    schedule[~from_first] = second
    return schedule


def _proportional_interleave_reference(
    first: np.ndarray, second: np.ndarray
) -> np.ndarray:
    """Per-position Bresenham loop (the original form; test reference)."""
    first = np.asarray(first, dtype=np.int64)
    second = np.asarray(second, dtype=np.int64)
    total = first.size + second.size
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    schedule = np.empty(total, dtype=np.int64)
    taken_first = 0
    taken_second = 0
    for position in range(total):
        # Emit from the stream whose progress lags its share the most.
        need_first = (position + 1) * first.size / total
        if taken_first < first.size and (
            taken_first < need_first or taken_second >= second.size
        ):
            schedule[position] = first[taken_first]
            taken_first += 1
        else:
            schedule[position] = second[taken_second]
            taken_second += 1
    return schedule


__all__ = ["block_interleave", "proportional_interleave"]
