"""Interleaving helpers used by Tx_model_5.

Two flavours are needed (section 4.7 of the paper):

* **Block interleaving** for RSE: transmit one packet of every block in
  turn, so the packets of a single block are spread as far apart as
  possible and a loss burst touches every block a little instead of one
  block a lot.
* **Proportional interleaving** for the single-block LDGM codes: alternate
  source and parity packets so that the source/parity transmission rates
  follow the expansion ratio (one source packet for every ``n/k - 1``
  parity packets on average).
"""

from __future__ import annotations

import numpy as np

from repro.fec.packet import PacketLayout


def block_interleave(layout: PacketLayout) -> np.ndarray:
    """Round-robin over blocks: packet ``j`` of block 0, of block 1, ...

    Within each block packets are taken in order (source packets first, then
    parity), matching the classic interleaver used with Reed-Solomon codes.
    """
    per_block = [block.all_indices for block in layout.blocks]
    longest = max(indices.size for indices in per_block)
    schedule: list[int] = []
    for position in range(longest):
        for indices in per_block:
            if position < indices.size:
                schedule.append(int(indices[position]))
    return np.array(schedule, dtype=np.int64)


def proportional_interleave(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Merge two packet streams so their rates stay proportional throughout.

    The classic "Bresenham merge": at every position the stream that is most
    behind its target proportion emits the next packet.  With ``first`` the
    source packets and ``second`` the parity packets this realises the
    paper's "one source packet then n/k - 1 parity packets" schedule for any
    (possibly non-integer) expansion ratio.
    """
    first = np.asarray(first, dtype=np.int64)
    second = np.asarray(second, dtype=np.int64)
    total = first.size + second.size
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    schedule = np.empty(total, dtype=np.int64)
    taken_first = 0
    taken_second = 0
    for position in range(total):
        # Emit from the stream whose progress lags its share the most.
        need_first = (position + 1) * first.size / total
        if taken_first < first.size and (
            taken_first < need_first or taken_second >= second.size
        ):
            schedule[position] = first[taken_first]
            taken_first += 1
        else:
            schedule[position] = second[taken_second]
            taken_second += 1
    return schedule


__all__ = ["block_interleave", "proportional_interleave"]
