"""The six transmission models evaluated in section 4 of the paper.

Every stochastic model also overrides
:meth:`~repro.scheduling.base.TransmissionModel.schedule_batch` with a
vectorised form: the whole work unit's schedules are assembled in one
``(runs, length)`` allocation and only the generator draws themselves
(shuffles and choices, which are per-generator by construction) remain in
the per-run loop.  Each override consumes the generators exactly as the
serial :meth:`schedule` does, so batch row ``i`` is bit-identical to a
serial call with ``rngs[i]``.

Under the ``"unit"`` seed scheme (:mod:`repro.seeds`) the per-generator
constraint disappears -- a whole work unit shares one counter-based
generator -- so the stochastic models also override
:meth:`~repro.scheduling.base.TransmissionModel.schedule_batch_unit` with
true block draws: row-wise shuffles and subset choices for *all* runs
happen in a single ``Generator.permuted`` call, leaving no per-run loop at
all.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.fec.packet import PacketLayout
from repro.scheduling.base import TransmissionModel
from repro.scheduling.interleaver import block_interleave, proportional_interleave
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import validate_fraction


class TxModel1(TransmissionModel):
    """Send source packets sequentially, then parity packets sequentially."""

    name = "tx_model_1"
    uses_rng = False

    def schedule(self, layout: PacketLayout, rng: RandomState = None) -> np.ndarray:
        return np.concatenate([layout.source_indices, layout.parity_indices])


class TxModel2(TransmissionModel):
    """Send source packets sequentially, then parity packets in random order."""

    name = "tx_model_2"

    def schedule(self, layout: PacketLayout, rng: RandomState = None) -> np.ndarray:
        rng = ensure_rng(rng)
        parity = layout.parity_indices.copy()
        rng.shuffle(parity)
        return np.concatenate([layout.source_indices, parity])

    def schedule_batch(
        self, layout: PacketLayout, rngs: Sequence[RandomState]
    ) -> np.ndarray:
        source = layout.source_indices
        out = np.empty((len(rngs), layout.n), dtype=np.int64)
        out[:, : source.size] = source
        out[:, source.size :] = layout.parity_indices
        for row, rng in zip(out, rngs):
            ensure_rng(rng).shuffle(row[source.size :])
        return out

    def schedule_batch_unit(
        self, layout: PacketLayout, rng: RandomState, runs: int
    ) -> np.ndarray:
        rng = ensure_rng(rng)
        source = layout.source_indices
        out = np.empty((runs, layout.n), dtype=np.int64)
        out[:, : source.size] = source
        out[:, source.size :] = layout.parity_indices
        # Every run's parity shuffle in ONE call: permuted shuffles each
        # row independently from the shared unit generator.
        rng.permuted(out[:, source.size :], axis=1, out=out[:, source.size :])
        return out


class TxModel3(TransmissionModel):
    """Send parity packets sequentially, then source packets in random order."""

    name = "tx_model_3"

    def schedule(self, layout: PacketLayout, rng: RandomState = None) -> np.ndarray:
        rng = ensure_rng(rng)
        source = layout.source_indices.copy()
        rng.shuffle(source)
        return np.concatenate([layout.parity_indices, source])

    def schedule_batch(
        self, layout: PacketLayout, rngs: Sequence[RandomState]
    ) -> np.ndarray:
        parity = layout.parity_indices
        out = np.empty((len(rngs), layout.n), dtype=np.int64)
        out[:, : parity.size] = parity
        out[:, parity.size :] = layout.source_indices
        # Serial order: the source packets are shuffled *before* they are
        # appended to the parity stream, so the draws match exactly.
        for row, rng in zip(out, rngs):
            ensure_rng(rng).shuffle(row[parity.size :])
        return out

    def schedule_batch_unit(
        self, layout: PacketLayout, rng: RandomState, runs: int
    ) -> np.ndarray:
        rng = ensure_rng(rng)
        parity = layout.parity_indices
        out = np.empty((runs, layout.n), dtype=np.int64)
        out[:, : parity.size] = parity
        out[:, parity.size :] = layout.source_indices
        rng.permuted(out[:, parity.size :], axis=1, out=out[:, parity.size :])
        return out


class TxModel4(TransmissionModel):
    """Send all packets (source and parity) in a fully random order."""

    name = "tx_model_4"

    def schedule(self, layout: PacketLayout, rng: RandomState = None) -> np.ndarray:
        rng = ensure_rng(rng)
        order = np.arange(layout.n, dtype=np.int64)
        rng.shuffle(order)
        return order

    def schedule_batch(
        self, layout: PacketLayout, rngs: Sequence[RandomState]
    ) -> np.ndarray:
        out = np.empty((len(rngs), layout.n), dtype=np.int64)
        out[:] = np.arange(layout.n, dtype=np.int64)
        for row, rng in zip(out, rngs):
            ensure_rng(rng).shuffle(row)
        return out

    def schedule_batch_unit(
        self, layout: PacketLayout, rng: RandomState, runs: int
    ) -> np.ndarray:
        out = np.empty((runs, layout.n), dtype=np.int64)
        out[:] = np.arange(layout.n, dtype=np.int64)
        ensure_rng(rng).permuted(out, axis=1, out=out)
        return out


class TxModel5(TransmissionModel):
    """Interleave packets to spread each block / the parity stream over time.

    For multi-block codes (RSE) this is the classic block interleaver: one
    packet of each block in turn.  For single-block codes (LDGM-*) packets
    of the source and parity streams are merged proportionally (one source
    packet for every ``n/k - 1`` parity packets).
    """

    name = "tx_model_5"
    uses_rng = False

    def schedule(self, layout: PacketLayout, rng: RandomState = None) -> np.ndarray:
        if layout.num_blocks > 1:
            return block_interleave(layout)
        return proportional_interleave(layout.source_indices, layout.parity_indices)


class TxModel6(TransmissionModel):
    """Send a random fraction of the source packets plus all parity packets,
    mixed in random order (the remaining source packets are never sent).

    Parameters
    ----------
    source_fraction:
        Fraction of source packets included in the transmission (the paper
        uses 20%).
    """

    name = "tx_model_6"

    def __init__(self, source_fraction: float = 0.2):
        self.source_fraction = validate_fraction(source_fraction, "source_fraction")

    def schedule(self, layout: PacketLayout, rng: RandomState = None) -> np.ndarray:
        rng = ensure_rng(rng)
        source = layout.source_indices
        keep = int(round(self.source_fraction * source.size))
        if keep > 0:
            chosen = rng.choice(source, size=keep, replace=False)
        else:
            chosen = np.zeros(0, dtype=np.int64)
        combined = np.concatenate([chosen, layout.parity_indices])
        rng.shuffle(combined)
        return combined

    def schedule_batch(
        self, layout: PacketLayout, rngs: Sequence[RandomState]
    ) -> np.ndarray:
        source = layout.source_indices
        parity = layout.parity_indices
        keep = int(round(self.source_fraction * source.size))
        out = np.empty((len(rngs), keep + parity.size), dtype=np.int64)
        out[:, keep:] = parity
        # Serial draw order per run: the source subset is chosen first,
        # then the combined stream is shuffled.
        for row, rng in zip(out, rngs):
            rng = ensure_rng(rng)
            if keep > 0:
                row[:keep] = rng.choice(source, size=keep, replace=False)
            rng.shuffle(row)
        return out

    def schedule_batch_unit(
        self, layout: PacketLayout, rng: RandomState, runs: int
    ) -> np.ndarray:
        rng = ensure_rng(rng)
        source = layout.source_indices
        parity = layout.parity_indices
        keep = int(round(self.source_fraction * source.size))
        out = np.empty((runs, keep + parity.size), dtype=np.int64)
        out[:, keep:] = parity
        if keep > 0:
            # Row-wise choice without replacement as one block draw: a
            # full row permutation of the source indices, truncated to the
            # first ``keep`` entries, is a uniform subset in uniform order.
            pool = np.empty((runs, source.size), dtype=np.int64)
            pool[:] = source
            rng.permuted(pool, axis=1, out=pool)
            out[:, :keep] = pool[:, :keep]
        rng.permuted(out, axis=1, out=out)
        return out

    def __repr__(self) -> str:
        return f"TxModel6(source_fraction={self.source_fraction})"


__all__ = ["TxModel1", "TxModel2", "TxModel3", "TxModel4", "TxModel5", "TxModel6"]
