"""Batched run synthesis: schedule -> loss -> received, arrays end to end.

This is the pre-decode "front end" of a simulated work unit.  The
incremental path builds each run separately -- one schedule draw, one loss
mask, one received array per run; :func:`synthesize_runs` produces the same
data for a whole work unit at once:

1. **Schedules** -- the transmission model emits every run's schedule as
   one ``(runs, length)`` array (:meth:`TransmissionModel.schedule_batch`);
   deterministic models broadcast a single row.
2. **Loss masks** -- the channel draws every run's mask as one
   ``(runs, length)`` array (:meth:`LossModel.loss_mask_batch`), using the
   selected :mod:`repro.kernels` backend for kernelised chains (Gilbert).
3. **Assembly** -- the surviving indices are gathered by one boolean
   selection straight into the flat layout of a
   :class:`~repro.kernels.ReceivedBatch`; per-run arrays are never
   materialised, and the schedule is bounds-checked **once per work unit**
   instead of per run.

Every stage is **bit-identical** to the per-run reference for any seed: the
batch APIs consume the generators exactly as the serial calls would (in run
order), so stage-major execution is draw-identical whenever the runs have
independent generators -- or whenever at most one stage draws at all.  When
runs *share* one generator and both stages are stochastic, stage-major
execution would reorder the draws, so :func:`synthesize_runs` transparently
falls back to the retained per-run interleaved loop (also used for
duck-typed third-party models without batch APIs, and for models with
run-dependent schedule lengths).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.channel.base import LossModel
from repro.fec.packet import PacketLayout
from repro.kernels import KernelSpec, ReceivedBatch, get_backend
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import validate_positive_int


@dataclass(frozen=True)
class SynthesizedRuns:
    """Pre-decode arrays for a whole work unit.

    Attributes
    ----------
    batch:
        The runs' received packet indices, flattened once in run order
        (what the decoder prototypes consume).
    n_sent:
        ``int64`` array: number of packets transmitted per run.
    """

    batch: ReceivedBatch
    n_sent: np.ndarray

    @property
    def num_runs(self) -> int:
        return self.batch.num_runs

    @property
    def n_received(self) -> np.ndarray:
        """``int64`` array: number of packets received per run."""
        return self.batch.lengths


def _empty_synthesis() -> SynthesizedRuns:
    zeros = np.zeros(0, dtype=np.int64)
    return SynthesizedRuns(
        batch=ReceivedBatch(flat=zeros, offsets=zeros.copy(), lengths=zeros.copy()),
        n_sent=zeros.copy(),
    )


def _check_received_bounds(flat: np.ndarray, n: int) -> None:
    """One bounds check per work unit (the per-run check this replaces).

    The vectorised decoders stack runs into one flat index space, so an
    out-of-range index would silently corrupt a *neighbour* run instead of
    raising; checking the flattened received indices once covers every run
    at the cost of a single min/max scan.
    """
    if flat.size and (int(flat.min()) < 0 or int(flat.max()) >= n):
        raise ValueError(f"schedule contains indices outside [0, {n})")


def _all_distinct(rngs: Sequence[np.random.Generator]) -> bool:
    # Two Generator wrappers can share one BitGenerator (and hence one
    # stream), so distinctness must be judged on the underlying state.
    return len({id(rng.bit_generator) for rng in rngs}) == len(rngs)


def can_batch_stages(tx_model, channel, rngs: Sequence[np.random.Generator]) -> bool:
    """Whether stage-major batching is draw-identical to the per-run loop.

    True when both layers expose batch APIs and the draw order cannot
    differ: the generators are pairwise distinct (each run only ever
    consumes its own stream), or at most one of the two stages draws at
    all.  ``rngs`` must already be resolved generators.
    """
    if getattr(tx_model, "schedule_batch", None) is None:
        return False
    if getattr(channel, "loss_mask_batch", None) is None:
        return False
    tx_draws = bool(getattr(tx_model, "uses_rng", True))
    channel_draws = bool(getattr(channel, "uses_rng", True))
    return (not tx_draws) or (not channel_draws) or _all_distinct(rngs)


def synthesize_runs(
    layout: PacketLayout,
    tx_model,
    channel: LossModel,
    rngs: Sequence[RandomState],
    *,
    nsent: Optional[int] = None,
    kernel: KernelSpec = None,
) -> SynthesizedRuns:
    """Schedules, losses and received batches for one work unit, vectorised.

    ``rngs`` may contain distinct generators (one independent stream per
    run, the runner's scheme) or the same generator repeated
    (``run_many``'s sequential consumption) -- either way the draws happen
    in the exact order of the incremental path, via the batched stages
    when that is provably draw-identical and via the retained per-run
    interleaved loop otherwise.
    """
    if nsent is not None:
        nsent = validate_positive_int(nsent, "nsent")
    resolved = [ensure_rng(rng) for rng in rngs]
    if not resolved:
        return _empty_synthesis()
    if can_batch_stages(tx_model, channel, resolved):
        return _synthesize_batched(
            layout, tx_model, channel, resolved, nsent=nsent, kernel=kernel
        )
    return _synthesize_interleaved(
        layout, tx_model, channel, resolved, nsent=nsent, kernel=kernel
    )


def _synthesize_batched(
    layout: PacketLayout,
    tx_model,
    channel: LossModel,
    rngs: Sequence[np.random.Generator],
    *,
    nsent: Optional[int],
    kernel: KernelSpec,
) -> SynthesizedRuns:
    """Stage-major path: whole-unit schedule and loss arrays, one gather."""
    schedules = tx_model.schedule_batch(layout, rngs)
    if not (isinstance(schedules, np.ndarray) and schedules.ndim == 2):
        # Run-dependent schedule lengths (a ragged row list): the
        # generators were already consumed in run order, so assemble the
        # rows as-is -- per-run loss masks follow, which is draw-identical
        # here because can_batch_stages() established the stages cannot
        # contend for one generator.
        return _assemble_ragged(
            layout, tx_model, channel, schedules, rngs, nsent=nsent, kernel=kernel
        )
    if schedules.dtype != np.int64:
        schedules = schedules.astype(np.int64)
    if nsent is not None:
        schedules = schedules[:, :nsent]
    width = schedules.shape[1]
    loss = channel.loss_mask_batch(width, rngs, kernel=kernel)
    return _assemble_dense(layout, schedules, loss)


def _assemble_dense(
    layout: PacketLayout, schedules: np.ndarray, loss: np.ndarray
) -> SynthesizedRuns:
    """Gather a dense ``(runs, width)`` schedule/loss pair into a batch."""
    runs, width = schedules.shape
    kept = ~np.asarray(loss, dtype=bool)
    lengths = kept.sum(axis=1, dtype=np.int64)
    offsets = np.zeros(runs, dtype=np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    # Boolean selection over the 2-D array is row-major: run 0's surviving
    # indices in arrival order, then run 1's, ... -- exactly the flat
    # layout of a ReceivedBatch, with no per-run arrays in between.
    flat = schedules[kept]
    _check_received_bounds(flat, layout.n)
    return SynthesizedRuns(
        batch=ReceivedBatch(flat=flat, offsets=offsets, lengths=lengths),
        n_sent=np.full(runs, width, dtype=np.int64),
    )


def synthesize_runs_unit(
    layout: PacketLayout,
    tx_model,
    channel: LossModel,
    rng: RandomState,
    runs: int,
    *,
    nsent: Optional[int] = None,
    kernel: KernelSpec = None,
) -> SynthesizedRuns:
    """Whole-unit synthesis from ONE shared generator (the unit seed scheme).

    The counterpart of :func:`synthesize_runs` for the ``"unit"`` scheme
    of :mod:`repro.seeds`: every run's randomness comes from the single
    counter-based unit generator, so stage-major batching is
    *unconditional* -- there is no shared-generator fallback loop, because
    the scheme's streams are **defined** by this function's block-draw
    order (all schedules first, then all loss masks).  Models without the
    ``*_batch_unit`` APIs degrade to deterministic per-run draws from the
    shared generator, stage by stage.
    """
    if nsent is not None:
        nsent = validate_positive_int(nsent, "nsent")
    if runs < 0:
        raise ValueError(f"runs must be non-negative, got {runs}")
    if runs == 0:
        return _empty_synthesis()
    rng = ensure_rng(rng)
    backend = get_backend(kernel)

    if getattr(tx_model, "schedule_batch_unit", None) is not None:
        schedules = tx_model.schedule_batch_unit(layout, rng, runs)
    else:
        schedules = [
            np.asarray(tx_model.schedule(layout, rng), dtype=np.int64)
            for _ in range(runs)
        ]
    if isinstance(schedules, np.ndarray) and schedules.ndim == 2:
        if schedules.dtype != np.int64:
            schedules = schedules.astype(np.int64)
        if nsent is not None:
            schedules = schedules[:, :nsent]
        width = schedules.shape[1]
        if getattr(channel, "loss_mask_batch_unit", None) is not None:
            loss = channel.loss_mask_batch_unit(width, rng, runs, kernel=backend)
        else:
            loss = np.empty((runs, width), dtype=bool)
            for row in loss:
                row[:] = channel.loss_mask(width, rng, kernel=backend)
        return _assemble_dense(layout, schedules, loss)

    # Ragged schedule lengths: the schedules are already drawn, so per-run
    # loss masks follow in row order from the same shared generator.
    return _assemble_ragged(
        layout,
        tx_model,
        channel,
        schedules,
        [rng] * len(schedules),
        nsent=nsent,
        kernel=backend,
    )


def _assemble_ragged(
    layout: PacketLayout,
    tx_model,
    channel: LossModel,
    rows: Sequence[np.ndarray],
    rngs: Sequence[np.random.Generator],
    *,
    nsent: Optional[int],
    kernel: KernelSpec,
) -> SynthesizedRuns:
    """Assemble already-drawn ragged schedule rows (per-run loss masks)."""
    backend = get_backend(kernel)
    n_sent = np.empty(len(rows), dtype=np.int64)
    received: List[np.ndarray] = []
    for index, (schedule, rng) in enumerate(zip(rows, rngs)):
        if index == 0:
            schedule = tx_model.validate_schedule(layout, schedule)
        else:
            schedule = np.asarray(schedule, dtype=np.int64)
        if nsent is not None:
            schedule = schedule[:nsent]
        loss = channel.loss_mask(schedule.size, rng, kernel=backend)
        n_sent[index] = schedule.size
        received.append(schedule[~loss])
    batch = ReceivedBatch.from_sequences(received)
    _check_received_bounds(batch.flat, layout.n)
    return SynthesizedRuns(batch=batch, n_sent=n_sent)


def _synthesize_interleaved(
    layout: PacketLayout,
    tx_model,
    channel: LossModel,
    rngs: Sequence[np.random.Generator],
    *,
    nsent: Optional[int],
    kernel: KernelSpec,
) -> SynthesizedRuns:
    """Per-run reference loop: schedule then mask, run by run.

    This is the bit-identity reference the batched path is tested against,
    and the executable path for shared-generator batches (draw interleaving
    matters there) and for duck-typed models without batch APIs.
    """
    backend = get_backend(kernel)
    n_sent = np.empty(len(rngs), dtype=np.int64)
    received: List[np.ndarray] = []
    validated = False
    for index, rng in enumerate(rngs):
        schedule = tx_model.schedule(layout, rng)
        if validated:
            schedule = np.asarray(schedule, dtype=np.int64)
        else:
            schedule = tx_model.validate_schedule(layout, schedule)
            validated = True
        if nsent is not None:
            schedule = schedule[:nsent]
        loss = channel.loss_mask(schedule.size, rng, kernel=backend)
        n_sent[index] = schedule.size
        received.append(schedule[~loss])
    batch = ReceivedBatch.from_sequences(received)
    _check_received_bounds(batch.flat, layout.n)
    return SynthesizedRuns(batch=batch, n_sent=n_sent)


__all__ = [
    "SynthesizedRuns",
    "synthesize_runs",
    "synthesize_runs_unit",
    "can_batch_stages",
]
