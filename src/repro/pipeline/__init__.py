"""Batched run-synthesis pipeline: whole work units as array computation.

With the decode hot loops compiled (:mod:`repro.kernels`), the pre-decode
layers dominated the profile: per-run schedule generation, per-run channel
masks and per-run result-object construction.  This package batches those
layers the same way :mod:`repro.fastpath` batched decoding, so a work unit
flows schedule -> loss -> decode -> metrics as arrays end to end:

* :func:`synthesize_runs` -- the pre-decode front end: every run's
  transmission schedule as one ``(runs, length)`` array
  (:meth:`TransmissionModel.schedule_batch`), every run's loss mask as one
  array (:meth:`LossModel.loss_mask_batch`), and one boolean gather into
  the flat :class:`~repro.kernels.ReceivedBatch` the decoder prototypes
  consume.  Schedules are bounds-checked once per work unit, not per run.
* :func:`simulate_unit` -- the full pipeline: synthesis plus the batched
  decode, returning a columnar
  :class:`~repro.core.metrics.RunResultBatch` (one array per metric; no
  per-run result objects on the hot path).

Both are **bit-identical** to the per-run incremental path for any seed;
the per-run interleaved loop is retained inside :func:`synthesize_runs` as
the reference (and as the executable path for shared-generator batches and
duck-typed models without batch APIs).
"""

from repro.pipeline.synthesis import (
    SynthesizedRuns,
    can_batch_stages,
    synthesize_runs,
    synthesize_runs_unit,
)


def simulate_unit(code, tx_model, channel, rngs, *, nsent=None, kernel=None):
    """Simulate one work unit end to end, columnar.

    Equivalent to one :func:`repro.fastpath.simulate_batch` call but
    returning the :class:`~repro.core.metrics.RunResultBatch` arrays
    directly (what the runner's work units consume).  Thin alias for
    :func:`repro.fastpath.simulate_batch_columnar`, imported lazily to
    keep the package dependency graph acyclic.
    """
    from repro.fastpath.batch import simulate_batch_columnar

    return simulate_batch_columnar(
        code, tx_model, channel, rngs, nsent=nsent, kernel=kernel
    )


__all__ = [
    "SynthesizedRuns",
    "synthesize_runs",
    "synthesize_runs_unit",
    "can_batch_stages",
    "simulate_unit",
]
