"""Vectorised batch-simulation fast path.

The incremental simulator (:mod:`repro.core.simulator`) feeds packets one
at a time through a symbolic decoder -- the right abstraction for clarity
and the reference for correctness, but a Python-level loop in the hottest
path of every sweep.  This package replaces it with array computation that
is **bit-identical** for any seed:

* :mod:`repro.fastpath.prototypes` -- per-code precompiled decoder state
  and the batched decode algorithms (closed-form RSE/repetition counting,
  LDGM peeling on a pluggable :mod:`repro.kernels` backend, incremental
  fallback).
* :mod:`repro.fastpath.batch` -- :func:`simulate_batch_columnar`, the
  drop-in batch equivalent of running the simulator once per run: the
  batched :mod:`repro.pipeline` front end (whole-unit schedules, loss
  masks and received assembly as arrays) plus the prototype decode,
  returning columnar :class:`~repro.core.metrics.RunResultBatch` arrays
  (:func:`simulate_batch` wraps them back into per-run results).

Selected by default through ``Simulator.run_many(fastpath=True)``, the
runner work units and the benchmark harness; pass ``fastpath=False`` (or
``--no-fastpath`` on the CLI) to fall back to the incremental path, and
``kernel=`` / ``--kernel`` / ``REPRO_KERNEL`` to pick the kernel backend
(numpy reference or the optional numba JIT -- results are bit-identical
either way).
"""

from repro.fastpath.batch import (
    MAX_STACKED_EDGES,
    decode_batch_incremental,
    simulate_batch,
    simulate_batch_columnar,
)
from repro.fastpath.prototypes import (
    NOT_DECODED,
    BlockCountPrototype,
    DecoderPrototype,
    IncrementalPrototype,
    LDGMPrototype,
    ReceivedBatch,
    compile_prototype,
    register_prototype_compiler,
)

__all__ = [
    "simulate_batch",
    "simulate_batch_columnar",
    "decode_batch_incremental",
    "MAX_STACKED_EDGES",
    "NOT_DECODED",
    "ReceivedBatch",
    "DecoderPrototype",
    "BlockCountPrototype",
    "LDGMPrototype",
    "IncrementalPrototype",
    "compile_prototype",
    "register_prototype_compiler",
]
