"""Precompiled decoder prototypes: per-code state built once, used per batch.

A prototype captures everything about a FEC code that the symbolic decoder
would otherwise rebuild for every simulated run -- CSR adjacency, initial
per-row peeling state, block membership tables -- and exposes one operation:

``decode_batch(received) -> (decoded, n_necessary)``

for a whole batch of runs at once.  The results are bit-identical to feeding
each run's received sequence through the incremental
:class:`repro.fec.base.SymbolicDecoder` and stopping at the first packet
that completes decoding (:meth:`repro.core.simulator.Simulator.run`):

* **MDS block codes (RSE)** -- a block decodes exactly when ``k_b`` distinct
  packets of it have arrived, so ``n_necessary`` is a closed-form order
  statistic over the per-block arrival positions: no per-packet work at all.
* **Repetition** -- same closed form with "block" replaced by "source id".
* **LDGM family** -- the prototype precompiles the adjacency (CSR both
  ways, a padded column table, packed count|sum peeling words) and detects
  the bidiagonal staircase/triangle parity structure; the *decode loops*
  run on a pluggable :mod:`repro.kernels` backend (vectorised numpy
  reference, optional numba JIT) selected via ``kernel=`` /
  ``REPRO_KERNEL``.
* **Anything else** -- a fallback prototype replays the incremental decoder
  so the fast path is safe for codes registered by third parties.

Prototypes are cached on the code instance per kernel backend: compiling is
itself vectorised and cheap, but a work unit should pay for it once, not
per run.
"""

from __future__ import annotations

import abc
import threading
from typing import Callable, Dict, Sequence, Tuple, Type, Union

import numpy as np

from repro.fec.base import FECCode
from repro.kernels import (
    COUNT_SHIFT,
    NOT_DECODED,
    KernelSpec,
    ReceivedBatch,
    get_backend,
)

#: What ``decode_batch`` accepts: per-run index arrays or a ready batch.
ReceivedInput = Union[Sequence[np.ndarray], ReceivedBatch]


class DecoderPrototype(abc.ABC):
    """Batch decoder for one FEC code instance."""

    def __init__(self, code: FECCode, kernel: KernelSpec = None):
        self.code = code
        self.k = code.k
        self.n = code.n
        self.kernel = get_backend(kernel)

    @abc.abstractmethod
    def decode_batch(
        self, received: ReceivedInput
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Decode a batch of runs given each run's received index sequence.

        Parameters
        ----------
        received:
            One 1-D ``int64`` array per run -- the global packet indices the
            receiver got, in arrival order (duplicates allowed) -- or an
            already-flattened :class:`~repro.kernels.ReceivedBatch`.

        Returns
        -------
        decoded:
            Boolean array, one entry per run.
        n_necessary:
            ``int64`` array: the 1-based arrival position of the packet that
            completed decoding, or :data:`NOT_DECODED` for failed runs.
        """


# ---------------------------------------------------------------------------
# Closed-form prototypes: MDS blocks and repetition.
# ---------------------------------------------------------------------------

#: "Never arrived" sentinel in the first-arrival position table; sorts after
#: every real position, so reaching it in an order statistic means the
#: group's distinct-count goal was not met.
_NEVER = np.iinfo(np.int64).max

#: Upper bound on the elements of one first-arrival position table
#: (``runs x (keys_per_run + 1)`` int64); larger batches are decoded in
#: run chunks to bound peak memory (~0.5 GB).
_MAX_TABLE_ELEMENTS = 64_000_000


class BlockCountPrototype(DecoderPrototype):
    """Closed-form batch decoder for codes where decoding is a counting rule.

    Covers every code whose completion condition is "each group ``g`` has
    received ``needed[g]`` distinct keys": RSE blocks (key = packet index,
    group = block) and repetition (key = group = source id).

    The whole batch reduces to order statistics over first-arrival
    positions, computed without a single sort:

    1. one reversed scatter builds the ``(runs, keys)`` table of each
       key's first arrival position (later stores win a fancy-indexing
       scatter, so storing in reverse arrival order keeps the first),
    2. a precompiled gather regroups the table's columns by group (groups
       padded to a common width with a sentinel key that never arrives),
    3. ``np.partition`` selects each group's ``needed``-th smallest
       position -- an O(table) selection replacing the former
       ``np.unique`` + ``lexsort`` passes, which dominated the closed-form
       families' profile (~6x the remaining work at k = 1000).
    """

    def __init__(
        self,
        code: FECCode,
        group_of_key: np.ndarray,
        needed: np.ndarray,
        key_of: Callable[[np.ndarray], np.ndarray],
        keys_per_run: int,
        kernel: KernelSpec = None,
    ):
        super().__init__(code, kernel)
        self._group_of_key = group_of_key
        self._needed = needed
        self._key_of = key_of
        self._keys_per_run = int(keys_per_run)
        self._num_groups = int(needed.size)
        group_sizes = np.bincount(group_of_key, minlength=self._num_groups)
        width = int(group_sizes.max()) if group_sizes.size else 0
        # (groups, width) table of key ids, padded with the sentinel key
        # ``keys_per_run`` (the position table's extra always-_NEVER column).
        gather = np.full((self._num_groups, width), self._keys_per_run, dtype=np.int64)
        order = np.argsort(group_of_key, kind="stable")
        starts = np.zeros(self._num_groups, dtype=np.int64)
        np.cumsum(group_sizes[:-1], out=starts[1:])
        slot = np.arange(order.size, dtype=np.int64) - np.repeat(starts, group_sizes)
        gather[group_of_key[order], slot] = order
        self._gather = gather
        #: Groups sharing a ``needed`` value are partitioned together.
        self._classes = [
            (int(value), np.nonzero(needed == value)[0])
            for value in np.unique(needed)
        ]
        #: A group that needs more distinct keys than it has can never be
        #: reached; its order statistic would index out of the padded row.
        self._impossible = np.nonzero(needed > group_sizes)[0]

    def decode_batch(
        self, received: ReceivedInput
    ) -> Tuple[np.ndarray, np.ndarray]:
        batch = ReceivedBatch.coerce(received)
        num_runs = batch.num_runs
        table_width = self._keys_per_run + 1
        chunk = max(1, _MAX_TABLE_ELEMENTS // table_width)
        if num_runs > chunk:
            decoded = np.zeros(num_runs, dtype=bool)
            n_necessary = np.full(num_runs, NOT_DECODED, dtype=np.int64)
            for start in range(0, num_runs, chunk):
                stop = min(start + chunk, num_runs)
                decoded[start:stop], n_necessary[start:stop] = self._decode_chunk(
                    batch.slice(start, stop)
                )
            return decoded, n_necessary
        return self._decode_chunk(batch)

    def _decode_chunk(
        self, batch: ReceivedBatch
    ) -> Tuple[np.ndarray, np.ndarray]:
        num_runs = batch.num_runs
        B = self._num_groups
        table_width = self._keys_per_run + 1
        first_position = np.full(num_runs * table_width, _NEVER, dtype=np.int64)
        if batch.flat.size:
            run_ids = np.repeat(
                np.arange(num_runs, dtype=np.int64), batch.lengths
            )
            keys = self._key_of(batch.flat)
            positions = np.arange(batch.flat.size, dtype=np.int64) - np.repeat(
                batch.offsets, batch.lengths
            )
            cells = run_ids * np.int64(table_width) + keys
            # Reversed scatter: duplicate keys collapse to their *first*
            # arrival because the earliest store happens last.
            first_position[cells[::-1]] = positions[::-1]
        grouped = first_position.reshape(num_runs, table_width)[:, self._gather]
        threshold = np.empty((num_runs, B), dtype=np.int64)
        for needed, groups in self._classes:
            # Clamped for malformed third-party inputs (needed beyond the
            # group width is impossible and overwritten below; zero means
            # trivially reached before any arrival).
            kth = min(needed, grouped.shape[2]) - 1
            if kth < 0:
                threshold[:, groups] = -1
                continue
            statistic = np.partition(grouped[:, groups, :], kth, axis=2)
            threshold[:, groups] = statistic[:, :, kth]
        if self._impossible.size:
            threshold[:, self._impossible] = _NEVER
        decoded = (threshold < _NEVER).all(axis=1)
        n_necessary = np.full(num_runs, NOT_DECODED, dtype=np.int64)
        n_necessary[decoded] = threshold[decoded].max(axis=1) + 1
        return decoded, n_necessary


def compile_rse_prototype(code: FECCode, kernel: KernelSpec = None) -> BlockCountPrototype:
    """RSE: a block decodes once ``k_b`` distinct packets of it arrived."""
    layout = code.layout
    block_of = np.empty(layout.n, dtype=np.int64)
    needed = np.empty(layout.num_blocks, dtype=np.int64)
    for block in layout.blocks:
        block_of[block.source_indices] = block.block_id
        block_of[block.parity_indices] = block.block_id
        needed[block.block_id] = block.k
    return BlockCountPrototype(
        code,
        group_of_key=block_of,
        needed=needed,
        key_of=lambda indices: indices,
        keys_per_run=layout.n,
        kernel=kernel,
    )


def compile_repetition_prototype(
    code: FECCode, kernel: KernelSpec = None
) -> BlockCountPrototype:
    """Repetition: decoding completes once all ``k`` sources were seen."""
    k = code.k
    return BlockCountPrototype(
        code,
        group_of_key=np.zeros(k, dtype=np.int64),
        needed=np.array([k], dtype=np.int64),
        key_of=lambda indices: indices % np.int64(k),
        keys_per_run=k,
        kernel=kernel,
    )


# ---------------------------------------------------------------------------
# LDGM: precompiled peeling arrays, decoded by the selected kernel backend.
# ---------------------------------------------------------------------------


class LDGMPrototype(DecoderPrototype):
    """Precompiled peeling-decoder state over the code's CSR arrays.

    The prototype owns everything shape-dependent -- row/column CSR
    adjacency, the padded column table, the packed ``count << 40 | id_sum``
    row words, the bidiagonal-chain detection -- and delegates the decode
    loops to its :class:`~repro.kernels.KernelBackend`:

    * the ``numpy`` backend runs a lockstep gallop+bisect search for the
      smallest decodable prefix of every run, batch-peeling only delta
      packets from checkpointed state, with a chain-aware cascade that
      resolves whole staircase reveal chains in one scan;
    * the ``numba``/``python`` backends replay the incremental peel run by
      run (the compiled form needs no batching to be fast).

    All backends return bit-identical ``(decoded, n_necessary)`` arrays.
    """

    def __init__(self, code: FECCode, kernel: KernelSpec = None):
        super().__init__(code, kernel)
        matrix = code.matrix
        self.num_checks = matrix.num_checks
        self.row_ptr, self.row_cols = matrix.row_csr()
        self.row_degrees = matrix.row_degrees()
        self.col_indptr, self.col_rows = matrix.column_adjacency()
        self.num_edges = int(self.row_cols.size)
        row_sums = (
            np.add.reduceat(self.row_cols, self.row_ptr[:-1])
            if self.row_cols.size
            else np.zeros(self.num_checks, dtype=np.int64)
        )
        row_sums[self.row_degrees == 0] = 0
        self.row_sums = row_sums
        #: Per-node degree, for the cascade's exact CSR edge expansion.
        self.col_degrees = np.diff(self.col_indptr)
        self.row_packed = None
        self.col_rows_padded = None
        self.chain_expected = None
        self.parity_extra_indptr = None
        self.parity_extra_rows = None
        self.parity_extra_degrees = None
        if self.kernel.stacks_batches:
            # Only the numpy lockstep cascade works on packed count|sum
            # words; the per-run loop backends keep counts and sums in
            # separate int64 arrays and have no size bound, so the packed
            # constraint must not force them onto the incremental fallback.
            if self.row_cols.size and int(self.row_cols.max()) * int(
                self.row_degrees.max()
            ) >= 1 << COUNT_SHIFT:
                raise ValueError(
                    "code too large for the packed peeling state "
                    f"(id sums must stay below 2**{COUNT_SHIFT})"
                )
            self.row_packed = (self.row_degrees << COUNT_SHIFT) + row_sums
            #: Degenerate matrices can carry rows whose INITIAL unknown
            #: count is already 1; the incremental decoder never peels
            #: from them (rows are only examined on decrement), so the
            #: cascade's full-state trigger scan must ignore them until
            #: they are actually touched.
            self.has_unit_rows = bool((self.row_degrees == 1).any())
            self.col_rows_padded = self._build_padded_adjacency()
            self.chain_expected = self._detect_chain()
            if self.chain_expected is not None:
                self.parity_extra_indptr, self.parity_extra_rows = (
                    self._build_parity_extras()
                )
                self.parity_extra_degrees = np.diff(self.parity_extra_indptr)

    @property
    def chain_aware(self) -> bool:
        """Whether the bidiagonal parity chain was detected (and exploited)."""
        return self.chain_expected is not None

    #: Build the dense padded column table only while its ghost slots stay
    #: a modest fraction of the real edges; beyond that (triangle parities
    #: can sit in many below-diagonal rows) the exact CSR expansion wins.
    _PADDING_WASTE_LIMIT = 1.35

    def _build_padded_adjacency(self):
        """Dense ``(n, max_degree)`` column table, or None when wasteful.

        Node degrees of the staircase are tiny and near-uniform
        (``left_degree`` for sources, <= 2 for parities), so a dense table
        turns the cascade's per-round CSR expansion into one fancy-indexing
        gather.  Ghost slots of low-degree nodes point at the per-run
        *sentinel row* (local index ``num_checks``), whose unknown count
        starts astronomically high: updates land there harmlessly.  Skipped
        when padding would inflate the edge traffic past
        :attr:`_PADDING_WASTE_LIMIT` (the numpy cascade then expands exact
        CSR edge lists instead) or when the code is so large that a
        cascade's ghost hits could dent the sentinel's count headroom.
        """
        degrees = self.col_degrees
        max_degree = int(degrees.max()) if degrees.size else 0
        if max_degree == 0:
            return None
        if self.n * max_degree > self._PADDING_WASTE_LIMIT * self.num_edges:
            return None
        if self.n * max_degree >= 1 << 21:
            # Keep the sentinel's 2**22 initial count far above the ghost
            # decrements one cascade can apply.
            return None
        padded = np.full((self.n, max_degree), self.num_checks, dtype=np.int64)
        node_ids = np.repeat(np.arange(self.n, dtype=np.int64), degrees)
        slot = np.arange(self.col_rows.size, dtype=np.int64) - np.repeat(
            self.col_indptr[:-1], degrees
        )
        padded[node_ids, slot] = self.col_rows
        return padded

    def _detect_chain(self):
        """Detect the staircase/triangle bidiagonal parity structure.

        From the row CSR only: every check row ``j`` must contain its own
        parity column ``k + j`` and (for ``j >= 1``) the previous one
        ``k + j - 1``, and no column above ``k + j``.  Under those
        constraints the packed word ``2 << COUNT_SHIFT | (2k + 2j - 1)`` is
        achieved *only* by the unknown pair ``{k+j-1, k+j}`` -- any other
        2-subset of the row's columns sums strictly lower (two sources stay
        below ``2k - 2``; an extra below-diagonal parity plus either
        staircase parity misses the sum by at least one) -- which is what
        makes the O(1) chain-eligibility test of the numpy cascade sound.

        Returns the per-row expected words (with impossible ``-1`` entries
        for row 0 and the sentinel slot), or ``None`` when the structure
        does not hold (plain LDGM, third-party matrices).
        """
        num_checks = self.num_checks
        k = self.k
        if num_checks < 2 or self.row_cols.size == 0:
            return None
        row_ids = np.repeat(
            np.arange(num_checks, dtype=np.int64), self.row_degrees
        )
        cols = self.row_cols
        own = np.zeros(num_checks, dtype=bool)
        own[row_ids[cols == row_ids + k]] = True
        previous = np.zeros(num_checks, dtype=bool)
        previous[row_ids[cols == row_ids + k - 1]] = True
        if not (own.all() and previous[1:].all()):
            return None
        if (cols > row_ids + k).any():
            return None
        expected = (np.int64(2) << COUNT_SHIFT) + (
            2 * k - 1 + 2 * np.arange(num_checks, dtype=np.int64)
        )
        expected[0] = -1  # row 0 has no previous parity; never chain-eligible
        return np.concatenate([expected, np.array([-1], dtype=np.int64)])

    def _build_parity_extras(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR of each parity's check rows *beyond* its bidiagonal pair.

        A resolved chain stretch is applied to the peeling state directly:
        every bidiagonal edge of a stretch parity lands inside the stretch
        (rows zero out) or on one of its two boundary rows.  What remains
        are the extra below-diagonal entries of the triangle -- parity
        ``t`` may also sit in rows ``r >= t + 2`` -- which the cascade
        routes through this CSR.  (An extra edge can never point into
        another stretch: a chain-eligible row's extra parity is already
        known.)  Empty for the pure staircase.
        """
        num_checks, k = self.num_checks, self.k
        start = self.col_indptr[k]
        flat_rows = self.col_rows[start:]
        parity_of_edge = np.repeat(
            np.arange(num_checks, dtype=np.int64), self.col_degrees[k:]
        )
        extra = (flat_rows != parity_of_edge) & (
            flat_rows != parity_of_edge + 1
        )
        extra_rows = flat_rows[extra]
        counts = np.bincount(parity_of_edge[extra], minlength=num_checks)
        indptr = np.zeros(num_checks + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, extra_rows

    def decode_batch(
        self, received: ReceivedInput
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.kernel.ldgm_decode_batch(self, ReceivedBatch.coerce(received))


def compile_ldgm_prototype(code: FECCode, kernel: KernelSpec = None) -> DecoderPrototype:
    try:
        return LDGMPrototype(code, kernel)
    except ValueError:
        # Only the numpy lockstep backend has the packed-word size bound
        # (hit around n in the millions, far outside the paper's range);
        # it falls back to the incremental replay there, while the
        # per-run loop backends never raise and keep their fast peel.
        return IncrementalPrototype(code, kernel)


class IncrementalPrototype(DecoderPrototype):
    """Fallback for codes without a vectorised prototype.

    Replays each run through the code's own incremental symbolic decoder --
    no speedup, but it keeps ``fastpath=True`` safe for every registered
    code and is also the reference the equivalence tests compare against.
    """

    def decode_batch(
        self, received: ReceivedInput
    ) -> Tuple[np.ndarray, np.ndarray]:
        batch = ReceivedBatch.coerce(received)
        decoded = np.zeros(batch.num_runs, dtype=bool)
        n_necessary = np.full(batch.num_runs, NOT_DECODED, dtype=np.int64)
        for run, indices in enumerate(batch.sequences()):
            decoder = self.code.new_symbolic_decoder()
            for count, index in enumerate(indices, start=1):
                if decoder.add_packet(index):
                    n_necessary[run] = count
                    break
            decoded[run] = decoder.is_complete
        return decoded, n_necessary


# ---------------------------------------------------------------------------
# Registry: code class -> prototype compiler.
# ---------------------------------------------------------------------------

PrototypeCompiler = Callable[[FECCode, KernelSpec], DecoderPrototype]

_COMPILERS: Dict[Type[FECCode], PrototypeCompiler] = {}

#: Attribute under which compiled prototypes are cached on code instances
#: (one per kernel backend name).
_CACHE_ATTR = "_fastpath_prototypes"

#: Attribute naming a code instance's *semantic* identity (a hashable
#: token set by :func:`set_prototype_memo_token`).  Two instances with
#: the same token were built by the same pure function of (config, seed)
#: and therefore compile to interchangeable prototypes.
_MEMO_TOKEN_ATTR = "_fastpath_memo_token"

#: Module-level memo of compiled prototypes keyed by (code identity,
#: backend name).  The per-instance cache above already avoids recompiles
#: while a code object stays alive; this map survives the instance, so a
#: worker that rebuilds an identical code (resumed sweeps, repeated units
#: after a code-cache eviction) reuses the compiled prototype instead of
#: recompiling.  Insertion-ordered with FIFO eviction; guarded by a lock
#: for thread-executor workers.
_PROTOTYPE_MEMO: Dict[Tuple[object, str], DecoderPrototype] = {}
_PROTOTYPE_MEMO_MAX = 64
_PROTOTYPE_MEMO_LOCK = threading.Lock()


def set_prototype_memo_token(code: FECCode, token: object) -> None:
    """Tag a code instance with its semantic identity for prototype reuse.

    ``token`` must be hashable and must fully determine the code's
    structure (the runner uses its shared-code cache key: config token +
    code seed).  Tagged codes share compiled prototypes across instances
    through the module-level memo; untagged codes keep the per-instance
    cache only.
    """
    setattr(code, _MEMO_TOKEN_ATTR, token)


def register_prototype_compiler(
    code_cls: Type[FECCode], compiler: PrototypeCompiler
) -> None:
    """Register a prototype compiler for a code class (and its subclasses).

    ``compiler`` is called as ``compiler(code, kernel)`` where ``kernel``
    is the resolved-or-None kernel spec the caller selected.
    """
    _COMPILERS[code_cls] = compiler


def _register_builtin_compilers() -> None:
    from repro.fec.ldgm.code import LDGMCode, LDGMStaircaseCode, LDGMTriangleCode
    from repro.fec.repetition import RepetitionCode
    from repro.fec.rse.object_codec import ReedSolomonCode

    for cls in (LDGMCode, LDGMStaircaseCode, LDGMTriangleCode):
        register_prototype_compiler(cls, compile_ldgm_prototype)
    register_prototype_compiler(ReedSolomonCode, compile_rse_prototype)
    register_prototype_compiler(RepetitionCode, compile_repetition_prototype)


_register_builtin_compilers()


def compile_prototype(code: FECCode, kernel: KernelSpec = None) -> DecoderPrototype:
    """Return the (cached) batch-decoder prototype for a code instance.

    Prototypes are cached per kernel backend, so switching ``kernel=`` (or
    ``REPRO_KERNEL``) between calls compiles at most once per backend.
    Codes tagged with :func:`set_prototype_memo_token` additionally share
    prototypes across semantically identical instances via a module-level
    memo, so one worker never recompiles the same (code, backend) pair --
    even when the instance itself was rebuilt.
    """
    backend = get_backend(kernel)
    cache = getattr(code, _CACHE_ATTR, None)
    if cache is None or cache.get("code") is not code:
        cache = {"code": code, "prototypes": {}}
        setattr(code, _CACHE_ATTR, cache)
    prototype = cache["prototypes"].get(backend.name)
    if prototype is not None:
        return prototype
    token = getattr(code, _MEMO_TOKEN_ATTR, None)
    memo_key = None
    if token is not None:
        memo_key = (token, backend.name)
        with _PROTOTYPE_MEMO_LOCK:
            prototype = _PROTOTYPE_MEMO.get(memo_key)
        if prototype is not None:
            cache["prototypes"][backend.name] = prototype
            return prototype
    compiler: PrototypeCompiler = IncrementalPrototype
    for cls in type(code).__mro__:
        registered = _COMPILERS.get(cls)
        if registered is not None:
            compiler = registered
            break
    prototype = compiler(code, backend)
    cache["prototypes"][backend.name] = prototype
    if memo_key is not None:
        with _PROTOTYPE_MEMO_LOCK:
            if len(_PROTOTYPE_MEMO) >= _PROTOTYPE_MEMO_MAX:
                _PROTOTYPE_MEMO.pop(next(iter(_PROTOTYPE_MEMO)))
            _PROTOTYPE_MEMO[memo_key] = prototype
    return prototype


__all__ = [
    "NOT_DECODED",
    "ReceivedBatch",
    "DecoderPrototype",
    "BlockCountPrototype",
    "LDGMPrototype",
    "IncrementalPrototype",
    "compile_prototype",
    "set_prototype_memo_token",
    "register_prototype_compiler",
    "compile_ldgm_prototype",
    "compile_rse_prototype",
    "compile_repetition_prototype",
]
