"""Precompiled decoder prototypes: per-code state built once, used per batch.

A prototype captures everything about a FEC code that the symbolic decoder
would otherwise rebuild for every simulated run -- CSR adjacency, initial
per-row peeling state, block membership tables -- and exposes one operation:

``decode_batch(received) -> (decoded, n_necessary)``

for a whole batch of runs at once.  The results are bit-identical to feeding
each run's received sequence through the incremental
:class:`repro.fec.base.SymbolicDecoder` and stopping at the first packet
that completes decoding (:meth:`repro.core.simulator.Simulator.run`):

* **MDS block codes (RSE)** -- a block decodes exactly when ``k_b`` distinct
  packets of it have arrived, so ``n_necessary`` is a closed-form order
  statistic over the per-block arrival positions: no per-packet work at all.
* **Repetition** -- same closed form with "block" replaced by "source id".
* **LDGM family** -- decodability of a received *prefix* is monotone in the
  prefix length (peeling over a superset recovers a superset), so
  ``n_necessary`` is found by an O(log n) bisection; every probe batch-peels
  the prefix from scratch over the precompiled CSR arrays, vectorised
  across all runs probing in lockstep.
* **Anything else** -- a fallback prototype replays the incremental decoder
  so the fast path is safe for codes registered by third parties.

Prototypes are cached on the code instance: compiling is itself vectorised
and cheap, but a work unit should pay for it once, not per run.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Sequence, Tuple, Type

import numpy as np

from repro.fec.base import FECCode

#: ``n_necessary`` sentinel used in the integer result array of
#: :meth:`DecoderPrototype.decode_batch` for runs that never decode.
NOT_DECODED = -1


class DecoderPrototype(abc.ABC):
    """Batch decoder for one FEC code instance."""

    def __init__(self, code: FECCode):
        self.code = code
        self.k = code.k
        self.n = code.n

    @abc.abstractmethod
    def decode_batch(
        self, received: Sequence[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Decode a batch of runs given each run's received index sequence.

        Parameters
        ----------
        received:
            One 1-D ``int64`` array per run: the global packet indices the
            receiver got, in arrival order (duplicates allowed).

        Returns
        -------
        decoded:
            Boolean array, one entry per run.
        n_necessary:
            ``int64`` array: the 1-based arrival position of the packet that
            completed decoding, or :data:`NOT_DECODED` for failed runs.
        """


# ---------------------------------------------------------------------------
# Closed-form prototypes: MDS blocks and repetition.
# ---------------------------------------------------------------------------


def _distinct_threshold_positions(
    group_ids: np.ndarray,
    positions: np.ndarray,
    needed: np.ndarray,
    num_groups: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Arrival position at which each group reaches its distinct-count goal.

    ``group_ids``/``positions`` describe distinct arrivals (one entry per
    first occurrence): the group the arrival counts towards and its 0-based
    position in the run.  For every group ``g`` with at least ``needed[g]``
    arrivals, returns the position of the ``needed[g]``-th one.

    Returns ``(reached, threshold_position)`` arrays of length
    ``num_groups``; ``threshold_position`` is undefined where ``reached`` is
    False.
    """
    counts = np.bincount(group_ids, minlength=num_groups)
    reached = counts >= needed
    order = np.lexsort((positions, group_ids))
    sorted_positions = positions[order]
    group_starts = np.zeros(num_groups, dtype=np.int64)
    np.cumsum(counts[:-1], out=group_starts[1:])
    threshold = np.zeros(num_groups, dtype=np.int64)
    reached_idx = np.nonzero(reached)[0]
    threshold[reached_idx] = sorted_positions[
        group_starts[reached_idx] + needed[reached_idx] - 1
    ]
    return reached, threshold


def _first_occurrences(
    received: Sequence[np.ndarray], key_of: Callable[[np.ndarray], np.ndarray], keys_per_run: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """First arrival of every distinct key, batched over runs.

    ``key_of`` maps packet indices to the identity that matters for the code
    (the index itself for RSE, ``index % k`` for repetition).  Returns
    ``(run_of, key, position)`` arrays with one entry per distinct
    ``(run, key)`` pair, where ``position`` is the 0-based arrival position
    within the run.
    """
    lengths = np.fromiter((r.size for r in received), dtype=np.int64, count=len(received))
    offsets = np.zeros(len(received), dtype=np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    if lengths.sum() == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, empty
    flat = np.concatenate([np.asarray(r, dtype=np.int64) for r in received])
    run_ids = np.repeat(np.arange(len(received), dtype=np.int64), lengths)
    keys = key_of(flat)
    _uniq, first = np.unique(run_ids * np.int64(keys_per_run) + keys, return_index=True)
    run_of = run_ids[first]
    return run_of, keys[first], first - offsets[run_of]


class BlockCountPrototype(DecoderPrototype):
    """Closed-form batch decoder for codes where decoding is a counting rule.

    Covers every code whose completion condition is "each group ``g`` has
    received ``needed[g]`` distinct keys": RSE blocks (key = packet index,
    group = block) and repetition (key = group = source id).
    """

    def __init__(
        self,
        code: FECCode,
        group_of_key: np.ndarray,
        needed: np.ndarray,
        key_of: Callable[[np.ndarray], np.ndarray],
        keys_per_run: int,
    ):
        super().__init__(code)
        self._group_of_key = group_of_key
        self._needed = needed
        self._key_of = key_of
        self._keys_per_run = int(keys_per_run)
        self._num_groups = int(needed.size)

    def decode_batch(
        self, received: Sequence[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        num_runs = len(received)
        B = self._num_groups
        run_of, keys, positions = _first_occurrences(
            received, self._key_of, self._keys_per_run
        )
        groups = run_of * np.int64(B) + self._group_of_key[keys]
        reached, threshold = _distinct_threshold_positions(
            groups,
            positions,
            np.tile(self._needed, num_runs),
            num_runs * B,
        )
        reached = reached.reshape(num_runs, B)
        threshold = threshold.reshape(num_runs, B)
        decoded = reached.all(axis=1)
        n_necessary = np.full(num_runs, NOT_DECODED, dtype=np.int64)
        n_necessary[decoded] = threshold[decoded].max(axis=1) + 1
        return decoded, n_necessary


def compile_rse_prototype(code: FECCode) -> BlockCountPrototype:
    """RSE: a block decodes once ``k_b`` distinct packets of it arrived."""
    layout = code.layout
    block_of = np.empty(layout.n, dtype=np.int64)
    needed = np.empty(layout.num_blocks, dtype=np.int64)
    for block in layout.blocks:
        block_of[block.source_indices] = block.block_id
        block_of[block.parity_indices] = block.block_id
        needed[block.block_id] = block.k
    return BlockCountPrototype(
        code,
        group_of_key=block_of,
        needed=needed,
        key_of=lambda indices: indices,
        keys_per_run=layout.n,
    )


def compile_repetition_prototype(code: FECCode) -> BlockCountPrototype:
    """Repetition: decoding completes once all ``k`` sources were seen."""
    k = code.k
    return BlockCountPrototype(
        code,
        group_of_key=np.zeros(k, dtype=np.int64),
        needed=np.array([k], dtype=np.int64),
        key_of=lambda indices: indices % np.int64(k),
        keys_per_run=k,
    )


# ---------------------------------------------------------------------------
# LDGM: batched peeling + lockstep bisection.
# ---------------------------------------------------------------------------


#: Reused empty frontier.
_EMPTY = np.zeros(0, dtype=np.int64)

#: Bit position splitting a packed row word into (unknown count, id sum).
_COUNT_SHIFT = 40
_SUM_MASK = (1 << _COUNT_SHIFT) - 1

#: Initial word of the per-run sentinel row that absorbs the padded
#: adjacency's ghost updates: an unknown count of 2**22, far above anything
#: a real row can hold and out of reach of the ghost decrements one
#: ``_advance`` call can apply (enforced by ``_GHOST_HEADROOM``).
_SENTINEL_WORD = np.int64(1) << (_COUNT_SHIFT + 22)

#: A single _advance can recover at most ``n`` nodes per run, each hitting
#: the sentinel at most ``max_degree`` times; requiring the product to stay
#: below this bound keeps the sentinel's count field above 2**21.
_GHOST_HEADROOM = 1 << 21


class _PeelState:
    """Stacked peeling state of a batch of runs (one block per run).

    Per-row state is one ``int64`` word: ``unknown_count << 40 | id_sum``,
    where ``id_sum`` is the *sum* of the row's still-unknown column ids.
    Like the incremental decoder's XOR accumulator, the sum of a single
    remaining element identifies it -- but a sum also updates by plain
    subtraction, so removing a known node from a row is a single fused
    ``packed -= (1 << 40) + node`` and cannot borrow across the fields
    (the id sum of the remaining unknowns never goes negative).
    """

    __slots__ = ("packed", "known", "source_counts")

    def __init__(self, packed: np.ndarray, known: np.ndarray, source_counts: np.ndarray):
        self.packed = packed
        self.known = known
        self.source_counts = source_counts

    def copy(self) -> "_PeelState":
        return _PeelState(
            self.packed.copy(), self.known.copy(), self.source_counts.copy()
        )

    def adopt(
        self, other: "_PeelState", runs: np.ndarray, num_checks: int, n: int
    ) -> None:
        """Overwrite the state blocks of ``runs`` with ``other``'s."""
        self.packed.reshape(-1, num_checks)[runs] = other.packed.reshape(
            -1, num_checks
        )[runs]
        self.known.reshape(-1, n)[runs] = other.known.reshape(-1, n)[runs]
        self.source_counts[runs] = other.source_counts[runs]


class LDGMPrototype(DecoderPrototype):
    """Batched peeling decoder over precompiled CSR arrays.

    Decoding a batch is a lockstep bisection for the smallest decodable
    received prefix of every run (decodability is monotone in the prefix:
    peeling a superset recovers a superset).  The peeling state at the
    bisection's ``lo`` prefix -- always undecodable -- is kept as a
    *checkpoint*: a probe copies it, applies only the ``lo..mid`` delta
    packets and cascades, vectorised across every probing run at once; a
    failed probe's state becomes the next checkpoint.  The deltas halve
    every iteration, so the total work is ``O(received + recovered)`` array
    updates per run -- the ``O(log n)`` probes re-peel only their deltas,
    never the whole prefix -- instead of ``n`` Python-level packet
    insertions through the incremental decoder.
    """

    def __init__(self, code: FECCode):
        super().__init__(code)
        matrix = code.matrix
        self.num_checks = matrix.num_checks
        self.row_ptr, self.row_cols = matrix.row_csr()
        self.row_degrees = matrix.row_degrees()
        self.col_indptr, self.col_rows = matrix.column_adjacency()
        self.num_edges = int(self.row_cols.size)
        if self.row_cols.size and int(self.row_cols.max()) * int(
            self.row_degrees.max()
        ) >= 1 << _COUNT_SHIFT:
            raise ValueError(
                "code too large for the packed peeling state "
                f"(id sums must stay below 2**{_COUNT_SHIFT})"
            )
        row_sums = (
            np.add.reduceat(self.row_cols, self.row_ptr[:-1])
            if self.row_cols.size
            else np.zeros(self.num_checks, dtype=np.int64)
        )
        row_sums[self.row_degrees == 0] = 0
        self.row_packed = (self.row_degrees << _COUNT_SHIFT) + row_sums
        # Padded column adjacency: node degrees are tiny and near-uniform
        # (left_degree for sources, 2-3 for parities), so a dense
        # (n, max_degree) table turns the per-round CSR slice gather into
        # one fancy-indexing operation.  Ghost slots of low-degree nodes
        # point at a per-run *sentinel row* (local index num_checks) whose
        # unknown count starts astronomically high: updates land there
        # harmlessly instead of being filtered with boolean masks.
        degrees = np.diff(self.col_indptr)
        max_degree = int(degrees.max()) if degrees.size else 0
        if self.n * max(max_degree, 1) >= _GHOST_HEADROOM:
            raise ValueError(
                "code too large for the sentinel-padded peeling state "
                f"(n * max_degree must stay below {_GHOST_HEADROOM})"
            )
        self.col_rows_padded = np.full(
            (self.n, max(max_degree, 1)), self.num_checks, dtype=np.int64
        )
        if self.col_rows.size:
            node_ids = np.repeat(np.arange(self.n, dtype=np.int64), degrees)
            slot = np.arange(self.col_rows.size, dtype=np.int64) - np.repeat(
                self.col_indptr[:-1], degrees
            )
            self.col_rows_padded[node_ids, slot] = self.col_rows

    def _fresh_state(self, num_runs: int) -> _PeelState:
        """Stacked no-packets-yet state: the prototype replicated per run.

        Every run's block carries ``num_checks`` real rows plus the sentinel
        row that absorbs the padded adjacency's ghost updates.  Its initial
        unknown count (2**22) dwarfs any realistic number of ghost hits, so
        it can never reach one and trigger a reveal; nor can the subtracted
        id sums borrow into a range that would (the total subtracted stays
        far below the initial word).
        """
        per_run = np.concatenate([self.row_packed, [_SENTINEL_WORD]])
        return _PeelState(
            np.tile(per_run, num_runs),
            np.zeros(num_runs * self.n, dtype=bool),
            np.zeros(num_runs, dtype=np.int64),
        )

    def decode_batch(
        self, received: Sequence[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        received = [np.asarray(r, dtype=np.int64) for r in received]
        num_runs = len(received)
        lengths = np.fromiter((r.size for r in received), dtype=np.int64, count=num_runs)
        decoded = np.zeros(num_runs, dtype=bool)
        n_necessary = np.full(num_runs, NOT_DECODED, dtype=np.int64)

        # Fewer than k packets can never decode (each packet contributes one
        # equation; recovering k independent sources needs at least k), so
        # the checkpoint starts at prefix k - 1 and runs shorter than k are
        # failures outright.
        candidates = np.nonzero(lengths >= self.k)[0]
        if candidates.size == 0:
            return decoded, n_necessary

        # Unified gallop-then-bisect search, lockstep across runs, with a
        # checkpoint at every run's lo prefix (always undecodable).  The
        # typical decode point sits a few percent above k, so doubling
        # steps from k touch far fewer packets than a wide bisection --
        # and a failed probe *becomes* the checkpoint, so its packet
        # applications and cascades are never repeated.  ``hi = -1`` marks
        # runs still galloping (no decodable prefix seen yet).
        cand_lengths = lengths[candidates]
        num = candidates.size
        # All received sequences as one flat array of stacked node ids, so
        # a probe's delta packets are a single vectorised gather.
        seq_offsets = np.zeros(num, dtype=np.int64)
        np.cumsum(cand_lengths[:-1], out=seq_offsets[1:])
        seq_flat = np.concatenate([received[r] for r in candidates])
        seq_flat += np.repeat(np.arange(num, dtype=np.int64) * self.n, cand_lengths)

        lo = np.full(num, self.k - 1, dtype=np.int64)
        hi = np.full(num, -1, dtype=np.int64)
        step = np.full(num, max(8, self.k >> 5), dtype=np.int64)
        checkpoint = self._fresh_state(num)
        everyone = np.arange(num, dtype=np.int64)
        self._advance(
            checkpoint, seq_flat, seq_offsets, everyone, np.zeros(num, dtype=np.int64), lo
        )
        while True:
            galloping = hi < 0
            active = np.nonzero(
                (galloping & (lo < cand_lengths)) | (~galloping & (hi - lo > 1))
            )[0]
            if active.size == 0:
                break
            target = np.where(
                galloping[active],
                np.minimum(lo[active] + step[active], cand_lengths[active]),
                (lo[active] + hi[active]) // 2,
            )
            probe = checkpoint.copy()
            self._advance(probe, seq_flat, seq_offsets, active, lo[active], target)
            ok = probe.source_counts[active] >= self.k
            hi[active[ok]] = target[ok]
            failed = active[~ok]
            lo[failed] = target[~ok]
            step[failed] <<= 1
            # A failed probe is the peeling state at its target prefix:
            # adopt it as the checkpoint instead of ever re-peeling.
            checkpoint.adopt(probe, failed, self.num_checks + 1, self.n)
        found = hi >= 0
        decoded[candidates[found]] = True
        n_necessary[candidates[found]] = hi[found]
        return decoded, n_necessary

    def _advance(
        self,
        state: _PeelState,
        seq_flat: np.ndarray,
        seq_offsets: np.ndarray,
        runs: np.ndarray,
        start: np.ndarray,
        stop: np.ndarray,
    ) -> None:
        """Apply packets ``start[i]..stop[i]`` of each run in ``runs``.

        Equivalent to feeding the packets one at a time to the incremental
        decoder: receptions and the nodes they reveal propagate in
        vectorised rounds until the cascade dies out or a run recovers all
        ``k`` sources (completed runs stop cascading, like the incremental
        decoder's early return).
        """
        N, k = self.n, self.k
        known = state.known
        deltas = stop - start
        total = int(deltas.sum())
        if total == 0:
            return
        ends = np.cumsum(deltas)
        positions = np.arange(total, dtype=np.int64) + np.repeat(
            seq_offsets[runs] + start - (ends - deltas), deltas
        )
        packets = seq_flat[positions]
        # Packets already known -- duplicates in the schedule or nodes the
        # cascade recovered before they arrived -- are no-ops, exactly as in
        # the incremental decoder.
        frontier = _dedup(packets[~known[packets]])
        frontier = frontier[state.source_counts[frontier // N] < k]

        packed = state.packed
        row_stride = self.num_checks + 1
        # Fresh sentinel words: their headroom bounds ghost hits per
        # _advance call, not per decode.
        packed[self.num_checks :: row_stride] = _SENTINEL_WORD
        while frontier.size:
            known[frontier] = True
            run_of, local = np.divmod(frontier, N)
            newly_sources = local < k
            if newly_sources.any():
                state.source_counts += np.bincount(
                    run_of[newly_sources], minlength=state.source_counts.size
                )
            rows = self.col_rows_padded[local] + (run_of * row_stride)[:, None]
            # One fused update per (row, node) edge: decrement the unknown
            # count (high bits) and remove the node from the id sum (low
            # bits) of every touched row; ghost slots hit the sentinels.
            np.subtract.at(
                packed, rows, local[:, None] + (np.int64(1) << _COUNT_SHIFT)
            )
            # A row may appear several times in ``rows``; if it ends the
            # round at one unknown it yields the same candidate node each
            # time, which the dedup below collapses.
            words = packed[rows]
            trigger = (words >> _COUNT_SHIFT) == 1
            if not trigger.any():
                frontier = _EMPTY
                continue
            # A row at one unknown reveals it: the id sum *is* the node.
            # Runs that already recovered every source stop cascading (the
            # incremental decoder returns early the same way -- completion
            # cannot be undone, so the extra peeling could only waste time).
            trigger_runs = rows[trigger] // row_stride
            nodes = (words[trigger] & _SUM_MASK) + trigger_runs * np.int64(N)
            nodes = nodes[(~known[nodes]) & (state.source_counts[trigger_runs] < k)]
            frontier = _dedup(nodes)


def _dedup(nodes: np.ndarray) -> np.ndarray:
    """Sorted unique values; sort-based because the arrays are small and
    ``np.unique``'s hash path costs ~100us of fixed overhead per call."""
    if nodes.size <= 1:
        return nodes
    nodes = np.sort(nodes)
    return nodes[np.concatenate(([True], nodes[1:] != nodes[:-1]))]


def compile_ldgm_prototype(code: FECCode) -> DecoderPrototype:
    try:
        return LDGMPrototype(code)
    except ValueError:
        # Codes beyond the packed/sentinel bounds (n in the millions) fall
        # back to the incremental replay; they are far outside the paper's
        # parameter range and would be memory-bound here anyway.
        return IncrementalPrototype(code)


class IncrementalPrototype(DecoderPrototype):
    """Fallback for codes without a vectorised prototype.

    Replays each run through the code's own incremental symbolic decoder --
    no speedup, but it keeps ``fastpath=True`` safe for every registered
    code and is also the reference the equivalence tests compare against.
    """

    def decode_batch(
        self, received: Sequence[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        decoded = np.zeros(len(received), dtype=bool)
        n_necessary = np.full(len(received), NOT_DECODED, dtype=np.int64)
        for run, indices in enumerate(received):
            decoder = self.code.new_symbolic_decoder()
            for count, index in enumerate(indices, start=1):
                if decoder.add_packet(index):
                    n_necessary[run] = count
                    break
            decoded[run] = decoder.is_complete
        return decoded, n_necessary


# ---------------------------------------------------------------------------
# Registry: code class -> prototype compiler.
# ---------------------------------------------------------------------------

PrototypeCompiler = Callable[[FECCode], DecoderPrototype]

_COMPILERS: Dict[Type[FECCode], PrototypeCompiler] = {}

#: Attribute under which the compiled prototype is cached on code instances.
_CACHE_ATTR = "_fastpath_prototype"


def register_prototype_compiler(
    code_cls: Type[FECCode], compiler: PrototypeCompiler
) -> None:
    """Register a prototype compiler for a code class (and its subclasses)."""
    _COMPILERS[code_cls] = compiler


def _register_builtin_compilers() -> None:
    from repro.fec.ldgm.code import LDGMCode, LDGMStaircaseCode, LDGMTriangleCode
    from repro.fec.repetition import RepetitionCode
    from repro.fec.rse.object_codec import ReedSolomonCode

    for cls in (LDGMCode, LDGMStaircaseCode, LDGMTriangleCode):
        register_prototype_compiler(cls, compile_ldgm_prototype)
    register_prototype_compiler(ReedSolomonCode, compile_rse_prototype)
    register_prototype_compiler(RepetitionCode, compile_repetition_prototype)


_register_builtin_compilers()


def compile_prototype(code: FECCode) -> DecoderPrototype:
    """Return the (cached) batch-decoder prototype for a code instance."""
    cached = getattr(code, _CACHE_ATTR, None)
    if cached is not None and cached.code is code:
        return cached
    compiler: PrototypeCompiler = IncrementalPrototype
    for cls in type(code).__mro__:
        registered = _COMPILERS.get(cls)
        if registered is not None:
            compiler = registered
            break
    prototype = compiler(code)
    setattr(code, _CACHE_ATTR, prototype)
    return prototype


__all__ = [
    "NOT_DECODED",
    "DecoderPrototype",
    "BlockCountPrototype",
    "LDGMPrototype",
    "IncrementalPrototype",
    "compile_prototype",
    "register_prototype_compiler",
    "compile_ldgm_prototype",
    "compile_rse_prototype",
    "compile_repetition_prototype",
]
