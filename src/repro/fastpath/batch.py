"""Batched run execution: the vectorised replacement for the per-run loop.

:func:`simulate_batch_columnar` is the fast-path equivalent of calling
:meth:`repro.core.simulator.Simulator.run` once per run.  The pre-decode
front end -- schedules, loss masks, received assembly -- is produced by the
batched :func:`repro.pipeline.synthesize_runs` pipeline (whole work unit as
``(runs, length)`` arrays, falling back to the per-run interleaved
reference loop exactly where stage-major draws could diverge), and the
resulting :class:`~repro.kernels.ReceivedBatch` is decoded by the code's
precompiled :class:`~repro.fastpath.prototypes.DecoderPrototype`.  Results
come back columnar (:class:`~repro.core.metrics.RunResultBatch`) --
bit-identical to the serial loop for any seed, on every kernel backend;
:func:`simulate_batch` keeps the historical list-of-:class:`RunResult` API
on top of it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.channel.base import LossModel
from repro.core.metrics import RunResult, RunResultBatch
from repro.fastpath.prototypes import (
    NOT_DECODED,
    DecoderPrototype,
    LDGMPrototype,
    compile_prototype,
)
from repro.fec.base import FECCode
from repro.kernels import KernelSpec, ThreadSpec, get_backend, thread_count_context
from repro.pipeline.synthesis import synthesize_runs, synthesize_runs_unit
from repro.seeds import UnitStreams
from repro.utils.rng import RandomState

#: Upper bound on ``runs x edges`` stacked into one LDGM peeling probe;
#: batches beyond it are decoded in chunks to bound peak memory.  The
#: lockstep cascade's round count grows with the *slowest* run of a chunk,
#: not the chunk size, so bigger chunks amortise the per-round dispatch
#: overhead across more runs -- at ~8.5k edges for the paper's k=1000
#: staircase this bound keeps peak state well under 100 MB while letting a
#: whole benchmark batch decode as one chunk.
MAX_STACKED_EDGES = 16_000_000


def _decode_chunk_size(prototype: DecoderPrototype, runs: int) -> int:
    if (
        isinstance(prototype, LDGMPrototype)
        and prototype.kernel.stacks_batches
        and prototype.num_edges > 0
    ):
        return max(1, min(runs, MAX_STACKED_EDGES // prototype.num_edges))
    return max(1, runs)


def simulate_batch_columnar(
    code: FECCode,
    tx_model,
    channel: LossModel,
    rngs: Union[Sequence[RandomState], UnitStreams],
    *,
    nsent: Optional[int] = None,
    kernel: KernelSpec = None,
    kernel_threads: ThreadSpec = None,
) -> RunResultBatch:
    """Simulate one transmission per generator in ``rngs``, fully columnar.

    ``rngs`` may contain distinct generators (one independent stream per
    run, the runner's per-run scheme) or the same generator repeated
    (``run_many``'s sequential consumption) -- either way the draws happen
    in the exact order of the incremental path.  It may also be a
    :class:`repro.seeds.UnitStreams` carrying a whole-unit generator (the
    counter-based ``"unit"`` scheme), in which case the front end is
    synthesised by the unconditional block-draw path of
    :func:`repro.pipeline.synthesize_runs_unit`.  ``kernel`` selects the
    :mod:`repro.kernels` backend for the decode hot loops and the Gilbert
    sojourn fill (default: ``REPRO_KERNEL`` / auto); ``kernel_threads``
    the compiled kernels' row-parallel team size (default:
    ``REPRO_KERNEL_THREADS`` / auto) -- both pure wall-clock knobs,
    bit-identical at any setting.
    """
    with thread_count_context(kernel_threads):
        return _simulate_batch_columnar(
            code, tx_model, channel, rngs, nsent=nsent, kernel=kernel
        )


def _simulate_batch_columnar(
    code: FECCode,
    tx_model,
    channel: LossModel,
    rngs: Union[Sequence[RandomState], UnitStreams],
    *,
    nsent: Optional[int] = None,
    kernel: KernelSpec = None,
) -> RunResultBatch:
    backend = get_backend(kernel)
    if isinstance(rngs, UnitStreams):
        if rngs.unit_rng is not None:
            synthesis = synthesize_runs_unit(
                code.layout,
                tx_model,
                channel,
                rngs.unit_rng,
                rngs.runs,
                nsent=nsent,
                kernel=backend,
            )
        else:
            synthesis = synthesize_runs(
                code.layout,
                tx_model,
                channel,
                rngs.run_rngs(),
                nsent=nsent,
                kernel=backend,
            )
    else:
        synthesis = synthesize_runs(
            code.layout, tx_model, channel, rngs, nsent=nsent, kernel=backend
        )
    prototype = compile_prototype(code, backend)
    batch = synthesis.batch
    runs = batch.num_runs
    decoded = np.zeros(runs, dtype=bool)
    n_necessary = np.full(runs, NOT_DECODED, dtype=np.int64)
    chunk = _decode_chunk_size(prototype, runs)
    for start in range(0, runs, chunk):
        stop = min(start + chunk, runs)
        decoded[start:stop], n_necessary[start:stop] = prototype.decode_batch(
            batch.slice(start, stop)
        )
    return RunResultBatch(
        decoded=decoded,
        n_necessary=n_necessary,
        n_received=batch.lengths,
        n_sent=synthesis.n_sent,
        k=code.k,
        n=code.n,
    )


def decode_batch_incremental(code: FECCode, synthesis) -> RunResultBatch:
    """Incremental symbolic decode of an already-synthesised front end.

    The ``fastpath=False`` reference path for scheme-defined (block-drawn)
    front ends: the pre-decode arrays come from the synthesis pipeline, so
    only the decoder differs from :func:`simulate_batch_columnar` -- and
    the incremental decoder is the reference the batch decoders are proven
    bit-identical against.
    """
    results: List[RunResult] = []
    for index, received in enumerate(synthesis.batch.sequences()):
        decoder = code.new_symbolic_decoder()
        add_packet = decoder.add_packet
        n_necessary: Optional[int] = None
        count = 0
        for packet in received:
            count += 1
            if add_packet(packet):
                n_necessary = count
                break
        results.append(
            RunResult(
                decoded=decoder.is_complete,
                n_necessary=n_necessary,
                n_received=int(received.size),
                n_sent=int(synthesis.n_sent[index]),
                k=code.k,
                n=code.n,
            )
        )
    return RunResultBatch.from_results(results)


def simulate_batch(
    code: FECCode,
    tx_model,
    channel: LossModel,
    rngs: Union[Sequence[RandomState], UnitStreams],
    *,
    nsent: Optional[int] = None,
    kernel: KernelSpec = None,
    kernel_threads: ThreadSpec = None,
) -> List[RunResult]:
    """Per-run result list on top of :func:`simulate_batch_columnar`.

    Kept for callers that want the historical list-of-results API; the
    hot paths (runner work units, benchmarks) consume the columnar batch
    directly and never materialise per-run objects.
    """
    return simulate_batch_columnar(
        code,
        tx_model,
        channel,
        rngs,
        nsent=nsent,
        kernel=kernel,
        kernel_threads=kernel_threads,
    ).to_results()


__all__ = [
    "simulate_batch",
    "simulate_batch_columnar",
    "decode_batch_incremental",
    "MAX_STACKED_EDGES",
]
