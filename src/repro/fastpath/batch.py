"""Batched run execution: the vectorised replacement for the per-run loop.

:func:`simulate_batch_columnar` is the fast-path equivalent of calling
:meth:`repro.core.simulator.Simulator.run` once per run.  The pre-decode
front end -- schedules, loss masks, received assembly -- is produced by the
batched :func:`repro.pipeline.synthesize_runs` pipeline (whole work unit as
``(runs, length)`` arrays, falling back to the per-run interleaved
reference loop exactly where stage-major draws could diverge), and the
resulting :class:`~repro.kernels.ReceivedBatch` is decoded by the code's
precompiled :class:`~repro.fastpath.prototypes.DecoderPrototype`.  Results
come back columnar (:class:`~repro.core.metrics.RunResultBatch`) --
bit-identical to the serial loop for any seed, on every kernel backend;
:func:`simulate_batch` keeps the historical list-of-:class:`RunResult` API
on top of it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.channel.base import LossModel
from repro.core.metrics import RunResult, RunResultBatch
from repro.fastpath.prototypes import (
    NOT_DECODED,
    DecoderPrototype,
    LDGMPrototype,
    compile_prototype,
)
from repro.fec.base import FECCode
from repro.kernels import KernelSpec, get_backend
from repro.pipeline.synthesis import synthesize_runs
from repro.utils.rng import RandomState

#: Upper bound on ``runs x edges`` stacked into one LDGM peeling probe;
#: batches beyond it are decoded in chunks to bound peak memory.  The
#: lockstep cascade's round count grows with the *slowest* run of a chunk,
#: not the chunk size, so bigger chunks amortise the per-round dispatch
#: overhead across more runs -- at ~8.5k edges for the paper's k=1000
#: staircase this bound keeps peak state well under 100 MB while letting a
#: whole benchmark batch decode as one chunk.
MAX_STACKED_EDGES = 16_000_000


def _decode_chunk_size(prototype: DecoderPrototype, runs: int) -> int:
    if (
        isinstance(prototype, LDGMPrototype)
        and prototype.kernel.stacks_batches
        and prototype.num_edges > 0
    ):
        return max(1, min(runs, MAX_STACKED_EDGES // prototype.num_edges))
    return max(1, runs)


def simulate_batch_columnar(
    code: FECCode,
    tx_model,
    channel: LossModel,
    rngs: Sequence[RandomState],
    *,
    nsent: Optional[int] = None,
    kernel: KernelSpec = None,
) -> RunResultBatch:
    """Simulate one transmission per generator in ``rngs``, fully columnar.

    ``rngs`` may contain distinct generators (one independent stream per
    run, the runner's scheme) or the same generator repeated (``run_many``'s
    sequential consumption) -- either way the draws happen in the exact
    order of the incremental path.  ``kernel`` selects the
    :mod:`repro.kernels` backend for the decode hot loops and the Gilbert
    sojourn fill (default: ``REPRO_KERNEL`` / auto).
    """
    backend = get_backend(kernel)
    synthesis = synthesize_runs(
        code.layout, tx_model, channel, rngs, nsent=nsent, kernel=backend
    )
    prototype = compile_prototype(code, backend)
    batch = synthesis.batch
    runs = batch.num_runs
    decoded = np.zeros(runs, dtype=bool)
    n_necessary = np.full(runs, NOT_DECODED, dtype=np.int64)
    chunk = _decode_chunk_size(prototype, runs)
    for start in range(0, runs, chunk):
        stop = min(start + chunk, runs)
        decoded[start:stop], n_necessary[start:stop] = prototype.decode_batch(
            batch.slice(start, stop)
        )
    return RunResultBatch(
        decoded=decoded,
        n_necessary=n_necessary,
        n_received=batch.lengths,
        n_sent=synthesis.n_sent,
        k=code.k,
        n=code.n,
    )


def simulate_batch(
    code: FECCode,
    tx_model,
    channel: LossModel,
    rngs: Sequence[RandomState],
    *,
    nsent: Optional[int] = None,
    kernel: KernelSpec = None,
) -> List[RunResult]:
    """Per-run result list on top of :func:`simulate_batch_columnar`.

    Kept for callers that want the historical list-of-results API; the
    hot paths (runner work units, benchmarks) consume the columnar batch
    directly and never materialise per-run objects.
    """
    return simulate_batch_columnar(
        code, tx_model, channel, rngs, nsent=nsent, kernel=kernel
    ).to_results()


__all__ = ["simulate_batch", "simulate_batch_columnar", "MAX_STACKED_EDGES"]
