"""Batched run execution: the vectorised replacement for the per-run loop.

:func:`simulate_batch` is the fast-path equivalent of calling
:meth:`repro.core.simulator.Simulator.run` once per run.  It consumes the
per-run generators in exactly the same order as the incremental path (the
transmission schedule first, then the channel mask, run by run), flattens
all received sequences **once** into a :class:`~repro.kernels.ReceivedBatch`
and hands it to the code's precompiled
:class:`~repro.fastpath.prototypes.DecoderPrototype`, so the returned
:class:`~repro.core.metrics.RunResult` list is bit-identical to the serial
loop for any seed -- on every kernel backend.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.channel.base import LossModel
from repro.core.metrics import RunResult
from repro.fastpath.prototypes import (
    NOT_DECODED,
    DecoderPrototype,
    LDGMPrototype,
    compile_prototype,
)
from repro.fec.base import FECCode
from repro.kernels import KernelSpec, ReceivedBatch, get_backend
from repro.scheduling.base import TransmissionModel
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import validate_positive_int

#: Upper bound on ``runs x edges`` stacked into one LDGM peeling probe;
#: batches beyond it are decoded in chunks to bound peak memory.  The
#: lockstep cascade's round count grows with the *slowest* run of a chunk,
#: not the chunk size, so bigger chunks amortise the per-round dispatch
#: overhead across more runs -- at ~8.5k edges for the paper's k=1000
#: staircase this bound keeps peak state well under 100 MB while letting a
#: whole benchmark batch decode as one chunk.
MAX_STACKED_EDGES = 16_000_000


def _decode_chunk_size(prototype: DecoderPrototype, runs: int) -> int:
    if (
        isinstance(prototype, LDGMPrototype)
        and prototype.kernel.stacks_batches
        and prototype.num_edges > 0
    ):
        return max(1, min(runs, MAX_STACKED_EDGES // prototype.num_edges))
    return runs


def simulate_batch(
    code: FECCode,
    tx_model: TransmissionModel,
    channel: LossModel,
    rngs: Sequence[RandomState],
    *,
    nsent: Optional[int] = None,
    kernel: KernelSpec = None,
) -> List[RunResult]:
    """Simulate one transmission per generator in ``rngs``, vectorised.

    ``rngs`` may contain distinct generators (one independent stream per
    run, the runner's scheme) or the same generator repeated (``run_many``'s
    sequential consumption) -- either way the draws happen in the exact
    order of the incremental path.  ``kernel`` selects the
    :mod:`repro.kernels` backend for the decode hot loops and the Gilbert
    sojourn fill (default: ``REPRO_KERNEL`` / auto).
    """
    if nsent is not None:
        nsent = validate_positive_int(nsent, "nsent")
    backend = get_backend(kernel)
    layout = code.layout

    sent_counts: List[int] = []
    received: List[np.ndarray] = []
    validated = False
    for rng in rngs:
        rng = ensure_rng(rng)
        schedule = tx_model.schedule(layout, rng)
        if validated:
            schedule = np.asarray(schedule, dtype=np.int64)
            # The vectorised decoders stack runs into one flat index space,
            # so an out-of-range index would silently corrupt a *neighbour*
            # run instead of raising; keep the cheap bounds check per run.
            if schedule.size and (
                int(schedule.min()) < 0 or int(schedule.max()) >= layout.n
            ):
                raise ValueError(
                    f"schedule contains indices outside [0, {layout.n})"
                )
        else:
            schedule = tx_model.validate_schedule(layout, schedule)
            validated = True
        if nsent is not None:
            schedule = schedule[:nsent]
        loss_mask = channel.loss_mask(schedule.size, rng, kernel=backend)
        sent_counts.append(int(schedule.size))
        received.append(schedule[~loss_mask])

    prototype = compile_prototype(code, backend)
    batch = ReceivedBatch.from_sequences(received)
    runs = batch.num_runs
    decoded = np.zeros(runs, dtype=bool)
    n_necessary = np.full(runs, NOT_DECODED, dtype=np.int64)
    chunk = _decode_chunk_size(prototype, runs)
    for start in range(0, runs, chunk):
        stop = min(start + chunk, runs)
        decoded[start:stop], n_necessary[start:stop] = prototype.decode_batch(
            batch.slice(start, stop)
        )

    return [
        RunResult(
            decoded=bool(decoded[run]),
            n_necessary=(
                int(n_necessary[run]) if n_necessary[run] != NOT_DECODED else None
            ),
            n_received=int(received[run].size),
            n_sent=sent_counts[run],
            k=code.k,
            n=code.n,
        )
        for run in range(runs)
    ]


__all__ = ["simulate_batch", "MAX_STACKED_EDGES"]
