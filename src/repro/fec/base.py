"""Abstract interfaces shared by all FEC codes.

Two decoding interfaces exist:

* :class:`ObjectDecoder` works on real payloads and recovers the object
  content.  It is used by the FLUTE substrate and by the payload round-trip
  tests.
* :class:`SymbolicDecoder` only tracks *which* packets have been received
  and reports when decoding would complete.  It is what the simulator uses:
  the inefficiency-ratio metric of the paper depends only on packet indices
  and ordering, so skipping the payload XORs/field math makes the (p, q)
  grid sweeps orders of magnitude faster without changing any result.

Both interfaces are incremental ("add one packet, check completion") because
the paper's metric is the number of packets received *at the moment decoding
completes*.
"""

from __future__ import annotations

import abc
import enum
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.fec.packet import PacketLayout
from repro.utils.rng import RandomState


class DecoderState(enum.Enum):
    """Lifecycle of an incremental decoder."""

    DECODING = "decoding"
    COMPLETE = "complete"


class SymbolicDecoder(abc.ABC):
    """Index-only incremental decoder.

    Implementations must be cheap to construct (one per simulated
    transmission) and must tolerate duplicate packet indices.
    """

    @abc.abstractmethod
    def add_packet(self, index: int) -> bool:
        """Register the reception of packet ``index``.

        Returns ``True`` if the object is fully decodable after this packet
        (idempotent: keeps returning ``True`` afterwards).
        """

    @property
    @abc.abstractmethod
    def is_complete(self) -> bool:
        """True once all ``k`` source packets are recovered/recoverable."""

    @property
    @abc.abstractmethod
    def decoded_source_count(self) -> int:
        """Number of source packets currently recovered or recoverable."""

    @property
    def state(self) -> DecoderState:
        return DecoderState.COMPLETE if self.is_complete else DecoderState.DECODING

    def add_packets(self, indices: Iterable[int]) -> int:
        """Feed packets until decoding completes.

        Returns the number of packets consumed from ``indices`` when decoding
        completed, or the total number of packets fed if it never completed.
        """
        consumed = 0
        for index in indices:
            consumed += 1
            if self.add_packet(index):
                return consumed
        return consumed


class ObjectEncoder(abc.ABC):
    """Encode the ``k`` source payloads of an object into ``n`` payloads."""

    @abc.abstractmethod
    def encode(self, source_payloads: Sequence[bytes]) -> list[bytes]:
        """Return the ``n`` encoding payloads (source payloads come first)."""


class ObjectDecoder(abc.ABC):
    """Incremental decoder operating on real payloads."""

    @abc.abstractmethod
    def add_packet(self, index: int, payload: bytes) -> bool:
        """Register packet ``index`` with its payload; return completion."""

    @property
    @abc.abstractmethod
    def is_complete(self) -> bool:
        """True once all source payloads are recovered."""

    @abc.abstractmethod
    def source_payloads(self) -> list[bytes]:
        """Return the ``k`` recovered source payloads (requires completion)."""


class FECCode(abc.ABC):
    """A FEC code instantiated for one object of ``k`` source packets."""

    #: Registry name of the code (e.g. ``"rse"``, ``"ldgm-staircase"``).
    name: str = "abstract"

    def __init__(self, k: int, n: int):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if n <= k:
            raise ValueError(f"n must be > k, got k={k}, n={n}")
        self._k = int(k)
        self._n = int(n)

    @property
    def k(self) -> int:
        """Number of source packets."""
        return self._k

    @property
    def n(self) -> int:
        """Total number of encoding packets."""
        return self._n

    @property
    def expansion_ratio(self) -> float:
        """FEC expansion ratio n / k (inverse of the code rate)."""
        return self._n / self._k

    @property
    def code_rate(self) -> float:
        """Code rate k / n."""
        return self._k / self._n

    @property
    def is_mds(self) -> bool:
        """Whether the code is Maximum Distance Separable (per block)."""
        return False

    @property
    @abc.abstractmethod
    def layout(self) -> PacketLayout:
        """Packet layout (global indices of source/parity packets, blocks)."""

    @abc.abstractmethod
    def new_symbolic_decoder(self) -> SymbolicDecoder:
        """Create a fresh symbolic (index-only) decoder."""

    @abc.abstractmethod
    def new_encoder(self) -> ObjectEncoder:
        """Create a payload encoder."""

    @abc.abstractmethod
    def new_decoder(self) -> ObjectDecoder:
        """Create a fresh payload decoder."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(k={self.k}, n={self.n})"


def check_payloads(payloads: Sequence[bytes], expected_count: int) -> tuple[int, np.ndarray]:
    """Validate a sequence of equal-length payloads and return (length, matrix).

    The returned matrix has one row per payload (dtype uint8), which is the
    representation used by the payload codecs.
    """
    if len(payloads) != expected_count:
        raise ValueError(
            f"expected {expected_count} source payloads, got {len(payloads)}"
        )
    if expected_count == 0:
        raise ValueError("at least one payload is required")
    length = len(payloads[0])
    if length == 0:
        raise ValueError("payloads must be non-empty")
    matrix = np.zeros((expected_count, length), dtype=np.uint8)
    for row, payload in enumerate(payloads):
        if len(payload) != length:
            raise ValueError(
                f"all payloads must have the same length; payload {row} has "
                f"{len(payload)} bytes, expected {length}"
            )
        matrix[row] = np.frombuffer(bytes(payload), dtype=np.uint8)
    return length, matrix


__all__ = [
    "DecoderState",
    "SymbolicDecoder",
    "ObjectEncoder",
    "ObjectDecoder",
    "FECCode",
    "check_payloads",
]
