"""Name-based registry of FEC codes.

The simulation configuration (:class:`repro.core.config.SimulationConfig`)
refers to codes by name so that experiments can be described declaratively.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

from repro.fec.base import FECCode
from repro.utils.rng import RandomState

CodeFactory = Callable[..., FECCode]

_REGISTRY: Dict[str, CodeFactory] = {}

#: Canonical aliases accepted for each registered name.
_ALIASES: Dict[str, str] = {
    "reed-solomon": "rse",
    "reed_solomon": "rse",
    "rs": "rse",
    "ldgm_staircase": "ldgm-staircase",
    "staircase": "ldgm-staircase",
    "ldgm_triangle": "ldgm-triangle",
    "triangle": "ldgm-triangle",
    "ldgm_plain": "ldgm",
    "plain-ldgm": "ldgm",
}


def register_code(name: str, factory: CodeFactory) -> None:
    """Register a code factory under ``name`` (lower-case)."""
    key = name.lower()
    if key in _REGISTRY:
        raise ValueError(f"a FEC code named {name!r} is already registered")
    _REGISTRY[key] = factory


def available_codes() -> list[str]:
    """Names of all registered codes, sorted."""
    return sorted(_REGISTRY)


def resolve_code_name(name: str) -> str:
    """Resolve aliases to the canonical registered name."""
    key = name.lower().strip()
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown FEC code {name!r}; available codes: {', '.join(available_codes())}"
        )
    return key


def make_code(
    name: str,
    k: int,
    *,
    expansion_ratio: float | None = None,
    n: int | None = None,
    seed: RandomState = None,
    **kwargs,
) -> FECCode:
    """Instantiate a FEC code by name.

    Exactly one of ``expansion_ratio`` or ``n`` must be given.

    >>> code = make_code("ldgm-staircase", k=100, expansion_ratio=1.5, seed=0)
    >>> code.n
    150
    """
    if (expansion_ratio is None) == (n is None):
        raise ValueError("specify exactly one of expansion_ratio or n")
    if n is None:
        n = int(round(k * float(expansion_ratio)))
    if n <= k:
        raise ValueError(f"derived n={n} must be > k={k}")
    key = resolve_code_name(name)
    return _REGISTRY[key](k=k, n=n, seed=seed, **kwargs)


__all__ = [
    "register_code",
    "available_codes",
    "resolve_code_name",
    "make_code",
]
