"""Packet and packet-layout abstractions.

Packets are identified throughout the library by a *global index* in
``[0, n)``.  By convention the ``k`` source packets occupy indices
``[0, k)`` in object order, and the ``n - k`` parity packets occupy
``[k, n)``.  For block codes (RSE) the layout additionally records which
global indices belong to which source block.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np


class PacketKind(enum.Enum):
    """Whether a packet carries original data or FEC redundancy."""

    SOURCE = "source"
    PARITY = "parity"


@dataclass(frozen=True)
class Packet:
    """A single encoding packet.

    Attributes
    ----------
    index:
        Global packet index in ``[0, n)``.
    kind:
        Source or parity.
    block_id:
        Source block the packet belongs to (0 for single-block codes).
    index_in_block:
        Encoding-symbol index within the block (ESI).
    payload:
        Optional payload bytes; ``None`` for symbolic simulation.
    """

    index: int
    kind: PacketKind
    block_id: int = 0
    index_in_block: int = 0
    payload: Optional[bytes] = None

    @property
    def is_source(self) -> bool:
        return self.kind is PacketKind.SOURCE

    @property
    def is_parity(self) -> bool:
        return self.kind is PacketKind.PARITY


@dataclass(frozen=True)
class BlockLayout:
    """Global packet indices of one source block."""

    block_id: int
    source_indices: np.ndarray
    parity_indices: np.ndarray

    @property
    def k(self) -> int:
        """Number of source packets in the block."""
        return int(self.source_indices.size)

    @property
    def n(self) -> int:
        """Total number of encoding packets in the block."""
        return int(self.source_indices.size + self.parity_indices.size)

    @property
    def all_indices(self) -> np.ndarray:
        """Source then parity indices of the block."""
        return np.concatenate([self.source_indices, self.parity_indices])


@dataclass(frozen=True)
class PacketLayout:
    """Description of the packets produced by a FEC code for one object.

    The layout is what transmission models operate on: they only need to
    know which global indices are source packets, which are parity packets
    and (for interleaving) how packets group into blocks.
    """

    k: int
    n: int
    blocks: tuple[BlockLayout, ...]

    def __post_init__(self) -> None:
        if self.k <= 0 or self.n <= self.k:
            raise ValueError(f"invalid layout dimensions k={self.k}, n={self.n}")
        total = sum(block.n for block in self.blocks)
        if total != self.n:
            raise ValueError(
                f"blocks cover {total} packets but layout declares n={self.n}"
            )
        total_sources = sum(block.k for block in self.blocks)
        if total_sources != self.k:
            raise ValueError(
                f"blocks cover {total_sources} source packets but layout declares k={self.k}"
            )

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def source_indices(self) -> np.ndarray:
        """All source packet indices, in object order."""
        return np.concatenate([block.source_indices for block in self.blocks])

    @property
    def parity_indices(self) -> np.ndarray:
        """All parity packet indices, block by block."""
        return np.concatenate([block.parity_indices for block in self.blocks])

    @property
    def expansion_ratio(self) -> float:
        """The FEC expansion ratio n / k."""
        return self.n / self.k

    def is_source(self, index: int) -> bool:
        """True if the global index designates a source packet."""
        return 0 <= index < self.k

    def kind_of(self, index: int) -> PacketKind:
        if not 0 <= index < self.n:
            raise IndexError(f"packet index {index} out of range [0, {self.n})")
        return PacketKind.SOURCE if index < self.k else PacketKind.PARITY

    def block_of(self, index: int) -> int:
        """Return the block id that the global packet index belongs to."""
        if not 0 <= index < self.n:
            raise IndexError(f"packet index {index} out of range [0, {self.n})")
        for block in self.blocks:
            if index in block.source_indices or index in block.parity_indices:
                return block.block_id
        raise IndexError(f"packet index {index} not covered by any block")


def single_block_layout(k: int, n: int) -> PacketLayout:
    """Layout for large-block codes (LDGM-*): one block covering everything."""
    block = BlockLayout(
        block_id=0,
        source_indices=np.arange(k, dtype=np.int64),
        parity_indices=np.arange(k, n, dtype=np.int64),
    )
    return PacketLayout(k=k, n=n, blocks=(block,))


def multi_block_layout(block_ks: Sequence[int], block_ns: Sequence[int]) -> PacketLayout:
    """Layout for block codes (RSE).

    Source packets of all blocks come first (in object order), then parity
    packets, grouped by block.

    Parameters
    ----------
    block_ks:
        Number of source packets in each block.
    block_ns:
        Total number of encoding packets in each block.
    """
    if len(block_ks) != len(block_ns):
        raise ValueError("block_ks and block_ns must have the same length")
    if not block_ks:
        raise ValueError("at least one block is required")
    k_total = int(sum(block_ks))
    n_total = int(sum(block_ns))
    blocks: list[BlockLayout] = []
    source_cursor = 0
    parity_cursor = k_total
    for block_id, (block_k, block_n) in enumerate(zip(block_ks, block_ns)):
        if block_n <= block_k or block_k <= 0:
            raise ValueError(
                f"block {block_id} has invalid dimensions k={block_k}, n={block_n}"
            )
        source = np.arange(source_cursor, source_cursor + block_k, dtype=np.int64)
        parity = np.arange(parity_cursor, parity_cursor + (block_n - block_k), dtype=np.int64)
        blocks.append(BlockLayout(block_id=block_id, source_indices=source, parity_indices=parity))
        source_cursor += block_k
        parity_cursor += block_n - block_k
    return PacketLayout(k=k_total, n=n_total, blocks=tuple(blocks))


__all__ = [
    "Packet",
    "PacketKind",
    "BlockLayout",
    "PacketLayout",
    "single_block_layout",
    "multi_block_layout",
]
