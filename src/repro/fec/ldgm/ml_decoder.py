"""Maximum-likelihood (Gaussian elimination) decoding for LDGM codes.

The paper only uses the iterative decoder; ML decoding over GF(2) is
provided as an extension so the ablation benchmark (A3 in DESIGN.md) can
quantify how much of the measured inefficiency is attributable to the
decoder rather than to the code itself.

Decoding success criterion: the submatrix of ``H`` restricted to the
*unknown* (not received) message nodes has full column rank, i.e. every
unknown node -- source or parity -- is uniquely determined by the check
equations.  This is the standard "full rank" condition; it is marginally
stricter than requiring only the source nodes to be determined, and the
difference is negligible for the regimes studied here.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.fec.ldgm.matrix import ParityCheckMatrix


def _unknown_row_masks(matrix: ParityCheckMatrix, known: np.ndarray) -> list[int]:
    """Represent every check row as an integer bitmask over unknown columns."""
    unknown_indices = np.nonzero(~known)[0]
    position_of = {int(col): bit for bit, col in enumerate(unknown_indices)}
    masks = []
    for row in range(matrix.num_checks):
        mask = 0
        for col in matrix.row_columns(row):
            bit = position_of.get(int(col))
            if bit is not None:
                mask |= 1 << bit
        if mask:
            masks.append(mask)
    return masks


def _gf2_rank(masks: Sequence[int]) -> int:
    """Rank of a set of GF(2) row vectors given as integer bitmasks.

    Classic XOR-basis construction: every basis vector is indexed by its
    leading bit, and each incoming row is reduced against the basis until it
    is either zero (dependent) or contributes a new pivot.
    """
    pivots: dict[int, int] = {}
    rank = 0
    for mask in masks:
        current = mask
        while current:
            leading_bit = current.bit_length() - 1
            pivot = pivots.get(leading_bit)
            if pivot is None:
                pivots[leading_bit] = current
                rank += 1
                break
            current ^= pivot
    return rank


def ml_decodable(matrix: ParityCheckMatrix, known: np.ndarray) -> bool:
    """Whether ML (Gaussian elimination) decoding succeeds.

    Parameters
    ----------
    matrix:
        The parity-check matrix of the code.
    known:
        Boolean array of length ``n``; ``True`` marks received packets.
    """
    known = np.asarray(known, dtype=bool)
    if known.shape != (matrix.n,):
        raise ValueError(f"known must have shape ({matrix.n},), got {known.shape}")
    num_unknown = int(np.count_nonzero(~known))
    if num_unknown == 0:
        return True
    # All unknown source nodes must at least be coverable; a quick necessary
    # condition before the rank computation.
    if num_unknown > matrix.num_checks:
        return False
    masks = _unknown_row_masks(matrix, known)
    return _gf2_rank(masks) == num_unknown


def ml_necessary_count(
    matrix: ParityCheckMatrix, received_order: Sequence[int]
) -> Optional[int]:
    """Number of received packets needed before ML decoding succeeds.

    ``received_order`` lists the packet indices in arrival order (duplicates
    allowed; they count as received packets, matching the simulator's
    accounting).  Returns ``None`` if decoding fails even with every listed
    packet.

    Because decodability is monotone in the set of received packets, the
    answer is found by binary search over the prefix length, each probe
    costing one GF(2) rank computation.
    """
    received_order = list(received_order)
    total = len(received_order)

    def known_after(prefix: int) -> np.ndarray:
        known = np.zeros(matrix.n, dtype=bool)
        for index in received_order[:prefix]:
            known[int(index)] = True
        return known

    if not ml_decodable(matrix, known_after(total)):
        return None
    low, high = 0, total
    while low < high:
        middle = (low + high) // 2
        if ml_decodable(matrix, known_after(middle)):
            high = middle
        else:
            low = middle + 1
    return low


__all__ = ["ml_decodable", "ml_necessary_count"]
