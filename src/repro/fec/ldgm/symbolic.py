"""Symbolic (index-only) iterative decoder for LDGM codes.

This mirrors the peeling decoder of section 2.3.2 of the paper but ignores
payloads: what matters for the inefficiency-ratio metric is only *when*
every source packet becomes recoverable.

Implementation notes
--------------------
For every check row the decoder keeps

* the number of still-unknown message nodes, and
* the XOR of their indices.

When a row's unknown count drops to one, the XOR accumulator *is* the index
of the last unknown node, so no per-row sets are needed.  This keeps one
decoding run at O(number of edges).
"""

from __future__ import annotations

import numpy as np

from repro.fec.base import SymbolicDecoder
from repro.fec.ldgm.matrix import ParityCheckMatrix


class LDGMSymbolicDecoder(SymbolicDecoder):
    """Incremental peeling decoder tracking packet indices only."""

    def __init__(self, matrix: ParityCheckMatrix):
        self._matrix = matrix
        self._k = matrix.k
        self._n = matrix.n

        # The initial per-row state and the adjacency are identical for every
        # decoder of the same matrix; copy the precompiled prototype instead
        # of rebuilding it with per-row/per-column Python loops.
        unknowns, xor_unknown = matrix.initial_row_state()
        self._unknowns = unknowns.copy()
        self._xor_unknown = xor_unknown.copy()

        indptr, rows = matrix.column_adjacency()
        self._adj_indptr = indptr
        self._adj_rows = rows

        self._known = np.zeros(self._n, dtype=bool)
        self._decoded_sources = 0

    def add_packet(self, index: int) -> bool:
        if not 0 <= index < self._n:
            raise IndexError(f"packet index {index} out of range [0, {self._n})")
        if self.is_complete or self._known[index]:
            return self.is_complete
        self._propagate(index)
        return self.is_complete

    def _propagate(self, start: int) -> None:
        """Mark ``start`` as known and peel equations until a fixed point."""
        known = self._known
        unknowns = self._unknowns
        xor_unknown = self._xor_unknown
        indptr = self._adj_indptr
        adj_rows = self._adj_rows

        stack = [start]
        while stack:
            node = stack.pop()
            if known[node]:
                continue
            known[node] = True
            if node < self._k:
                self._decoded_sources += 1
                if self._decoded_sources == self._k:
                    # Decoding is complete; later recoveries are irrelevant.
                    return
            for position in range(indptr[node], indptr[node + 1]):
                row = adj_rows[position]
                unknowns[row] -= 1
                xor_unknown[row] ^= node
                if unknowns[row] == 1:
                    candidate = int(xor_unknown[row])
                    if not known[candidate]:
                        stack.append(candidate)

    @property
    def is_complete(self) -> bool:
        return self._decoded_sources >= self._k

    @property
    def decoded_source_count(self) -> int:
        return self._decoded_sources

    @property
    def known_packet_count(self) -> int:
        """Total number of message nodes currently known (source + parity)."""
        return int(np.count_nonzero(self._known))


__all__ = ["LDGMSymbolicDecoder"]
