"""Sparse parity-check matrices for the LDGM code family.

The matrix ``H`` has ``n - k`` rows (one per check node / parity packet) and
``n`` columns (one per message node: ``k`` source packets followed by
``n - k`` parity packets).  It is stored sparsely as, for every check row,
the array of source columns and the array of parity columns it touches,
plus a CSR-style column-to-row adjacency used by the decoders.

Construction rules
------------------

* **Left part H1** -- every source column receives exactly ``left_degree``
  (default 3, the value used in the paper) distinct check rows.  Rows are
  drawn from a balanced pool so check-node degrees stay as even as possible,
  mirroring the "evenboth" construction of the reference LDPC codec.
* **Right part H2**:

  - ``LDGM``: identity -- check ``i`` involves parity packet ``i`` only.
  - ``LDGM Staircase``: dual diagonal -- check ``i`` involves parity packets
    ``i`` and ``i - 1``.
  - ``LDGM Triangle``: the staircase plus extra entries below the diagonal.
    The reference codec fills the triangle "progressively"; here every check
    row ``i >= 2`` additionally involves one parity packet drawn uniformly
    from the columns strictly below the staircase (``[0, i - 2]``).  This
    keeps check rows sparse (which the iterative decoder needs), keeps
    encoding a short XOR cascade, and reproduces the paper's qualitative
    behaviour (Triangle at least as good as Staircase except when only a
    small share of the packets is received).  The approximation is recorded
    in DESIGN.md.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import validate_k_n, validate_positive_int

#: Left (source-node) degree used throughout the paper.
DEFAULT_LEFT_DEGREE = 3


class LDGMVariant(enum.Enum):
    """The three LDGM parity structures compared in the paper."""

    LDGM = "ldgm"
    STAIRCASE = "staircase"
    TRIANGLE = "triangle"


@dataclass
class ParityCheckMatrix:
    """Sparse representation of ``H = [H1 | H2]``.

    Attributes
    ----------
    k, n:
        Code dimensions; there are ``n - k`` check rows.
    variant:
        Which parity structure the matrix follows.
    source_cols:
        ``source_cols[i]`` is the array of source columns (``< k``) of row i.
    parity_cols:
        ``parity_cols[i]`` is the array of *global* parity columns
        (``>= k``) of row i; it always contains ``k + i``.
    """

    k: int
    n: int
    variant: LDGMVariant
    source_cols: list[np.ndarray]
    parity_cols: list[np.ndarray]

    @property
    def num_checks(self) -> int:
        return self.n - self.k

    @property
    def num_edges(self) -> int:
        """Total number of "1"s in the matrix."""
        return sum(row.size for row in self.source_cols) + sum(
            row.size for row in self.parity_cols
        )

    @property
    def density(self) -> float:
        """Fraction of non-zero entries."""
        return self.num_edges / (self.num_checks * self.n)

    def row_columns(self, row: int) -> np.ndarray:
        """All (global) columns of check row ``row``."""
        return np.concatenate([self.source_cols[row], self.parity_cols[row]])

    def row_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR-style (indptr, cols) adjacency from check rows to columns.

        ``cols[indptr[r]:indptr[r + 1]]`` lists the (global) message nodes of
        check row ``r``, source columns first.  Cached after the first call;
        this flat form is what the vectorised decoders operate on.
        """
        cached = getattr(self, "_row_csr_cache", None)
        if cached is not None:
            return cached
        row_lengths = np.fromiter(
            (
                self.source_cols[row].size + self.parity_cols[row].size
                for row in range(self.num_checks)
            ),
            dtype=np.int64,
            count=self.num_checks,
        )
        indptr = np.zeros(self.num_checks + 1, dtype=np.int64)
        np.cumsum(row_lengths, out=indptr[1:])
        pairs = [
            array
            for row in range(self.num_checks)
            for array in (self.source_cols[row], self.parity_cols[row])
        ]
        cols = (
            np.concatenate(pairs).astype(np.int64, copy=False)
            if pairs
            else np.zeros(0, dtype=np.int64)
        )
        self._row_csr_cache = (indptr, cols)
        return self._row_csr_cache

    def row_degrees(self) -> np.ndarray:
        """Degree of every check row, length ``num_checks``."""
        indptr, _cols = self.row_csr()
        return np.diff(indptr)

    def column_degrees(self) -> np.ndarray:
        """Degree of every message node (column), length ``n``.

        Cached after the first call and built with one ``np.bincount`` over
        the flattened row arrays instead of a per-row Python loop.
        """
        cached = getattr(self, "_column_degrees_cache", None)
        if cached is not None:
            return cached
        _indptr, cols = self.row_csr()
        self._column_degrees_cache = np.bincount(cols, minlength=self.n).astype(
            np.int64, copy=False
        )
        return self._column_degrees_cache

    def column_adjacency(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR-style (indptr, rows) adjacency from columns to check rows.

        ``rows[indptr[v]:indptr[v + 1]]`` lists the check rows that involve
        message node ``v``, in increasing row order.  Cached after the first
        call and built by one stable argsort over the flattened row arrays
        (the concatenation enumerates rows in order, so the stable sort by
        column preserves the per-column row ordering of the historical
        nested-loop construction).
        """
        cached = getattr(self, "_adjacency_cache", None)
        if cached is not None:
            return cached
        row_ptr, cols = self.row_csr()
        degrees = self.column_degrees()
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        row_ids = np.repeat(
            np.arange(self.num_checks, dtype=np.int64), np.diff(row_ptr)
        )
        order = np.argsort(cols, kind="stable")
        self._adjacency_cache = (indptr, row_ids[order])
        return self._adjacency_cache

    def initial_row_state(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-row (unknown count, XOR of unknown columns) before any packet.

        This is the decoder state the symbolic peeling decoder starts from;
        it is computed once per matrix (``np.add.reduceat`` /
        ``np.bitwise_xor.reduceat`` over the row CSR) and *copied* by every
        decoder instance instead of being rebuilt with Python loops.
        """
        cached = getattr(self, "_initial_row_state_cache", None)
        if cached is not None:
            return cached
        indptr, cols = self.row_csr()
        unknowns = self.row_degrees()
        if cols.size:
            xor_unknown = np.bitwise_xor.reduceat(cols, indptr[:-1])
            # reduceat misbehaves on empty segments (it returns the element
            # *at* the segment start); force those rows to the empty XOR, 0.
            xor_unknown[unknowns == 0] = 0
        else:
            xor_unknown = np.zeros(self.num_checks, dtype=np.int64)
        self._initial_row_state_cache = (unknowns, xor_unknown)
        return self._initial_row_state_cache

    def to_dense(self) -> np.ndarray:
        """Dense 0/1 matrix, for tests and small examples only."""
        dense = np.zeros((self.num_checks, self.n), dtype=np.uint8)
        for row in range(self.num_checks):
            dense[row, self.source_cols[row]] = 1
            dense[row, self.parity_cols[row]] = 1
        return dense


def build_parity_check_matrix(
    k: int,
    n: int,
    variant: LDGMVariant | str = LDGMVariant.STAIRCASE,
    *,
    left_degree: int = DEFAULT_LEFT_DEGREE,
    seed: RandomState = None,
) -> ParityCheckMatrix:
    """Build the parity-check matrix of an LDGM-family code.

    Parameters
    ----------
    k, n:
        Source / total packet counts; ``n - k`` check rows are created.
    variant:
        ``LDGMVariant`` or its string value.
    left_degree:
        Number of check equations each source packet participates in
        (3 in the paper).  Capped at ``n - k``.
    seed:
        Seed or generator controlling the random H1 construction.
    """
    k, n = validate_k_n(k, n)
    if isinstance(variant, str):
        variant = LDGMVariant(variant.lower())
    left_degree = validate_positive_int(left_degree, "left_degree")
    num_checks = n - k
    effective_degree = min(left_degree, num_checks)
    rng = ensure_rng(seed)

    source_cols = _build_left_part(k, num_checks, effective_degree, rng)
    parity_cols = _build_right_part(k, num_checks, variant, rng)
    return ParityCheckMatrix(
        k=k, n=n, variant=variant, source_cols=source_cols, parity_cols=parity_cols
    )


def _build_left_part(
    k: int, num_checks: int, left_degree: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Assign ``left_degree`` distinct check rows to every source column.

    A balanced pool (every check row repeated ``ceil(left_degree * k /
    num_checks)`` times) is shuffled and consumed column by column so check
    degrees stay within one of each other; duplicates within a column are
    re-drawn.
    """
    edges_needed = left_degree * k
    repeats = -(-edges_needed // num_checks)  # ceil division
    pool = np.tile(np.arange(num_checks, dtype=np.int64), repeats)[:edges_needed]
    rng.shuffle(pool)
    assignment = pool.reshape(k, left_degree)

    columns: list[np.ndarray] = []
    for col in range(k):
        rows = assignment[col].copy()
        rows = _deduplicate_rows(rows, num_checks, rng)
        rows.sort()
        columns.append(rows)

    per_row: list[list[int]] = [[] for _ in range(num_checks)]
    for col, rows in enumerate(columns):
        for row in rows:
            per_row[int(row)].append(col)

    _fill_empty_rows(per_row, columns, rng)

    source_cols = [np.array(sorted(cols), dtype=np.int64) for cols in per_row]
    return source_cols


def _deduplicate_rows(
    rows: np.ndarray, num_checks: int, rng: np.random.Generator
) -> np.ndarray:
    """Replace duplicate check rows within one column by fresh random rows."""
    if np.unique(rows).size == rows.size:
        return rows
    seen: set[int] = set()
    for i in range(rows.size):
        value = int(rows[i])
        attempts = 0
        while value in seen:
            value = int(rng.integers(num_checks))
            attempts += 1
            if attempts > 10 * num_checks:
                raise RuntimeError("unable to build a duplicate-free column")
        rows[i] = value
        seen.add(value)
    return rows


def _fill_empty_rows(
    per_row: list[list[int]], columns: list[np.ndarray], rng: np.random.Generator
) -> None:
    """Guarantee every check row touches at least one source packet.

    A check row with no source edge would create a parity packet carrying no
    information (for plain LDGM) and makes the graph needlessly weak; the
    reference codec avoids this too.  Edges are stolen from the rows with
    the highest degree.
    """
    empty_rows = [row for row, cols in enumerate(per_row) if not cols]
    if not empty_rows:
        return
    for empty_row in empty_rows:
        donor_row = max(range(len(per_row)), key=lambda r: len(per_row[r]))
        if len(per_row[donor_row]) <= 1:
            # Not enough edges to share; leave the row empty (harmless but
            # weaker).  This only happens for degenerate tiny codes.
            continue
        moved_col = per_row[donor_row].pop(int(rng.integers(len(per_row[donor_row]))))
        per_row[empty_row].append(moved_col)


def _build_right_part(
    k: int, num_checks: int, variant: LDGMVariant, rng: np.random.Generator
) -> list[np.ndarray]:
    """Build H2 according to the variant (identity, staircase, triangle)."""
    parity_cols: list[np.ndarray] = []
    for row in range(num_checks):
        cols = {k + row}
        if variant in (LDGMVariant.STAIRCASE, LDGMVariant.TRIANGLE) and row > 0:
            cols.add(k + row - 1)
        if variant is LDGMVariant.TRIANGLE and row >= 2:
            cols.add(k + _triangle_extra_column(row, rng))
        parity_cols.append(np.array(sorted(cols), dtype=np.int64))
    return parity_cols


def _triangle_extra_column(row: int, rng: np.random.Generator) -> int:
    """Parity column filled below the staircase for LDGM Triangle.

    Check ``row`` additionally involves one parity packet drawn uniformly
    from the columns strictly below the staircase (``[0, row - 2]``),
    creating the "progressive dependency between check nodes" described in
    the paper while keeping every check row sparse enough for the iterative
    decoder.
    """
    return int(rng.integers(0, row - 1))


__all__ = [
    "LDGMVariant",
    "ParityCheckMatrix",
    "build_parity_check_matrix",
    "DEFAULT_LEFT_DEGREE",
]
