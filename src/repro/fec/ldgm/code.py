"""The public LDGM code classes.

:class:`LDGMCode`, :class:`LDGMStaircaseCode` and :class:`LDGMTriangleCode`
bind a parity-check matrix to the common :class:`repro.fec.FECCode`
interface (layout, symbolic decoder, payload encoder/decoder).
"""

from __future__ import annotations

from repro.fec.base import FECCode, ObjectDecoder, ObjectEncoder, SymbolicDecoder
from repro.fec.ldgm.decoder import LDGMPayloadDecoder
from repro.fec.ldgm.encoder import LDGMEncoder
from repro.fec.ldgm.matrix import (
    DEFAULT_LEFT_DEGREE,
    LDGMVariant,
    ParityCheckMatrix,
    build_parity_check_matrix,
)
from repro.fec.ldgm.symbolic import LDGMSymbolicDecoder
from repro.fec.packet import PacketLayout, single_block_layout
from repro.fec.registry import register_code
from repro.utils.rng import RandomState


class _BaseLDGMCode(FECCode):
    """Common implementation of the three LDGM variants."""

    variant: LDGMVariant = LDGMVariant.LDGM

    def __init__(
        self,
        k: int,
        n: int,
        *,
        left_degree: int = DEFAULT_LEFT_DEGREE,
        seed: RandomState = None,
    ):
        super().__init__(k, n)
        self._matrix = build_parity_check_matrix(
            k, n, self.variant, left_degree=left_degree, seed=seed
        )
        self._layout = single_block_layout(k, n)

    @property
    def matrix(self) -> ParityCheckMatrix:
        """The parity-check matrix backing this code instance."""
        return self._matrix

    @property
    def left_degree(self) -> int:
        """Requested left degree (actual degree may be capped for tiny codes)."""
        return int(
            max((cols.size for cols in self._matrix.source_cols), default=0)
        )

    @property
    def layout(self) -> PacketLayout:
        return self._layout

    def new_symbolic_decoder(self) -> SymbolicDecoder:
        return LDGMSymbolicDecoder(self._matrix)

    def new_encoder(self) -> ObjectEncoder:
        return LDGMEncoder(self._matrix)

    def new_decoder(self) -> ObjectDecoder:
        return LDGMPayloadDecoder(self._matrix)


class LDGMCode(_BaseLDGMCode):
    """Plain LDGM: the parity part of H is the identity matrix."""

    name = "ldgm"
    variant = LDGMVariant.LDGM


class LDGMStaircaseCode(_BaseLDGMCode):
    """LDGM Staircase: the parity part of H is a staircase (dual diagonal)."""

    name = "ldgm-staircase"
    variant = LDGMVariant.STAIRCASE


class LDGMTriangleCode(_BaseLDGMCode):
    """LDGM Triangle: staircase plus a progressively filled lower triangle."""

    name = "ldgm-triangle"
    variant = LDGMVariant.TRIANGLE


register_code("ldgm", LDGMCode)
register_code("ldgm-staircase", LDGMStaircaseCode)
register_code("ldgm-triangle", LDGMTriangleCode)

__all__ = ["LDGMCode", "LDGMStaircaseCode", "LDGMTriangleCode"]
