"""LDGM, LDGM Staircase and LDGM Triangle codes.

These are the large-block codes of the paper (section 2.3).  They are built
from a sparse binary parity-check matrix ``H = [H1 | H2]``:

* ``H1`` ((n-k) x k) connects source packets to check nodes with a regular
  left degree of 3 (each source packet appears in exactly 3 equations).
* ``H2`` ((n-k) x (n-k)) connects parity packets to check nodes and is what
  distinguishes the variants: the identity for plain LDGM, a staircase
  (dual-diagonal) matrix for LDGM Staircase, and the staircase plus a
  progressively filled lower triangle for LDGM Triangle.

Encoding is a cascade of XORs; decoding uses the iterative (peeling)
algorithm of section 2.3.2.  A maximum-likelihood (Gaussian elimination)
decoder is provided as an extension for the ablation benchmarks.
"""

from repro.fec.ldgm.code import LDGMCode, LDGMStaircaseCode, LDGMTriangleCode
from repro.fec.ldgm.decoder import LDGMPayloadDecoder
from repro.fec.ldgm.encoder import LDGMEncoder
from repro.fec.ldgm.matrix import LDGMVariant, ParityCheckMatrix, build_parity_check_matrix
from repro.fec.ldgm.ml_decoder import ml_decodable, ml_necessary_count
from repro.fec.ldgm.symbolic import LDGMSymbolicDecoder

__all__ = [
    "LDGMVariant",
    "ParityCheckMatrix",
    "build_parity_check_matrix",
    "LDGMEncoder",
    "LDGMPayloadDecoder",
    "LDGMSymbolicDecoder",
    "LDGMCode",
    "LDGMStaircaseCode",
    "LDGMTriangleCode",
    "ml_decodable",
    "ml_necessary_count",
]
