"""Payload-level iterative (peeling) decoder for LDGM codes.

Identical algorithm to :class:`repro.fec.ldgm.symbolic.LDGMSymbolicDecoder`
but additionally maintains, for every check row, the XOR of the payloads of
its already-known message nodes; when a row reaches a single unknown node,
that accumulator is the recovered payload.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.fec.base import ObjectDecoder
from repro.fec.ldgm.matrix import ParityCheckMatrix


class LDGMPayloadDecoder(ObjectDecoder):
    """Incremental peeling decoder recovering actual packet payloads."""

    def __init__(self, matrix: ParityCheckMatrix):
        self._matrix = matrix
        self._k = matrix.k
        self._n = matrix.n
        num_checks = matrix.num_checks

        self._unknowns = np.empty(num_checks, dtype=np.int64)
        self._xor_unknown = np.zeros(num_checks, dtype=np.int64)
        for row in range(num_checks):
            cols = matrix.row_columns(row)
            self._unknowns[row] = cols.size
            accumulator = 0
            for col in cols:
                accumulator ^= int(col)
            self._xor_unknown[row] = accumulator

        indptr, rows = matrix.column_adjacency()
        self._adj_indptr = indptr
        self._adj_rows = rows

        self._payload_len: Optional[int] = None
        self._row_sum: Optional[np.ndarray] = None  # lazily sized
        self._known = np.zeros(self._n, dtype=bool)
        self._payloads: list[Optional[np.ndarray]] = [None] * self._n
        self._decoded_sources = 0

    def add_packet(self, index: int, payload: bytes) -> bool:
        if not 0 <= index < self._n:
            raise IndexError(f"packet index {index} out of range [0, {self._n})")
        if self.is_complete or self._known[index]:
            return self.is_complete
        data = np.frombuffer(bytes(payload), dtype=np.uint8)
        if self._payload_len is None:
            self._payload_len = data.size
            self._row_sum = np.zeros((self._matrix.num_checks, data.size), dtype=np.uint8)
        elif data.size != self._payload_len:
            raise ValueError(
                f"payload length {data.size} does not match previous packets "
                f"({self._payload_len})"
            )
        self._propagate(index, data.copy())
        return self.is_complete

    def _propagate(self, start: int, start_payload: np.ndarray) -> None:
        known = self._known
        unknowns = self._unknowns
        xor_unknown = self._xor_unknown
        row_sum = self._row_sum
        indptr = self._adj_indptr
        adj_rows = self._adj_rows

        stack: list[tuple[int, np.ndarray]] = [(start, start_payload)]
        while stack:
            node, payload = stack.pop()
            if known[node]:
                continue
            known[node] = True
            self._payloads[node] = payload
            if node < self._k:
                self._decoded_sources += 1
            for position in range(indptr[node], indptr[node + 1]):
                row = adj_rows[position]
                unknowns[row] -= 1
                xor_unknown[row] ^= node
                row_sum[row] ^= payload
                if unknowns[row] == 1:
                    candidate = int(xor_unknown[row])
                    if not known[candidate]:
                        # The check equation sums to zero, so the missing
                        # payload equals the XOR of the known ones.
                        stack.append((candidate, row_sum[row].copy()))

    @property
    def is_complete(self) -> bool:
        return self._decoded_sources >= self._k

    @property
    def decoded_source_count(self) -> int:
        return self._decoded_sources

    def source_payloads(self) -> list[bytes]:
        if not self.is_complete:
            raise RuntimeError("decoding is not complete yet")
        return [self._payloads[i].tobytes() for i in range(self._k)]


__all__ = ["LDGMPayloadDecoder"]
