"""XOR encoder for the LDGM code family.

Each check equation states that the XOR of all message nodes it touches is
zero, so parity packet ``i`` equals the XOR of the source packets of check
row ``i`` plus any previously computed parity packets referenced by the same
row (the staircase and triangle entries).  Because every extra parity column
of a row has a smaller index than the row's own diagonal entry, the parity
packets can be computed in one sequential pass.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.fec.base import ObjectEncoder, check_payloads
from repro.fec.ldgm.matrix import ParityCheckMatrix


class LDGMEncoder(ObjectEncoder):
    """Encode an object of ``k`` payloads into ``n`` payloads by XOR cascades."""

    def __init__(self, matrix: ParityCheckMatrix):
        self._matrix = matrix

    def encode(self, source_payloads: Sequence[bytes]) -> list[bytes]:
        matrix = self._matrix
        payload_len, source_matrix = check_payloads(source_payloads, matrix.k)
        parity_matrix = np.zeros((matrix.num_checks, payload_len), dtype=np.uint8)
        for row in range(matrix.num_checks):
            accumulator = np.zeros(payload_len, dtype=np.uint8)
            source_cols = matrix.source_cols[row]
            if source_cols.size:
                accumulator ^= np.bitwise_xor.reduce(source_matrix[source_cols], axis=0)
            for col in matrix.parity_cols[row]:
                parity_index = int(col) - matrix.k
                if parity_index == row:
                    continue  # the packet we are computing
                accumulator ^= parity_matrix[parity_index]
            parity_matrix[row] = accumulator
        payloads = [source_matrix[i].tobytes() for i in range(matrix.k)]
        payloads.extend(parity_matrix[i].tobytes() for i in range(matrix.num_checks))
        return payloads

    def encode_arrays(self, source_matrix: np.ndarray) -> np.ndarray:
        """Array-in/array-out variant used by tests: rows are payloads."""
        payloads = [source_matrix[i].tobytes() for i in range(source_matrix.shape[0])]
        encoded = self.encode(payloads)
        return np.vstack([np.frombuffer(p, dtype=np.uint8) for p in encoded])


__all__ = ["LDGMEncoder"]
