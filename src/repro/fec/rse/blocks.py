"""Object segmentation into Reed-Solomon blocks.

Because the RSE code operates over GF(2^8), a block holds at most
``max_block_size`` (default 256) encoding packets.  An object of ``k`` source
packets with an expansion ratio ``n / k`` therefore has to be split into
``B`` blocks, each encoded independently.  The partitioning follows the
spirit of RFC 5052's blocking algorithm: block sizes differ by at most one
source packet so the parity protection is as even as possible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import validate_positive_int

#: Largest number of encoding packets per block permitted by GF(2^8).
MAX_BLOCK_SIZE_GF256 = 256


@dataclass(frozen=True)
class BlockPartition:
    """Result of segmenting an object into RSE blocks.

    Attributes
    ----------
    block_ks:
        Number of source packets per block.
    block_ns:
        Number of encoding packets per block.
    """

    block_ks: tuple[int, ...]
    block_ns: tuple[int, ...]

    @property
    def num_blocks(self) -> int:
        return len(self.block_ks)

    @property
    def k(self) -> int:
        return sum(self.block_ks)

    @property
    def n(self) -> int:
        return sum(self.block_ns)

    @property
    def max_block_n(self) -> int:
        return max(self.block_ns)


def partition_object(k: int, n: int, max_block_size: int = MAX_BLOCK_SIZE_GF256) -> BlockPartition:
    """Split an object of ``k`` source packets (``n`` total) into RSE blocks.

    Every block receives either ``ceil(k / B)`` or ``floor(k / B)`` source
    packets, and parity packets are distributed so the per-block expansion
    ratio matches the global one as closely as possible while the totals are
    preserved exactly.

    Parameters
    ----------
    k, n:
        Global source/encoding packet counts (``n > k``).
    max_block_size:
        Maximum number of encoding packets per block (256 for GF(2^8)).
    """
    k = validate_positive_int(k, "k")
    n = validate_positive_int(n, "n")
    if n <= k:
        raise ValueError(f"n must be > k, got k={k}, n={n}")
    max_block_size = validate_positive_int(max_block_size, "max_block_size", minimum=2)
    if max_block_size > MAX_BLOCK_SIZE_GF256:
        raise ValueError(
            f"max_block_size cannot exceed {MAX_BLOCK_SIZE_GF256} over GF(2^8), "
            f"got {max_block_size}"
        )

    ratio = n / k
    max_k_per_block = max(1, math.floor(max_block_size / ratio))
    num_blocks = math.ceil(k / max_k_per_block)

    # Distribute source packets as evenly as possible.
    base_k, extra = divmod(k, num_blocks)
    block_ks = [base_k + 1 if block < extra else base_k for block in range(num_blocks)]

    # Distribute parity packets proportionally to block size, fixing rounding
    # on the largest blocks so the total is exactly n - k.
    parity_total = n - k
    raw = [block_k * parity_total / k for block_k in block_ks]
    block_parities = [math.floor(value) for value in raw]
    shortfall = parity_total - sum(block_parities)
    # Give the leftover parities to the blocks with the largest fractional part.
    order = sorted(range(num_blocks), key=lambda i: raw[i] - block_parities[i], reverse=True)
    for i in range(shortfall):
        block_parities[order[i % num_blocks]] += 1

    # Rounding may push a full-size block one parity packet over the limit;
    # rebalance by moving parities to the emptiest blocks that have room.
    for _ in range(num_blocks * 2):
        sizes = [bk + bp for bk, bp in zip(block_ks, block_parities)]
        over = [i for i, size in enumerate(sizes) if size > max_block_size]
        if not over:
            break
        donor = over[0]
        receiver = min(
            (i for i in range(num_blocks) if sizes[i] < max_block_size),
            key=lambda i: sizes[i],
            default=None,
        )
        if receiver is None:
            raise ValueError(
                f"cannot fit k={k}, n={n} into blocks of at most "
                f"{max_block_size} packets"
            )
        block_parities[donor] -= 1
        block_parities[receiver] += 1

    block_ns = []
    for block_k, block_parity in zip(block_ks, block_parities):
        block_n = block_k + block_parity
        if block_parity < 1:
            raise ValueError(
                f"expansion ratio {ratio:.3f} is too small to give every block "
                f"at least one parity packet (k={k}, n={n})"
            )
        block_ns.append(block_n)

    partition = BlockPartition(block_ks=tuple(block_ks), block_ns=tuple(block_ns))
    assert partition.k == k and partition.n == n
    return partition


__all__ = ["BlockPartition", "partition_object", "MAX_BLOCK_SIZE_GF256"]
