"""Symbolic (index-only) decoder for the multi-block RSE code.

Because RSE is MDS per block, a block is decodable exactly when at least
``k_b`` *distinct* encoding packets of that block have been received.  The
object is decodable when every block is.  The simulator uses this decoder to
measure the inefficiency ratio without touching payloads.
"""

from __future__ import annotations

import numpy as np

from repro.fec.base import SymbolicDecoder
from repro.fec.packet import PacketLayout


class RSESymbolicDecoder(SymbolicDecoder):
    """Tracks per-block reception counts for a multi-block MDS code."""

    def __init__(self, layout: PacketLayout):
        self._layout = layout
        num_blocks = layout.num_blocks
        self._block_needed = np.array([block.k for block in layout.blocks], dtype=np.int64)
        self._block_received = np.zeros(num_blocks, dtype=np.int64)
        self._block_complete = np.zeros(num_blocks, dtype=bool)
        self._seen = np.zeros(layout.n, dtype=bool)
        # Map every global packet index to its block id once, up front.
        self._block_of = np.empty(layout.n, dtype=np.int64)
        for block in layout.blocks:
            self._block_of[block.source_indices] = block.block_id
            self._block_of[block.parity_indices] = block.block_id
        self._complete_blocks = 0
        self._decoded_sources = 0

    def add_packet(self, index: int) -> bool:
        if not 0 <= index < self._layout.n:
            raise IndexError(f"packet index {index} out of range [0, {self._layout.n})")
        if self.is_complete or self._seen[index]:
            return self.is_complete
        self._seen[index] = True
        block_id = int(self._block_of[index])
        if self._block_complete[block_id]:
            return self.is_complete
        self._block_received[block_id] += 1
        if self._block_received[block_id] >= self._block_needed[block_id]:
            self._block_complete[block_id] = True
            self._complete_blocks += 1
            self._decoded_sources += int(self._block_needed[block_id])
        return self.is_complete

    @property
    def is_complete(self) -> bool:
        return self._complete_blocks == self._layout.num_blocks

    @property
    def decoded_source_count(self) -> int:
        """Source packets recovered so far.

        For incomplete blocks only the *received* source packets count (the
        MDS decode of a block only happens once ``k_b`` packets are there);
        completed blocks contribute all their source packets.  Computed with
        one masked ``np.bincount`` over the seen source packets instead of a
        per-block Python loop.
        """
        k = self._layout.k
        seen_sources = np.nonzero(self._seen[:k])[0]
        per_block = np.bincount(
            self._block_of[seen_sources], minlength=self._layout.num_blocks
        )
        partial = int(per_block[~self._block_complete].sum())
        return self._decoded_sources + partial


__all__ = ["RSESymbolicDecoder"]
