"""Multi-block Reed-Solomon erasure code for whole objects.

:class:`ReedSolomonCode` ties together the block partitioner, the per-block
codec and the symbolic decoder behind the common :class:`repro.fec.FECCode`
interface used by the simulator and the FLUTE substrate.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.fec.base import (
    FECCode,
    ObjectDecoder,
    ObjectEncoder,
    SymbolicDecoder,
    check_payloads,
)
from repro.fec.packet import PacketLayout, multi_block_layout
from repro.fec.registry import register_code
from repro.fec.rse.blocks import MAX_BLOCK_SIZE_GF256, BlockPartition, partition_object
from repro.fec.rse.codec import ReedSolomonBlockCodec
from repro.fec.rse.symbolic import RSESymbolicDecoder
from repro.utils.rng import RandomState


class ReedSolomonCode(FECCode):
    """Reed-Solomon erasure code (RSE) for an object of ``k`` source packets.

    The object is segmented into blocks of at most ``max_block_size``
    encoding packets (256 for GF(2^8)); each block is encoded independently
    with a systematic MDS codec.

    Parameters
    ----------
    k, n:
        Global number of source / encoding packets.
    max_block_size:
        Upper bound on the number of encoding packets per block.
    construction:
        Generator-matrix construction (``"vandermonde"`` or ``"cauchy"``).
    seed:
        Accepted for interface uniformity with the LDGM codes; RSE is
        deterministic so the value is ignored.
    """

    name = "rse"

    def __init__(
        self,
        k: int,
        n: int,
        *,
        max_block_size: int = MAX_BLOCK_SIZE_GF256,
        construction: str = "vandermonde",
        seed: RandomState = None,
    ):
        super().__init__(k, n)
        self._partition = partition_object(k, n, max_block_size=max_block_size)
        self._layout = multi_block_layout(self._partition.block_ks, self._partition.block_ns)
        self._construction = construction
        self._codecs: Dict[tuple[int, int], ReedSolomonBlockCodec] = {}

    @property
    def is_mds(self) -> bool:
        return True

    @property
    def partition(self) -> BlockPartition:
        """The block partition used for this object."""
        return self._partition

    @property
    def num_blocks(self) -> int:
        return self._partition.num_blocks

    @property
    def layout(self) -> PacketLayout:
        return self._layout

    def new_symbolic_decoder(self) -> SymbolicDecoder:
        return RSESymbolicDecoder(self._layout)

    def new_encoder(self) -> ObjectEncoder:
        return _RSEObjectEncoder(self)

    def new_decoder(self) -> ObjectDecoder:
        return _RSEObjectDecoder(self)

    def _block_codec(self, block_k: int, block_n: int) -> ReedSolomonBlockCodec:
        """Cache block codecs: many blocks share the same (k_b, n_b)."""
        key = (block_k, block_n)
        codec = self._codecs.get(key)
        if codec is None:
            codec = ReedSolomonBlockCodec(block_k, block_n, construction=self._construction)
            self._codecs[key] = codec
        return codec


class _RSEObjectEncoder(ObjectEncoder):
    """Encode the whole object block by block."""

    def __init__(self, code: ReedSolomonCode):
        self._code = code

    def encode(self, source_payloads: Sequence[bytes]) -> list[bytes]:
        code = self._code
        payload_len, source_matrix = check_payloads(source_payloads, code.k)
        output: list[Optional[bytes]] = [None] * code.n
        for block in code.layout.blocks:
            codec = code._block_codec(block.k, block.n)
            block_sources = source_matrix[block.source_indices]
            encoded = codec.encode(block_sources)
            for row, index in enumerate(block.all_indices):
                output[int(index)] = encoded[row].tobytes()
        assert all(payload is not None for payload in output)
        return output  # type: ignore[return-value]


class _RSEObjectDecoder(ObjectDecoder):
    """Incremental payload decoder: buffers packets per block, solves each
    block as soon as it has ``k_b`` distinct packets."""

    def __init__(self, code: ReedSolomonCode):
        self._code = code
        self._layout = code.layout
        self._block_of = np.empty(code.n, dtype=np.int64)
        self._esi_of = np.empty(code.n, dtype=np.int64)
        for block in self._layout.blocks:
            for esi, index in enumerate(block.all_indices):
                self._block_of[int(index)] = block.block_id
                self._esi_of[int(index)] = esi
        self._pending: Dict[int, Dict[int, bytes]] = {
            block.block_id: {} for block in self._layout.blocks
        }
        self._recovered: Dict[int, np.ndarray] = {}
        self._payload_len: Optional[int] = None

    def add_packet(self, index: int, payload: bytes) -> bool:
        if not 0 <= index < self._code.n:
            raise IndexError(f"packet index {index} out of range [0, {self._code.n})")
        if self.is_complete:
            return True
        if self._payload_len is None:
            self._payload_len = len(payload)
        elif len(payload) != self._payload_len:
            raise ValueError(
                f"payload length {len(payload)} does not match previous packets "
                f"({self._payload_len})"
            )
        block_id = int(self._block_of[index])
        if block_id in self._recovered:
            return self.is_complete
        pending = self._pending[block_id]
        esi = int(self._esi_of[index])
        if esi in pending:
            return self.is_complete
        pending[esi] = bytes(payload)
        block = self._layout.blocks[block_id]
        if len(pending) >= block.k:
            self._decode_block(block_id)
        return self.is_complete

    def _decode_block(self, block_id: int) -> None:
        block = self._layout.blocks[block_id]
        pending = self._pending[block_id]
        codec = self._code._block_codec(block.k, block.n)
        esis = sorted(pending)
        symbols = np.vstack(
            [np.frombuffer(pending[esi], dtype=np.uint8) for esi in esis]
        )
        self._recovered[block_id] = codec.decode(esis, symbols)
        self._pending[block_id].clear()

    @property
    def is_complete(self) -> bool:
        return len(self._recovered) == self._layout.num_blocks

    def source_payloads(self) -> list[bytes]:
        if not self.is_complete:
            raise RuntimeError("decoding is not complete yet")
        payloads: list[Optional[bytes]] = [None] * self._code.k
        for block in self._layout.blocks:
            recovered = self._recovered[block.block_id]
            for row, index in enumerate(block.source_indices):
                payloads[int(index)] = recovered[row].tobytes()
        assert all(payload is not None for payload in payloads)
        return payloads  # type: ignore[return-value]


register_code("rse", ReedSolomonCode)

__all__ = ["ReedSolomonCode"]
