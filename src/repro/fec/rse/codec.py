"""Single-block Reed-Solomon erasure codec over GF(2^8).

The codec is systematic and MDS: the first ``k`` encoding symbols are the
source symbols, and *any* ``k`` received symbols out of ``n`` suffice to
recover the block.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.galois.matrix import gf_mat_inv, gf_mat_vec
from repro.galois.tables import FIELD_SIZE
from repro.galois.vandermonde import systematic_generator_matrix


class ReedSolomonBlockCodec:
    """Encode/decode one source block of ``k`` symbols into ``n`` symbols.

    Parameters
    ----------
    k:
        Number of source symbols (``1 <= k < n``).
    n:
        Number of encoding symbols (``n <= 256`` over GF(2^8)).
    construction:
        Generator-matrix construction, ``"vandermonde"`` (default, Rizzo
        style) or ``"cauchy"``.
    """

    def __init__(self, k: int, n: int, construction: str = "vandermonde"):
        if not 0 < k < n:
            raise ValueError(f"require 0 < k < n, got k={k}, n={n}")
        if n > FIELD_SIZE:
            raise ValueError(f"n must be <= {FIELD_SIZE} over GF(2^8), got {n}")
        self.k = int(k)
        self.n = int(n)
        self.generator = systematic_generator_matrix(k, n, construction)

    def encode(self, source_symbols: np.ndarray) -> np.ndarray:
        """Encode ``k`` source symbols into ``n`` encoding symbols.

        ``source_symbols`` is a ``(k, symbol_len)`` uint8 array (or a 1-D
        array of ``k`` scalars).  The result has the same trailing shape with
        ``n`` rows; rows ``[0, k)`` are the source symbols unchanged.
        """
        source_symbols = np.asarray(source_symbols, dtype=np.uint8)
        if source_symbols.shape[0] != self.k:
            raise ValueError(
                f"expected {self.k} source symbols, got {source_symbols.shape[0]}"
            )
        return gf_mat_vec(self.generator, source_symbols)

    def decode(self, received_indices: Sequence[int], received_symbols: np.ndarray) -> np.ndarray:
        """Recover the ``k`` source symbols from any ``>= k`` received symbols.

        Parameters
        ----------
        received_indices:
            Encoding-symbol indices (ESIs) of the received symbols, each in
            ``[0, n)``; duplicates are not allowed.
        received_symbols:
            Array of received symbols, one row per index.

        Raises
        ------
        ValueError
            If fewer than ``k`` distinct symbols are supplied or an index is
            out of range / duplicated.
        """
        indices = np.asarray(received_indices, dtype=np.int64)
        received_symbols = np.asarray(received_symbols, dtype=np.uint8)
        if indices.ndim != 1 or indices.shape[0] != received_symbols.shape[0]:
            raise ValueError("received_indices and received_symbols must align")
        if np.unique(indices).size != indices.size:
            raise ValueError("received_indices must not contain duplicates")
        if np.any(indices < 0) or np.any(indices >= self.n):
            raise ValueError(f"received_indices must be in [0, {self.n})")
        if indices.size < self.k:
            raise ValueError(
                f"need at least {self.k} symbols to decode, got {indices.size}"
            )
        # The MDS property lets us use any k of the received symbols.  Prefer
        # source symbols (identity rows) to keep the system small and cheap.
        order = np.argsort(indices)
        chosen = order[: self.k]
        submatrix = self.generator[indices[chosen]]
        inverse = gf_mat_inv(submatrix)
        return gf_mat_vec(inverse, received_symbols[chosen])


__all__ = ["ReedSolomonBlockCodec"]
