"""Reed-Solomon erasure code (RSE) over GF(2^8).

The paper's RSE code (section 2.2) follows Rizzo's codec [14]: a systematic
MDS code per block, limited to at most 256 encoding packets per block by the
field size.  Objects larger than one block are segmented, which causes the
"coupon collector" inefficiency analysed by the paper.
"""

from repro.fec.rse.blocks import BlockPartition, partition_object
from repro.fec.rse.codec import ReedSolomonBlockCodec
from repro.fec.rse.object_codec import ReedSolomonCode

__all__ = [
    "ReedSolomonBlockCodec",
    "ReedSolomonCode",
    "BlockPartition",
    "partition_object",
]
