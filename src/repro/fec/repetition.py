"""Packet repetition pseudo-code (the "no FEC" baseline of section 4.2).

Instead of FEC parity packets, every source packet is simply transmitted
``copies`` times.  The paper uses this baseline (figure 7) to motivate the
use of real FEC: with any loss at all, a receiver essentially has to wait
for the end of the transmission (inefficiency ratio close to the number of
copies) and decoding often fails entirely.

The baseline is modelled as a :class:`repro.fec.FECCode` so the simulator,
schedulers and benchmarks can treat it uniformly: encoding packet ``i``
simply carries source packet ``i mod k``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.fec.base import (
    FECCode,
    ObjectDecoder,
    ObjectEncoder,
    SymbolicDecoder,
    check_payloads,
)
from repro.fec.packet import PacketLayout, single_block_layout
from repro.fec.registry import register_code
from repro.utils.rng import RandomState


class RepetitionCode(FECCode):
    """Send every source packet ``copies`` times (no real FEC).

    ``n`` must be a multiple of ``k``; packet ``i`` is a copy of source
    packet ``i mod k``.
    """

    name = "repetition"

    def __init__(self, k: int, n: int, *, seed: RandomState = None):
        super().__init__(k, n)
        if n % k != 0:
            raise ValueError(
                f"repetition requires n to be a multiple of k, got k={k}, n={n}"
            )
        self._copies = n // k
        self._layout = single_block_layout(k, n)

    @property
    def copies(self) -> int:
        """Number of times each source packet is transmitted."""
        return self._copies

    @property
    def layout(self) -> PacketLayout:
        return self._layout

    def source_of(self, index: int) -> int:
        """Source packet carried by encoding packet ``index``."""
        if not 0 <= index < self.n:
            raise IndexError(f"packet index {index} out of range [0, {self.n})")
        return index % self.k

    def new_symbolic_decoder(self) -> SymbolicDecoder:
        return _RepetitionSymbolicDecoder(self)

    def new_encoder(self) -> ObjectEncoder:
        return _RepetitionEncoder(self)

    def new_decoder(self) -> ObjectDecoder:
        return _RepetitionDecoder(self)


class _RepetitionSymbolicDecoder(SymbolicDecoder):
    def __init__(self, code: RepetitionCode):
        self._code = code
        self._have = np.zeros(code.k, dtype=bool)
        self._count = 0

    def add_packet(self, index: int) -> bool:
        source = self._code.source_of(index)
        if not self._have[source]:
            self._have[source] = True
            self._count += 1
        return self.is_complete

    @property
    def is_complete(self) -> bool:
        return self._count >= self._code.k

    @property
    def decoded_source_count(self) -> int:
        return self._count


class _RepetitionEncoder(ObjectEncoder):
    def __init__(self, code: RepetitionCode):
        self._code = code

    def encode(self, source_payloads: Sequence[bytes]) -> list[bytes]:
        _, matrix = check_payloads(source_payloads, self._code.k)
        return [matrix[i % self._code.k].tobytes() for i in range(self._code.n)]


class _RepetitionDecoder(ObjectDecoder):
    def __init__(self, code: RepetitionCode):
        self._code = code
        self._payloads: list[bytes | None] = [None] * code.k
        self._count = 0

    def add_packet(self, index: int, payload: bytes) -> bool:
        source = self._code.source_of(index)
        if self._payloads[source] is None:
            self._payloads[source] = bytes(payload)
            self._count += 1
        return self.is_complete

    @property
    def is_complete(self) -> bool:
        return self._count >= self._code.k

    def source_payloads(self) -> list[bytes]:
        if not self.is_complete:
            raise RuntimeError("decoding is not complete yet")
        return list(self._payloads)  # type: ignore[arg-type]


register_code("repetition", RepetitionCode)

__all__ = ["RepetitionCode"]
