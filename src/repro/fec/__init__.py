"""FEC framework and the three codes studied in the paper.

The paper (section 2) compares three application-layer packet erasure codes:

* **RSE** -- the Reed-Solomon erasure code over GF(2^8), a small-block MDS
  code.  Large objects must be segmented into blocks of at most 256 encoding
  packets, which is the source of the "coupon collector" inefficiency.
* **LDGM Staircase** -- a large-block LDPC-derived code whose parity part of
  the parity-check matrix is a staircase (dual-diagonal) matrix.
* **LDGM Triangle** -- LDGM Staircase with the triangle below the staircase
  progressively filled.

All codes expose the same interface (:class:`repro.fec.base.FECCode`): a
:class:`~repro.fec.base.PacketLayout` describing source/parity packets, real
payload encoders/decoders, and a *symbolic* decoder that only tracks packet
indices -- the simulator uses symbolic decoders because the paper's
inefficiency-ratio metric depends only on *which* packets arrive and in what
order, not on their content.
"""

from repro.fec.base import (
    DecoderState,
    FECCode,
    ObjectDecoder,
    ObjectEncoder,
    SymbolicDecoder,
)
from repro.fec.ldgm import LDGMCode, LDGMStaircaseCode, LDGMTriangleCode
from repro.fec.packet import BlockLayout, Packet, PacketKind, PacketLayout
from repro.fec.registry import available_codes, make_code, register_code
from repro.fec.repetition import RepetitionCode
from repro.fec.rse import ReedSolomonCode

__all__ = [
    "FECCode",
    "ObjectEncoder",
    "ObjectDecoder",
    "SymbolicDecoder",
    "DecoderState",
    "Packet",
    "PacketKind",
    "PacketLayout",
    "BlockLayout",
    "ReedSolomonCode",
    "RepetitionCode",
    "LDGMCode",
    "LDGMStaircaseCode",
    "LDGMTriangleCode",
    "make_code",
    "register_code",
    "available_codes",
]
