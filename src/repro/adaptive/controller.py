"""Round-based adaptive sweep controller.

The paper's figures spend a fixed run budget on every (p, q) cell, but
most cells are statistically settled long before the budget is spent: a
cell that decodes 16 times out of 16 already pins its decode probability
tightly, and the mean inefficiency ratio concentrates even faster.  The
controller here replans the grid round by round:

1. every *active* cell is extended from its current run count to the
   next target of a geometric schedule (``min_runs``, ``min_runs *
   growth``, ... capped at the run budget), planned as ordinary
   :class:`~repro.runner.units.WorkUnit` chunks of ``min_runs`` runs;
2. the new unit results are folded into per-cell
   :class:`~repro.core.metrics.CellStats` (streaming Welford
   accumulators, so the stopping statistics are O(1));
3. a cell *settles* -- leaves the active set -- once its Wilson score
   interval on the decode probability is narrower than ``ci_width`` and,
   for fully-decoding cells, the Student-t interval on the mean
   inefficiency is within ``rel_tol`` of the mean, both at
   ``confidence``.

Determinism contract
--------------------
Rounds only ever *extend* a cell's run range, in chunks of ``min_runs``
starting at run 0, under the unmodified seed derivations.  A cell that
settles after ``n`` runs is therefore planned as exactly the units a
fixed sweep ``run_grid(runs=n, runs_per_unit=min_runs)`` would plan --
same run ranges, same cache keys, same counter windows under the
``"unit"`` scheme -- so its statistics are bit-identical to that fixed
sweep, serial or fleet, under both seed schemes.  (This is why the
schedule targets are kept multiples of ``min_runs``: a geometric round
boundary that split a chunk would change the ``"unit"`` scheme's
streams.)

Cliff refinement
----------------
With ``refine_cliff`` the controller afterwards walks every edge of the
grid whose endpoints disagree on decodability and bisects the channel
parameter between them until the bracket is narrower than
``refine_resolution``, running each probe point as a full adaptive cell.
Probes are planned in lockstep across all cliff edges (one engine round
serves every active bisection), and each probe is emitted as a
first-class grid row -- the full per-cell record (mean inefficiency,
received ratio, failures, run count, Wilson interval) -- under
``metadata["adaptive"]["refined"]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.channel.gilbert import paper_grid
from repro.core.config import SimulationConfig
from repro.core.metrics import CellStats, GridResult
from repro.kernels.threads import ThreadSpec
from repro.resilience.policy import FailurePolicy, UnitFailure, failure_summary
from repro.runner.units import SeedPath, UnitResult, merge_cell, plan_units
from repro.seeds import SchemeSpec, resolve_scheme_name
from repro.store import resolve_store
from repro.utils.rng import RandomState, as_seed_int
from repro.utils.validation import validate_positive_int

__all__ = [
    "AdaptiveConfig",
    "AdaptiveSpec",
    "resolve_adaptive",
    "round_schedule",
    "plan_first_round",
    "adaptive_grid",
]


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs of the sequential stopping rule.

    Attributes
    ----------
    confidence:
        Confidence level of both stopping intervals (default 0.95).
    ci_width:
        A cell settles only once the Wilson score interval on its decode
        probability is at most this wide.
    rel_tol:
        For fully-decoding cells, the Student-t half-width on the mean
        inefficiency must additionally be at most ``rel_tol`` times the
        mean.  Cells with failures report NaN inefficiency (the paper's
        rule), so only their decode probability is held to account.
    min_runs:
        Runs per cell in the first round, and the planning chunk size of
        every later round (the determinism contract's unit granularity).
    growth:
        Geometric escalation factor between round targets (> 1).
    refine_cliff:
        Bisect decodable/undecodable neighbour pairs after the coarse
        grid settles.
    refine_resolution:
        Stop a bisection once its (p or q) bracket is at most this wide.
    """

    confidence: float = 0.95
    ci_width: float = 0.25
    rel_tol: float = 0.02
    min_runs: int = 8
    growth: float = 2.0
    refine_cliff: bool = False
    refine_resolution: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {self.confidence}")
        if self.ci_width <= 0.0:
            raise ValueError(f"ci_width must be > 0, got {self.ci_width}")
        if self.rel_tol <= 0.0:
            raise ValueError(f"rel_tol must be > 0, got {self.rel_tol}")
        if int(self.min_runs) < 2:
            raise ValueError(f"min_runs must be >= 2, got {self.min_runs}")
        object.__setattr__(self, "min_runs", int(self.min_runs))
        if self.growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {self.growth}")
        if self.refine_resolution <= 0.0:
            raise ValueError(
                f"refine_resolution must be > 0, got {self.refine_resolution}"
            )


#: ``adaptive=`` accepts a config, ``True`` (defaults), a kwargs dict, or
#: ``None`` / ``False`` (fixed sweep).
AdaptiveSpec = Union[AdaptiveConfig, bool, dict, None]


def resolve_adaptive(spec: AdaptiveSpec) -> Optional[AdaptiveConfig]:
    """Normalise an ``adaptive=`` argument to a config (or None = off)."""
    if spec is None or spec is False:
        return None
    if spec is True:
        return AdaptiveConfig()
    if isinstance(spec, AdaptiveConfig):
        return spec
    if isinstance(spec, dict):
        return AdaptiveConfig(**spec)
    raise TypeError(
        f"adaptive= expects AdaptiveConfig, bool, dict, or None; got {type(spec)!r}"
    )


def round_schedule(min_runs: int, growth: float, max_runs: int) -> List[int]:
    """Cumulative run targets of the geometric escalation.

    Every target except possibly the final budget is a multiple of
    ``min_runs``, so round boundaries always fall on the fixed-sweep
    chunk grid (the determinism contract).
    """
    max_runs = validate_positive_int(max_runs, "max_runs")
    targets: List[int] = []
    target = min(min_runs, max_runs)
    while True:
        targets.append(target)
        if target >= max_runs:
            return targets
        scaled = int(math.ceil(target * growth / min_runs)) * min_runs
        target = min(max(scaled, target + min_runs), max_runs)


def _settled(stats: CellStats, cfg: AdaptiveConfig) -> bool:
    """The per-cell stopping rule."""
    if stats.runs == 0:
        return False
    low, high = stats.decode_ci(cfg.confidence)
    if high - low > cfg.ci_width:
        return False
    if stats.all_decoded:
        mean = stats.mean_inefficiency
        half = stats.inefficiency_ci_halfwidth(cfg.confidence)
        if not half <= cfg.rel_tol * mean:
            return False
    return True


#: One sweep point handled by the controller: ``(seed_path, config, p, q)``.
Cell = Tuple[SeedPath, SimulationConfig, float, float]


@dataclass
class _CellRun:
    """Mutable per-cell bookkeeping across rounds."""

    stats: CellStats
    results: List[UnitResult]
    planned_runs: int = 0
    settled: bool = False
    rounds: int = 0


def _run_cells(
    cells: Sequence[Cell],
    cfg: AdaptiveConfig,
    budget: int,
    *,
    plan_kwargs: dict,
    execute,
    failures_out: List[UnitFailure],
) -> Dict[SeedPath, _CellRun]:
    """Drive a set of cells through the round loop until all settle.

    ``execute`` is a closure over :func:`repro.runner.engine._execute`
    with the executor/cache/fleet knobs already bound; ``plan_kwargs``
    carries the :func:`plan_units` knobs shared by every round.  Cells
    that refuse to settle stop at ``budget`` runs with ``settled=False``.
    """
    chunk = min(cfg.min_runs, budget)
    state = {path: _CellRun(stats=CellStats(), results=[]) for path, *_ in cells}
    by_path = {path: cell for cell in cells for path in [cell[0]]}
    active = [path for path, *_ in cells]
    previous = 0
    for target in round_schedule(cfg.min_runs, cfg.growth, budget):
        if not active:
            break
        units = plan_units(
            [by_path[path] for path in active],
            runs=target,
            first_run=previous,
            runs_per_unit=chunk,
            **plan_kwargs,
        )
        results, failures = execute(units, total_cells=len(active))
        failures_out.extend(failures)
        for path in active:
            run = state[path]
            run.planned_runs = target
            run.rounds += 1
            for (result_path, _run_start), result in sorted(
                results.items(), key=lambda item: item[0][1]
            ):
                if result_path == path:
                    run.results.append(result)
                    run.stats.add_ratios(
                        result.inefficiency_ratios,
                        result.received_ratios,
                        result.failures,
                    )
        previous = target
        still_active = []
        for path in active:
            if _settled(state[path].stats, cfg):
                state[path].settled = True
            else:
                still_active.append(path)
        active = still_active
    return state


def plan_first_round(
    config: SimulationConfig,
    p_values: Optional[Sequence[float]] = None,
    q_values: Optional[Sequence[float]] = None,
    *,
    runs: int,
    seed: RandomState = 0,
    adaptive: AdaptiveSpec = True,
    fresh_code_per_run: bool = False,
    fastpath: bool = True,
    kernel: Optional[str] = None,
    kernel_threads: ThreadSpec = None,
    seed_scheme: SchemeSpec = None,
):
    """Plan (without executing) the first adaptive round's units.

    Backs the CLI's ``--dry-run``: the returned list is exactly what the
    first call to the engine would receive.
    """
    cfg = resolve_adaptive(adaptive)
    if cfg is None:
        raise ValueError("plan_first_round needs an adaptive config")
    runs = validate_positive_int(runs, "runs")
    if p_values is None or q_values is None:
        default_p, default_q = paper_grid()
        p_values = default_p if p_values is None else p_values
        q_values = default_q if q_values is None else q_values
    cells: List[Cell] = [
        ((i, j), config, float(p), float(q))
        for i, p in enumerate(p_values)
        for j, q in enumerate(q_values)
    ]
    first_target = min(cfg.min_runs, runs)
    return plan_units(
        cells,
        runs=first_target,
        first_run=0,
        runs_per_unit=min(cfg.min_runs, runs),
        base_seed=as_seed_int(seed),
        fresh_code_per_run=fresh_code_per_run,
        fastpath=fastpath,
        kernel=kernel,
        kernel_threads=kernel_threads,
        seed_scheme=resolve_scheme_name(seed_scheme),
    )


def _refine_cliffs(
    cfg: AdaptiveConfig,
    budget: int,
    config: SimulationConfig,
    p_values: np.ndarray,
    q_values: np.ndarray,
    decodable: np.ndarray,
    *,
    plan_kwargs: dict,
    execute,
    failures_out: List[UnitFailure],
) -> Tuple[List[dict], List[dict], int]:
    """Bisect every decodable/undecodable neighbour pair on the grid.

    Returns ``(refined_rows, cliffs, refined_planned_runs)``.  Probe seed
    paths are 4-tuples ``(axis, i, j, step)`` -- disjoint by length from
    the grid's ``(i, j)`` paths, and unique because each edge probes one
    midpoint per bisection step.
    """
    edges: List[dict] = []
    for j in range(q_values.size):
        for i in range(p_values.size - 1):
            if decodable[i, j] != decodable[i + 1, j]:
                edges.append(
                    {
                        "axis": "p",
                        "i": i,
                        "j": j,
                        "low": float(p_values[i]),
                        "high": float(p_values[i + 1]),
                        "low_decodable": bool(decodable[i, j]),
                    }
                )
    for i in range(p_values.size):
        for j in range(q_values.size - 1):
            if decodable[i, j] != decodable[i, j + 1]:
                edges.append(
                    {
                        "axis": "q",
                        "i": i,
                        "j": j,
                        "low": float(q_values[j]),
                        "high": float(q_values[j + 1]),
                        "low_decodable": bool(decodable[i, j]),
                    }
                )

    refined_rows: List[dict] = []
    refined_runs = 0
    step = 0
    active = [edge for edge in edges if edge["high"] - edge["low"] > cfg.refine_resolution]
    while active and step < 64:
        probes: List[Cell] = []
        probe_edges: Dict[SeedPath, Tuple[dict, float]] = {}
        for edge in active:
            mid = 0.5 * (edge["low"] + edge["high"])
            axis_code = 0 if edge["axis"] == "p" else 1
            path: SeedPath = (axis_code, edge["i"], edge["j"], step)
            if edge["axis"] == "p":
                p, q = mid, float(q_values[edge["j"]])
            else:
                p, q = float(p_values[edge["i"]]), mid
            probes.append((path, config, p, q))
            probe_edges[path] = (edge, mid)
        state = _run_cells(
            probes,
            cfg,
            budget,
            plan_kwargs=plan_kwargs,
            execute=execute,
            failures_out=failures_out,
        )
        for path, _config, p, q in probes:
            run = state[path]
            edge, mid = probe_edges[path]
            refined_runs += run.planned_runs
            mean_ineff, mean_received, cell_failures = merge_cell(run.results)
            low_ci, high_ci = run.stats.decode_ci(cfg.confidence)
            refined_rows.append(
                {
                    "p": p,
                    "q": q,
                    "axis": edge["axis"],
                    "mean_inefficiency": mean_ineff,
                    "mean_received_ratio": mean_received,
                    "failures": cell_failures,
                    "runs": run.stats.runs,
                    "decode_probability": run.stats.decode_probability,
                    "decode_ci": [low_ci, high_ci],
                    "settled": run.settled,
                }
            )
            # Shrink the bracket towards the cliff: the midpoint joins
            # whichever side it agrees with on decodability.
            if run.stats.all_decoded == edge["low_decodable"]:
                edge["low"] = mid
            else:
                edge["high"] = mid
        step += 1
        active = [
            edge for edge in active if edge["high"] - edge["low"] > cfg.refine_resolution
        ]

    cliffs = [
        {
            "axis": edge["axis"],
            "p": float(p_values[edge["i"]]) if edge["axis"] == "q" else None,
            "q": float(q_values[edge["j"]]) if edge["axis"] == "p" else None,
            "bracket": [edge["low"], edge["high"]],
            "decodable_at_low": edge["low_decodable"],
        }
        for edge in edges
    ]
    return refined_rows, cliffs, refined_runs


def adaptive_grid(
    config: SimulationConfig,
    p_values: Optional[Sequence[float]] = None,
    q_values: Optional[Sequence[float]] = None,
    *,
    runs: int = 100,
    seed: RandomState = 0,
    adaptive: AdaptiveSpec = True,
    fresh_code_per_run: bool = False,
    progress=None,
    executor="serial",
    workers: Optional[int] = None,
    cache=None,
    fastpath: bool = True,
    kernel: Optional[str] = None,
    kernel_threads: ThreadSpec = None,
    seed_scheme: SchemeSpec = None,
    fleet: bool = False,
    lease_ttl: Optional[float] = None,
    worker_id: Optional[str] = None,
    failure_policy: Optional[FailurePolicy] = None,
) -> GridResult:
    """Adaptive (p, q) grid sweep; ``runs`` is the per-cell budget.

    The result is shaped exactly like :func:`repro.runner.engine.run_grid`
    output -- every settled cell's statistics are bit-identical to a
    fixed sweep at that cell's final run count -- with the controller's
    accounting under ``metadata["adaptive"]``: per-cell run counts and
    settlement, the round schedule, the executed-vs-exhaustive run
    totals, and (with ``refine_cliff``) the refined rows and localised
    cliff brackets.
    """
    from repro.runner.engine import _execute

    cfg = resolve_adaptive(adaptive)
    if cfg is None:
        raise ValueError("adaptive_grid needs an adaptive config (adaptive=...)")
    runs = validate_positive_int(runs, "runs")
    scheme_name = resolve_scheme_name(seed_scheme)
    if p_values is None or q_values is None:
        default_p, default_q = paper_grid()
        p_values = default_p if p_values is None else p_values
        q_values = default_q if q_values is None else q_values
    p_values = np.asarray(list(p_values), dtype=float)
    q_values = np.asarray(list(q_values), dtype=float)
    base_seed = as_seed_int(seed)
    store = resolve_store(cache)

    plan_kwargs = dict(
        base_seed=base_seed,
        fresh_code_per_run=fresh_code_per_run,
        fastpath=fastpath,
        kernel=kernel,
        kernel_threads=kernel_threads,
        seed_scheme=scheme_name,
    )

    def execute(units, total_cells):
        return _execute(
            units,
            executor=executor,
            workers=workers,
            cache=store,
            progress=progress,
            total_cells=total_cells,
            fleet=fleet,
            lease_ttl=lease_ttl,
            worker_id=worker_id,
            failure_policy=failure_policy,
        )

    cells: List[Cell] = [
        ((i, j), config, float(p), float(q))
        for i, p in enumerate(p_values)
        for j, q in enumerate(q_values)
    ]
    unit_failures: List[UnitFailure] = []
    state = _run_cells(
        cells,
        cfg,
        runs,
        plan_kwargs=plan_kwargs,
        execute=execute,
        failures_out=unit_failures,
    )

    shape = (p_values.size, q_values.size)
    mean_inefficiency = np.full(shape, np.nan)
    mean_received = np.full(shape, np.nan)
    failure_counts = np.zeros(shape, dtype=np.int64)
    runs_per_cell = np.zeros(shape, dtype=np.int64)
    settled = np.zeros(shape, dtype=bool)
    rounds_per_cell = np.zeros(shape, dtype=np.int64)
    for i in range(p_values.size):
        for j in range(q_values.size):
            run = state[(i, j)]
            inefficiency, received, cell_failures = merge_cell(run.results)
            mean_inefficiency[i, j] = inefficiency
            mean_received[i, j] = received
            failure_counts[i, j] = cell_failures
            runs_per_cell[i, j] = run.planned_runs
            settled[i, j] = run.settled
            rounds_per_cell[i, j] = run.rounds

    executed = int(runs_per_cell.sum())
    exhaustive = int(len(cells) * runs)
    adaptive_meta = {
        "confidence": cfg.confidence,
        "ci_width": cfg.ci_width,
        "rel_tol": cfg.rel_tol,
        "min_runs": cfg.min_runs,
        "growth": cfg.growth,
        "budget": runs,
        "schedule": round_schedule(cfg.min_runs, cfg.growth, runs),
        "rounds": int(rounds_per_cell.max()) if rounds_per_cell.size else 0,
        "runs_per_cell": runs_per_cell.tolist(),
        "settled": settled.tolist(),
        "executed_runs": executed,
        "exhaustive_runs": exhaustive,
        "saved_runs": exhaustive - executed,
        "saved_fraction": (
            (exhaustive - executed) / exhaustive if exhaustive else 0.0
        ),
    }

    if cfg.refine_cliff:
        decodable = (failure_counts == 0) & np.isfinite(mean_inefficiency)
        refined_rows, cliffs, refined_runs = _refine_cliffs(
            cfg,
            runs,
            config,
            p_values,
            q_values,
            decodable,
            plan_kwargs=plan_kwargs,
            execute=execute,
            failures_out=unit_failures,
        )
        adaptive_meta["refined"] = refined_rows
        adaptive_meta["cliffs"] = cliffs
        adaptive_meta["refined_runs"] = refined_runs
        adaptive_meta["resolution"] = cfg.refine_resolution

    metadata = {
        "code": config.code,
        "tx_model": config.tx_model,
        "k": config.k,
        "expansion_ratio": config.expansion_ratio,
        "nsent": config.nsent,
        "seed": base_seed,
        "seed_scheme": scheme_name,
        "adaptive": adaptive_meta,
    }
    if unit_failures:
        metadata["failed_units"] = [failure_summary(f) for f in unit_failures]
    return GridResult(
        p_values=p_values,
        q_values=q_values,
        mean_inefficiency=mean_inefficiency,
        mean_received_ratio=mean_received,
        failure_counts=failure_counts,
        runs=int(runs_per_cell.max()) if runs_per_cell.size else runs,
        label=config.display_label,
        metadata=metadata,
    )
