"""Adaptive sweeps: sequential stopping and decode-cliff refinement.

The controller in :mod:`repro.adaptive.controller` replans a (p, q) grid
sweep round by round, stopping each cell as soon as its statistics are
settled to the requested confidence, and (optionally) bisecting between
decodable/undecodable neighbours to localise the decode-probability
cliff.  Every round plans ordinary work units through the existing
engine, so results cache, lease, and fleet exactly like a fixed sweep --
and are bit-identical to one truncated at the same per-cell run counts.
"""

from repro.adaptive.controller import (
    AdaptiveConfig,
    AdaptiveSpec,
    adaptive_grid,
    plan_first_round,
    resolve_adaptive,
    round_schedule,
)

__all__ = [
    "AdaptiveConfig",
    "AdaptiveSpec",
    "adaptive_grid",
    "plan_first_round",
    "resolve_adaptive",
    "round_schedule",
]
