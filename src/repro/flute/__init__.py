"""A small in-process FLUTE/ALC-like file delivery substrate.

The paper motivates its study with FLUTE [13] over ALC [9]: massively
scalable file broadcasting with no back channel, where reliability comes
entirely from FEC.  This subpackage provides the pieces needed to exercise
the FEC codes and transmission models in that context without a network:

* :mod:`repro.flute.lct` / :mod:`repro.flute.alc` -- binary LCT headers and
  ALC packets (header + FEC payload ID + payload).
* :mod:`repro.flute.oti` -- FEC Object Transmission Information (the code
  parameters a receiver needs, including the PRNG seed for LDGM codes).
* :mod:`repro.flute.blocking` -- the source-block partitioning algorithm.
* :mod:`repro.flute.fdt` -- File Delivery Table instances (XML, as in FLUTE).
* :mod:`repro.flute.sender` / :mod:`repro.flute.receiver` -- sessions that
  encode/packetise an object and decode/reassemble it.
* :mod:`repro.flute.session` -- an in-process delivery harness connecting a
  sender to receivers through any :class:`repro.channel.LossModel`.
"""

from repro.flute.alc import AlcPacket
from repro.flute.blocking import BlockingStructure, compute_blocking
from repro.flute.fdt import FdtInstance, FileEntry
from repro.flute.lct import LctHeader
from repro.flute.oti import FecObjectTransmissionInformation
from repro.flute.receiver import FluteReceiver
from repro.flute.sender import FluteSender
from repro.flute.session import DeliveryReport, deliver_object

__all__ = [
    "LctHeader",
    "AlcPacket",
    "FecObjectTransmissionInformation",
    "BlockingStructure",
    "compute_blocking",
    "FdtInstance",
    "FileEntry",
    "FluteSender",
    "FluteReceiver",
    "DeliveryReport",
    "deliver_object",
]
