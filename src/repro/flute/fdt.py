"""File Delivery Table (FDT) instances.

FLUTE describes the files of a session in FDT instances, XML documents sent
as objects with TOI 0.  This module keeps the same idea: the FDT instance
carries, for every file, its TOI, content length and the FEC OTI; it is
serialised to a small XML document with :mod:`xml.etree.ElementTree`.
"""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.flute.oti import FecObjectTransmissionInformation


@dataclass(frozen=True)
class FileEntry:
    """One file described by an FDT instance."""

    toi: int
    content_location: str
    content_length: int
    oti: FecObjectTransmissionInformation

    def __post_init__(self) -> None:
        if self.toi <= 0:
            raise ValueError("data objects must use a TOI >= 1 (0 is the FDT)")
        if self.content_length < 0:
            raise ValueError("content_length must be non-negative")


@dataclass
class FdtInstance:
    """A File Delivery Table instance (the catalogue of session objects)."""

    instance_id: int = 0
    expires: Optional[int] = None
    files: Dict[int, FileEntry] = field(default_factory=dict)

    def add_file(self, entry: FileEntry) -> None:
        if entry.toi in self.files:
            raise ValueError(f"TOI {entry.toi} is already described by this FDT")
        self.files[entry.toi] = entry

    def get_file(self, toi: int) -> FileEntry:
        if toi not in self.files:
            raise KeyError(f"TOI {toi} is not described by this FDT instance")
        return self.files[toi]

    def __iter__(self) -> Iterable[FileEntry]:
        return iter(self.files.values())

    def __len__(self) -> int:
        return len(self.files)

    def to_xml(self) -> bytes:
        """Serialise the FDT instance to an XML byte string."""
        root = ElementTree.Element("FDT-Instance")
        root.set("FDT-Instance-ID", str(self.instance_id))
        if self.expires is not None:
            root.set("Expires", str(self.expires))
        for entry in self.files.values():
            element = ElementTree.SubElement(root, "File")
            element.set("TOI", str(entry.toi))
            element.set("Content-Location", entry.content_location)
            element.set("Content-Length", str(entry.content_length))
            oti = entry.oti
            element.set("FEC-Code", oti.code_name)
            element.set("FEC-K", str(oti.k))
            element.set("FEC-N", str(oti.n))
            element.set("FEC-Symbol-Size", str(oti.symbol_size))
            element.set("FEC-Object-Length", str(oti.object_length))
            if oti.seed is not None:
                element.set("FEC-Seed", str(oti.seed))
            if oti.max_block_size is not None:
                element.set("FEC-Max-Block-Size", str(oti.max_block_size))
        return ElementTree.tostring(root, encoding="utf-8", xml_declaration=True)

    @classmethod
    def from_xml(cls, data: bytes) -> "FdtInstance":
        """Parse an FDT instance from its XML serialisation."""
        root = ElementTree.fromstring(data)
        if root.tag != "FDT-Instance":
            raise ValueError(f"not an FDT instance (root element {root.tag!r})")
        instance = cls(
            instance_id=int(root.get("FDT-Instance-ID", "0")),
            expires=int(root.get("Expires")) if root.get("Expires") else None,
        )
        for element in root.findall("File"):
            oti = FecObjectTransmissionInformation(
                code_name=element.get("FEC-Code", ""),
                k=int(element.get("FEC-K", "0")),
                n=int(element.get("FEC-N", "0")),
                symbol_size=int(element.get("FEC-Symbol-Size", "0")),
                object_length=int(element.get("FEC-Object-Length", "0")),
                seed=int(element.get("FEC-Seed")) if element.get("FEC-Seed") else None,
                max_block_size=(
                    int(element.get("FEC-Max-Block-Size"))
                    if element.get("FEC-Max-Block-Size")
                    else None
                ),
            )
            instance.add_file(
                FileEntry(
                    toi=int(element.get("TOI", "0")),
                    content_location=element.get("Content-Location", ""),
                    content_length=int(element.get("Content-Length", "0")),
                    oti=oti,
                )
            )
        return instance


__all__ = ["FdtInstance", "FileEntry"]
