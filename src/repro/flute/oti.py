"""FEC Object Transmission Information (OTI).

The OTI is the set of FEC parameters a receiver needs to instantiate the
same decoder as the sender: code name, object dimensions, symbol size and
-- for the LDGM codes, whose parity-check matrix is drawn pseudo-randomly
-- the PRNG seed used by the sender (the real LDPC FEC scheme, RFC 5170,
also transmits a seed in its OTI).
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Any, Dict, Optional

from repro.fec.base import FECCode
from repro.fec.registry import make_code


@dataclass(frozen=True)
class FecObjectTransmissionInformation:
    """FEC parameters describing one transmitted object."""

    code_name: str
    k: int
    n: int
    symbol_size: int
    object_length: int
    seed: Optional[int] = None
    max_block_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.k <= 0 or self.n <= self.k:
            raise ValueError(f"invalid OTI dimensions k={self.k}, n={self.n}")
        if self.symbol_size <= 0:
            raise ValueError(f"symbol_size must be positive, got {self.symbol_size}")
        if self.object_length < 0:
            raise ValueError("object_length must be non-negative")

    @property
    def expansion_ratio(self) -> float:
        return self.n / self.k

    def build_code(self) -> FECCode:
        """Instantiate the FEC code described by this OTI."""
        options: Dict[str, Any] = {}
        if self.max_block_size is not None:
            options["max_block_size"] = self.max_block_size
        return make_code(self.code_name, k=self.k, n=self.n, seed=self.seed, **options)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FecObjectTransmissionInformation":
        return cls(
            code_name=str(data["code_name"]),
            k=int(data["k"]),
            n=int(data["n"]),
            symbol_size=int(data["symbol_size"]),
            object_length=int(data["object_length"]),
            seed=None if data.get("seed") is None else int(data["seed"]),
            max_block_size=(
                None if data.get("max_block_size") is None else int(data["max_block_size"])
            ),
        )


__all__ = ["FecObjectTransmissionInformation"]
