"""In-process FLUTE delivery over a simulated loss channel.

:func:`deliver_object` wires a :class:`~repro.flute.sender.FluteSender` to
one or several :class:`~repro.flute.receiver.FluteReceiver` instances
through a :class:`~repro.channel.base.LossModel`, which is the end-to-end
version of the paper's system model (figure 3) operating on real bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.channel.base import LossModel
from repro.channel.bernoulli import PerfectChannel
from repro.flute.receiver import FluteReceiver
from repro.flute.sender import FluteSender
from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class DeliveryReport:
    """Outcome of one simulated delivery to one receiver."""

    complete: bool
    data_matches: bool
    packets_sent: int
    packets_received: int
    packets_until_decoded: Optional[int]
    k: int
    n: int

    @property
    def inefficiency_ratio(self) -> float:
        if not self.complete or self.packets_until_decoded is None:
            return float("nan")
        return self.packets_until_decoded / self.k

    @property
    def loss_fraction(self) -> float:
        if self.packets_sent == 0:
            return 0.0
        return 1.0 - self.packets_received / self.packets_sent


def deliver_object(
    data: bytes,
    *,
    channel: Optional[LossModel] = None,
    num_receivers: int = 1,
    carousel_cycles: int = 1,
    nsent: Optional[int] = None,
    seed: RandomState = None,
    **sender_options,
) -> list[DeliveryReport]:
    """Broadcast ``data`` to ``num_receivers`` receivers over ``channel``.

    Every receiver sees an independent realisation of the channel (as in a
    broadcast system where receivers are behind different paths).  The FDT
    packet is delivered reliably to keep the focus on data-packet FEC, like
    the paper, which does not model FDT loss.

    Returns one :class:`DeliveryReport` per receiver.

    >>> from repro.channel import BernoulliChannel
    >>> reports = deliver_object(b"hello world" * 300, symbol_size=128,
    ...                          channel=BernoulliChannel(0.1),
    ...                          code="ldgm-staircase", expansion_ratio=2.0,
    ...                          seed=1)
    >>> reports[0].complete and reports[0].data_matches
    True
    """
    if num_receivers <= 0:
        raise ValueError(f"num_receivers must be positive, got {num_receivers}")
    channel = channel if channel is not None else PerfectChannel()
    rng = ensure_rng(seed)
    sender = FluteSender(data, seed=rng, **sender_options)

    reports: list[DeliveryReport] = []
    for _receiver_index in range(num_receivers):
        receiver = FluteReceiver(tsi=sender.tsi)
        packets = list(
            sender.packets(carousel_cycles=carousel_cycles, nsent=nsent, rng=rng)
        )
        data_packets = [packet for packet in packets if not packet.is_fdt]
        fdt_packets = [packet for packet in packets if packet.is_fdt]
        for packet in fdt_packets[:1]:
            receiver.feed(packet)
        loss = channel.loss_mask(len(data_packets), rng)
        received = 0
        for packet, lost in zip(data_packets, loss):
            if lost:
                continue
            received += 1
            receiver.feed(packet)
        complete = receiver.is_complete
        matches = complete and receiver.object_data() == bytes(data)
        reports.append(
            DeliveryReport(
                complete=complete,
                data_matches=matches,
                packets_sent=len(data_packets),
                packets_received=received,
                packets_until_decoded=receiver.packets_until_decoded,
                k=sender.code.k,
                n=sender.code.n,
            )
        )
    return reports


__all__ = ["DeliveryReport", "deliver_object"]
