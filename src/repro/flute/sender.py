"""FLUTE sender session: encode an object and emit ALC packets.

The sender performs the full transmit-side pipeline of the paper's system
model (figure 3): slice the object into symbols, FEC-encode it, choose a
transmission order with a :class:`~repro.scheduling.base.TransmissionModel`
and wrap every encoding symbol into an ALC packet.  An FDT instance packet
describing the object (and carrying the FEC OTI) is emitted first so a
receiver can bootstrap itself.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.fec.base import FECCode
from repro.fec.registry import make_code
from repro.flute.alc import AlcPacket
from repro.flute.blocking import compute_blocking, slice_object
from repro.flute.fdt import FdtInstance, FileEntry
from repro.flute.lct import LctHeader
from repro.flute.oti import FecObjectTransmissionInformation
from repro.scheduling.base import TransmissionModel
from repro.scheduling.registry import make_tx_model
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import validate_positive_int

#: TOI reserved for FDT instances, as in FLUTE.
FDT_TOI = 0


class FluteSender:
    """Encode one object and generate its ALC packet stream.

    Parameters
    ----------
    data:
        The object content.
    toi:
        Transport Object Identifier (>= 1).
    tsi:
        Transport Session Identifier.
    symbol_size:
        Packet payload size in bytes (the paper uses 1024).
    code:
        FEC code name (``"rse"``, ``"ldgm-staircase"``, ...).
    expansion_ratio:
        FEC expansion ratio ``n / k``.
    tx_model:
        Transmission-model name or instance controlling packet order.
    seed:
        Seed for the code construction and the scheduler.
    content_location:
        Name advertised in the FDT.
    """

    def __init__(
        self,
        data: bytes,
        *,
        toi: int = 1,
        tsi: int = 0,
        symbol_size: int = 1024,
        code: str = "ldgm-staircase",
        expansion_ratio: float = 1.5,
        tx_model: str | TransmissionModel = "tx_model_4",
        seed: RandomState = None,
        content_location: str = "file",
        code_options: Optional[dict] = None,
        tx_options: Optional[dict] = None,
    ):
        if len(data) == 0:
            raise ValueError("cannot send an empty object")
        self.data = bytes(data)
        self.toi = validate_positive_int(toi, "toi")
        self.tsi = int(tsi)
        self.symbol_size = validate_positive_int(symbol_size, "symbol_size")
        self.content_location = content_location

        self._rng = ensure_rng(seed)
        self._code_seed = int(self._rng.integers(0, 2**31 - 1))

        blocking = compute_blocking(len(self.data), self.symbol_size)
        self.blocking = blocking
        source_symbols = slice_object(self.data, self.symbol_size)
        if blocking.num_symbols < 2:
            raise ValueError(
                "the object must span at least two symbols; decrease symbol_size"
            )

        self.code: FECCode = make_code(
            code,
            k=blocking.num_symbols,
            expansion_ratio=expansion_ratio,
            seed=self._code_seed,
            **(code_options or {}),
        )
        if isinstance(tx_model, TransmissionModel):
            self.tx_model = tx_model
        else:
            self.tx_model = make_tx_model(tx_model, **(tx_options or {}))

        self._payloads = self.code.new_encoder().encode(source_symbols)
        self._oti = FecObjectTransmissionInformation(
            code_name=self.code.name,
            k=self.code.k,
            n=self.code.n,
            symbol_size=self.symbol_size,
            object_length=len(self.data),
            seed=self._code_seed,
            max_block_size=(code_options or {}).get("max_block_size"),
        )
        # Map global packet index -> (source block number, encoding symbol id).
        self._sbn = np.empty(self.code.n, dtype=np.int64)
        self._esi = np.empty(self.code.n, dtype=np.int64)
        for block in self.code.layout.blocks:
            for esi, index in enumerate(block.all_indices):
                self._sbn[int(index)] = block.block_id
                self._esi[int(index)] = esi

    @property
    def oti(self) -> FecObjectTransmissionInformation:
        """FEC Object Transmission Information advertised in the FDT."""
        return self._oti

    def fdt_instance(self) -> FdtInstance:
        """FDT instance describing this object."""
        fdt = FdtInstance(instance_id=self.toi)
        fdt.add_file(
            FileEntry(
                toi=self.toi,
                content_location=self.content_location,
                content_length=len(self.data),
                oti=self._oti,
            )
        )
        return fdt

    def fdt_packet(self) -> AlcPacket:
        """ALC packet carrying the FDT instance (TOI 0)."""
        header = LctHeader(tsi=self.tsi, toi=FDT_TOI, is_fdt=True)
        return AlcPacket(
            header=header,
            source_block_number=0,
            encoding_symbol_id=0,
            payload=self.fdt_instance().to_xml(),
        )

    def data_packet(self, global_index: int, *, close_object: bool = False) -> AlcPacket:
        """ALC packet carrying encoding symbol ``global_index``."""
        if not 0 <= global_index < self.code.n:
            raise IndexError(
                f"packet index {global_index} out of range [0, {self.code.n})"
            )
        header = LctHeader(tsi=self.tsi, toi=self.toi, close_object=close_object)
        return AlcPacket(
            header=header,
            source_block_number=int(self._sbn[global_index]),
            encoding_symbol_id=int(self._esi[global_index]),
            payload=self._payloads[global_index],
        )

    def packets(
        self,
        *,
        include_fdt: bool = True,
        carousel_cycles: int = 1,
        nsent: Optional[int] = None,
        rng: RandomState = None,
    ) -> Iterator[AlcPacket]:
        """Generate the packet stream for the transmission.

        Parameters
        ----------
        include_fdt:
            Emit the FDT packet before the data packets (and at the start of
            every carousel cycle).
        carousel_cycles:
            Number of times the whole object is transmitted (content
            broadcast systems typically cycle the object in a carousel so
            late joiners can still receive it).
        nsent:
            Truncate every cycle to its first ``nsent`` data packets
            (section 6.2 of the paper).
        rng:
            Scheduler randomness; defaults to the sender's own generator.
        """
        carousel_cycles = validate_positive_int(carousel_cycles, "carousel_cycles")
        rng = self._rng if rng is None else ensure_rng(rng)
        for _cycle in range(carousel_cycles):
            if include_fdt:
                yield self.fdt_packet()
            schedule = self.tx_model.schedule(self.code.layout, rng)
            schedule = self.tx_model.validate_schedule(self.code.layout, schedule)
            if nsent is not None:
                schedule = schedule[: int(nsent)]
            for position, index in enumerate(schedule.tolist()):
                close = position == schedule.size - 1
                yield self.data_packet(index, close_object=close)

    def global_index_of(self, source_block_number: int, encoding_symbol_id: int) -> int:
        """Inverse of the (SBN, ESI) mapping used by :meth:`data_packet`."""
        block = self.code.layout.blocks[source_block_number]
        return int(block.all_indices[encoding_symbol_id])


__all__ = ["FluteSender", "FDT_TOI"]
