"""ALC packets: LCT header + FEC payload ID + encoding-symbol payload.

ALC (RFC 3450) instantiates LCT for asynchronous layered coding.  Every
packet carries the FEC payload ID -- here the (source block number,
encoding symbol id) pair, as in the small-block and LDPC FEC schemes --
followed by one encoding symbol.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.flute.lct import LctHeader

_PAYLOAD_ID_STRUCT = struct.Struct("!II")


@dataclass(frozen=True)
class AlcPacket:
    """One ALC packet.

    Attributes
    ----------
    header:
        The LCT header.
    source_block_number:
        Index of the source block the symbol belongs to (SBN).
    encoding_symbol_id:
        Index of the symbol within its block (ESI); source symbols come
        first, parity symbols follow.
    payload:
        The encoding symbol.
    """

    header: LctHeader
    source_block_number: int
    encoding_symbol_id: int
    payload: bytes

    def __post_init__(self) -> None:
        if not 0 <= self.source_block_number < 2**32:
            raise ValueError("source_block_number must fit in 32 bits")
        if not 0 <= self.encoding_symbol_id < 2**32:
            raise ValueError("encoding_symbol_id must fit in 32 bits")

    @property
    def is_fdt(self) -> bool:
        return self.header.is_fdt

    def to_bytes(self) -> bytes:
        return (
            self.header.to_bytes()
            + _PAYLOAD_ID_STRUCT.pack(self.source_block_number, self.encoding_symbol_id)
            + bytes(self.payload)
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "AlcPacket":
        header = LctHeader.from_bytes(data)
        offset = LctHeader.SIZE
        if len(data) < offset + _PAYLOAD_ID_STRUCT.size:
            raise ValueError("packet too short for a FEC payload ID")
        sbn, esi = _PAYLOAD_ID_STRUCT.unpack_from(data, offset)
        payload = data[offset + _PAYLOAD_ID_STRUCT.size :]
        return cls(
            header=header,
            source_block_number=sbn,
            encoding_symbol_id=esi,
            payload=payload,
        )

    def __len__(self) -> int:
        return LctHeader.SIZE + _PAYLOAD_ID_STRUCT.size + len(self.payload)


__all__ = ["AlcPacket"]
