"""Source-block partitioning of an object into symbols and blocks.

This mirrors the spirit of the blocking algorithm of RFC 5052 (FEC Building
Block): an object of ``object_length`` bytes is cut into fixed-size symbols
(the last one padded) and the symbols are grouped into source blocks whose
sizes differ by at most one symbol.

For the large-block LDGM codes a single block covers the whole object; for
RSE the per-block limit of GF(2^8) applies (see
:mod:`repro.fec.rse.blocks`), so the FLUTE layer simply delegates the block
geometry to the FEC code's :class:`~repro.fec.packet.PacketLayout` and only
handles the byte-level slicing here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import validate_positive_int


@dataclass(frozen=True)
class BlockingStructure:
    """Symbol-level description of an object.

    Attributes
    ----------
    object_length:
        Original object length in bytes.
    symbol_size:
        Encoding symbol (packet payload) size in bytes.
    num_symbols:
        Number of source symbols (``ceil(object_length / symbol_size)``).
    padding:
        Number of padding bytes added to the last symbol.
    """

    object_length: int
    symbol_size: int
    num_symbols: int
    padding: int

    @property
    def padded_length(self) -> int:
        return self.num_symbols * self.symbol_size


def compute_blocking(object_length: int, symbol_size: int) -> BlockingStructure:
    """Compute the symbol structure for an object."""
    object_length = validate_positive_int(object_length, "object_length")
    symbol_size = validate_positive_int(symbol_size, "symbol_size")
    num_symbols = math.ceil(object_length / symbol_size)
    padding = num_symbols * symbol_size - object_length
    return BlockingStructure(
        object_length=object_length,
        symbol_size=symbol_size,
        num_symbols=num_symbols,
        padding=padding,
    )


def slice_object(data: bytes, symbol_size: int) -> list[bytes]:
    """Cut ``data`` into symbols of ``symbol_size`` bytes, zero-padding the last."""
    blocking = compute_blocking(len(data), symbol_size)
    padded = bytes(data) + b"\x00" * blocking.padding
    return [
        padded[i * symbol_size : (i + 1) * symbol_size]
        for i in range(blocking.num_symbols)
    ]


def reassemble_object(symbols: list[bytes], object_length: int) -> bytes:
    """Concatenate source symbols and strip the padding."""
    data = b"".join(symbols)
    if len(data) < object_length:
        raise ValueError(
            f"symbols cover {len(data)} bytes but the object needs {object_length}"
        )
    return data[:object_length]


__all__ = ["BlockingStructure", "compute_blocking", "slice_object", "reassemble_object"]
