"""FLUTE receiver session: decode ALC packets back into the object.

The receiver bootstraps from the FDT instance (which carries the FEC OTI,
including the LDGM seed), instantiates the same FEC code as the sender,
feeds every data packet to the incremental payload decoder and reassembles
the object once decoding completes.  It also keeps the counters needed to
report the paper's metrics (packets received vs. packets needed).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.fec.base import FECCode, ObjectDecoder
from repro.flute.alc import AlcPacket
from repro.flute.blocking import reassemble_object
from repro.flute.fdt import FdtInstance, FileEntry
from repro.flute.sender import FDT_TOI


class FluteReceiver:
    """Receive ALC packets for one transport object and rebuild it.

    Parameters
    ----------
    tsi:
        Transport session to listen to; packets from other sessions are
        ignored (counted in :attr:`ignored_packets`).
    toi:
        Transport object of interest; ``None`` accepts the first data TOI
        announced by an FDT instance.
    """

    def __init__(self, *, tsi: int = 0, toi: Optional[int] = None):
        self.tsi = int(tsi)
        self.toi = toi
        self.fdt: Optional[FdtInstance] = None
        self.file_entry: Optional[FileEntry] = None
        self._code: Optional[FECCode] = None
        self._decoder: Optional[ObjectDecoder] = None
        self._global_index: dict[tuple[int, int], int] = {}
        self.packets_received = 0
        self.packets_until_decoded: Optional[int] = None
        self.ignored_packets = 0
        self._buffered: list[AlcPacket] = []

    @property
    def is_complete(self) -> bool:
        """True once the object payload has been fully recovered."""
        return self._decoder is not None and self._decoder.is_complete

    @property
    def inefficiency_ratio(self) -> float:
        """Data packets received when decoding completed, divided by ``k``."""
        if not self.is_complete or self._code is None or self.packets_until_decoded is None:
            return float("nan")
        return self.packets_until_decoded / self._code.k

    def feed_bytes(self, data: bytes) -> bool:
        """Feed one serialised ALC packet; returns completion."""
        return self.feed(AlcPacket.from_bytes(data))

    def feed(self, packet: AlcPacket) -> bool:
        """Feed one ALC packet; returns ``True`` once the object is complete."""
        if packet.header.tsi != self.tsi:
            self.ignored_packets += 1
            return self.is_complete
        if packet.is_fdt or packet.header.toi == FDT_TOI:
            self._handle_fdt(packet)
            return self.is_complete
        if self.toi is not None and packet.header.toi != self.toi:
            self.ignored_packets += 1
            return self.is_complete
        if self._decoder is None:
            # Data packet before the FDT: remember it and replay later.
            self._buffered.append(packet)
            return self.is_complete
        self._handle_data(packet)
        return self.is_complete

    def _handle_fdt(self, packet: AlcPacket) -> None:
        if self.fdt is not None:
            return
        self.fdt = FdtInstance.from_xml(packet.payload)
        if self.toi is None:
            if not len(self.fdt):
                raise ValueError("received an FDT instance describing no files")
            self.toi = next(iter(self.fdt)).toi
        self.file_entry = self.fdt.get_file(self.toi)
        self._code = self.file_entry.oti.build_code()
        self._decoder = self._code.new_decoder()
        for block in self._code.layout.blocks:
            for esi, index in enumerate(block.all_indices):
                self._global_index[(block.block_id, esi)] = int(index)
        buffered, self._buffered = self._buffered, []
        for pending in buffered:
            self._handle_data(pending)

    def _handle_data(self, packet: AlcPacket) -> None:
        assert self._decoder is not None and self._code is not None
        if self.is_complete:
            self.packets_received += 1
            return
        key = (packet.source_block_number, packet.encoding_symbol_id)
        if key not in self._global_index:
            self.ignored_packets += 1
            return
        self.packets_received += 1
        completed = self._decoder.add_packet(self._global_index[key], packet.payload)
        if completed and self.packets_until_decoded is None:
            self.packets_until_decoded = self.packets_received

    def object_data(self) -> bytes:
        """The reassembled object (requires completion)."""
        if not self.is_complete or self._decoder is None or self.file_entry is None:
            raise RuntimeError("the object has not been fully received yet")
        return reassemble_object(
            self._decoder.source_payloads(), self.file_entry.content_length
        )


__all__ = ["FluteReceiver"]
