"""Layered Coding Transport (LCT, RFC 3451) header -- simplified binary form.

The real LCT header has a variable-length format with optional congestion
control information and header extensions.  This implementation keeps the
fields the delivery substrate actually needs (version, flags, transport
session id, transport object id) in a fixed 12-byte layout, which is enough
to exercise the packetisation/reassembly code paths end to end.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

#: struct layout: version+flags (2 bytes), TSI (4 bytes), TOI (4 bytes),
#: reserved (2 bytes).
_HEADER_STRUCT = struct.Struct("!BBIIH")

#: Protocol version implemented by this module.
LCT_VERSION = 1

#: Flag bits.
FLAG_CLOSE_SESSION = 0x01
FLAG_CLOSE_OBJECT = 0x02
FLAG_FDT = 0x04


@dataclass(frozen=True)
class LctHeader:
    """Fixed-size LCT header.

    Attributes
    ----------
    tsi:
        Transport Session Identifier.
    toi:
        Transport Object Identifier (0 is reserved for FDT instances, as in
        FLUTE).
    close_session / close_object:
        The LCT "A" and "B" flags.
    is_fdt:
        Marks FDT-instance packets (a simplification of FLUTE's LCT header
        extension EXT_FDT).
    """

    tsi: int
    toi: int
    close_session: bool = False
    close_object: bool = False
    is_fdt: bool = False
    version: int = LCT_VERSION

    #: Serialised size in bytes.
    SIZE = _HEADER_STRUCT.size

    def __post_init__(self) -> None:
        if not 0 <= self.tsi < 2**32:
            raise ValueError(f"tsi must fit in 32 bits, got {self.tsi}")
        if not 0 <= self.toi < 2**32:
            raise ValueError(f"toi must fit in 32 bits, got {self.toi}")

    def to_bytes(self) -> bytes:
        flags = 0
        if self.close_session:
            flags |= FLAG_CLOSE_SESSION
        if self.close_object:
            flags |= FLAG_CLOSE_OBJECT
        if self.is_fdt:
            flags |= FLAG_FDT
        return _HEADER_STRUCT.pack(self.version, flags, self.tsi, self.toi, 0)

    @classmethod
    def from_bytes(cls, data: bytes) -> "LctHeader":
        if len(data) < cls.SIZE:
            raise ValueError(
                f"LCT header needs {cls.SIZE} bytes, got {len(data)}"
            )
        version, flags, tsi, toi, _reserved = _HEADER_STRUCT.unpack_from(data)
        if version != LCT_VERSION:
            raise ValueError(f"unsupported LCT version {version}")
        return cls(
            tsi=tsi,
            toi=toi,
            close_session=bool(flags & FLAG_CLOSE_SESSION),
            close_object=bool(flags & FLAG_CLOSE_OBJECT),
            is_fdt=bool(flags & FLAG_FDT),
            version=version,
        )


__all__ = ["LctHeader", "LCT_VERSION", "FLAG_CLOSE_SESSION", "FLAG_CLOSE_OBJECT", "FLAG_FDT"]
