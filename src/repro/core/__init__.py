"""Simulation engine: single runs, grid sweeps, experiments, recommendations.

This is the package that ties the FEC codes, channel models and transmission
models together and produces the paper's metrics:

* :mod:`repro.core.simulator` -- one transmission/reception/decoding run and
  its :class:`~repro.core.metrics.RunResult`.
* :mod:`repro.core.sweep` -- the (p, q) grid sweeps behind every 3-D figure
  and appendix table.
* :mod:`repro.core.experiments` -- declarative presets for every figure and
  table of the paper, at several scales ("tiny", "small", "paper").
* :mod:`repro.core.optimizer` -- the ``n_sent`` optimisation of section 6.2.
* :mod:`repro.core.recommendations` -- the recommendation engine of
  section 6 (best (code, tx model, ratio) tuple for a channel).
"""

from repro.core.config import SimulationConfig
from repro.core.experiments import (
    EXPERIMENTS,
    ExperimentScale,
    ExperimentSpec,
    SCALES,
    get_experiment,
)
from repro.core.metrics import GridResult, RunResult, RunResultBatch
from repro.core.optimizer import optimal_nsent, optimal_nsent_for_object, worked_example_section_6_2_1
from repro.core.recommendations import (
    Recommendation,
    recommend_for_channel,
    universal_recommendations,
)
from repro.core.simulator import Simulator, simulate_once
from repro.core.sweep import simulate_grid, sweep_parameter

__all__ = [
    "SimulationConfig",
    "RunResult",
    "RunResultBatch",
    "GridResult",
    "Simulator",
    "simulate_once",
    "simulate_grid",
    "sweep_parameter",
    "ExperimentSpec",
    "ExperimentScale",
    "EXPERIMENTS",
    "SCALES",
    "get_experiment",
    "optimal_nsent",
    "optimal_nsent_for_object",
    "worked_example_section_6_2_1",
    "Recommendation",
    "recommend_for_channel",
    "universal_recommendations",
]
