"""Grid sweeps over the Gilbert (p, q) plane and generic 1-D parameter sweeps.

``simulate_grid`` is the workhorse behind every 3-D figure and appendix
table of the paper: for every (p, q) point it runs ``runs`` independent
transmissions and aggregates them following the paper's rule (a point where
any run failed to decode is reported as not decodable).

Both sweeps are thin wrappers over the execution engine in
:mod:`repro.runner.engine`, which shards a sweep into independent work
units, optionally fans them out over a process pool (``executor="process"``,
``workers=N``) and caches finished cells on disk (``cache=...``).  Every
run draws from ``SeedSequence([base_seed, *cell, run])``, so results are
bit-identical across executors and cache states.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.core.config import SimulationConfig
from repro.core.metrics import GridResult, SeriesResult
from repro.runner.engine import (
    CacheSpec,
    ExecutorSpec,
    ProgressCallback,
    run_adaptive,
    run_grid,
    run_series,
)
from repro.kernels.threads import ThreadSpec
from repro.resilience.policy import FailurePolicy
from repro.seeds import SchemeSpec
from repro.utils.rng import RandomState


def simulate_grid(
    config: SimulationConfig,
    p_values: Optional[Sequence[float]] = None,
    q_values: Optional[Sequence[float]] = None,
    *,
    runs: int = 10,
    seed: RandomState = 0,
    fresh_code_per_run: bool = False,
    progress: Optional[ProgressCallback] = None,
    executor: ExecutorSpec = None,
    workers: Optional[int] = None,
    cache: CacheSpec = None,
    fastpath: bool = True,
    kernel: Optional[str] = None,
    kernel_threads: ThreadSpec = None,
    seed_scheme: SchemeSpec = None,
    fleet: bool = False,
    lease_ttl: Optional[float] = None,
    worker_id: Optional[str] = None,
    failure_policy: Optional[FailurePolicy] = None,
    adaptive=None,
) -> GridResult:
    """Sweep the Gilbert (p, q) grid for one configuration.

    Parameters
    ----------
    config:
        The (code, tx model, k, ratio) configuration to evaluate.
    p_values, q_values:
        Grid axes (probabilities in [0, 1]); default to the paper's 14-value
        grid.
    runs:
        Independent transmissions per grid point (the paper uses 100).
    seed:
        Top-level seed; every (p, q, run) triple gets its own derived stream
        so results are reproducible and independent of iteration order.
    fresh_code_per_run:
        Rebuild the FEC code (i.e. draw a new LDGM parity-check matrix) for
        every run instead of encoding once and reusing it.  Slower, closer
        to averaging over code constructions.
    progress:
        Optional callback ``(done_points, total_points)``.
    executor:
        ``"serial"``, ``"process"`` for a multiprocessing pool, an executor
        instance from :mod:`repro.runner.executors`, or ``None`` (default)
        to pick the process pool when ``workers > 1`` and the serial
        executor otherwise.
    workers:
        Pool size for the process executor (defaults to the CPU count).
    cache:
        A :class:`repro.runner.ResultCache`, a cache-directory path, or
        ``None`` (default) to disable caching.  With a cache, completed
        grid cells are skipped on re-runs, making interrupted sweeps
        resumable.
    fastpath:
        Decode each work unit's run range as one vectorised batch through
        :mod:`repro.fastpath` (default; bit-identical to the incremental
        path).  ``False`` keeps the per-packet reference loop.
    kernel:
        :mod:`repro.kernels` backend name for the batch decode hot loops
        (``"numpy"``, ``"numba"``, ``"cext"``, ``"python"``; default
        resolves ``REPRO_KERNEL`` / auto = numba > cext > numpy).
        Bit-identical across backends.
    seed_scheme:
        :mod:`repro.seeds` scheme deriving the per-run streams
        (``"per-run"`` reproduces the historical streams bit-for-bit;
        ``"unit"`` batches a whole work unit's draws from one
        counter-based generator -- deterministic, but a *different*
        stream, so it keys the result cache separately).  ``None``
        resolves ``REPRO_SEED_SCHEME`` / ``"per-run"``.
    fleet:
        Execute cooperatively: claim units from the shared ``cache``
        store under TTL leases (:mod:`repro.runner.fleet`), so several
        processes running this exact sweep against one store split the
        grid with no duplicated work.  Requires a lease-capable store.
    lease_ttl, worker_id:
        Fleet knobs: lease time-to-live in seconds and the worker's
        fleet-unique identity (default ``<hostname>:<pid>``).
    failure_policy:
        Optional :class:`repro.resilience.FailurePolicy`: retry failing
        units with deterministic backoff, bound their runtime, and skip
        or quarantine units that exhaust their attempts instead of
        aborting the sweep (see :mod:`repro.resilience`).
    adaptive:
        ``None``/``False`` (default) runs the fixed sweep.  An
        :class:`repro.adaptive.AdaptiveConfig`, a kwargs dict, or
        ``True`` switches to the sequential-stopping controller:
        ``runs`` becomes the per-cell budget, each cell stops as soon as
        its confidence intervals settle, and the grid's
        ``metadata["adaptive"]`` records per-cell run counts and the
        saved-runs summary.  Settled cells are bit-identical to the
        fixed sweep at the same run count.
    """
    if adaptive is not None and adaptive is not False:
        return run_adaptive(
            config,
            p_values,
            q_values,
            runs=runs,
            seed=seed,
            adaptive=adaptive,
            fresh_code_per_run=fresh_code_per_run,
            progress=progress,
            executor=executor,
            workers=workers,
            cache=cache,
            fastpath=fastpath,
            kernel=kernel,
            kernel_threads=kernel_threads,
            seed_scheme=seed_scheme,
            fleet=fleet,
            lease_ttl=lease_ttl,
            worker_id=worker_id,
            failure_policy=failure_policy,
        )
    return run_grid(
        config,
        p_values,
        q_values,
        runs=runs,
        seed=seed,
        fresh_code_per_run=fresh_code_per_run,
        progress=progress,
        executor=executor,
        workers=workers,
        cache=cache,
        fastpath=fastpath,
        kernel=kernel,
        kernel_threads=kernel_threads,
        seed_scheme=seed_scheme,
        fleet=fleet,
        lease_ttl=lease_ttl,
        worker_id=worker_id,
        failure_policy=failure_policy,
    )


def sweep_parameter(
    make_config: Callable[[float], SimulationConfig],
    parameter_values: Sequence[float],
    *,
    parameter_name: str = "parameter",
    p: float = 0.0,
    q: float = 1.0,
    runs: int = 10,
    seed: RandomState = 0,
    fresh_code_per_run: bool = False,
    progress: Optional[ProgressCallback] = None,
    executor: ExecutorSpec = None,
    workers: Optional[int] = None,
    cache: CacheSpec = None,
    fastpath: bool = True,
    kernel: Optional[str] = None,
    kernel_threads: ThreadSpec = None,
    seed_scheme: SchemeSpec = None,
    fleet: bool = False,
    lease_ttl: Optional[float] = None,
    worker_id: Optional[str] = None,
    failure_policy: Optional[FailurePolicy] = None,
    label: str = "",
) -> SeriesResult:
    """Sweep an arbitrary scalar parameter at a fixed (p, q) point.

    Used for figure 14 (inefficiency vs. number of received source packets)
    and for the ablation benchmarks (e.g. left degree of the LDGM graph).

    Each index of the sweep builds its shared code from
    ``SeedSequence([base_seed, index])``, so neighbouring indices get
    provably disjoint code streams (the historical ``base_seed + index``
    scheme could collide across sweeps).

    Parameters
    ----------
    make_config:
        Callable mapping a parameter value to a :class:`SimulationConfig`.
    parameter_values:
        Values to sweep.
    p, q:
        Gilbert channel parameters shared by every point of the sweep.
    fresh_code_per_run:
        Rebuild the FEC code from the run stream for every run.
    progress:
        Optional callback ``(done_points, total_points)``.
    executor, workers, cache, fastpath, kernel, kernel_threads, seed_scheme:
        Execution/caching/seeding knobs, as in :func:`simulate_grid`.
    fleet, lease_ttl, worker_id:
        Cooperative fleet-execution knobs, as in :func:`simulate_grid`.
    """
    values = [float(value) for value in parameter_values]
    configs = [make_config(value) for value in values]
    return run_series(
        configs,
        values,
        parameter_name=parameter_name,
        p=p,
        q=q,
        runs=runs,
        seed=seed,
        fresh_code_per_run=fresh_code_per_run,
        progress=progress,
        executor=executor,
        workers=workers,
        cache=cache,
        fastpath=fastpath,
        kernel=kernel,
        kernel_threads=kernel_threads,
        seed_scheme=seed_scheme,
        fleet=fleet,
        lease_ttl=lease_ttl,
        worker_id=worker_id,
        failure_policy=failure_policy,
        label=label,
    )


__all__ = ["simulate_grid", "sweep_parameter"]
