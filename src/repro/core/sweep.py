"""Grid sweeps over the Gilbert (p, q) plane and generic 1-D parameter sweeps.

``simulate_grid`` is the workhorse behind every 3-D figure and appendix
table of the paper: for every (p, q) point it runs ``runs`` independent
transmissions and aggregates them following the paper's rule (a point where
any run failed to decode is reported as not decodable).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.channel.gilbert import GilbertChannel, paper_grid
from repro.core.config import SimulationConfig
from repro.core.metrics import CellStats, GridResult, SeriesResult
from repro.core.simulator import Simulator
from repro.utils.rng import RandomState
from repro.utils.validation import validate_positive_int

ProgressCallback = Callable[[int, int], None]


def simulate_grid(
    config: SimulationConfig,
    p_values: Optional[Sequence[float]] = None,
    q_values: Optional[Sequence[float]] = None,
    *,
    runs: int = 10,
    seed: RandomState = 0,
    fresh_code_per_run: bool = False,
    progress: Optional[ProgressCallback] = None,
) -> GridResult:
    """Sweep the Gilbert (p, q) grid for one configuration.

    Parameters
    ----------
    config:
        The (code, tx model, k, ratio) configuration to evaluate.
    p_values, q_values:
        Grid axes (probabilities in [0, 1]); default to the paper's 14-value
        grid.
    runs:
        Independent transmissions per grid point (the paper uses 100).
    seed:
        Top-level seed; every (p, q, run) triple gets its own derived stream
        so results are reproducible and independent of iteration order.
    fresh_code_per_run:
        Rebuild the FEC code (i.e. draw a new LDGM parity-check matrix) for
        every run instead of encoding once and reusing it.  Slower, closer
        to averaging over code constructions.
    progress:
        Optional callback ``(done_points, total_points)``.
    """
    runs = validate_positive_int(runs, "runs")
    if p_values is None or q_values is None:
        default_p, default_q = paper_grid()
        p_values = default_p if p_values is None else p_values
        q_values = default_q if q_values is None else q_values
    p_values = np.asarray(list(p_values), dtype=float)
    q_values = np.asarray(list(q_values), dtype=float)

    base_seed = _as_seed_int(seed)
    tx_model = config.build_tx_model()
    shared_code = None
    if not fresh_code_per_run:
        shared_code = config.build_code(seed=np.random.default_rng(base_seed))

    shape = (p_values.size, q_values.size)
    mean_inefficiency = np.full(shape, np.nan)
    mean_received = np.full(shape, np.nan)
    failure_counts = np.zeros(shape, dtype=np.int64)

    total_points = p_values.size * q_values.size
    done = 0
    for i, p in enumerate(p_values):
        for j, q in enumerate(q_values):
            channel = GilbertChannel(float(p), float(q))
            stats = CellStats()
            for run in range(runs):
                run_rng = np.random.default_rng(
                    np.random.SeedSequence([base_seed, i, j, run])
                )
                if fresh_code_per_run:
                    code = config.build_code(seed=run_rng)
                else:
                    code = shared_code
                simulator = Simulator(code, tx_model, channel)
                stats.add(simulator.run(run_rng, nsent=config.nsent))
            mean_inefficiency[i, j] = stats.mean_inefficiency
            mean_received[i, j] = stats.mean_received_ratio
            failure_counts[i, j] = stats.failures
            done += 1
            if progress is not None:
                progress(done, total_points)

    return GridResult(
        p_values=p_values,
        q_values=q_values,
        mean_inefficiency=mean_inefficiency,
        mean_received_ratio=mean_received,
        failure_counts=failure_counts,
        runs=runs,
        label=config.display_label,
        metadata={
            "code": config.code,
            "tx_model": config.tx_model,
            "k": config.k,
            "expansion_ratio": config.expansion_ratio,
            "nsent": config.nsent,
            "seed": base_seed,
        },
    )


def sweep_parameter(
    make_config: Callable[[float], SimulationConfig],
    parameter_values: Sequence[float],
    *,
    parameter_name: str = "parameter",
    p: float = 0.0,
    q: float = 1.0,
    runs: int = 10,
    seed: RandomState = 0,
    label: str = "",
) -> SeriesResult:
    """Sweep an arbitrary scalar parameter at a fixed (p, q) point.

    Used for figure 14 (inefficiency vs. number of received source packets)
    and for the ablation benchmarks (e.g. left degree of the LDGM graph).

    Parameters
    ----------
    make_config:
        Callable mapping a parameter value to a :class:`SimulationConfig`.
    parameter_values:
        Values to sweep.
    p, q:
        Gilbert channel parameters shared by every point of the sweep.
    """
    runs = validate_positive_int(runs, "runs")
    base_seed = _as_seed_int(seed)
    values = np.asarray(list(parameter_values), dtype=float)
    means = np.full(values.size, np.nan)
    failures = np.zeros(values.size, dtype=np.int64)

    for index, value in enumerate(values):
        config = make_config(float(value))
        channel = GilbertChannel(p, q)
        tx_model = config.build_tx_model()
        code = config.build_code(seed=np.random.default_rng(base_seed + index))
        stats = CellStats()
        for run in range(runs):
            run_rng = np.random.default_rng(
                np.random.SeedSequence([base_seed, index, run])
            )
            simulator = Simulator(code, tx_model, channel)
            stats.add(simulator.run(run_rng, nsent=config.nsent))
        means[index] = stats.mean_inefficiency
        failures[index] = stats.failures

    return SeriesResult(
        parameter_name=parameter_name,
        parameter_values=values,
        mean_inefficiency=means,
        failure_counts=failures,
        runs=runs,
        label=label,
    )


def _as_seed_int(seed: RandomState) -> int:
    if seed is None:
        return 0
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    if isinstance(seed, np.random.SeedSequence):
        return int(seed.generate_state(1, dtype=np.uint64)[0])
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**31 - 1))
    raise TypeError(f"unsupported seed type {type(seed).__name__}")


__all__ = ["simulate_grid", "sweep_parameter"]
