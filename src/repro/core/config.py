"""Declarative description of one simulated configuration.

A :class:`SimulationConfig` names a FEC code, a transmission model and the
object/code dimensions; the simulator and the sweep functions instantiate
the actual objects from it.  Keeping the description declarative makes the
experiment presets (``repro.core.experiments``) and the benchmark harness
simple dictionaries of configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from repro.fec.base import FECCode
from repro.fec.registry import make_code, resolve_code_name
from repro.scheduling.base import TransmissionModel
from repro.scheduling.registry import make_tx_model, resolve_tx_model_name
from repro.utils.rng import RandomState
from repro.utils.validation import validate_expansion_ratio, validate_positive_int


@dataclass(frozen=True)
class SimulationConfig:
    """Everything needed to instantiate one (code, tx model) simulation.

    Attributes
    ----------
    code:
        Registered FEC code name (``"rse"``, ``"ldgm-staircase"``,
        ``"ldgm-triangle"``, ``"ldgm"``, ``"repetition"``).
    tx_model:
        Registered transmission-model name (``"tx_model_1"`` ...
        ``"tx_model_6"``, ``"rx_model_1"``).
    k:
        Number of source packets of the object.
    expansion_ratio:
        FEC expansion ratio ``n / k`` (the paper uses 1.5 and 2.5).
    nsent:
        Number of packets actually transmitted; ``None`` sends the full
        schedule (section 6.2 explains why one may want to reduce it).
    code_options / tx_options:
        Extra keyword arguments forwarded to the code / model factories
        (e.g. ``{"source_fraction": 0.2}`` for ``tx_model_6``).
    label:
        Optional display label used by the analysis helpers.
    """

    code: str = "ldgm-staircase"
    tx_model: str = "tx_model_2"
    k: int = 1000
    expansion_ratio: float = 2.5
    nsent: Optional[int] = None
    code_options: Dict[str, Any] = field(default_factory=dict)
    tx_options: Dict[str, Any] = field(default_factory=dict)
    label: Optional[str] = None

    def __post_init__(self) -> None:
        validate_positive_int(self.k, "k")
        validate_expansion_ratio(self.expansion_ratio)
        # Resolve names eagerly so typos fail at configuration time.
        resolve_code_name(self.code)
        resolve_tx_model_name(self.tx_model)
        if self.nsent is not None:
            validate_positive_int(self.nsent, "nsent")

    @property
    def n(self) -> int:
        """Total number of encoding packets implied by k and the ratio."""
        return int(round(self.k * self.expansion_ratio))

    @property
    def display_label(self) -> str:
        if self.label:
            return self.label
        return f"{self.code} / {self.tx_model} / ratio {self.expansion_ratio}"

    def build_code(self, seed: RandomState = None) -> FECCode:
        """Instantiate the FEC code described by this configuration."""
        return make_code(
            self.code,
            k=self.k,
            expansion_ratio=self.expansion_ratio,
            seed=seed,
            **self.code_options,
        )

    def build_tx_model(self) -> TransmissionModel:
        """Instantiate the transmission model described by this configuration."""
        return make_tx_model(self.tx_model, **self.tx_options)

    def with_updates(self, **changes: Any) -> "SimulationConfig":
        """Return a copy of the configuration with some fields replaced."""
        return replace(self, **changes)


__all__ = ["SimulationConfig"]
