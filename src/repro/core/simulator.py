"""Single-run simulator: scheduler -> channel -> incremental decoder.

One run reproduces what one receiver experiences during one transmission of
the object (figure 3 of the paper): the sender emits packets in the order
chosen by the transmission model, the channel erases some of them, and the
receiver feeds the surviving packets to the incremental decoder, stopping as
soon as the object is decodable.  The number of packets received at that
moment is the numerator of the inefficiency ratio.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.channel.base import LossModel
from repro.channel.bernoulli import PerfectChannel
from repro.channel.gilbert import GilbertChannel
from repro.core.config import SimulationConfig
from repro.core.metrics import RunResult, RunResultBatch
from repro.fec.base import FECCode
from repro.scheduling.base import TransmissionModel
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import validate_positive_int


class Simulator:
    """Simulate transmissions of one encoded object to independent receivers.

    The code instance (hence the LDGM parity-check matrix) is fixed for the
    lifetime of the simulator; randomness across runs comes from the
    scheduler and the channel, matching a sender that encodes once and
    transmits the same object many times / to many receivers.
    """

    def __init__(
        self,
        code: FECCode,
        tx_model: TransmissionModel,
        channel: Optional[LossModel] = None,
    ):
        self.code = code
        self.tx_model = tx_model
        self.channel = channel if channel is not None else PerfectChannel()
        self._schedule_validated = False

    def _make_schedule(self, rng: np.random.Generator) -> np.ndarray:
        """One transmission schedule; fully validated on the first call only.

        Schedules of later runs come from the same model and layout, so the
        per-run bounds check is redundant (and the decoders bounds-check
        every packet index anyway).
        """
        layout = self.code.layout
        schedule = self.tx_model.schedule(layout, rng)
        if self._schedule_validated:
            return np.asarray(schedule, dtype=np.int64)
        schedule = self.tx_model.validate_schedule(layout, schedule)
        self._schedule_validated = True
        return schedule

    def run(self, rng: RandomState = None, nsent: Optional[int] = None) -> RunResult:
        """Simulate one transmission and return its :class:`RunResult`.

        Parameters
        ----------
        rng:
            Seed or generator for this run (scheduler + channel randomness).
        nsent:
            Truncate the transmission to the first ``nsent`` scheduled
            packets (section 6.2); ``None`` sends the full schedule.
        """
        rng = ensure_rng(rng)
        schedule = self._make_schedule(rng)
        if nsent is not None:
            schedule = schedule[: validate_positive_int(nsent, "nsent")]

        # The incremental path is the *reference* the fast path is checked
        # against, so its channel sampling is pinned to the numpy kernel:
        # a compiled-backend bug must not be able to reproduce on both
        # sides of an equivalence gate (outputs are bit-identical either
        # way; channels without a kernelised loop ignore the selection).
        loss_mask = self.channel.loss_mask(schedule.size, rng, kernel="numpy")
        received = schedule[~loss_mask]

        decoder = self.code.new_symbolic_decoder()
        add_packet = decoder.add_packet
        n_necessary: Optional[int] = None
        count = 0
        for index in received:
            count += 1
            if add_packet(index):
                n_necessary = count
                break

        return RunResult(
            decoded=decoder.is_complete,
            n_necessary=n_necessary,
            n_received=int(received.size),
            n_sent=int(schedule.size),
            k=self.code.k,
            n=self.code.n,
        )

    def _batch_streams(self, runs: int, rng: RandomState, seed_scheme):
        """Resolve what :meth:`run_many`/:meth:`run_batch` should draw from.

        ``seed_scheme=None`` keeps the historical contract -- one shared
        generator consumed sequentially across the batch, regardless of any
        ``REPRO_SEED_SCHEME`` environment default.  An explicit scheme
        derives the batch's streams from the seed with an empty cell path,
        i.e. run ``r`` of the per-run scheme draws from
        ``SeedSequence([seed, r])``.  A ``Generator`` seed is collapsed
        through four 63-bit draws (not ``as_seed_int``'s single 31-bit
        one, whose narrow space risks whole-batch stream collisions).
        """
        if seed_scheme is None:
            return [ensure_rng(rng)] * runs
        from repro.seeds import get_scheme
        from repro.utils.rng import as_seed_int

        if isinstance(rng, np.random.Generator):
            entropy = [int(word) for word in rng.integers(0, 2**63 - 1, size=4)]
            base_seed = int(
                np.random.SeedSequence(entropy).generate_state(1, dtype=np.uint64)[0]
            )
        elif rng is None:
            # Fresh entropy, matching ``rng=None``'s meaning everywhere
            # else (as_seed_int would collapse None to the constant 0,
            # silently repeating the same "random" batch on every call).
            base_seed = int(
                np.random.SeedSequence().generate_state(1, dtype=np.uint64)[0]
            )
        else:
            base_seed = as_seed_int(rng)
        return get_scheme(seed_scheme).unit_streams(base_seed, (), 0, runs)

    def run_many(
        self,
        runs: int,
        rng: RandomState = None,
        nsent: Optional[int] = None,
        *,
        fastpath: bool = True,
        kernel: Optional[str] = None,
        kernel_threads=None,
        seed_scheme=None,
    ) -> list[RunResult]:
        """Simulate ``runs`` independent transmissions.

        With ``fastpath=True`` (the default) the whole batch is decoded by
        the vectorised :mod:`repro.fastpath` engine -- bit-identical to the
        incremental loop for any seed; ``fastpath=False`` keeps the
        per-packet reference path.  ``kernel`` selects the
        :mod:`repro.kernels` backend for the batch decode (name or backend
        instance; default: ``REPRO_KERNEL`` / auto); ``kernel_threads``
        the compiled kernels' row-parallel thread count (default:
        ``REPRO_KERNEL_THREADS`` / auto -- bit-identical at any value).
        ``seed_scheme`` optionally derives the batch's streams through a
        named :mod:`repro.seeds` scheme instead of consuming ``rng``
        sequentially; ``fastpath=False`` then decodes the scheme-defined
        front end with the incremental reference decoder (bit-identical
        to the fast path within each scheme).
        """
        if seed_scheme is not None:
            streams = self._batch_streams(runs, rng, seed_scheme)
            if fastpath:
                from repro.fastpath import simulate_batch

                return simulate_batch(
                    self.code,
                    self.tx_model,
                    self.channel,
                    streams,
                    nsent=nsent,
                    kernel=kernel,
                    kernel_threads=kernel_threads,
                )
            if streams.unit_rng is not None:
                # Unit-batching scheme: same scheme-defined front end as
                # the fast path, incremental reference decode.
                from repro.fastpath import decode_batch_incremental
                from repro.kernels import thread_count_context
                from repro.pipeline.synthesis import synthesize_runs_unit

                with thread_count_context(kernel_threads):
                    synthesis = synthesize_runs_unit(
                        self.code.layout,
                        self.tx_model,
                        self.channel,
                        streams.unit_rng,
                        streams.runs,
                        nsent=nsent,
                        kernel=kernel,
                    )
                return decode_batch_incremental(self.code, synthesis).to_results()
            return [
                self.run(run_rng, nsent=nsent) for run_rng in streams.run_rngs()
            ]
        rng = ensure_rng(rng)
        if fastpath:
            from repro.fastpath import simulate_batch

            return simulate_batch(
                self.code,
                self.tx_model,
                self.channel,
                [rng] * runs,
                nsent=nsent,
                kernel=kernel,
                kernel_threads=kernel_threads,
            )
        return [self.run(rng, nsent=nsent) for _ in range(runs)]

    def run_batch(
        self,
        runs: int,
        rng: RandomState = None,
        nsent: Optional[int] = None,
        *,
        kernel: Optional[str] = None,
        kernel_threads=None,
        seed_scheme=None,
    ) -> RunResultBatch:
        """Simulate ``runs`` independent transmissions, returning columns.

        The columnar face of :meth:`run_many`: the whole batch flows
        through the :mod:`repro.pipeline` run-synthesis pipeline and comes
        back as one :class:`~repro.core.metrics.RunResultBatch` (one array
        per metric) -- bit-identical to ``run_many(runs, rng, nsent)`` for
        any seed, without materialising per-run result objects.  An
        explicit ``seed_scheme`` derives the streams through
        :mod:`repro.seeds` instead (the ``"unit"`` scheme draws the whole
        batch's randomness as blocks from one counter-based generator).
        """
        from repro.fastpath import simulate_batch_columnar

        return simulate_batch_columnar(
            self.code,
            self.tx_model,
            self.channel,
            self._batch_streams(runs, rng, seed_scheme),
            nsent=nsent,
            kernel=kernel,
            kernel_threads=kernel_threads,
        )


def simulate_once(
    config: SimulationConfig,
    *,
    p: Optional[float] = None,
    q: Optional[float] = None,
    channel: Optional[LossModel] = None,
    seed: RandomState = None,
) -> RunResult:
    """Convenience helper: build everything from a config and run once.

    Either give Gilbert parameters ``p`` and ``q`` or a ready-made channel
    (a perfect channel is used if neither is supplied).

    >>> from repro.core import SimulationConfig, simulate_once
    >>> config = SimulationConfig(code="ldgm-staircase", tx_model="tx_model_2",
    ...                           k=200, expansion_ratio=2.5)
    >>> result = simulate_once(config, p=0.05, q=0.5, seed=7)
    >>> result.decoded
    True
    """
    if channel is not None and (p is not None or q is not None):
        raise ValueError("give either a channel or (p, q), not both")
    if (p is None) != (q is None):
        raise ValueError("p and q must be given together")
    rng = ensure_rng(seed)
    if channel is None:
        channel = GilbertChannel(p, q) if p is not None else PerfectChannel()
    code = config.build_code(seed=rng)
    tx_model = config.build_tx_model()
    simulator = Simulator(code, tx_model, channel)
    return simulator.run(rng, nsent=config.nsent)


__all__ = ["Simulator", "simulate_once"]
