"""Recommendation engine (section 6 of the paper).

Two situations are distinguished, exactly as in the paper:

* **Known channel** -- the Gilbert parameters (p, q) of the channel are
  known (measured or fitted from a trace).  Candidate (code, tx model,
  expansion ratio) tuples are simulated at that point and ranked by mean
  inefficiency ratio, discarding tuples for which any run failed to decode.
* **Unknown channel** -- no loss information is available.  The paper's
  conclusions are returned as static recommendations: LDGM Triangle with
  Tx_model_4 or LDGM Staircase with Tx_model_6 (the schemes least dependent
  on the loss distribution), and RSE with interleaving if an MDS code is
  required.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.channel.gilbert import GilbertChannel
from repro.core.config import SimulationConfig
from repro.core.metrics import CellStats
from repro.core.optimizer import NSentPlan, optimal_nsent
from repro.utils.rng import RandomState
from repro.utils.validation import validate_positive_int, validate_probability

#: Default candidate tuples evaluated for a known channel: the combinations
#: the paper singles out as worth considering (section 6.1).
DEFAULT_CANDIDATES: tuple[tuple[str, str], ...] = (
    ("ldgm-triangle", "tx_model_2"),
    ("ldgm-staircase", "tx_model_2"),
    ("ldgm-triangle", "tx_model_4"),
    ("ldgm-staircase", "tx_model_4"),
    ("ldgm-staircase", "tx_model_6"),
    ("rse", "tx_model_5"),
)


@dataclass(frozen=True)
class Recommendation:
    """One ranked (code, tx model, expansion ratio) recommendation."""

    code: str
    tx_model: str
    expansion_ratio: float
    mean_inefficiency: float
    failure_count: int
    runs: int
    nsent_plan: Optional[NSentPlan] = None
    rationale: str = ""

    @property
    def reliable(self) -> bool:
        """True when every simulated run decoded."""
        return self.failure_count == 0

    def describe(self) -> str:
        status = "reliable" if self.reliable else f"{self.failure_count}/{self.runs} runs failed"
        text = (
            f"{self.code} + {self.tx_model} (ratio {self.expansion_ratio}): "
            f"inefficiency {self.mean_inefficiency:.3f} ({status})"
        )
        if self.nsent_plan is not None:
            text += (
                f"; send {self.nsent_plan.nsent_with_margin} of "
                f"{self.nsent_plan.n} packets"
            )
        if self.rationale:
            text += f" -- {self.rationale}"
        return text


def recommend_for_channel(
    p: float,
    q: float,
    *,
    k: int = 1000,
    expansion_ratios: Sequence[float] = (1.5, 2.5),
    candidates: Sequence[tuple[str, str]] = DEFAULT_CANDIDATES,
    runs: int = 10,
    seed: RandomState = 0,
    margin_fraction: float = 0.10,
) -> list[Recommendation]:
    """Rank candidate tuples for a channel with known Gilbert parameters.

    Returns recommendations sorted by (reliability, mean inefficiency):
    tuples for which every run decoded come first, ordered by increasing
    inefficiency ratio; unreliable tuples follow.

    >>> recs = recommend_for_channel(0.01, 0.8, k=300, runs=3, seed=1)
    >>> recs[0].reliable
    True
    """
    p = validate_probability(p, "p")
    q = validate_probability(q, "q")
    k = validate_positive_int(k, "k")
    runs = validate_positive_int(runs, "runs")
    channel = GilbertChannel(p, q)

    recommendations: list[Recommendation] = []
    for ratio in expansion_ratios:
        for code_name, tx_name in candidates:
            tx_options = {"source_fraction": 0.2} if tx_name == "tx_model_6" else {}
            config = SimulationConfig(
                code=code_name,
                tx_model=tx_name,
                k=k,
                expansion_ratio=ratio,
                tx_options=tx_options,
            )
            # Imported here, not at module top: repro.core <-> repro.fastpath
            # would otherwise cycle (same pattern as Simulator.run_many).
            from repro.fastpath import simulate_batch_columnar

            code = config.build_code(seed=np.random.default_rng(_seed_int(seed)))
            tx_model = config.build_tx_model()
            candidate_salt = _stable_salt(f"{code_name}/{tx_name}")
            # One batched pipeline pass per candidate (each run keeps its
            # own generator, so this is bit-identical to per-run
            # Simulator.run calls), aggregated columnar.
            stats = CellStats()
            stats.add_batch(
                simulate_batch_columnar(
                    code,
                    tx_model,
                    channel,
                    [
                        np.random.default_rng(
                            np.random.SeedSequence(
                                [_seed_int(seed), candidate_salt, int(ratio * 10), run]
                            )
                        )
                        for run in range(runs)
                    ],
                    nsent=config.nsent,
                )
            )
            mean_inef = stats.mean_inefficiency_of_successes
            plan = None
            if stats.all_decoded and np.isfinite(mean_inef):
                plan = optimal_nsent(
                    k,
                    mean_inef,
                    channel.global_loss_probability,
                    expansion_ratio=ratio,
                    margin_fraction=margin_fraction,
                )
            recommendations.append(
                Recommendation(
                    code=code_name,
                    tx_model=tx_name,
                    expansion_ratio=float(ratio),
                    mean_inefficiency=float(mean_inef),
                    failure_count=stats.failures,
                    runs=runs,
                    nsent_plan=plan,
                )
            )

    def sort_key(rec: Recommendation) -> tuple:
        inefficiency = rec.mean_inefficiency if np.isfinite(rec.mean_inefficiency) else np.inf
        return (not rec.reliable, inefficiency, rec.expansion_ratio)

    recommendations.sort(key=sort_key)
    return recommendations


def universal_recommendations() -> list[Recommendation]:
    """The paper's static recommendations when the channel is unknown."""
    return [
        Recommendation(
            code="ldgm-triangle",
            tx_model="tx_model_4",
            expansion_ratio=2.5,
            mean_inefficiency=float("nan"),
            failure_count=0,
            runs=0,
            rationale=(
                "least dependent on the loss distribution; preferred when very "
                "high loss rates are possible"
            ),
        ),
        Recommendation(
            code="ldgm-staircase",
            tx_model="tx_model_6",
            expansion_ratio=2.5,
            mean_inefficiency=float("nan"),
            failure_count=0,
            runs=0,
            rationale="constant performance across loss patterns (section 4.8)",
        ),
        Recommendation(
            code="rse",
            tx_model="tx_model_5",
            expansion_ratio=2.5,
            mean_inefficiency=float("nan"),
            failure_count=0,
            runs=0,
            rationale=(
                "interleaving is mandatory for RSE; performance differs across "
                "receivers and degrades at medium-to-high loss rates"
            ),
        ),
    ]


def _stable_salt(text: str) -> int:
    """Deterministic small integer derived from a string (hash() is salted)."""
    return sum(ord(char) * (index + 1) for index, char in enumerate(text)) & 0xFFFFFFFF


def _seed_int(seed: RandomState) -> int:
    if seed is None:
        return 0
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**31 - 1))
    if isinstance(seed, np.random.SeedSequence):
        return int(seed.generate_state(1, dtype=np.uint64)[0])
    raise TypeError(f"unsupported seed type {type(seed).__name__}")


__all__ = [
    "Recommendation",
    "recommend_for_channel",
    "universal_recommendations",
    "DEFAULT_CANDIDATES",
]
