"""Optimisation of the number of transmitted packets (section 6.2).

Once the inefficiency ratio of a (code, tx model, ratio) tuple is known for
a channel, the sender can stop transmitting after

    n_sent = n_necessary_for_decoding / (1 - p_global)

packets (equation 3 of the paper): the receiver then gets just enough
packets to decode, instead of listening to the full ``n``-packet
transmission.  The worked example of section 6.2.1 (a 50 MB object sent
from Amherst to Los Angeles) is reproduced by
:func:`worked_example_section_6_2_1`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.channel.gilbert import GilbertChannel
from repro.utils.validation import validate_positive_int, validate_probability


@dataclass(frozen=True)
class NSentPlan:
    """Result of an ``n_sent`` optimisation."""

    k: int
    n: int
    nsent: int
    nsent_with_margin: int
    inefficiency_ratio: float
    global_loss_probability: float

    @property
    def saved_packets(self) -> int:
        """Packets that no longer need to be transmitted."""
        return self.n - self.nsent_with_margin

    @property
    def saved_fraction(self) -> float:
        return self.saved_packets / self.n


def optimal_nsent(
    k: int,
    inefficiency_ratio: float,
    p_global: float,
    *,
    expansion_ratio: float,
    margin_fraction: float = 0.10,
) -> NSentPlan:
    """Compute the optimal number of packets to send (equation 3).

    Parameters
    ----------
    k:
        Number of source packets.
    inefficiency_ratio:
        Measured inefficiency ratio of the chosen (code, tx model) for this
        channel.
    p_global:
        Global loss probability of the channel (``p / (p + q)``).
    expansion_ratio:
        The code's ``n / k`` -- an upper bound on what can be sent.
    margin_fraction:
        Safety margin added on top of the theoretical optimum (the paper
        rounds 51.24 MB up to 55 000 packets, about 10%).
    """
    k = validate_positive_int(k, "k")
    p_global = validate_probability(p_global, "p_global")
    if inefficiency_ratio < 1.0:
        raise ValueError(f"inefficiency_ratio must be >= 1, got {inefficiency_ratio}")
    if p_global >= 1.0:
        raise ValueError("p_global = 1 means nothing is ever received")
    n = int(round(k * expansion_ratio))
    n_necessary = inefficiency_ratio * k
    nsent = math.ceil(n_necessary / (1.0 - p_global))
    nsent_with_margin = min(n, math.ceil(nsent * (1.0 + margin_fraction)))
    nsent = min(n, nsent)
    return NSentPlan(
        k=k,
        n=n,
        nsent=nsent,
        nsent_with_margin=nsent_with_margin,
        inefficiency_ratio=inefficiency_ratio,
        global_loss_probability=p_global,
    )


def optimal_nsent_for_object(
    object_size_bytes: int,
    packet_payload_bytes: int,
    inefficiency_ratio: float,
    p: float,
    q: float,
    *,
    expansion_ratio: float,
    margin_fraction: float = 0.10,
) -> NSentPlan:
    """Same as :func:`optimal_nsent` but starting from object/packet sizes."""
    object_size_bytes = validate_positive_int(object_size_bytes, "object_size_bytes")
    packet_payload_bytes = validate_positive_int(packet_payload_bytes, "packet_payload_bytes")
    k = math.ceil(object_size_bytes / packet_payload_bytes)
    channel = GilbertChannel(p, q)
    return optimal_nsent(
        k,
        inefficiency_ratio,
        channel.global_loss_probability,
        expansion_ratio=expansion_ratio,
        margin_fraction=margin_fraction,
    )


def worked_example_section_6_2_1() -> NSentPlan:
    """The paper's worked example (section 6.2.1).

    A 50 MB object (50 * 10^6 bytes), 1024-byte packets, the Amherst-to-
    Los-Angeles channel measured by Yajnik et al. (p = 0.0109, q = 0.7915,
    p_global = 0.0135), LDGM Staircase with Tx_model_2 at ratio 1.5
    (inef_ratio = 1.011).  The paper finds n_sent = ~50 041 packets, rounded
    up to 55 000, versus n = ~73 243 packets if everything were sent.
    """
    return optimal_nsent_for_object(
        object_size_bytes=50 * 10**6,
        packet_payload_bytes=1024,
        inefficiency_ratio=1.011,
        p=0.0109,
        q=0.7915,
        expansion_ratio=1.5,
        margin_fraction=0.099,
    )


__all__ = [
    "NSentPlan",
    "optimal_nsent",
    "optimal_nsent_for_object",
    "worked_example_section_6_2_1",
]
