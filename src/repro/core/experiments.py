"""Declarative presets for every figure and table of the paper.

Each :class:`ExperimentSpec` records which configurations a figure/table
compares and which grid it sweeps; :func:`run_experiment` executes it at one
of the predefined scales.  The benchmark harness (``benchmarks/``) is a thin
wrapper around these presets, and ``EXPERIMENTS.md`` records how the
reproduced shapes compare with the paper.

Scales
------
The paper uses k = 20000 packets, 100 runs per (p, q) point and a 14 x 14
grid -- roughly 2 million simulated transmissions per figure, which the
authors ran with a C codec.  Pure Python cannot do that in a benchmark run,
so three scales are provided:

* ``tiny``  -- for unit/integration tests (k = 200, 3 runs, 4 x 4 grid).
* ``small`` -- default for the benchmark harness (k = 2000, 4 runs,
  7 x 7 grid); preserves the qualitative shapes, although RSE's
  coupon-collector penalty is smaller than at k = 20000 because the object
  spans fewer blocks.
* ``paper`` -- the original parameters, for users who want to let it run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

from repro.channel.gilbert import PAPER_GRID_PERCENT
from repro.core.config import SimulationConfig
from repro.core.metrics import GridResult
from repro.core.sweep import simulate_grid
from repro.runner.engine import CacheSpec, ExecutorSpec, ProgressCallback
from repro.utils.rng import RandomState

#: Callback invoked with the 1-based index of the configuration about to be
#: simulated; returns the per-grid progress callback for it (or ``None``).
ProgressFactory = Callable[[int], Optional[ProgressCallback]]

#: Reduced (p, q) axis used by the "small" scale (percent).
SMALL_GRID_PERCENT: tuple[int, ...] = (0, 1, 5, 10, 20, 40, 70)

#: Reduced (p, q) axis used by the "tiny" scale (percent).
TINY_GRID_PERCENT: tuple[int, ...] = (0, 5, 20, 50)


@dataclass(frozen=True)
class ExperimentScale:
    """Size parameters of an experiment run."""

    name: str
    k: int
    runs: int
    grid_percent: tuple[int, ...]

    @property
    def p_values(self) -> list[float]:
        return [value / 100.0 for value in self.grid_percent]

    @property
    def q_values(self) -> list[float]:
        return [value / 100.0 for value in self.grid_percent]


SCALES: Dict[str, ExperimentScale] = {
    "tiny": ExperimentScale(name="tiny", k=200, runs=3, grid_percent=TINY_GRID_PERCENT),
    "small": ExperimentScale(name="small", k=2000, runs=4, grid_percent=SMALL_GRID_PERCENT),
    "paper": ExperimentScale(name="paper", k=20000, runs=100, grid_percent=PAPER_GRID_PERCENT),
}


@dataclass(frozen=True)
class ExperimentSpec:
    """One figure/table of the paper expressed as a set of configurations.

    Attributes
    ----------
    experiment_id:
        Short identifier, e.g. ``"fig09"`` or ``"table5"``.
    title:
        Human-readable description.
    paper_reference:
        Figure/table number in the paper.
    configs:
        The configurations compared by the figure.  ``k`` in these configs
        is a placeholder; :func:`run_experiment` replaces it with the value
        of the chosen scale.
    notes:
        Free-form remarks (e.g. what shape to expect).
    """

    experiment_id: str
    title: str
    paper_reference: str
    configs: tuple[SimulationConfig, ...]
    notes: str = ""

    def scaled_configs(self, scale: ExperimentScale) -> list[SimulationConfig]:
        """The experiment's configurations with ``k`` set for ``scale``."""
        return [config.with_updates(k=scale.k) for config in self.configs]


def _config(code: str, tx_model: str, ratio: float, **kwargs) -> SimulationConfig:
    label = f"{code} / {tx_model} / ratio {ratio}"
    return SimulationConfig(
        code=code,
        tx_model=tx_model,
        k=1000,  # placeholder, replaced per scale
        expansion_ratio=ratio,
        label=label,
        **kwargs,
    )


def _tx_model_experiment(
    experiment_id: str,
    title: str,
    paper_reference: str,
    tx_model: str,
    codes: Sequence[str],
    ratios: Sequence[float],
    notes: str = "",
    **kwargs,
) -> ExperimentSpec:
    configs = tuple(
        _config(code, tx_model, ratio, **kwargs) for ratio in ratios for code in codes
    )
    return ExperimentSpec(
        experiment_id=experiment_id,
        title=title,
        paper_reference=paper_reference,
        configs=configs,
        notes=notes,
    )


ALL_CODES = ("rse", "ldgm-staircase", "ldgm-triangle")
BOTH_RATIOS = (1.5, 2.5)

EXPERIMENTS: Dict[str, ExperimentSpec] = {}


def _register(spec: ExperimentSpec) -> None:
    EXPERIMENTS[spec.experiment_id] = spec


_register(
    ExperimentSpec(
        experiment_id="fig07",
        title="No FEC, two repetitions of every packet, random order",
        paper_reference="Figure 7",
        configs=(_config("repetition", "tx_model_4", 2.0),),
        notes="Decoding only succeeds for p = 0; inefficiency is then close to 2.",
    )
)
_register(
    _tx_model_experiment(
        "fig08",
        "Tx_model_1: source sequentially, then parity sequentially",
        "Figure 8",
        "tx_model_1",
        ("rse", "ldgm-triangle"),
        BOTH_RATIOS,
        notes="Inefficiency tracks n_received/k: receivers wait for the end of the transmission.",
    )
)
_register(
    _tx_model_experiment(
        "fig09",
        "Tx_model_2: source sequentially, then parity randomly",
        "Figure 9 / Tables 1-4",
        "tx_model_2",
        ALL_CODES,
        BOTH_RATIOS,
        notes="LDGM codes outperform RSE; Staircase shines at low loss, Triangle elsewhere.",
    )
)
_register(
    _tx_model_experiment(
        "fig10",
        "Tx_model_3: parity sequentially, then source randomly",
        "Figure 10",
        "tx_model_3",
        ALL_CODES,
        BOTH_RATIOS,
        notes="At p = 0 the inefficiency is about the expansion ratio minus the code rate.",
    )
)
_register(
    _tx_model_experiment(
        "fig11",
        "Tx_model_4: everything in random order",
        "Figure 11 / Tables 5-6",
        "tx_model_4",
        ALL_CODES,
        BOTH_RATIOS,
        notes="Performance nearly independent of the loss pattern; LDGM Triangle best.",
    )
)
_register(
    _tx_model_experiment(
        "fig12",
        "Tx_model_5: interleaving",
        "Figure 12 / Tables 7-8",
        "tx_model_5",
        ("rse",),
        BOTH_RATIOS,
        notes="Interleaving is the best scheme for RSE, for every loss pattern.",
    )
)
_register(
    _tx_model_experiment(
        "fig13",
        "Tx_model_6: 20% of the source packets plus all parity packets, random order",
        "Figure 13 / Table 9",
        "tx_model_6",
        ALL_CODES,
        (2.5,),
        notes="LDGM Staircase outperforms Triangle here (unusual).",
        tx_options={"source_fraction": 0.2},
    )
)
_register(
    ExperimentSpec(
        experiment_id="fig14",
        title="Rx_model_1: receive a few source packets, then parity randomly",
        paper_reference="Figure 14",
        configs=(_config("ldgm-staircase", "rx_model_1", 2.5, tx_options={"num_source_packets": 1}),),
        notes="Swept over the number of received source packets; optimum around 2-5% of k.",
    )
)
_register(
    _tx_model_experiment(
        "fig15",
        "Per-transmission-model comparison at the Amherst-Los Angeles channel",
        "Figure 15",
        "tx_model_2",
        ALL_CODES,
        BOTH_RATIOS,
        notes="The bench runs every tx model at (p, q) = (0.0109, 0.7915).",
    )
)

# Appendix tables map to the corresponding figures' sweeps.
TABLE_TO_EXPERIMENT: Dict[str, tuple[str, str, float]] = {
    "table1": ("fig09", "ldgm-triangle", 2.5),
    "table2": ("fig09", "ldgm-staircase", 2.5),
    "table3": ("fig09", "ldgm-triangle", 1.5),
    "table4": ("fig09", "ldgm-staircase", 1.5),
    "table5": ("fig11", "ldgm-triangle", 2.5),
    "table6": ("fig11", "ldgm-triangle", 1.5),
    "table7": ("fig12", "rse", 2.5),
    "table8": ("fig12", "rse", 1.5),
    "table9": ("fig13", "ldgm-staircase", 2.5),
}


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment preset (raises ``KeyError`` with guidance)."""
    key = experiment_id.lower()
    if key in TABLE_TO_EXPERIMENT:
        key = TABLE_TO_EXPERIMENT[key][0]
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{', '.join(sorted(EXPERIMENTS))} and tables "
            f"{', '.join(sorted(TABLE_TO_EXPERIMENT))}"
        )
    return EXPERIMENTS[key]


def run_experiment(
    experiment_id: str,
    scale: str | ExperimentScale = "small",
    *,
    seed: RandomState = 0,
    runs: Optional[int] = None,
    executor: ExecutorSpec = None,
    workers: Optional[int] = None,
    cache: CacheSpec = None,
    fastpath: bool = True,
    kernel: Optional[str] = None,
    kernel_threads=None,
    seed_scheme=None,
    fleet: bool = False,
    lease_ttl: Optional[float] = None,
    worker_id: Optional[str] = None,
    failure_policy=None,
    adaptive=None,
    progress_factory: Optional[ProgressFactory] = None,
) -> Dict[str, GridResult]:
    """Run every configuration of an experiment and return grids by label.

    Parameters
    ----------
    experiment_id:
        Experiment or table identifier (``"fig09"``, ``"table5"``, ...).
    scale:
        One of ``"tiny"``, ``"small"``, ``"paper"`` or a custom
        :class:`ExperimentScale`.
    runs:
        Override the scale's number of runs per grid point.
    executor, workers, cache, seed_scheme:
        Execution, caching and seeding knobs forwarded to
        :func:`repro.core.sweep.simulate_grid`; by default the serial
        executor is used unless ``workers > 1`` selects the process pool,
        and the seed scheme resolves ``REPRO_SEED_SCHEME`` / ``"per-run"``.
    fleet, lease_ttl, worker_id:
        Cooperative fleet-execution knobs (see
        :func:`repro.core.sweep.simulate_grid`): with ``fleet=True``,
        processes sharing the ``cache`` store split each grid under TTL
        leases and all return the complete, bit-identical result.
    failure_policy:
        Optional :class:`repro.resilience.FailurePolicy` forwarded to
        every sweep: retries with deterministic backoff, per-unit
        timeouts, and skip/quarantine handling of units that exhaust
        their attempts.
    adaptive:
        ``None`` (default) runs fixed sweeps; an
        :class:`repro.adaptive.AdaptiveConfig` (or ``True`` / a kwargs
        dict) switches every grid to the sequential-stopping controller,
        with ``runs`` as the per-cell budget.
    progress_factory:
        Called with the 1-based index of each configuration before its
        sweep; returns that sweep's ``(done, total)`` progress callback.
    """
    spec = get_experiment(experiment_id)
    if isinstance(scale, str):
        if scale not in SCALES:
            raise KeyError(f"unknown scale {scale!r}; available: {', '.join(SCALES)}")
        scale = SCALES[scale]
    results: Dict[str, GridResult] = {}
    for index, config in enumerate(spec.scaled_configs(scale), start=1):
        progress = progress_factory(index) if progress_factory is not None else None
        grid = simulate_grid(
            config,
            scale.p_values,
            scale.q_values,
            runs=runs if runs is not None else scale.runs,
            seed=seed,
            progress=progress,
            executor=executor,
            workers=workers,
            cache=cache,
            fastpath=fastpath,
            kernel=kernel,
            kernel_threads=kernel_threads,
            seed_scheme=seed_scheme,
            fleet=fleet,
            lease_ttl=lease_ttl,
            worker_id=worker_id,
            failure_policy=failure_policy,
            adaptive=adaptive,
        )
        results[config.display_label] = grid
    return results


__all__ = [
    "ExperimentScale",
    "ExperimentSpec",
    "SCALES",
    "EXPERIMENTS",
    "TABLE_TO_EXPERIMENT",
    "get_experiment",
    "run_experiment",
]
