"""Result containers and the inefficiency-ratio metric.

The paper's central metric is the *inefficiency ratio*

    inef_ratio = n_necessary_for_decoding / k

i.e. the number of packets a receiver has received at the moment decoding
completes, divided by the number of source packets (1.0 is ideal).  The
3-D figures additionally show ``n_received / k`` -- the total number of
packets the receiver would get if it listened to the whole transmission --
which upper-bounds the inefficiency ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

#: ``n_necessary`` sentinel in columnar result arrays for runs that never
#: decoded (same value as :data:`repro.kernels.NOT_DECODED`; duplicated
#: here so the metrics layer needs no kernel import).
NOT_DECODED = -1


@dataclass(frozen=True)
class RunResult:
    """Outcome of a single simulated transmission to one receiver.

    Attributes
    ----------
    decoded:
        Whether the receiver could rebuild the whole object.
    n_necessary:
        Number of packets received when decoding completed (``None`` when
        decoding failed).
    n_received:
        Total number of packets the receiver got over the whole transmission.
    n_sent:
        Number of packets actually transmitted.
    k, n:
        Code dimensions for this run.
    """

    decoded: bool
    n_necessary: Optional[int]
    n_received: int
    n_sent: int
    k: int
    n: int

    @property
    def inefficiency_ratio(self) -> float:
        """``n_necessary / k`` (NaN when decoding failed)."""
        if not self.decoded or self.n_necessary is None:
            return float("nan")
        return self.n_necessary / self.k

    @property
    def received_ratio(self) -> float:
        """``n_received / k`` (the upper bound plotted in the paper)."""
        return self.n_received / self.k

    @property
    def loss_fraction(self) -> float:
        """Fraction of transmitted packets that were lost."""
        if self.n_sent == 0:
            return 0.0
        return 1.0 - self.n_received / self.n_sent

    @property
    def excess_packets(self) -> Optional[int]:
        """Packets received after decoding already completed."""
        if not self.decoded or self.n_necessary is None:
            return None
        return self.n_received - self.n_necessary


@dataclass(frozen=True)
class RunResultBatch:
    """Columnar outcomes of a whole batch of runs (one array per field).

    The batched pipeline assembles this directly from arrays -- no per-run
    :class:`RunResult` objects on the hot path.  The scalar view is still
    available through :meth:`to_results` (bit-identical, for callers that
    want the historical list-of-results API), and per-run batches convert
    the other way with :meth:`from_results`.

    Attributes
    ----------
    decoded:
        Boolean array, one entry per run.
    n_necessary:
        ``int64`` array: 1-based arrival position of the packet completing
        decoding, or :data:`NOT_DECODED` (-1) where the run never decoded.
    n_received, n_sent:
        ``int64`` arrays of per-run packet counts.
    k, n:
        Code dimensions shared by every run of the batch.
    """

    decoded: np.ndarray
    n_necessary: np.ndarray
    n_received: np.ndarray
    n_sent: np.ndarray
    k: int
    n: int

    @property
    def runs(self) -> int:
        return int(self.decoded.size)

    @property
    def failures(self) -> int:
        """Number of runs that never decoded."""
        return int(np.count_nonzero(~self.decoded))

    def received_ratios(self) -> np.ndarray:
        """``n_received / k`` per run (every run, in run order)."""
        return self.n_received / self.k

    def inefficiency_ratios(self) -> np.ndarray:
        """``n_necessary / k`` over the *decoded* runs only, in run order.

        Matches what :class:`CellStats` collects: failed runs contribute
        nothing (their mean is defined NaN by the paper's rule).
        """
        return self.n_necessary[self.decoded] / self.k

    def to_results(self) -> List[RunResult]:
        """Expand into the historical per-run result list (bit-identical)."""
        return [
            RunResult(
                decoded=bool(self.decoded[run]),
                n_necessary=(
                    int(self.n_necessary[run])
                    if self.n_necessary[run] != NOT_DECODED
                    else None
                ),
                n_received=int(self.n_received[run]),
                n_sent=int(self.n_sent[run]),
                k=self.k,
                n=self.n,
            )
            for run in range(self.runs)
        ]

    @classmethod
    def from_results(cls, results: Sequence[RunResult]) -> "RunResultBatch":
        """Stack per-run results into columns (the reference-path adapter)."""
        runs = len(results)
        decoded = np.fromiter(
            (result.decoded for result in results), dtype=bool, count=runs
        )
        n_necessary = np.fromiter(
            (
                result.n_necessary if result.n_necessary is not None else NOT_DECODED
                for result in results
            ),
            dtype=np.int64,
            count=runs,
        )
        n_received = np.fromiter(
            (result.n_received for result in results), dtype=np.int64, count=runs
        )
        n_sent = np.fromiter(
            (result.n_sent for result in results), dtype=np.int64, count=runs
        )
        k = results[0].k if results else 0
        n = results[0].n if results else 0
        return cls(
            decoded=decoded,
            n_necessary=n_necessary,
            n_received=n_received,
            n_sent=n_sent,
            k=k,
            n=n,
        )

    @classmethod
    def concatenate(cls, batches: Sequence["RunResultBatch"]) -> "RunResultBatch":
        """Stack batches of the same code dimensions, preserving run order."""
        if not batches:
            empty = np.zeros(0, dtype=np.int64)
            return cls(
                decoded=np.zeros(0, dtype=bool),
                n_necessary=empty,
                n_received=empty.copy(),
                n_sent=empty.copy(),
                k=0,
                n=0,
            )
        dimensions = {(batch.k, batch.n) for batch in batches}
        if len(dimensions) != 1:
            raise ValueError(
                f"cannot concatenate batches of different code dimensions: "
                f"{sorted(dimensions)}"
            )
        return cls(
            decoded=np.concatenate([batch.decoded for batch in batches]),
            n_necessary=np.concatenate([batch.n_necessary for batch in batches]),
            n_received=np.concatenate([batch.n_received for batch in batches]),
            n_sent=np.concatenate([batch.n_sent for batch in batches]),
            k=batches[0].k,
            n=batches[0].n,
        )


@dataclass
class CellStats:
    """Aggregate of the runs at a single (p, q) grid point.

    Besides the raw ratio lists (kept for the bit-identity aggregation
    rule), the stats maintain *streaming* Welford accumulators over the
    inefficiency ratios of the decoded runs, so ``count`` / ``variance``
    / ``stderr`` and the confidence intervals the adaptive stopping rule
    needs are O(1) reads no matter how many runs were added.  Single
    results update the accumulators run by run (Welford); batches merge
    in one step (Chan et al.'s parallel combination), which is what
    keeps ``add_batch`` columnar.
    """

    runs: int = 0
    failures: int = 0
    inefficiency_ratios: list[float] = field(default_factory=list)
    received_ratios: list[float] = field(default_factory=list)
    # Welford accumulators over the decoded runs' inefficiency ratios.
    # Excluded from equality: the batch (Chan) and per-run (Welford)
    # update orders agree only to rounding, and the raw ratio lists
    # above already define the cell's identity exactly.
    _ineff_count: int = field(default=0, compare=False, repr=False)
    _ineff_mean: float = field(default=0.0, compare=False, repr=False)
    _ineff_m2: float = field(default=0.0, compare=False, repr=False)

    def _stream_one(self, value: float) -> None:
        self._ineff_count += 1
        delta = value - self._ineff_mean
        self._ineff_mean += delta / self._ineff_count
        self._ineff_m2 += delta * (value - self._ineff_mean)

    def _stream_many(self, values: Sequence[float]) -> None:
        count = len(values)
        if count == 0:
            return
        if count == 1:
            self._stream_one(float(values[0]))
            return
        batch = np.asarray(values, dtype=float)
        batch_mean = float(batch.mean())
        batch_m2 = float(np.square(batch - batch_mean).sum())
        delta = batch_mean - self._ineff_mean
        total = self._ineff_count + count
        self._ineff_mean += delta * count / total
        self._ineff_m2 += batch_m2 + delta * delta * self._ineff_count * count / total
        self._ineff_count = total

    def add(self, result: RunResult) -> None:
        self.runs += 1
        self.received_ratios.append(result.received_ratio)
        if result.decoded:
            ratio = result.inefficiency_ratio
            self.inefficiency_ratios.append(ratio)
            self._stream_one(ratio)
        else:
            self.failures += 1

    def add_batch(self, batch: RunResultBatch) -> None:
        """Columnar bulk :meth:`add`: one call per work unit, not per run."""
        ratios = batch.inefficiency_ratios().tolist()
        self.runs += batch.runs
        self.failures += batch.failures
        self.received_ratios.extend(batch.received_ratios().tolist())
        self.inefficiency_ratios.extend(ratios)
        self._stream_many(ratios)

    def add_ratios(
        self,
        inefficiency_ratios: Sequence[float],
        received_ratios: Sequence[float],
        failures: int,
    ) -> None:
        """Bulk add from pre-computed ratio columns (work-unit results).

        ``inefficiency_ratios`` covers the decoded runs only and
        ``received_ratios`` every run, matching
        :class:`repro.runner.units.UnitResult` -- this is how the
        adaptive controller folds unit results in without a kernel or
        runner import in this module.
        """
        self.runs += len(received_ratios)
        self.failures += failures
        self.received_ratios.extend(float(r) for r in received_ratios)
        ratios = [float(r) for r in inefficiency_ratios]
        self.inefficiency_ratios.extend(ratios)
        self._stream_many(ratios)

    @property
    def count(self) -> int:
        """Total runs observed (decoded or not)."""
        return self.runs

    @property
    def decoded(self) -> int:
        """Number of runs that decoded."""
        return self.runs - self.failures

    @property
    def decode_probability(self) -> float:
        """Empirical decode probability (NaN before any run)."""
        if self.runs == 0:
            return float("nan")
        return (self.runs - self.failures) / self.runs

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1) of the decoded runs' inefficiency ratios."""
        if self._ineff_count < 2:
            return float("nan")
        return self._ineff_m2 / (self._ineff_count - 1)

    @property
    def stderr(self) -> float:
        """Standard error of the mean inefficiency over decoded runs."""
        variance = self.variance
        if not np.isfinite(variance):
            return float("nan")
        return float(np.sqrt(variance / self._ineff_count))

    def decode_ci(self, confidence: float = 0.95) -> tuple[float, float]:
        """Wilson score interval on the decode probability."""
        from repro.utils.stats import wilson_interval

        return wilson_interval(self.runs - self.failures, self.runs, confidence)

    def inefficiency_ci_halfwidth(self, confidence: float = 0.95) -> float:
        """Student-t half-width on the mean inefficiency of decoded runs."""
        from repro.utils.stats import mean_interval_halfwidth

        return mean_interval_halfwidth(self._ineff_count, self.variance, confidence)

    @property
    def all_decoded(self) -> bool:
        return self.failures == 0 and self.runs > 0

    @property
    def mean_inefficiency(self) -> float:
        """Mean inefficiency ratio, NaN if *any* run failed (paper's rule)."""
        if not self.all_decoded:
            return float("nan")
        return float(np.mean(self.inefficiency_ratios))

    @property
    def mean_inefficiency_of_successes(self) -> float:
        """Mean over the successful runs only (useful for diagnostics)."""
        if not self.inefficiency_ratios:
            return float("nan")
        return float(np.mean(self.inefficiency_ratios))

    @property
    def mean_received_ratio(self) -> float:
        if not self.received_ratios:
            return float("nan")
        return float(np.mean(self.received_ratios))


@dataclass
class GridResult:
    """Result of a full (p, q) grid sweep for one configuration.

    The paper's plotting rule is followed: a grid point where at least one
    of the runs failed to decode has ``NaN`` mean inefficiency (no point is
    plotted / a "-" appears in the appendix tables).
    """

    p_values: np.ndarray
    q_values: np.ndarray
    mean_inefficiency: np.ndarray
    mean_received_ratio: np.ndarray
    failure_counts: np.ndarray
    runs: int
    label: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.p_values = np.asarray(self.p_values, dtype=float)
        self.q_values = np.asarray(self.q_values, dtype=float)
        expected = (self.p_values.size, self.q_values.size)
        for name in ("mean_inefficiency", "mean_received_ratio", "failure_counts"):
            array = np.asarray(getattr(self, name))
            if array.shape != expected:
                raise ValueError(
                    f"{name} has shape {array.shape}, expected {expected}"
                )
            setattr(self, name, array)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.p_values.size, self.q_values.size)

    @property
    def decodable_mask(self) -> np.ndarray:
        """Boolean matrix: True where every run decoded.

        A cell that executed no runs at all (``--on-error skip`` dropped
        its only unit) has zero recorded failures but a NaN mean, so the
        finite-mean check keeps empty cells out of the decodable region
        instead of letting their NaN poison the aggregates below.
        """
        return (self.failure_counts == 0) & np.isfinite(self.mean_inefficiency)

    @property
    def coverage(self) -> float:
        """Fraction of grid points where every run decoded."""
        return float(np.count_nonzero(self.decodable_mask)) / self.decodable_mask.size

    def value_at(self, p: float, q: float) -> float:
        """Mean inefficiency at the grid point closest to (p, q)."""
        i = int(np.argmin(np.abs(self.p_values - p)))
        j = int(np.argmin(np.abs(self.q_values - q)))
        return float(self.mean_inefficiency[i, j])

    def min_inefficiency(self) -> float:
        """Smallest mean inefficiency over the decodable region."""
        values = self.mean_inefficiency[self.decodable_mask]
        return float(values.min()) if values.size else float("nan")

    def max_inefficiency(self) -> float:
        """Largest mean inefficiency over the decodable region."""
        values = self.mean_inefficiency[self.decodable_mask]
        return float(values.max()) if values.size else float("nan")

    def mean_over_decodable(self) -> float:
        """Average mean inefficiency over the decodable region."""
        values = self.mean_inefficiency[self.decodable_mask]
        return float(values.mean()) if values.size else float("nan")


@dataclass(frozen=True)
class SeriesResult:
    """A 1-D sweep (e.g. figure 14: inefficiency vs. received source packets)."""

    parameter_name: str
    parameter_values: np.ndarray
    mean_inefficiency: np.ndarray
    failure_counts: np.ndarray
    runs: int
    label: str = ""
    metadata: dict = field(default_factory=dict)

    def best_parameter(self) -> float:
        """Parameter value with the smallest mean inefficiency.

        Cells with failures *or* without a finite mean (``--on-error
        skip`` can leave a cell empty: zero failures recorded, NaN mean)
        are excluded; with no decodable cell at all the answer is NaN
        rather than an arbitrary index ``np.argmin`` would pick from a
        NaN-contaminated array.
        """
        candidates = (self.failure_counts == 0) & np.isfinite(self.mean_inefficiency)
        if not candidates.any():
            return float("nan")
        values = np.where(candidates, self.mean_inefficiency, np.inf)
        return float(self.parameter_values[int(np.argmin(values))])


__all__ = [
    "NOT_DECODED",
    "RunResult",
    "RunResultBatch",
    "CellStats",
    "GridResult",
    "SeriesResult",
]
