"""Vandermonde and Cauchy matrices over GF(2^8).

The Reed-Solomon erasure codec (Rizzo-style, [14] in the paper) derives its
systematic generator matrix from an ``n x k`` Vandermonde matrix: any ``k``
rows of such a matrix are linearly independent, which is exactly the MDS
property ("any k received packets out of n suffice").
"""

from __future__ import annotations

import numpy as np

from repro.galois.field import gf_pow
from repro.galois.matrix import gf_mat_inv, gf_mat_mul
from repro.galois.tables import FIELD_SIZE, GENERATOR, EXP_TABLE, GROUP_ORDER, INV_TABLE, MUL_TABLE


def vandermonde_matrix(rows: int, cols: int) -> np.ndarray:
    """Build a ``rows x cols`` Vandermonde matrix ``V[i, j] = x_i^j``.

    The evaluation points ``x_i`` are ``0, 1, alpha, alpha^2, ...`` (the row
    for ``x = 0`` is ``[1, 0, 0, ...]``), which gives distinct points for up
    to 256 rows and therefore guarantees that any ``cols`` rows are linearly
    independent as long as ``rows <= 256``.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"rows and cols must be >= 1, got {rows}, {cols}")
    if rows > FIELD_SIZE:
        raise ValueError(
            f"at most {FIELD_SIZE} rows are possible over GF(2^8), got {rows}"
        )
    points = np.zeros(rows, dtype=np.uint8)
    # x_0 = 0, x_i = alpha^(i-1) for i >= 1.
    count_nonzero = rows - 1
    if count_nonzero > 0:
        exponents = np.arange(count_nonzero) % GROUP_ORDER
        points[1:] = EXP_TABLE[exponents].astype(np.uint8)
    matrix = np.zeros((rows, cols), dtype=np.uint8)
    for j in range(cols):
        matrix[:, j] = gf_pow(points, j)
    return matrix


def cauchy_matrix(rows: int, cols: int) -> np.ndarray:
    """Build a ``rows x cols`` Cauchy matrix ``C[i, j] = 1 / (x_i + y_j)``.

    Cauchy matrices have the stronger property that *every* square submatrix
    is invertible.  They are provided as an alternative construction for the
    parity part of the RSE generator matrix.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"rows and cols must be >= 1, got {rows}, {cols}")
    if rows + cols > FIELD_SIZE:
        raise ValueError(
            f"rows + cols must be <= {FIELD_SIZE} over GF(2^8), got {rows + cols}"
        )
    x_points = np.arange(cols, cols + rows, dtype=np.int64) % FIELD_SIZE
    y_points = np.arange(cols, dtype=np.int64)
    sums = (x_points[:, None] ^ y_points[None, :]).astype(np.uint8)
    if np.any(sums == 0):
        raise ValueError("Cauchy points collide; choose disjoint x and y sets")
    return INV_TABLE[sums]


def systematic_generator_matrix(k: int, n: int, construction: str = "vandermonde") -> np.ndarray:
    """Build an ``n x k`` systematic MDS generator matrix over GF(2^8).

    The first ``k`` rows form the identity (source packets are transmitted
    verbatim); the remaining ``n - k`` rows generate the parity packets.  Any
    ``k`` rows of the result are linearly independent.

    Parameters
    ----------
    k:
        Number of source symbols per block.
    n:
        Total number of encoding symbols per block (``k < n <= 256``).
    construction:
        ``"vandermonde"`` (Rizzo-style: a Vandermonde matrix is reduced so
        its top block is the identity) or ``"cauchy"`` (identity stacked on a
        Cauchy parity block).
    """
    if not 0 < k < n:
        raise ValueError(f"require 0 < k < n, got k={k}, n={n}")
    if n > FIELD_SIZE:
        raise ValueError(f"n must be <= {FIELD_SIZE} over GF(2^8), got {n}")
    if construction == "vandermonde":
        vandermonde = vandermonde_matrix(n, k)
        top_inverse = gf_mat_inv(vandermonde[:k])
        generator = gf_mat_mul(vandermonde, top_inverse)
    elif construction == "cauchy":
        generator = np.zeros((n, k), dtype=np.uint8)
        generator[:k] = np.eye(k, dtype=np.uint8)
        generator[k:] = cauchy_matrix(n - k, k)
    else:
        raise ValueError(f"unknown construction {construction!r}")
    # The systematic part must be exactly the identity.
    if not np.array_equal(generator[:k], np.eye(k, dtype=np.uint8)):
        raise AssertionError("systematic generator construction failed")
    return generator


__all__ = ["vandermonde_matrix", "cauchy_matrix", "systematic_generator_matrix"]
