"""Exponent and logarithm tables for GF(2^8).

The field is built from the primitive polynomial
``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D), the polynomial used by Rizzo's
erasure codec and by most RSE implementations.  The tables are computed once
at import time and shared by the whole package.
"""

from __future__ import annotations

import numpy as np

#: Order of the field (number of elements).
FIELD_SIZE = 256

#: Number of non-zero elements (order of the multiplicative group).
GROUP_ORDER = FIELD_SIZE - 1

#: Primitive polynomial x^8 + x^4 + x^3 + x^2 + 1.
PRIMITIVE_POLYNOMIAL = 0x11D

#: Generator element of the multiplicative group.
GENERATOR = 0x02


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    """Build the (exp, log) tables for GF(2^8).

    ``exp`` has length 2 * GROUP_ORDER so that ``exp[log[a] + log[b]]`` can be
    used without an explicit modulo reduction.
    """
    exp = np.zeros(2 * GROUP_ORDER, dtype=np.int32)
    log = np.zeros(FIELD_SIZE, dtype=np.int32)
    value = 1
    for exponent in range(GROUP_ORDER):
        exp[exponent] = value
        log[value] = exponent
        value <<= 1
        if value & 0x100:
            value ^= PRIMITIVE_POLYNOMIAL
    exp[GROUP_ORDER:] = exp[:GROUP_ORDER]
    # log[0] is undefined; keep a sentinel that will surface bugs loudly if
    # it is ever used in an exp lookup.
    log[0] = -(2 * GROUP_ORDER)
    return exp, log


EXP_TABLE, LOG_TABLE = _build_tables()

#: Full 256 x 256 multiplication table.  40 KiB, built once; it makes the
#: vectorised multiply a single fancy-indexing operation.
MUL_TABLE = np.zeros((FIELD_SIZE, FIELD_SIZE), dtype=np.uint8)
_nz = np.arange(1, FIELD_SIZE)
MUL_TABLE[1:, 1:] = EXP_TABLE[
    (LOG_TABLE[_nz][:, None] + LOG_TABLE[_nz][None, :]) % GROUP_ORDER
].astype(np.uint8)

#: Multiplicative inverse table; INV_TABLE[0] is 0 by convention (never used
#: for a real inversion -- dividing by zero raises).
INV_TABLE = np.zeros(FIELD_SIZE, dtype=np.uint8)
INV_TABLE[1:] = EXP_TABLE[GROUP_ORDER - LOG_TABLE[_nz]].astype(np.uint8)

__all__ = [
    "FIELD_SIZE",
    "GROUP_ORDER",
    "PRIMITIVE_POLYNOMIAL",
    "GENERATOR",
    "EXP_TABLE",
    "LOG_TABLE",
    "MUL_TABLE",
    "INV_TABLE",
]
