"""Matrix algebra over GF(2^8).

These routines back the Reed-Solomon erasure codec: building the systematic
generator matrix requires inverting a Vandermonde block, and decoding
requires solving a k x k linear system formed from the received rows.
"""

from __future__ import annotations

import numpy as np

from repro.galois.field import _as_field_array, gf_mul
from repro.galois.tables import INV_TABLE, MUL_TABLE


class SingularMatrixError(ValueError):
    """Raised when a matrix that must be invertible is singular."""


def gf_identity(size: int) -> np.ndarray:
    """Identity matrix of the given size over GF(2^8)."""
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    return np.eye(size, dtype=np.uint8)


def gf_mat_vec(matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Matrix-vector product over GF(2^8).

    ``vector`` may be 1-D (a vector of field elements) or 2-D (a stack of
    symbols: one row per matrix column, e.g. packet payloads), in which case
    the product is computed symbol-wise.
    """
    matrix = _as_field_array(matrix, "matrix")
    vector = _as_field_array(vector, "vector")
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
    if vector.shape[0] != matrix.shape[1]:
        raise ValueError(
            f"dimension mismatch: matrix has {matrix.shape[1]} columns, "
            f"vector has {vector.shape[0]} rows"
        )
    if vector.ndim == 1:
        result = np.zeros(matrix.shape[0], dtype=np.uint8)
        for j in range(matrix.shape[1]):
            result ^= MUL_TABLE[matrix[:, j], vector[j]]
        return result
    if vector.ndim == 2:
        result = np.zeros((matrix.shape[0], vector.shape[1]), dtype=np.uint8)
        for j in range(matrix.shape[1]):
            # Multiply the whole payload of symbol j by each coefficient.
            result ^= MUL_TABLE[matrix[:, j][:, None], vector[j][None, :]]
        return result
    raise ValueError(f"vector must be 1-D or 2-D, got shape {vector.shape}")


def gf_mat_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix-matrix product over GF(2^8)."""
    a = _as_field_array(a, "a")
    b = _as_field_array(b, "b")
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("both operands must be 2-D matrices")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"dimension mismatch: {a.shape} x {b.shape}")
    result = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
    for j in range(a.shape[1]):
        result ^= MUL_TABLE[a[:, j][:, None], b[j][None, :]]
    return result


def gf_mat_inv(matrix: np.ndarray) -> np.ndarray:
    """Invert a square matrix over GF(2^8) by Gauss-Jordan elimination.

    Raises
    ------
    SingularMatrixError
        If the matrix is singular.
    """
    matrix = _as_field_array(matrix, "matrix")
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"matrix must be square, got shape {matrix.shape}")
    size = matrix.shape[0]
    work = matrix.astype(np.uint8).copy()
    inverse = gf_identity(size)
    for col in range(size):
        pivot_row = _find_pivot(work, col)
        if pivot_row is None:
            raise SingularMatrixError(f"matrix is singular (no pivot in column {col})")
        if pivot_row != col:
            work[[col, pivot_row]] = work[[pivot_row, col]]
            inverse[[col, pivot_row]] = inverse[[pivot_row, col]]
        pivot_inv = INV_TABLE[work[col, col]]
        work[col] = MUL_TABLE[work[col], pivot_inv]
        inverse[col] = MUL_TABLE[inverse[col], pivot_inv]
        # Eliminate the column from every other row.
        factors = work[:, col].copy()
        factors[col] = 0
        rows = np.nonzero(factors)[0]
        if rows.size:
            work[rows] ^= MUL_TABLE[factors[rows][:, None], work[col][None, :]]
            inverse[rows] ^= MUL_TABLE[factors[rows][:, None], inverse[col][None, :]]
    return inverse


def gf_mat_rank(matrix: np.ndarray) -> int:
    """Rank of a matrix over GF(2^8)."""
    matrix = _as_field_array(matrix, "matrix")
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
    work = matrix.astype(np.uint8).copy()
    rows, cols = work.shape
    rank = 0
    for col in range(cols):
        if rank == rows:
            break
        pivot_candidates = np.nonzero(work[rank:, col])[0]
        if pivot_candidates.size == 0:
            continue
        pivot_row = rank + int(pivot_candidates[0])
        if pivot_row != rank:
            work[[rank, pivot_row]] = work[[pivot_row, rank]]
        pivot_inv = INV_TABLE[work[rank, col]]
        work[rank] = MUL_TABLE[work[rank], pivot_inv]
        factors = work[rank + 1 :, col].copy()
        nz = np.nonzero(factors)[0]
        if nz.size:
            work[rank + 1 + nz] ^= MUL_TABLE[factors[nz][:, None], work[rank][None, :]]
        rank += 1
    return rank


def gf_solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` over GF(2^8).

    ``rhs`` may be 1-D or 2-D (symbol payloads, one row per equation).
    """
    inverse = gf_mat_inv(matrix)
    return gf_mat_vec(inverse, _as_field_array(rhs, "rhs"))


def _find_pivot(work: np.ndarray, col: int) -> int | None:
    candidates = np.nonzero(work[col:, col])[0]
    if candidates.size == 0:
        return None
    return col + int(candidates[0])


__all__ = [
    "SingularMatrixError",
    "gf_identity",
    "gf_mat_vec",
    "gf_mat_mul",
    "gf_mat_inv",
    "gf_mat_rank",
    "gf_solve",
]
