"""Element-wise GF(2^8) arithmetic.

All operations accept scalars or numpy arrays of ``uint8`` values (any
integer dtype in range [0, 255] is accepted and converted) and broadcast like
the corresponding numpy operations.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.galois.tables import (
    EXP_TABLE,
    FIELD_SIZE,
    GROUP_ORDER,
    INV_TABLE,
    LOG_TABLE,
    MUL_TABLE,
)

ArrayLike = Union[int, np.ndarray]


def _as_field_array(value: ArrayLike, name: str = "value") -> np.ndarray:
    """Convert ``value`` to a uint8 array, checking the field range."""
    array = np.asarray(value)
    if array.dtype == np.uint8:
        return array
    if not np.issubdtype(array.dtype, np.integer):
        raise TypeError(f"{name} must contain integers, got dtype {array.dtype}")
    if array.size and (array.min() < 0 or array.max() >= FIELD_SIZE):
        raise ValueError(f"{name} must contain values in [0, 255]")
    return array.astype(np.uint8)


def gf_add(a: ArrayLike, b: ArrayLike) -> np.ndarray:
    """Addition in GF(2^8): bitwise XOR.  Subtraction is identical."""
    return np.bitwise_xor(_as_field_array(a, "a"), _as_field_array(b, "b"))


def gf_mul(a: ArrayLike, b: ArrayLike) -> np.ndarray:
    """Element-wise multiplication in GF(2^8)."""
    a = _as_field_array(a, "a")
    b = _as_field_array(b, "b")
    return MUL_TABLE[a, b]


def gf_inv(a: ArrayLike) -> np.ndarray:
    """Multiplicative inverse.  Raises ``ZeroDivisionError`` on zero input."""
    a = _as_field_array(a, "a")
    if np.any(a == 0):
        raise ZeroDivisionError("0 has no multiplicative inverse in GF(2^8)")
    return INV_TABLE[a]


def gf_div(a: ArrayLike, b: ArrayLike) -> np.ndarray:
    """Element-wise division ``a / b``.  Raises ``ZeroDivisionError`` if any b is 0."""
    a = _as_field_array(a, "a")
    b = _as_field_array(b, "b")
    if np.any(b == 0):
        raise ZeroDivisionError("division by zero in GF(2^8)")
    return MUL_TABLE[a, INV_TABLE[b]]


def gf_pow(a: ArrayLike, exponent: int) -> np.ndarray:
    """Raise field elements to an integer power (exponent may be negative)."""
    a = _as_field_array(a, "a")
    exponent = int(exponent)
    result = np.empty_like(a)
    zero_mask = a == 0
    if exponent == 0:
        # 0^0 is defined as 1 here (empty product), matching numpy's convention.
        result[...] = 1
        return result
    if exponent < 0 and np.any(zero_mask):
        raise ZeroDivisionError("0 cannot be raised to a negative power")
    logs = LOG_TABLE[a.astype(np.int32)]
    powered = EXP_TABLE[(logs * exponent) % GROUP_ORDER].astype(np.uint8)
    result[...] = powered
    result[zero_mask] = 0
    return result


class GF256:
    """A thin scalar wrapper over GF(2^8) arithmetic, convenient for tests
    and for writing reference (non-vectorised) algorithms.

    >>> GF256(3) * GF256(7)
    GF256(9)
    >>> GF256(5) + GF256(5)
    GF256(0)
    """

    __slots__ = ("value",)

    def __init__(self, value: int):
        value = int(value)
        if not 0 <= value < FIELD_SIZE:
            raise ValueError(f"GF256 element must be in [0, 255], got {value}")
        self.value = value

    def __add__(self, other: "GF256") -> "GF256":
        return GF256(self.value ^ _coerce(other))

    __radd__ = __add__
    __sub__ = __add__
    __rsub__ = __add__

    def __mul__(self, other: "GF256") -> "GF256":
        return GF256(int(MUL_TABLE[self.value, _coerce(other)]))

    __rmul__ = __mul__

    def __truediv__(self, other: "GF256") -> "GF256":
        other_value = _coerce(other)
        if other_value == 0:
            raise ZeroDivisionError("division by zero in GF(2^8)")
        return GF256(int(MUL_TABLE[self.value, INV_TABLE[other_value]]))

    def __pow__(self, exponent: int) -> "GF256":
        return GF256(int(gf_pow(np.uint8(self.value), exponent)))

    def inverse(self) -> "GF256":
        if self.value == 0:
            raise ZeroDivisionError("0 has no multiplicative inverse in GF(2^8)")
        return GF256(int(INV_TABLE[self.value]))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, GF256):
            return self.value == other.value
        if isinstance(other, (int, np.integer)):
            return self.value == int(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("GF256", self.value))

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"GF256({self.value})"


def _coerce(other: Union[GF256, int]) -> int:
    if isinstance(other, GF256):
        return other.value
    if isinstance(other, (int, np.integer)):
        value = int(other)
        if not 0 <= value < FIELD_SIZE:
            raise ValueError(f"GF256 element must be in [0, 255], got {value}")
        return value
    raise TypeError(f"cannot operate on GF256 and {type(other).__name__}")


__all__ = ["GF256", "gf_add", "gf_mul", "gf_div", "gf_inv", "gf_pow"]
