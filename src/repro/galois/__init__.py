"""GF(2^8) arithmetic and linear algebra.

The Reed-Solomon erasure code of the paper (section 2.2) operates on the
Galois field GF(2^8), the field used by Rizzo's reference codec.  This
subpackage provides:

* :mod:`repro.galois.tables` -- exponent/logarithm tables for the field.
* :mod:`repro.galois.field` -- element-wise (vectorised) field arithmetic.
* :mod:`repro.galois.matrix` -- matrix multiplication, inversion, rank and
  linear-system solving over the field.
* :mod:`repro.galois.vandermonde` -- Vandermonde and Cauchy matrix builders
  used to construct systematic MDS generator matrices.
"""

from repro.galois.field import (
    GF256,
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_pow,
)
from repro.galois.matrix import (
    gf_identity,
    gf_mat_inv,
    gf_mat_mul,
    gf_mat_rank,
    gf_mat_vec,
    gf_solve,
)
from repro.galois.vandermonde import (
    cauchy_matrix,
    systematic_generator_matrix,
    vandermonde_matrix,
)

__all__ = [
    "GF256",
    "gf_add",
    "gf_mul",
    "gf_div",
    "gf_inv",
    "gf_pow",
    "gf_identity",
    "gf_mat_mul",
    "gf_mat_vec",
    "gf_mat_inv",
    "gf_mat_rank",
    "gf_solve",
    "vandermonde_matrix",
    "cauchy_matrix",
    "systematic_generator_matrix",
]
