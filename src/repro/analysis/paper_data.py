"""Reference values transcribed from the paper.

The appendix of the paper (tables 1-9) gives numeric inefficiency ratios
for the most interesting (code, tx model, ratio) combinations over the full
14 x 14 Gilbert grid.  This module stores a compact summary of each table
-- a handful of representative (p, q) points plus the value range over the
decodable region -- so the benchmarks and EXPERIMENTS.md can report
paper-vs-measured numbers, and the shape-checking tests can assert that the
reproduction preserves the orderings the paper emphasises.

All (p, q) keys are probabilities (the paper's axes are in percent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

Point = Tuple[float, float]


@dataclass(frozen=True)
class PaperTableSummary:
    """Summary of one appendix table of the paper."""

    table_id: str
    code: str
    tx_model: str
    expansion_ratio: float
    description: str
    #: Representative inefficiency-ratio values at selected (p, q) points.
    reference_points: Mapping[Point, float]
    #: (min, max) of the inefficiency ratio over the decodable region
    #: (excluding the trivially perfect p = 0 row where relevant).
    value_range: Tuple[float, float]
    #: Selected (p, q) points reported as "-" (decoding failed) in the paper.
    failed_points: Tuple[Point, ...] = ()


PAPER_TABLES: Dict[str, PaperTableSummary] = {
    "table1": PaperTableSummary(
        table_id="table1",
        code="ldgm-triangle",
        tx_model="tx_model_2",
        expansion_ratio=2.5,
        description="Tx_model_2, LDGM Triangle, ratio 2.5",
        reference_points={
            (0.0, 0.5): 1.000,
            (0.01, 0.05): 1.081,
            (0.01, 1.0): 1.078,
            (0.05, 0.5): 1.100,
            (0.20, 0.5): 1.078,
            (0.50, 0.5): 1.125,
            (1.00, 1.0): 1.125,
        },
        value_range=(1.062, 1.132),
        failed_points=((0.01, 0.0), (0.10, 0.05), (0.50, 0.40)),
    ),
    "table2": PaperTableSummary(
        table_id="table2",
        code="ldgm-staircase",
        tx_model="tx_model_2",
        expansion_ratio=2.5,
        description="Tx_model_2, LDGM Staircase, ratio 2.5",
        reference_points={
            (0.01, 0.05): 1.107,
            (0.01, 1.0): 1.013,
            (0.05, 0.5): 1.068,
            (0.20, 0.5): 1.139,
            (0.50, 1.0): 1.147,
            (1.00, 1.0): 1.149,
        },
        value_range=(1.011, 1.153),
        failed_points=((0.50, 0.60), (0.50, 0.70)),
    ),
    "table3": PaperTableSummary(
        table_id="table3",
        code="ldgm-triangle",
        tx_model="tx_model_2",
        expansion_ratio=1.5,
        description="Tx_model_2, LDGM Triangle, ratio 1.5",
        reference_points={
            (0.01, 0.10): 1.025,
            (0.05, 0.5): 1.024,
            (0.10, 0.5): 1.035,
            (0.20, 1.0): 1.035,
        },
        value_range=(1.024, 1.055),
        failed_points=((0.30, 0.60), (0.50, 1.0)),
    ),
    "table4": PaperTableSummary(
        table_id="table4",
        code="ldgm-staircase",
        tx_model="tx_model_2",
        expansion_ratio=1.5,
        description="Tx_model_2, LDGM Staircase, ratio 1.5",
        reference_points={
            (0.01, 0.10): 1.053,
            (0.01, 1.0): 1.010,
            (0.05, 0.5): 1.054,
            (0.15, 1.0): 1.063,
        },
        value_range=(1.010, 1.070),
        failed_points=((0.30, 0.70), (0.40, 1.0)),
    ),
    "table5": PaperTableSummary(
        table_id="table5",
        code="ldgm-triangle",
        tx_model="tx_model_4",
        expansion_ratio=2.5,
        description="Tx_model_4, LDGM Triangle, ratio 2.5",
        reference_points={
            (0.0, 0.5): 1.115,
            (0.05, 0.5): 1.116,
            (0.20, 0.5): 1.121,
            (0.50, 0.5): 1.133,
            (1.00, 1.0): 1.132,
        },
        value_range=(1.112, 1.134),
    ),
    "table6": PaperTableSummary(
        table_id="table6",
        code="ldgm-triangle",
        tx_model="tx_model_4",
        expansion_ratio=1.5,
        description="Tx_model_4, LDGM Triangle, ratio 1.5",
        reference_points={
            (0.0, 0.5): 1.056,
            (0.05, 0.5): 1.055,
            (0.20, 1.0): 1.056,
        },
        value_range=(1.055, 1.058),
    ),
    "table7": PaperTableSummary(
        table_id="table7",
        code="rse",
        tx_model="tx_model_5",
        expansion_ratio=2.5,
        description="Tx_model_5 (interleaving), RSE, ratio 2.5",
        reference_points={
            (0.0, 0.5): 1.000,
            (0.01, 0.5): 1.042,
            (0.05, 0.5): 1.087,
            (0.20, 0.5): 1.160,
            (0.50, 0.5): 1.199,
        },
        value_range=(1.000, 1.214),
    ),
    "table8": PaperTableSummary(
        table_id="table8",
        code="rse",
        tx_model="tx_model_5",
        expansion_ratio=1.5,
        description="Tx_model_5 (interleaving), RSE, ratio 1.5",
        reference_points={
            (0.0, 0.5): 1.000,
            (0.01, 0.5): 1.029,
            (0.05, 0.5): 1.058,
            (0.10, 1.0): 1.059,
        },
        value_range=(1.000, 1.103),
        failed_points=((0.40, 1.0),),
    ),
    "table9": PaperTableSummary(
        table_id="table9",
        code="ldgm-staircase",
        tx_model="tx_model_6",
        expansion_ratio=2.5,
        description="Tx_model_6 (20% source + parity, random), LDGM Staircase, ratio 2.5",
        reference_points={
            (0.0, 0.5): 1.085,
            (0.05, 0.5): 1.086,
            (0.20, 0.8): 1.087,
            (0.40, 0.9): 1.087,
        },
        value_range=(1.085, 1.089),
    ),
}


#: Figure 15 (the Amherst -> Los Angeles use case): approximate inefficiency
#: ratios read off the bar charts, used as reference for the fig15 bench.
#: Only the bars whose values the paper's text or appendix corroborates are
#: listed; combinations the paper plots but does not quantify are omitted.
FIGURE15_CHANNEL: Point = (0.0109, 0.7915)

FIGURE15_REFERENCE: Dict[float, Dict[str, Dict[str, float]]] = {
    1.5: {
        "tx_model_2": {"rse": 1.06, "ldgm-staircase": 1.011, "ldgm-triangle": 1.03},
        "tx_model_4": {"rse": 1.07, "ldgm-staircase": 1.07, "ldgm-triangle": 1.05},
        "tx_model_5": {"rse": 1.03},
    },
    2.5: {
        "tx_model_2": {"rse": 1.09, "ldgm-staircase": 1.02, "ldgm-triangle": 1.08},
        "tx_model_4": {"rse": 1.25, "ldgm-staircase": 1.15, "ldgm-triangle": 1.12},
        "tx_model_5": {"rse": 1.05},
        "tx_model_6": {"rse": 1.3, "ldgm-staircase": 1.086, "ldgm-triangle": 1.2},
    },
}

#: Paper-reported optimum of Rx_model_1 (figure 14): receiving roughly
#: 400-1000 source packets out of k = 20000 (2-5% of k) minimises the
#: inefficiency ratio of LDGM Staircase at ratio 2.5.
FIGURE14_OPTIMAL_SOURCE_FRACTION: Tuple[float, float] = (0.02, 0.05)


def get_table_summary(table_id: str) -> PaperTableSummary:
    """Look up a paper table summary by id (e.g. ``"table5"``)."""
    key = table_id.lower()
    if key not in PAPER_TABLES:
        raise KeyError(
            f"unknown paper table {table_id!r}; available: {', '.join(sorted(PAPER_TABLES))}"
        )
    return PAPER_TABLES[key]


__all__ = [
    "PaperTableSummary",
    "PAPER_TABLES",
    "FIGURE15_CHANNEL",
    "FIGURE15_REFERENCE",
    "FIGURE14_OPTIMAL_SOURCE_FRACTION",
    "get_table_summary",
]
