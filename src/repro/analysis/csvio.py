"""CSV export/import of grid sweeps.

The benchmark harness writes its grids to CSV so they can be re-plotted or
compared across runs without re-simulating.  The format is long-form:

    p,q,mean_inefficiency,mean_received_ratio,failures,runs

with the grid label stored in a leading comment line.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.metrics import GridResult

PathLike = Union[str, Path]


def grid_to_csv(grid: GridResult, destination: Union[PathLike, io.TextIOBase, None] = None) -> str:
    """Serialise a grid to CSV; optionally write it to ``destination``."""
    buffer = io.StringIO()
    buffer.write(f"# label: {grid.label}\n")
    buffer.write(f"# runs: {grid.runs}\n")
    # Adaptive sweeps stop each cell at its own run count; emitting it in
    # the per-row runs column keeps every settled row byte-identical to
    # the row a fixed sweep at that cell's final run count would write.
    runs_per_cell = None
    adaptive_meta = grid.metadata.get("adaptive") if grid.metadata else None
    if adaptive_meta and "runs_per_cell" in adaptive_meta:
        runs_per_cell = np.asarray(adaptive_meta["runs_per_cell"], dtype=np.int64)
    writer = csv.writer(buffer)
    writer.writerow(["p", "q", "mean_inefficiency", "mean_received_ratio", "failures", "runs"])
    for i, p in enumerate(grid.p_values):
        for j, q in enumerate(grid.q_values):
            inefficiency = grid.mean_inefficiency[i, j]
            writer.writerow(
                [
                    f"{p:.6f}",
                    f"{q:.6f}",
                    "" if not np.isfinite(inefficiency) else f"{inefficiency:.6f}",
                    f"{grid.mean_received_ratio[i, j]:.6f}",
                    int(grid.failure_counts[i, j]),
                    int(runs_per_cell[i, j]) if runs_per_cell is not None else grid.runs,
                ]
            )
    text = buffer.getvalue()
    if destination is None:
        return text
    if isinstance(destination, (str, Path)):
        Path(destination).write_text(text, encoding="utf-8")
    else:
        destination.write(text)
    return text


def grid_from_csv(source: Union[PathLike, str]) -> GridResult:
    """Rebuild a :class:`GridResult` from CSV produced by :func:`grid_to_csv`.

    ``source`` may be a path or the CSV text itself.
    """
    if isinstance(source, Path) or (isinstance(source, str) and "\n" not in source and Path(source).exists()):
        text = Path(source).read_text(encoding="utf-8")
    else:
        text = str(source)

    label = ""
    runs = 0
    rows: list[dict[str, str]] = []
    data_lines = []
    for line in text.splitlines():
        if line.startswith("# label:"):
            label = line.split(":", 1)[1].strip()
        elif line.startswith("# runs:"):
            runs = int(line.split(":", 1)[1].strip())
        elif line.strip():
            data_lines.append(line)
    reader = csv.DictReader(data_lines)
    for row in reader:
        rows.append(row)
    if not rows:
        raise ValueError("the CSV contains no data rows")

    p_values = sorted({float(row["p"]) for row in rows})
    q_values = sorted({float(row["q"]) for row in rows})
    p_index = {value: i for i, value in enumerate(p_values)}
    q_index = {value: j for j, value in enumerate(q_values)}
    shape = (len(p_values), len(q_values))
    mean_inefficiency = np.full(shape, np.nan)
    mean_received = np.full(shape, np.nan)
    failures = np.zeros(shape, dtype=np.int64)
    for row in rows:
        i = p_index[float(row["p"])]
        j = q_index[float(row["q"])]
        mean_inefficiency[i, j] = float(row["mean_inefficiency"]) if row["mean_inefficiency"] else np.nan
        mean_received[i, j] = float(row["mean_received_ratio"])
        failures[i, j] = int(row["failures"])
        runs = int(row["runs"])
    return GridResult(
        p_values=np.asarray(p_values),
        q_values=np.asarray(q_values),
        mean_inefficiency=mean_inefficiency,
        mean_received_ratio=mean_received,
        failure_counts=failures,
        runs=runs,
        label=label,
    )


def label_slug(label: str) -> str:
    """Filesystem-friendly slug of a configuration display label.

    Shared by the CLI and the benchmark harness so the CSV grids they write
    for the same configuration get the same file name.
    """
    return label.replace(" / ", "_").replace(" ", "")


__all__ = ["grid_to_csv", "grid_from_csv", "label_slug"]
