"""Render sweep results as text tables.

``format_grid_table`` reproduces the layout of the paper's appendix tables:
rows are ``p`` values, columns are ``q`` values, each cell holds the mean
inefficiency ratio and a ``-`` marks grid points where at least one run
failed to decode.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.core.metrics import GridResult


def format_grid_table(
    grid: GridResult,
    *,
    precision: int = 3,
    percent_axes: bool = True,
    title: Optional[str] = None,
) -> str:
    """Format a :class:`GridResult` as an appendix-style table.

    Parameters
    ----------
    grid:
        The sweep to render.
    precision:
        Decimal places for the inefficiency values.
    percent_axes:
        Label the axes in percent (as the paper does) instead of [0, 1].
    title:
        Optional title line (defaults to the grid's label).
    """
    scale = 100.0 if percent_axes else 1.0
    axis_format = "{:g}"
    header_cells = [axis_format.format(q * scale) for q in grid.q_values]
    cell_width = max(precision + 2, *(len(cell) for cell in header_cells)) + 2

    lines: list[str] = []
    lines.append(title if title is not None else grid.label)
    lines.append(
        "p \\ q".ljust(8) + "".join(cell.rjust(cell_width) for cell in header_cells)
    )
    for i, p in enumerate(grid.p_values):
        row = [axis_format.format(p * scale).ljust(8)]
        for j in range(grid.q_values.size):
            value = grid.mean_inefficiency[i, j]
            if not np.isfinite(value):
                row.append("-".rjust(cell_width))
            else:
                row.append(f"{value:.{precision}f}".rjust(cell_width))
        lines.append("".join(row))
    return "\n".join(lines)


def format_runs_table(
    grid: GridResult,
    *,
    percent_axes: bool = True,
    title: Optional[str] = None,
) -> str:
    """Format an adaptive sweep's per-cell run counts in the grid layout.

    Rows/columns mirror :func:`format_grid_table`; each cell shows how
    many runs the adaptive controller executed there, with a trailing
    ``*`` on cells that exhausted the budget without settling.  Falls
    back to the grid's uniform run count when no adaptive metadata is
    present.
    """
    adaptive_meta = grid.metadata.get("adaptive") if grid.metadata else None
    if adaptive_meta and "runs_per_cell" in adaptive_meta:
        runs = np.asarray(adaptive_meta["runs_per_cell"], dtype=np.int64)
        settled = np.asarray(
            adaptive_meta.get("settled", np.ones(runs.shape, dtype=bool)), dtype=bool
        )
    else:
        runs = np.full(grid.shape, grid.runs, dtype=np.int64)
        settled = np.ones(grid.shape, dtype=bool)

    scale = 100.0 if percent_axes else 1.0
    axis_format = "{:g}"
    header_cells = [axis_format.format(q * scale) for q in grid.q_values]
    value_cells = [
        f"{runs[i, j]}{'' if settled[i, j] else '*'}"
        for i in range(grid.p_values.size)
        for j in range(grid.q_values.size)
    ]
    cell_width = max(
        *(len(cell) for cell in header_cells), *(len(cell) for cell in value_cells)
    ) + 2

    lines: list[str] = []
    lines.append(title if title is not None else f"{grid.label} (runs per cell)")
    lines.append(
        "p \\ q".ljust(8) + "".join(cell.rjust(cell_width) for cell in header_cells)
    )
    for i, p in enumerate(grid.p_values):
        row = [axis_format.format(p * scale).ljust(8)]
        for j in range(grid.q_values.size):
            cell = f"{runs[i, j]}{'' if settled[i, j] else '*'}"
            row.append(cell.rjust(cell_width))
        lines.append("".join(row))
    return "\n".join(lines)


def format_comparison_table(
    values: Mapping[str, Mapping[str, float]],
    *,
    row_order: Optional[Sequence[str]] = None,
    column_order: Optional[Sequence[str]] = None,
    precision: int = 3,
    missing: str = "-",
) -> str:
    """Format a nested mapping ``{row: {column: value}}`` as a text table.

    Used for the figure 15 style comparisons (rows = transmission models,
    columns = FEC codes).
    """
    rows = list(row_order) if row_order is not None else sorted(values)
    columns: list[str] = list(column_order) if column_order is not None else sorted(
        {column for row in values.values() for column in row}
    )
    cell_width = max(
        [precision + 4] + [len(column) for column in columns]
    ) + 2
    label_width = max([len("")] + [len(row) for row in rows]) + 2

    lines = ["".ljust(label_width) + "".join(column.rjust(cell_width) for column in columns)]
    for row in rows:
        cells = []
        for column in columns:
            value = values.get(row, {}).get(column)
            if value is None or not np.isfinite(value):
                cells.append(missing.rjust(cell_width))
            else:
                cells.append(f"{value:.{precision}f}".rjust(cell_width))
        lines.append(row.ljust(label_width) + "".join(cells))
    return "\n".join(lines)


__all__ = ["format_grid_table", "format_runs_table", "format_comparison_table"]
