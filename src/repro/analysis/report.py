"""Plain-text reports for operators of a broadcast system.

``recommendation_report`` combines the recommendation engine (section 6 of
the paper) with the ``n_sent`` optimiser into a short, human-readable
report: which (code, tx model, ratio) tuple to use for a channel and how
many packets to actually send.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.channel.gilbert import GilbertChannel
from repro.core.recommendations import (
    Recommendation,
    recommend_for_channel,
    universal_recommendations,
)
from repro.utils.rng import RandomState


def recommendation_report(
    p: Optional[float] = None,
    q: Optional[float] = None,
    *,
    k: int = 1000,
    runs: int = 10,
    seed: RandomState = 0,
    top: int = 5,
) -> str:
    """Build a textual recommendation report.

    With ``p`` and ``q`` given, candidate tuples are simulated on that
    channel and ranked; without them, the paper's universal recommendations
    for unknown channels are returned.
    """
    lines: list[str] = []
    if p is None or q is None:
        lines.append("Channel: unknown loss distribution")
        lines.append("Recommended configurations (paper, section 6.2.2):")
        for rank, recommendation in enumerate(universal_recommendations(), start=1):
            lines.append(f"  {rank}. {recommendation.describe()}")
        lines.append(
            "Note: with heterogeneous receivers the random schemes give every "
            "receiver nearly the same performance; RSE + interleaving does not."
        )
        return "\n".join(lines)

    channel = GilbertChannel(p, q)
    lines.append(
        f"Channel: Gilbert p={p:.4f}, q={q:.4f} "
        f"(global loss {channel.global_loss_probability:.2%}, "
        f"mean burst {channel.mean_burst_length:.1f} packets)"
    )
    recommendations = recommend_for_channel(p, q, k=k, runs=runs, seed=seed)
    reliable = [rec for rec in recommendations if rec.reliable]
    unreliable = [rec for rec in recommendations if not rec.reliable]
    lines.append(f"Ranked configurations (k={k}, {runs} runs each):")
    for rank, recommendation in enumerate(reliable[:top], start=1):
        lines.append(f"  {rank}. {recommendation.describe()}")
    if unreliable:
        lines.append("Not recommended (decoding failures observed):")
        for recommendation in unreliable[: max(0, top - len(reliable))] or unreliable[:2]:
            lines.append(f"  - {recommendation.describe()}")
    return "\n".join(lines)


__all__ = ["recommendation_report"]
