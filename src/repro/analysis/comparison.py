"""Fixed-channel comparisons across (code, tx model, ratio) tuples.

Figure 15 of the paper fixes the channel at the Amherst -> Los Angeles
Gilbert parameters and compares every transmission model and code at both
expansion ratios.  :func:`compare_at_point` reproduces that bar chart as a
nested mapping, reusable for any channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.channel.gilbert import GilbertChannel
from repro.core.config import SimulationConfig
from repro.core.metrics import CellStats
from repro.fastpath import simulate_batch_columnar
from repro.utils.rng import RandomState

#: Default sets compared by figure 15.
DEFAULT_CODES = ("rse", "ldgm-staircase", "ldgm-triangle")
DEFAULT_TX_MODELS = ("tx_model_1", "tx_model_2", "tx_model_3", "tx_model_4", "tx_model_5", "tx_model_6")


@dataclass
class ComparisonResult:
    """Mean inefficiency per (tx model, code) at one channel point."""

    p: float
    q: float
    expansion_ratio: float
    k: int
    runs: int
    #: values[tx_model][code] = mean inefficiency (NaN if any run failed).
    values: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: failures[tx_model][code] = number of failed runs.
    failures: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def best(self) -> tuple[str, str, float]:
        """(tx_model, code, inefficiency) with the smallest reliable value."""
        best_entry: Optional[tuple[str, str, float]] = None
        for tx_model, row in self.values.items():
            for code, value in row.items():
                if self.failures[tx_model][code] > 0 or not np.isfinite(value):
                    continue
                if best_entry is None or value < best_entry[2]:
                    best_entry = (tx_model, code, value)
        if best_entry is None:
            raise ValueError("no (tx model, code) pair decoded reliably at this point")
        return best_entry


def compare_at_point(
    p: float,
    q: float,
    *,
    expansion_ratio: float = 2.5,
    k: int = 1000,
    codes: Sequence[str] = DEFAULT_CODES,
    tx_models: Sequence[str] = DEFAULT_TX_MODELS,
    runs: int = 10,
    seed: RandomState = 0,
) -> ComparisonResult:
    """Simulate every (tx model, code) combination at one Gilbert point.

    Combinations that make no sense are skipped automatically:
    ``tx_model_6`` is only evaluated when the expansion ratio is large
    enough to keep the number of transmitted packets above ``k`` (the paper
    only uses it at ratio 2.5).
    """
    channel = GilbertChannel(p, q)
    result = ComparisonResult(p=p, q=q, expansion_ratio=expansion_ratio, k=k, runs=runs)
    seed_base = seed if isinstance(seed, (int, np.integer)) else 0

    for tx_index, tx_name in enumerate(tx_models):
        if tx_name == "tx_model_6" and expansion_ratio < 2.0:
            continue
        result.values[tx_name] = {}
        result.failures[tx_name] = {}
        for code_index, code_name in enumerate(codes):
            tx_options = {"source_fraction": 0.2} if tx_name == "tx_model_6" else {}
            config = SimulationConfig(
                code=code_name,
                tx_model=tx_name,
                k=k,
                expansion_ratio=expansion_ratio,
                tx_options=tx_options,
            )
            code = config.build_code(
                seed=np.random.default_rng(
                    np.random.SeedSequence([int(seed_base), tx_index, code_index])
                )
            )
            # One batched pipeline pass per candidate (each run keeps its
            # own generator, so this is bit-identical to per-run
            # Simulator.run calls), aggregated columnar.
            stats = CellStats()
            stats.add_batch(
                simulate_batch_columnar(
                    code,
                    config.build_tx_model(),
                    channel,
                    [
                        np.random.default_rng(
                            np.random.SeedSequence(
                                [int(seed_base), tx_index, code_index, run]
                            )
                        )
                        for run in range(runs)
                    ],
                )
            )
            result.values[tx_name][code_name] = stats.mean_inefficiency
            result.failures[tx_name][code_name] = stats.failures
    return result


__all__ = ["ComparisonResult", "compare_at_point", "DEFAULT_CODES", "DEFAULT_TX_MODELS"]
