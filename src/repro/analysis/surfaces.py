"""ASCII rendering of (p, q) surfaces.

The paper presents its results as 3-D gnuplot surfaces.  In a text-only
environment a coarse character map is a practical substitute: each grid
point is mapped to a character from a ramp (low inefficiency -> '.', high
inefficiency -> '#', non-decodable -> ' ').
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.metrics import GridResult

#: Character ramp from best (low inefficiency) to worst.
DEFAULT_RAMP = ".:-=+*%#"


def ascii_surface(
    grid: GridResult,
    *,
    ramp: str = DEFAULT_RAMP,
    vmin: Optional[float] = None,
    vmax: Optional[float] = None,
    legend: bool = True,
) -> str:
    """Render the mean-inefficiency surface of a grid as ASCII art.

    Rows are ``p`` values (top = 0), columns are ``q`` values (left = 0);
    blanks mark grid points where decoding failed at least once.
    """
    if not ramp:
        raise ValueError("ramp must contain at least one character")
    values = grid.mean_inefficiency
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        low, high = 1.0, 1.0
    else:
        low = float(finite.min()) if vmin is None else vmin
        high = float(finite.max()) if vmax is None else vmax
    span = max(high - low, 1e-12)

    lines = []
    header = "p\\q " + " ".join(f"{q * 100:>3.0f}" for q in grid.q_values)
    lines.append(header)
    for i, p in enumerate(grid.p_values):
        cells = []
        for j in range(grid.q_values.size):
            value = values[i, j]
            if not np.isfinite(value):
                cells.append(" ")
            else:
                position = (value - low) / span
                index = min(len(ramp) - 1, int(position * (len(ramp) - 1) + 0.5))
                cells.append(ramp[index])
        lines.append(f"{p * 100:>3.0f} " + "   ".join(cells))
    if legend:
        lines.append("")
        lines.append(
            f"legend: '{ramp[0]}' = {low:.3f} (best) ... '{ramp[-1]}' = {high:.3f} "
            f"(worst); blank = decoding failed"
        )
    return "\n".join(lines)


__all__ = ["ascii_surface", "DEFAULT_RAMP"]
