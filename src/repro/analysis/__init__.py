"""Result analysis and reporting helpers.

* :mod:`repro.analysis.tables` -- render grid sweeps as the appendix-style
  (p, q) tables of the paper, with "-" marking non-decodable points.
* :mod:`repro.analysis.surfaces` -- coarse ASCII rendering of a grid (a
  text stand-in for the paper's 3-D gnuplot surfaces).
* :mod:`repro.analysis.csvio` -- CSV export/import of grid results.
* :mod:`repro.analysis.comparison` -- fixed-channel comparisons across
  (code, tx model) tuples (figure 15).
* :mod:`repro.analysis.paper_data` -- reference values transcribed from the
  paper, used by EXPERIMENTS.md and the shape-checking tests.
* :mod:`repro.analysis.report` -- plain-text reports combining the above.
"""

from repro.analysis.comparison import ComparisonResult, compare_at_point
from repro.analysis.csvio import grid_from_csv, grid_to_csv
from repro.analysis.paper_data import PAPER_TABLES, PaperTableSummary
from repro.analysis.surfaces import ascii_surface
from repro.analysis.tables import format_comparison_table, format_grid_table
from repro.analysis.report import recommendation_report

__all__ = [
    "format_grid_table",
    "format_comparison_table",
    "ascii_surface",
    "grid_to_csv",
    "grid_from_csv",
    "compare_at_point",
    "ComparisonResult",
    "PAPER_TABLES",
    "PaperTableSummary",
    "recommendation_report",
]
