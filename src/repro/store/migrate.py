"""Copy entries between result-store backends, verifying round-trips.

``python -m repro cache migrate json-dir:.repro_cache sqlite:results.db``
moves a legacy cache directory into the single-file store (and back, for
users who want to return to the file layout).  Keys are *not* re-derived:
the canonical unit key is backend-independent, so migration is a raw
record copy -- results simulated before the store existed keep satisfying
lookups afterwards.

Every copied record is verified by default: the destination is read back
and must return the source payload exactly (same keys, same float reprs),
and both sides must decode to the same :class:`UnitResult` under the
current schema.  A mismatch aborts the migration with
:class:`StoreMigrationError` rather than silently corrupting the ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.store.base import ResultStore
from repro.store.codec import decode_payload


class StoreMigrationError(RuntimeError):
    """A migrated record failed its read-back verification."""


@dataclass(frozen=True)
class MigrationReport:
    """Outcome of one migration run."""

    copied: int
    skipped: int
    verified: bool

    def summary(self) -> str:
        checked = "verified" if self.verified else "unverified"
        skipped = f", {self.skipped} skipped" if self.skipped else ""
        return f"{self.copied} entries copied ({checked}){skipped}"


def migrate_store(
    source: ResultStore,
    destination: ResultStore,
    *,
    scheme: Optional[str] = None,
    verify: bool = True,
) -> MigrationReport:
    """Copy every entry of ``source`` into ``destination``.

    Parameters
    ----------
    scheme:
        Copy only entries of one seed scheme (``None``: everything).
    verify:
        Read each record back from the destination and require an exact
        payload round-trip plus schema-level decode agreement.
    """
    copied = 0
    skipped = 0
    for record in source.records():
        if scheme is not None:
            entry_scheme = record.payload.get("seed_scheme") or "pre-seeds"
            if entry_scheme != scheme:
                skipped += 1
                continue
        destination.put_record(record.key, record.payload)
        if verify:
            returned = destination.get_record(record.key)
            if returned != record.payload:
                raise StoreMigrationError(
                    f"payload round-trip mismatch for key {record.key}: "
                    f"{destination.backend!r} returned a different record "
                    f"than {source.backend!r} provided"
                )
            if decode_payload(returned) != decode_payload(record.payload):
                raise StoreMigrationError(
                    f"schema decode mismatch for key {record.key} after "
                    f"migration to {destination.backend!r}"
                )
        copied += 1
    return MigrationReport(copied=copied, skipped=skipped, verified=verify)


__all__ = ["MigrationReport", "StoreMigrationError", "migrate_store"]
