"""The ``http:HOST:PORT`` client backend -- a remote store over HTTP.

Talks to a :class:`~repro.store.server.StoreServer` (``python -m repro
cache serve ...``) and implements the **full** :class:`ResultStore`
contract including the lease protocol, so fleets, failure policies,
migration and ``chaos+http:`` wrappers all work unchanged.

URI forms::

    http:192.0.2.10:8737
    http:192.0.2.10:8737?token=s3cret
    http:192.0.2.10:8737?token=s3cret&spool=.repro_spool.jsonl&timeout=5

Failure taxonomy (what makes ``RetryingStore`` work unchanged):

* connection refused / reset / timeout / any **5xx** response map to the
  transient :class:`~repro.resilience.errors.StoreUnavailableError`, with
  a one-line actionable message (server URL + "is ``cache serve``
  running?");
* any **4xx** response maps to the permanent :class:`HttpStoreError`
  (wrong token, malformed request, unknown endpoint) -- retrying cannot
  help, so it fails loudly instead of burning a retry budget.

Lease arithmetic never happens here: ``claim``/``heartbeat`` send the TTL
*duration* and the server evaluates expiry on its own clock, so a skewed
worker clock cannot cause a premature takeover.  ``leases()`` expiry
values are therefore in the server's clock domain.

``spool=`` opts into a **degraded write mode**: when the server is
unreachable, ``put``/``put_many`` batches are appended to a local
write-behind journal (JSONL, fsynced) and reported as written; the
journal is replayed -- oldest first, as ordinary idempotent upserts --
before the next successful write (or via :meth:`HttpStore.reconcile` /
``close()``).  Upsert semantics make replay convergent: a result is never
lost (it is on disk before the caller sees success) and never duplicated
(the server upserts by unit key).  Reads stay strict: a ``get`` while the
server is down still raises, because serving stale misses would cause
needless re-execution.
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import tempfile
import threading
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.resilience.errors import StoreUnavailableError
from repro.runner.units import UnitResult, WorkUnit
from repro.store.base import Lease, ResultStore, StoreRecord
from repro.store.codec import encode_result, unit_key

#: Per-request socket timeout (connect + read), seconds.
DEFAULT_TIMEOUT = 10.0


class HttpStoreError(RuntimeError):
    """Permanent HTTP store failure (4xx: bad token, bad request, ...)."""


def _parse_location(location: str) -> Tuple[str, int, Dict[str, str]]:
    """Split ``HOST:PORT[?k=v&...]`` into host, port and options."""
    address, _, query = location.partition("?")
    host, separator, port_text = address.rpartition(":")
    if not separator or not host or not port_text.isdigit():
        raise ValueError(
            f"the http store needs 'http:HOST:PORT[?token=...&spool=PATH"
            f"&timeout=S]', got location {location!r}"
        )
    options: Dict[str, str] = {}
    if query:
        for pair in query.split("&"):
            name, separator, value = pair.partition("=")
            if not separator:
                raise ValueError(f"malformed http store option {pair!r}")
            if name not in ("token", "spool", "timeout"):
                raise ValueError(
                    f"unknown http store option {name!r} "
                    f"(known: token, spool, timeout)"
                )
            options[name] = value
    return host, int(port_text), options


class _WriteJournal:
    """Local write-behind journal: one JSONL line per spooled record.

    Holds the latest payload per key (order-preserving), mirrored to disk
    so results survive a worker crash while the server is down.  Appends
    are fsynced before the caller is told the write succeeded.
    """

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._load()

    def _load(self) -> None:
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                self._entries[str(entry["key"])] = entry
            except (ValueError, KeyError, TypeError):
                continue  # torn final line of a crashed writer

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, entries: Iterable[Dict[str, Any]]) -> None:
        entries = list(entries)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as stream:
            for entry in entries:
                stream.write(json.dumps(entry) + "\n")
            stream.flush()
            os.fsync(stream.fileno())
        for entry in entries:
            self._entries[str(entry["key"])] = entry

    def entries(self) -> List[Dict[str, Any]]:
        return list(self._entries.values())

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        return self._entries.get(key)

    def discard(self, key: str) -> None:
        if key in self._entries:
            del self._entries[key]
            self._rewrite()

    def clear(self) -> None:
        self._entries.clear()
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def _rewrite(self) -> None:
        if not self._entries:
            self.clear()
            return
        handle, tmp_path = tempfile.mkstemp(
            dir=self.path.parent, prefix=".tmp-", suffix=".jsonl"
        )
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            for entry in self._entries.values():
                stream.write(json.dumps(entry) + "\n")
        os.replace(tmp_path, self.path)


class _NoDelayConnection(http.client.HTTPConnection):
    """Keep-alive connection with Nagle's algorithm disabled.

    Each request goes out as separate header and body sends; with Nagle
    on, the second send waits for the server's delayed ACK (~40ms per
    request on a persistent connection), collapsing small-read
    throughput by three orders of magnitude.
    """

    def connect(self) -> None:
        super().connect()
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


class HttpStore(ResultStore):
    """Client side of ``cache serve``: a remote store behind the registry."""

    backend = "http"
    supports_leases = True

    def __init__(self, location: str) -> None:
        super().__init__()
        host, port, options = _parse_location(location)
        self.host = host
        self.port = port
        self.token = options.get("token")
        self.timeout = float(options.get("timeout", DEFAULT_TIMEOUT))
        self._journal: Optional[_WriteJournal] = None
        if options.get("spool"):
            self._journal = _WriteJournal(Path(options["spool"]))
        self._journal_lock = threading.RLock()
        self._local = threading.local()

    # -- transport -------------------------------------------------------

    def _unreachable(self, error: Exception) -> StoreUnavailableError:
        return StoreUnavailableError(
            f"result-store server http://{self.host}:{self.port} is "
            f"unreachable ({type(error).__name__}: {error}) -- is "
            f"`python -m repro cache serve` running on "
            f"{self.host}:{self.port}?"
        )

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            try:
                connection.close()
            except OSError:
                pass
            self._local.connection = None

    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = _NoDelayConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.connection = connection
        return connection

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        # Connections are persistent (HTTP/1.1 keep-alive, one per
        # thread).  A connection-level failure on a reused socket is
        # retried once on a fresh connection: every endpoint is an
        # idempotent upsert / per-worker-idempotent claim, so a resend
        # is always safe.  Timeouts are not resent -- the request may
        # still be executing server-side, and the caller's RetryingStore
        # owns that budget.
        for attempt in (0, 1):
            connection = self._connection()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                status = response.status
                data = response.read()
            except (socket.timeout, TimeoutError) as error:
                self._drop_connection()
                raise self._unreachable(error) from error
            except (OSError, http.client.HTTPException) as error:
                self._drop_connection()
                if attempt == 0:
                    continue
                raise self._unreachable(error) from error
            return self._decode_response(status, data)
        raise AssertionError("unreachable")  # pragma: no cover

    def _decode_response(self, status: int, data: bytes) -> Dict[str, Any]:
        try:
            decoded = json.loads(data.decode("utf-8")) if data else {}
        except (ValueError, UnicodeDecodeError):
            decoded = {}
        detail = decoded.get("error") if isinstance(decoded, dict) else None
        if status >= 500:
            raise StoreUnavailableError(
                f"result-store server http://{self.host}:{self.port} "
                f"failed with HTTP {status}: {detail or 'no detail'}"
            )
        if status >= 400:
            raise HttpStoreError(
                f"result-store server http://{self.host}:{self.port} "
                f"rejected the request (HTTP {status}): "
                f"{detail or 'no detail'}"
            )
        return decoded if isinstance(decoded, dict) else {}

    # -- record-level API ------------------------------------------------

    def get_record(self, key: str) -> Optional[Dict[str, Any]]:
        if self._journal is not None:
            with self._journal_lock:
                spooled = self._journal.get(key)
            if spooled is not None:
                # Read-your-writes for spooled results: the journal holds
                # exactly what the next reconcile will upsert.
                return spooled["payload"]
        return self._request("POST", "/get_record", {"key": key})["payload"]

    def put_record(
        self,
        key: str,
        payload: Dict[str, Any],
        *,
        unit: Optional[WorkUnit] = None,
    ) -> None:
        entry = {
            "key": key,
            "payload": payload,
            "unit": None if unit is None else unit.to_payload(),
        }
        self._write_entries([entry])

    def put_many(self, items: Iterable[Tuple[WorkUnit, UnitResult]]) -> int:
        entries = [
            {
                "key": unit_key(unit),
                "payload": encode_result(unit, result),
                "unit": unit.to_payload(),
            }
            for unit, result in items
        ]
        if entries:
            self._write_entries(entries)
            self.stats.writes += len(entries)
        return len(entries)

    def _write_entries(self, entries: List[Dict[str, Any]]) -> None:
        """Send a write batch, spooling it locally when the server is down."""
        if self._journal is None:
            self._request("POST", "/put_many", {"entries": entries})
            return
        with self._journal_lock:
            try:
                self._flush_journal_locked()
                self._request("POST", "/put_many", {"entries": entries})
            except StoreUnavailableError:
                # Degraded mode: the journal line hits disk before the
                # caller sees success, so the result is never lost; the
                # replay is an upsert, so it is never duplicated.
                self._journal.append(entries)

    def _flush_journal_locked(self) -> int:
        assert self._journal is not None
        entries = self._journal.entries()
        if not entries:
            return 0
        self._request("POST", "/put_many", {"entries": entries})
        self._journal.clear()
        return len(entries)

    def reconcile(self) -> int:
        """Replay the write-behind journal; returns entries flushed.

        Raises :class:`StoreUnavailableError` when the server is still
        unreachable (the journal is kept intact for the next attempt).
        """
        if self._journal is None:
            return 0
        with self._journal_lock:
            return self._flush_journal_locked()

    def spooled(self) -> int:
        """Number of locally spooled (not yet reconciled) records."""
        if self._journal is None:
            return 0
        with self._journal_lock:
            return len(self._journal)

    def delete_record(self, key: str) -> bool:
        if self._journal is not None:
            with self._journal_lock:
                self._journal.discard(key)
        return bool(
            self._request("POST", "/delete_record", {"key": key})["deleted"]
        )

    def records(self) -> Iterator[StoreRecord]:
        for record in self._request("GET", "/records")["records"]:
            yield StoreRecord(key=record["key"], payload=record["payload"])

    def __len__(self) -> int:
        return int(self._request("GET", "/len")["count"])

    def size_bytes(self) -> int:
        return int(self._request("GET", "/size_bytes")["bytes"])

    def clear(self, scheme: Optional[str] = None) -> int:
        return int(self._request("POST", "/clear", {"scheme": scheme})["removed"])

    def scheme_counts(self) -> Dict[str, int]:
        counts = self._request("GET", "/scheme_counts")["counts"]
        return {str(scheme): int(count) for scheme, count in counts.items()}

    # -- lease protocol --------------------------------------------------
    #
    # Only TTL durations cross the wire; the server's clock computes
    # every expiry (see repro.store.server).

    def claim(self, key: str, worker: str, ttl: float) -> bool:
        body = {"key": key, "worker": worker, "ttl": ttl}
        return bool(self._request("POST", "/claim", body)["claimed"])

    def heartbeat(self, keys: Iterable[str], worker: str, ttl: float) -> int:
        body = {"keys": list(keys), "worker": worker, "ttl": ttl}
        return int(self._request("POST", "/heartbeat", body)["extended"])

    def release(self, key: str, worker: str) -> None:
        self._request("POST", "/release", {"key": key, "worker": worker})

    def leases(self) -> List[Lease]:
        return [
            Lease(
                key=lease["key"],
                worker=lease["worker"],
                expires=float(lease["expires"]),
            )
            for lease in self._request("GET", "/leases")["leases"]
        ]

    # -- lifecycle -------------------------------------------------------

    def location(self) -> str:
        return f"{self.host}:{self.port}"

    def health(self) -> Dict[str, Any]:
        """The server's ``/health`` payload (backend, location, clock)."""
        return self._request("GET", "/health")

    def close(self) -> None:
        if self._journal is not None:
            try:
                self.reconcile()
            except StoreUnavailableError:
                pass  # journal survives on disk for the next open
        self._drop_connection()


__all__ = ["DEFAULT_TIMEOUT", "HttpStore", "HttpStoreError"]
