"""In-memory result store (tests and throwaway sweeps).

Nothing is persisted: entries and leases live in process-local dicts
behind one lock, which makes the backend the cheapest way to exercise the
store and lease contracts (claim races between threads, takeover after
expiry, migration round-trips) without touching the filesystem.

``memory:`` opens a fresh anonymous instance; ``memory:NAME`` opens a
process-wide shared instance, so two components of one test -- e.g. two
fleet worker threads -- can cooperate on the same ledger the way two
processes share a sqlite file.
"""

from __future__ import annotations

import copy
import json
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Iterable

from repro.runner.units import WorkUnit
from repro.store.base import Lease, ResultStore, StoreRecord

#: Process-wide registry of named shared instances (``memory:NAME``).
_SHARED: Dict[str, "MemoryStore"] = {}
_SHARED_LOCK = threading.Lock()


def shared_memory_store(name: str) -> "MemoryStore":
    """The process-wide :class:`MemoryStore` registered under ``name``."""
    with _SHARED_LOCK:
        store = _SHARED.get(name)
        if store is None:
            store = MemoryStore(name=name)
            _SHARED[name] = store
        return store


class MemoryStore(ResultStore):
    """Dict-backed result store with full lease support."""

    backend = "memory"
    supports_leases = True

    def __init__(self, name: Optional[str] = None):
        super().__init__()
        self.name = name
        self._lock = threading.RLock()
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._leases: Dict[str, Lease] = {}

    def location(self) -> str:
        return self.name or ""

    # -- records ---------------------------------------------------------

    def get_record(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            payload = self._entries.get(key)
        return None if payload is None else copy.deepcopy(payload)

    def put_record(
        self,
        key: str,
        payload: Dict[str, Any],
        *,
        unit: Optional[WorkUnit] = None,
    ) -> None:
        # Round-trip through JSON so stored payloads carry exactly what a
        # persistent backend would return (tuples become lists, keys
        # become strings) -- migration verification stays meaningful.
        normalised = json.loads(json.dumps(payload))
        with self._lock:
            self._entries[key] = normalised

    def delete_record(self, key: str) -> bool:
        with self._lock:
            return self._entries.pop(key, None) is not None

    def records(self) -> Iterator[StoreRecord]:
        with self._lock:
            snapshot = sorted(self._entries.items())
        for key, payload in snapshot:
            yield StoreRecord(key=key, payload=copy.deepcopy(payload))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def size_bytes(self) -> int:
        with self._lock:
            return sum(
                len(json.dumps(payload)) for payload in self._entries.values()
            )

    def clear(self, scheme: Optional[str] = None) -> int:
        with self._lock:
            if scheme is None:
                removed = len(self._entries)
                self._entries.clear()
                self._leases.clear()
                return removed
            matching = [
                key
                for key, payload in self._entries.items()
                if (payload.get("seed_scheme") or "pre-seeds") == scheme
            ]
            for key in matching:
                del self._entries[key]
            return len(matching)

    # -- leases ----------------------------------------------------------

    def claim(self, key: str, worker: str, ttl: float) -> bool:
        now = self._now()
        with self._lock:
            if key in self._entries:
                return False
            lease = self._leases.get(key)
            if lease is not None and not lease.expired(now):
                # Per-worker idempotent: re-claiming a held lease
                # refreshes it, so claims lost to transient store
                # errors can be retried safely.
                if lease.worker == worker:
                    self._leases[key] = Lease(
                        key=key, worker=worker, expires=now + ttl
                    )
                    return True
                return False
            self._leases[key] = Lease(key=key, worker=worker, expires=now + ttl)
            return True

    def heartbeat(self, keys: Iterable[str], worker: str, ttl: float) -> int:
        now = self._now()
        extended = 0
        with self._lock:
            for key in keys:
                lease = self._leases.get(key)
                if lease is not None and lease.worker == worker:
                    self._leases[key] = Lease(
                        key=key, worker=worker, expires=now + ttl
                    )
                    extended += 1
        return extended

    def release(self, key: str, worker: str) -> None:
        with self._lock:
            lease = self._leases.get(key)
            if lease is not None and lease.worker == worker:
                del self._leases[key]

    def leases(self) -> List[Lease]:
        with self._lock:
            return [self._leases[key] for key in sorted(self._leases)]


__all__ = ["MemoryStore", "shared_memory_store"]
