"""Backend registry and store-URI resolution.

A store is named by a URI of the form ``<backend>:<location>``:

* ``json-dir:.repro_cache`` -- the default file-per-unit layout;
  ``json-dir:`` alone opens the default ``.repro_cache`` directory.
* ``sqlite:results.db`` -- the single-file WAL-mode database.
* ``memory:`` -- a fresh in-memory store; ``memory:NAME`` a process-wide
  shared one (tests).
* ``http:HOST:PORT`` -- a remote store behind a ``python -m repro cache
  serve`` server (multi-host fleets); supports
  ``?token=...&spool=PATH&timeout=S`` options.

Anything that does not start with a registered backend name is treated as
a plain directory path and opened with the json-dir backend -- exactly
what every pre-store ``cache="some/dir"`` call meant, so existing call
sites keep working unchanged.  Third-party backends register a factory
with :func:`register_backend` (an HTTP/object-store backend slots in here
without touching the engine).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.store.base import ResultStore
from repro.store.json_dir import DEFAULT_CACHE_DIR, JsonDirStore
from repro.store.memory import MemoryStore, shared_memory_store
from repro.store.sqlite import SqliteStore

#: What ``cache=`` / ``store=`` knobs accept: a ready store, a store URI
#: or bare directory path, or ``None`` (caching disabled).
StoreSpec = Union[ResultStore, str, Path, None]

#: Backend factories, keyed by URI prefix; each receives the location part.
_BACKENDS: Dict[str, Callable[[str], ResultStore]] = {}


def register_backend(name: str, factory: Callable[[str], ResultStore]) -> None:
    """Register a backend factory under a URI prefix.

    ``factory(location)`` receives the text after ``<name>:`` and returns
    an open :class:`ResultStore`.
    """
    _BACKENDS[name] = factory


def available_backends() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_BACKENDS)


def _make_json_dir(location: str) -> ResultStore:
    return JsonDirStore(location or DEFAULT_CACHE_DIR)


def _make_sqlite(location: str) -> ResultStore:
    if not location:
        raise ValueError(
            "the sqlite store needs a database path: 'sqlite:results.db'"
        )
    return SqliteStore(location)


def _make_memory(location: str) -> ResultStore:
    return shared_memory_store(location) if location else MemoryStore()


def _make_http(location: str) -> ResultStore:
    from repro.store.http import HttpStore

    return HttpStore(location)


register_backend("json-dir", _make_json_dir)
register_backend("sqlite", _make_sqlite)
register_backend("memory", _make_memory)
register_backend("http", _make_http)

# Fault-injecting chaos wrappers (``chaos+sqlite:...``) register through
# the same mechanism; imported after the built-ins they wrap.
from repro.store import chaos as _chaos  # noqa: E402  (needs register_backend)

_chaos.register_chaos_backends()


def resolve_store(spec: StoreSpec) -> Optional[ResultStore]:
    """Open the store a ``cache=`` / ``--store`` spec describes.

    ``None`` and ready :class:`ResultStore` instances pass through; a
    string is parsed as ``<backend>:<location>`` when the prefix names a
    registered backend, and as a json-dir directory path otherwise (the
    historical ``cache="dir"`` behaviour).
    """
    if spec is None or isinstance(spec, ResultStore):
        return spec
    text = str(spec)
    name, separator, location = text.partition(":")
    if separator and name in _BACKENDS:
        return _BACKENDS[name](location)
    return _make_json_dir(text)


__all__ = [
    "StoreSpec",
    "available_backends",
    "register_backend",
    "resolve_store",
]
