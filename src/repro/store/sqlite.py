"""Single-file SQLite result store with provenance and lease tables.

One WAL-mode database file holds millions of unit results without the
inode blowup of one-file-per-cell: entries live in a ``results`` table
keyed by the canonical unit key, indexed by config token and seed scheme
so per-figure and per-scheme scans are single index lookups instead of
directory walks.  Writes are idempotent upserts (``ON CONFLICT ... DO
UPDATE``), which is what makes fleet takeover safe: two workers writing
the same unit -- e.g. after a lease expired mid-execution -- converge on
one row with bit-identical content.

Two side tables complete the picture:

* ``provenance`` records, per executed unit, the full config snapshot,
  the seed-scheme token, the library version and the exact
  ``python -m repro rerun-unit ...`` command that reproduces the entry
  from nothing (the pycomex-style self-contained archive contract).
  Migrated entries carry no unit object, so they get no provenance row --
  the table describes *executions*, not copies.
* ``leases`` implements the fleet work-unit lease protocol.  ``claim`` is
  one ``BEGIN IMMEDIATE`` transaction (SQLite's write lock serialises
  racing workers, including across processes on a shared filesystem):
  insert the lease, or update it only when the incumbent expired.
  ``heartbeat`` extends only leases still held by the caller, so a worker
  that lost its lease to takeover finds out at the next beat.

The connection is shared across threads behind one lock (the fleet
heartbeat thread beats while the main thread executes), with a busy
timeout for cross-process contention.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.resilience.errors import StoreUnavailableError
from repro.runner.units import UnitResult, WorkUnit
from repro.store.base import Lease, ResultStore, StoreRecord
from repro.store.codec import (
    config_token,
    dump_entry,
    encode_result,
    unit_key,
    unit_provenance,
)

#: Bump when the database layout changes shape.
SQLITE_STORE_SCHEMA = 1

#: Default seconds SQLite waits on a locked database before giving up --
#: applied both as the connection timeout and the ``busy_timeout`` pragma
#: on every connection path, so cross-process contention blocks briefly
#: instead of failing instantly.
DEFAULT_BUSY_TIMEOUT = 30.0

#: ``sqlite3.OperationalError`` messages that mark *transient* contention
#: (retry-worthy) rather than permanent failure.
_TRANSIENT_MARKERS = ("database is locked", "database table is locked", "busy")


def _is_transient(error: sqlite3.OperationalError) -> bool:
    message = str(error).lower()
    return any(marker in message for marker in _TRANSIENT_MARKERS)

_TABLES = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    key TEXT PRIMARY KEY,
    seed_scheme TEXT NOT NULL,
    config TEXT NOT NULL,
    payload TEXT NOT NULL,
    updated REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS results_by_scheme ON results(seed_scheme);
CREATE INDEX IF NOT EXISTS results_by_config ON results(config);
CREATE TABLE IF NOT EXISTS provenance (
    key TEXT PRIMARY KEY,
    unit TEXT NOT NULL,
    config TEXT NOT NULL,
    seed_scheme TEXT NOT NULL,
    code_version TEXT NOT NULL,
    rerun_command TEXT NOT NULL,
    created REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS leases (
    key TEXT PRIMARY KEY,
    worker TEXT NOT NULL,
    expires REAL NOT NULL,
    claimed REAL NOT NULL,
    heartbeats INTEGER NOT NULL DEFAULT 0
);
"""


class SqliteStore(ResultStore):
    """WAL-mode single-file result store."""

    backend = "sqlite"
    supports_leases = True

    def __init__(
        self, path: Union[str, Path], *, timeout: float = DEFAULT_BUSY_TIMEOUT
    ):
        super().__init__()
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        # isolation_level=None: explicit BEGIN/COMMIT, never autocommit
        # surprises inside the lease transaction.
        self._conn = sqlite3.connect(
            str(self.path),
            timeout=timeout,
            isolation_level=None,
            check_same_thread=False,
        )
        self._lock = threading.RLock()
        with self._lock, self._guard():
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            # Never zero: an unset busy timeout turns every cross-process
            # race into an instant "database is locked" failure.
            self._conn.execute(
                f"PRAGMA busy_timeout={max(int(timeout * 1000), 100)}"
            )
            self._conn.executescript(_TABLES)
            self._conn.execute(
                "INSERT OR IGNORE INTO meta(key, value) VALUES('store_schema', ?)",
                (str(SQLITE_STORE_SCHEMA),),
            )

    def _rollback(self) -> None:
        """Best-effort rollback that never masks the original error.

        When ``BEGIN IMMEDIATE`` itself failed (locked database), there
        is no transaction to roll back and a bare ``ROLLBACK`` would
        raise "cannot rollback - no transaction is active" *over* the
        real failure.
        """
        try:
            self._conn.execute("ROLLBACK")
        except sqlite3.Error:
            pass

    @contextmanager
    def _guard(self):
        """Map transient SQLite contention to :class:`StoreUnavailableError`.

        The retry layer (:class:`repro.resilience.retry.RetryingStore`)
        retries exactly that type; permanent failures -- corruption,
        programming errors, a closed connection -- keep their original
        exception class and surface immediately.
        """
        try:
            yield
        except sqlite3.OperationalError as error:
            if _is_transient(error):
                raise StoreUnavailableError(
                    f"sqlite store {self.path} is busy: {error}"
                ) from error
            raise

    def location(self) -> str:
        return str(self.path)

    # -- records ---------------------------------------------------------

    @staticmethod
    def _row_fields(
        key: str, payload: Dict[str, Any], unit: Optional[WorkUnit]
    ) -> Tuple[str, str, str, str, float]:
        scheme = str(payload.get("seed_scheme") or "pre-seeds")
        # The config token is indexed for per-figure scans; entries
        # migrated from backends that do not store it arrive without one.
        config = "" if unit is None else config_token(unit.config)
        return (key, scheme, config, dump_entry(payload), time.time())

    def get_record(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock, self._guard():
            row = self._conn.execute(
                "SELECT payload FROM results WHERE key = ?", (key,)
            ).fetchone()
        if row is None:
            return None
        try:
            payload = json.loads(row[0])
        except ValueError:
            return None
        return payload if isinstance(payload, dict) else None

    _UPSERT = (
        "INSERT INTO results(key, seed_scheme, config, payload, updated) "
        "VALUES(?, ?, ?, ?, ?) "
        "ON CONFLICT(key) DO UPDATE SET "
        "seed_scheme=excluded.seed_scheme, config=excluded.config, "
        "payload=excluded.payload, updated=excluded.updated"
    )

    def put_record(
        self,
        key: str,
        payload: Dict[str, Any],
        *,
        unit: Optional[WorkUnit] = None,
    ) -> None:
        fields = self._row_fields(key, payload, unit)
        with self._lock, self._guard():
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(self._UPSERT, fields)
                if unit is not None:
                    self._put_provenance(key, unit)
                self._conn.execute("COMMIT")
            except BaseException:
                self._rollback()
                raise

    def _put_provenance(self, key: str, unit: WorkUnit) -> None:
        record = unit_provenance(unit)
        self._conn.execute(
            "INSERT INTO provenance(key, unit, config, seed_scheme, "
            "code_version, rerun_command, created) VALUES(?, ?, ?, ?, ?, ?, ?) "
            "ON CONFLICT(key) DO UPDATE SET unit=excluded.unit, "
            "config=excluded.config, seed_scheme=excluded.seed_scheme, "
            "code_version=excluded.code_version, "
            "rerun_command=excluded.rerun_command, created=excluded.created",
            (
                key,
                json.dumps(record["unit"]),
                record["config_token"],
                record["seed_scheme"],
                record["code_version"],
                record["rerun_command"],
                time.time(),
            ),
        )

    def put(self, unit: WorkUnit, result: UnitResult) -> None:
        # One transaction covers the entry and its provenance row; the
        # provenance config column stores the config *token*, so lookups
        # by figure configuration are index scans.
        self.put_record(unit_key(unit), encode_result(unit, result), unit=unit)
        self.stats.writes += 1

    def put_many(self, items: Iterable[Tuple[WorkUnit, UnitResult]]) -> int:
        """Batched upsert: one transaction for the whole batch."""
        rows = []
        units: List[Tuple[str, WorkUnit]] = []
        for unit, result in items:
            key = unit_key(unit)
            rows.append(self._row_fields(key, encode_result(unit, result), unit))
            units.append((key, unit))
        if not rows:
            return 0
        with self._lock, self._guard():
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.executemany(self._UPSERT, rows)
                for key, unit in units:
                    self._put_provenance(key, unit)
                self._conn.execute("COMMIT")
            except BaseException:
                self._rollback()
                raise
        self.stats.writes += len(rows)
        return len(rows)

    def delete_record(self, key: str) -> bool:
        with self._lock, self._guard():
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                cursor = self._conn.execute(
                    "DELETE FROM results WHERE key = ?", (key,)
                )
                self._conn.execute(
                    "DELETE FROM provenance WHERE key = ?", (key,)
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._rollback()
                raise
        return cursor.rowcount > 0

    def records(self) -> Iterator[StoreRecord]:
        with self._lock, self._guard():
            rows = self._conn.execute(
                "SELECT key, payload FROM results ORDER BY key"
            ).fetchall()
        for key, payload_text in rows:
            try:
                payload = json.loads(payload_text)
            except ValueError:
                continue
            if isinstance(payload, dict):
                yield StoreRecord(key=key, payload=payload)

    def __len__(self) -> int:
        with self._lock, self._guard():
            (count,) = self._conn.execute("SELECT COUNT(*) FROM results").fetchone()
        return int(count)

    def size_bytes(self) -> int:
        total = 0
        for suffix in ("", "-wal", "-shm"):
            candidate = Path(str(self.path) + suffix)
            try:
                total += candidate.stat().st_size
            except OSError:
                pass
        return total

    def scheme_counts(self) -> Dict[str, int]:
        """Per-scheme entry counts from one indexed aggregate query."""
        with self._lock, self._guard():
            rows = self._conn.execute(
                "SELECT seed_scheme, COUNT(*) FROM results "
                "GROUP BY seed_scheme ORDER BY seed_scheme"
            ).fetchall()
        return {scheme: int(count) for scheme, count in rows}

    def clear(self, scheme: Optional[str] = None) -> int:
        with self._lock, self._guard():
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                if scheme is None:
                    (removed,) = self._conn.execute(
                        "SELECT COUNT(*) FROM results"
                    ).fetchone()
                    self._conn.execute("DELETE FROM results")
                    self._conn.execute("DELETE FROM provenance")
                    self._conn.execute("DELETE FROM leases")
                else:
                    cursor = self._conn.execute(
                        "DELETE FROM results WHERE seed_scheme = ?", (scheme,)
                    )
                    removed = cursor.rowcount
                    self._conn.execute(
                        "DELETE FROM provenance WHERE seed_scheme = ?", (scheme,)
                    )
                self._conn.execute("COMMIT")
            except BaseException:
                self._rollback()
                raise
        return int(removed)

    def provenance(self, key: str) -> Optional[Dict[str, Any]]:
        """The provenance record of one executed unit, or ``None``."""
        with self._lock, self._guard():
            row = self._conn.execute(
                "SELECT unit, config, seed_scheme, code_version, "
                "rerun_command, created FROM provenance WHERE key = ?",
                (key,),
            ).fetchone()
        if row is None:
            return None
        return {
            "unit": json.loads(row[0]),
            "config_token": row[1],
            "seed_scheme": row[2],
            "code_version": row[3],
            "rerun_command": row[4],
            "created": row[5],
        }

    # -- leases ----------------------------------------------------------

    def claim(self, key: str, worker: str, ttl: float) -> bool:
        # Expiry arithmetic always uses this store instance's clock
        # (``_now``), never a caller-supplied timestamp: all workers
        # sharing a sqlite file are assumed to share one wall clock
        # (same host or NTP-synced shared filesystem).  Behind ``cache
        # serve`` the instance lives in the server process, so the
        # server's clock arbitrates every lease.
        now = self._now()
        with self._lock, self._guard():
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                done = self._conn.execute(
                    "SELECT 1 FROM results WHERE key = ?", (key,)
                ).fetchone()
                if done is not None:
                    self._conn.execute("ROLLBACK")
                    return False
                # A worker re-claiming a lease it already holds wins
                # (refreshing the expiry): claims are idempotent per
                # worker, so a claim whose *acknowledgement* was lost to
                # a transient store error can simply be retried.
                cursor = self._conn.execute(
                    "INSERT INTO leases(key, worker, expires, claimed, heartbeats) "
                    "VALUES(?, ?, ?, ?, 0) "
                    "ON CONFLICT(key) DO UPDATE SET worker=excluded.worker, "
                    "expires=excluded.expires, claimed=excluded.claimed, "
                    "heartbeats=0 WHERE leases.expires <= ? "
                    "OR leases.worker = excluded.worker",
                    (key, worker, now + ttl, now, now),
                )
                claimed = cursor.rowcount == 1
                self._conn.execute("COMMIT")
            except BaseException:
                self._rollback()
                raise
        return claimed

    def heartbeat(self, keys: Iterable[str], worker: str, ttl: float) -> int:
        expires = self._now() + ttl
        extended = 0
        with self._lock, self._guard():
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                for key in keys:
                    cursor = self._conn.execute(
                        "UPDATE leases SET expires = ?, heartbeats = heartbeats + 1 "
                        "WHERE key = ? AND worker = ?",
                        (expires, key, worker),
                    )
                    extended += cursor.rowcount
                self._conn.execute("COMMIT")
            except BaseException:
                self._rollback()
                raise
        return extended

    def release(self, key: str, worker: str) -> None:
        with self._lock, self._guard():
            self._conn.execute(
                "DELETE FROM leases WHERE key = ? AND worker = ?", (key, worker)
            )

    def leases(self) -> List[Lease]:
        with self._lock, self._guard():
            rows = self._conn.execute(
                "SELECT key, worker, expires FROM leases ORDER BY key"
            ).fetchall()
        return [Lease(key=k, worker=w, expires=float(e)) for k, w, e in rows]

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._conn.close()


__all__ = ["DEFAULT_BUSY_TIMEOUT", "SQLITE_STORE_SCHEMA", "SqliteStore"]
