"""Deterministic store-fault injection: the ``chaos+<backend>`` wrapper.

``chaos+sqlite:fleet.db?rate=0.3&seed=7`` opens the normal sqlite store
and injects a *seeded schedule* of faults in front of it:

* transient :class:`~repro.resilience.errors.StoreUnavailableError` on
  get/put/delete/claim/heartbeat/release calls,
* torn ``put_many`` batches (half the batch lands, then the error), and
* fixed extra latency per operation (high-latency-store emulation).

The schedule is a pure function of ``(seed, operation, call index)`` via
SHA-256 -- no ``random()`` -- so a fault pattern reproduces exactly
across reruns.  Two deliberate properties make chaos runs *convergent*
despite thread-interleaving nondeterminism in who performs which call:

* **Bounded bursts.**  At most ``burst`` consecutive calls of one
  operation fail; with ``burst <= store_retries`` every retried logical
  operation eventually reaches the backend, so injected faults can slow
  a fleet but never wedge it.
* **Injection before effect** (except the torn batch, whose half-write
  is the point).  A failed call leaves the backend untouched, and the
  retried call is an idempotent upsert / worker-idempotent claim, so
  repeats converge on identical state.

Registered with the store registry as ``chaos+json-dir``, ``chaos+sqlite``
and ``chaos+memory`` -- the ``:``-partitioned backend name simply contains
a ``+`` -- so every ``--store`` / ``cache=`` call site gains fault
injection without code changes.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple
from urllib.parse import parse_qs

from repro.resilience.errors import StoreUnavailableError
from repro.runner.units import UnitResult, WorkUnit
from repro.store.base import Lease, ResultStore, StoreRecord

#: Operations eligible for fault injection.  Read-only inspection calls
#: (``records``, ``info``, ...) stay fault-free: they are test/CLI
#: plumbing, not the protocol under test.
CHAOS_OPS = ("get", "put", "delete", "claim", "heartbeat", "release", "put_many")

#: Inner backends the registry wires a ``chaos+`` prefix for.
CHAOS_BACKENDS = ("json-dir", "sqlite", "memory", "http")


def _schedule_fraction(seed: int, op: str, index: int) -> float:
    """Deterministic fraction in ``[0, 1)`` for one (op, call) slot."""
    token = f"chaos:{seed}:{op}:{index}".encode("utf-8")
    digest = hashlib.sha256(token).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class ChaosConfig:
    """The seeded fault schedule of one chaos store.

    Attributes
    ----------
    seed:
        Schedule seed; same seed, same fault pattern.
    rate:
        Target fraction of eligible calls that fail (0 disables faults,
        leaving only ``latency``).
    latency:
        Extra seconds every eligible call sleeps before running.
    burst:
        Maximum *consecutive* injected failures per operation.  Keep it
        at most the retry layer's ``store_retries`` (default 3) so every
        retried operation converges.
    ops:
        Operations to inject into (``None``: all of :data:`CHAOS_OPS`).
    """

    seed: int = 0
    rate: float = 0.25
    latency: float = 0.0
    burst: int = 2
    ops: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"chaos rate must be in [0, 1], got {self.rate!r}")
        if self.burst < 1:
            raise ValueError(f"chaos burst must be >= 1, got {self.burst!r}")
        if self.latency < 0:
            raise ValueError(f"chaos latency must be >= 0, got {self.latency!r}")
        if self.ops is not None:
            unknown = set(self.ops) - set(CHAOS_OPS)
            if unknown:
                raise ValueError(
                    f"unknown chaos ops {sorted(unknown)}; known: {CHAOS_OPS}"
                )

    def eligible(self, op: str) -> bool:
        return self.ops is None or op in self.ops


def parse_chaos_location(location: str) -> Tuple[str, ChaosConfig]:
    """Split ``<inner-location>?<params>`` into location and config.

    Recognised parameters: ``seed``, ``rate``, ``latency``, ``burst``,
    ``ops`` (comma-separated).  Unknown parameters are an error -- a typo
    in a fault schedule must not silently test nothing.
    """
    inner, separator, query = location.rpartition("?")
    if not separator:
        return location, ChaosConfig()
    params = parse_qs(query, keep_blank_values=True)
    kwargs: Dict[str, Any] = {}
    for name, values in params.items():
        value = values[-1]
        if name == "seed":
            kwargs["seed"] = int(value)
        elif name == "rate":
            kwargs["rate"] = float(value)
        elif name == "latency":
            kwargs["latency"] = float(value)
        elif name == "burst":
            kwargs["burst"] = int(value)
        elif name == "ops":
            kwargs["ops"] = tuple(
                op.strip() for op in value.split(",") if op.strip()
            )
        else:
            raise ValueError(
                f"unknown chaos parameter {name!r}; known: seed, rate, "
                f"latency, burst, ops"
            )
    return inner, ChaosConfig(**kwargs)


class ChaosStore(ResultStore):
    """Fault-injecting wrapper around a real result store."""

    def __init__(
        self,
        inner: ResultStore,
        config: Optional[ChaosConfig] = None,
        *,
        uri_text: Optional[str] = None,
    ):
        # No super().__init__(): stats delegates to the wrapped store.
        self.inner = inner
        self.config = config if config is not None else ChaosConfig()
        self._uri_text = uri_text
        self._lock = threading.Lock()
        #: Eligible calls seen, per operation.
        self.calls: Counter = Counter()
        #: Faults actually injected, per operation.
        self.injected: Counter = Counter()
        self._consecutive: Counter = Counter()

    # -- identity --------------------------------------------------------

    @property
    def backend(self) -> str:  # type: ignore[override]
        return f"chaos+{self.inner.backend}"

    @property
    def supports_leases(self) -> bool:  # type: ignore[override]
        return self.inner.supports_leases

    @property
    def stats(self):  # type: ignore[override]
        return self.inner.stats

    def location(self) -> str:
        return self.inner.location()

    def uri(self) -> str:
        if self._uri_text is not None:
            return self._uri_text
        return f"chaos+{self.inner.uri()}"

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)

    # -- the schedule ----------------------------------------------------

    def _inject(self, op: str) -> None:
        """Sleep the configured latency, then maybe raise the op's fault."""
        config = self.config
        if not config.eligible(op):
            return
        if config.latency:
            time.sleep(config.latency)
        with self._lock:
            index = self.calls[op]
            self.calls[op] += 1
            fire = (
                config.rate > 0.0
                and _schedule_fraction(config.seed, op, index) < config.rate
                and self._consecutive[op] < config.burst
            )
            if fire:
                self._consecutive[op] += 1
                self.injected[op] += 1
            else:
                self._consecutive[op] = 0
        if fire:
            raise StoreUnavailableError(
                f"chaos: injected fault on {op} (call {index}, seed "
                f"{config.seed})"
            )

    # -- guarded record-level API ----------------------------------------

    def get_record(self, key: str) -> Optional[Dict[str, Any]]:
        self._inject("get")
        return self.inner.get_record(key)

    def put_record(
        self,
        key: str,
        payload: Dict[str, Any],
        *,
        unit: Optional[WorkUnit] = None,
    ) -> None:
        self._inject("put")
        self.inner.put_record(key, payload, unit=unit)

    def delete_record(self, key: str) -> bool:
        self._inject("delete")
        return self.inner.delete_record(key)

    def put_many(self, items: Iterable[Tuple[WorkUnit, UnitResult]]) -> int:
        batch = list(items)
        try:
            self._inject("put_many")
        except StoreUnavailableError:
            # Torn batch: half the writes land, then the failure -- the
            # worst case for a batched upsert.  A full-batch retry
            # converges because every write is an idempotent upsert.
            for unit, result in batch[: len(batch) // 2]:
                self.inner.put(unit, result)
            raise
        return self.inner.put_many(batch)

    # -- guarded lease protocol ------------------------------------------

    def claim(self, key: str, worker: str, ttl: float) -> bool:
        self._inject("claim")
        return self.inner.claim(key, worker, ttl)

    def heartbeat(self, keys: Iterable[str], worker: str, ttl: float) -> int:
        self._inject("heartbeat")
        return self.inner.heartbeat(keys, worker, ttl)

    def release(self, key: str, worker: str) -> None:
        self._inject("release")
        self.inner.release(key, worker)

    # -- fault-free inspection / lifecycle -------------------------------

    def records(self) -> Iterator[StoreRecord]:
        return self.inner.records()

    def __len__(self) -> int:
        return len(self.inner)

    def size_bytes(self) -> int:
        return self.inner.size_bytes()

    def scheme_counts(self) -> Dict[str, int]:
        return self.inner.scheme_counts()

    def clear(self, scheme: Optional[str] = None) -> int:
        return self.inner.clear(scheme)

    def leases(self) -> List[Lease]:
        return self.inner.leases()

    def close(self) -> None:
        self.inner.close()


def _chaos_factory(inner_name: str):
    def factory(location: str) -> ResultStore:
        from repro.store.registry import resolve_store

        inner_location, config = parse_chaos_location(location)
        inner = resolve_store(f"{inner_name}:{inner_location}")
        return ChaosStore(
            inner, config, uri_text=f"chaos+{inner_name}:{location}"
        )

    return factory


def register_chaos_backends() -> None:
    """Register ``chaos+<backend>`` for every wrappable built-in backend."""
    from repro.store.registry import register_backend

    for name in CHAOS_BACKENDS:
        register_backend(f"chaos+{name}", _chaos_factory(name))


__all__ = [
    "CHAOS_BACKENDS",
    "CHAOS_OPS",
    "ChaosConfig",
    "ChaosStore",
    "parse_chaos_location",
    "register_chaos_backends",
]
