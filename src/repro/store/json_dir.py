"""File-per-unit result store: today's ``.repro_cache/`` layout.

This is the default backend and it is **byte-compatible** with the layout
the pre-store :class:`repro.runner.cache.ResultCache` wrote: one JSON file
per unit under ``<root>/<2-hex>/<sha256>.json``, written through a
temporary file plus ``os.replace`` so a crashed or killed run never leaves
a truncated entry behind.  Existing cache directories keep working
unchanged, and entries this backend writes are bit-identical to what the
old cache would have written.

Entries are sharded into 256 subdirectories by the first two hex digits
of the key to keep directory listings small at paper scale (a 14 x 14
grid times six configurations is ~1200 cells per figure).  At millions of
cells the one-file-per-unit layout runs into inode and directory-scan
limits -- that is what the :mod:`sqlite <repro.store.sqlite>` backend is
for; ``python -m repro cache migrate`` moves entries between them.

Leases live under ``<root>/leases/`` as one small JSON file per held
unit, created with ``O_CREAT | O_EXCL`` so exactly one worker of a fleet
wins a claim race even on a shared filesystem.  Takeover of an expired
lease unlinks the stale file and re-creates it with ``O_EXCL`` -- every
racer may unlink, but only one create can succeed.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import time
from collections import Counter
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

from repro.resilience.errors import StoreUnavailableError
from repro.runner.units import WorkUnit
from repro.store.base import Lease, ResultStore, StoreRecord
from repro.store.codec import dump_entry

#: Default store root, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Subdirectory of the root holding the lease files.
LEASE_DIR = "leases"


class JsonDirStore(ResultStore):
    """File-per-unit result store under a root directory."""

    backend = "json-dir"
    supports_leases = True

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR):
        super().__init__()
        self.root = Path(root)

    def location(self) -> str:
        return str(self.root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _lease_path(self, key: str) -> Path:
        return self.root / LEASE_DIR / f"{key}.lease"

    # -- records ---------------------------------------------------------

    def get_record(self, key: str) -> Optional[Dict[str, Any]]:
        try:
            payload = json.loads(self._path(key).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            # A missing, truncated or hand-edited entry is a miss: the
            # caller re-simulates one cell instead of aborting the sweep.
            return None
        return payload if isinstance(payload, dict) else None

    def put_record(
        self,
        key: str,
        payload: Dict[str, Any],
        *,
        unit: Optional[WorkUnit] = None,
    ) -> None:
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle, tmp_path = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
        except OSError as error:
            # A directory that cannot be created or written is transient
            # from the sweep's point of view (full disk, flaky network
            # filesystem): let the retry layer have a go before the
            # failure surfaces.
            raise StoreUnavailableError(
                f"json-dir store {self.root} is not writable: {error}"
            ) from error
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(dump_entry(payload))
            os.replace(tmp_path, path)
        except BaseException as error:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            if isinstance(error, OSError):
                raise StoreUnavailableError(
                    f"json-dir store {self.root} write failed: {error}"
                ) from error
            raise

    def delete_record(self, key: str) -> bool:
        try:
            self._path(key).unlink()
        except OSError:
            return False
        return True

    def records(self) -> Iterator[StoreRecord]:
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("??/*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if isinstance(payload, dict):
                yield StoreRecord(key=path.stem, payload=payload)

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    def size_bytes(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(path.stat().st_size for path in self.root.glob("??/*.json"))

    #: ``put`` writes ``schema`` and ``seed_scheme`` first, so the scheme
    #: always sits inside the first few dozen bytes of an entry.
    _SCHEME_FIELD = re.compile(r'"seed_scheme"\s*:\s*"([^"]*)"')

    def _entry_scheme(self, path: Path) -> str:
        """Seed scheme of one entry, read from a short prefix of the file."""
        try:
            with open(path, encoding="utf-8", errors="replace") as stream:
                head = stream.read(512)
        except OSError:
            head = ""
        match = self._SCHEME_FIELD.search(head)
        return match.group(1) if match else "pre-seeds"

    def scheme_counts(self) -> Dict[str, int]:
        """Entry counts per seed scheme, from one directory scan.

        Reads only a short prefix of each entry (the scheme is one of the
        first fields written), so the breakdown stays cheap even for
        paper-scale stores whose per-run ratio lists dominate the bytes.
        Entries written before the scheme field existed (or unreadable
        ones) are reported under ``"pre-seeds"``.
        """
        counts: Counter = Counter()
        if not self.root.is_dir():
            return {}
        for path in self.root.glob("??/*.json"):
            counts[self._entry_scheme(path)] += 1
        return dict(sorted(counts.items()))

    def clear(self, scheme: Optional[str] = None) -> int:
        """Delete entries (all, or one scheme's); returns the count removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("??/*.json"):
            if scheme is not None and self._entry_scheme(path) != scheme:
                continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for shard in self.root.glob("??"):
            try:
                shard.rmdir()
            except OSError:
                pass  # non-empty (entries of other schemes remain)
        if scheme is None:
            for lease in self.root.glob(f"{LEASE_DIR}/*.lease"):
                try:
                    lease.unlink()
                except OSError:
                    pass
            try:
                (self.root / LEASE_DIR).rmdir()
            except OSError:
                pass
        return removed

    # -- leases ----------------------------------------------------------

    def _write_lease_excl(self, path: Path, worker: str, ttl: float) -> bool:
        try:
            handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return False
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            # ``_now()``: lease expiry is computed by the process that
            # owns the store instance -- workers sharing a json-dir
            # lease directory must share one wall clock (same host, or
            # NTP-synced hosts on a shared filesystem).
            json.dump({"worker": worker, "expires": self._now() + ttl}, stream)
        return True

    def _read_lease(self, path: Path) -> Optional[Lease]:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            return Lease(
                key=path.stem,
                worker=str(payload["worker"]),
                expires=float(payload["expires"]),
            )
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def claim(self, key: str, worker: str, ttl: float) -> bool:
        if self.get_record(key) is not None:
            return False  # already done: results are never re-leased
        path = self._lease_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        if self._write_lease_excl(path, worker, ttl):
            return True
        lease = self._read_lease(path)
        if lease is not None and not lease.expired(self._now()):
            # Re-claiming a lease this worker already holds succeeds
            # (and refreshes it): claims are idempotent per worker, so
            # a claim whose acknowledgement was lost to a transient
            # store error can simply be retried.
            if lease.worker == worker:
                self.heartbeat([key], worker, ttl)
                return True
            return False
        # Expired (or unreadable, i.e. a crashed writer): take it over.
        # Every racer may unlink the stale file, but O_EXCL guarantees
        # exactly one of them re-creates it.
        try:
            os.unlink(path)
        except OSError:
            pass
        return self._write_lease_excl(path, worker, ttl)

    def heartbeat(self, keys: Iterable[str], worker: str, ttl: float) -> int:
        extended = 0
        for key in keys:
            path = self._lease_path(key)
            lease = self._read_lease(path)
            if lease is None or lease.worker != worker:
                continue  # lost (expired and taken over): do not refresh
            handle, tmp_path = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".lease"
            )
            try:
                with os.fdopen(handle, "w", encoding="utf-8") as stream:
                    json.dump(
                        {"worker": worker, "expires": self._now() + ttl}, stream
                    )
                os.replace(tmp_path, path)
                extended += 1
            except OSError:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
        return extended

    def release(self, key: str, worker: str) -> None:
        path = self._lease_path(key)
        lease = self._read_lease(path)
        if lease is not None and lease.worker == worker:
            try:
                os.unlink(path)
            except OSError:
                pass

    def leases(self) -> List[Lease]:
        lease_dir = self.root / LEASE_DIR
        if not lease_dir.is_dir():
            return []
        found = []
        for path in sorted(lease_dir.glob("*.lease")):
            lease = self._read_lease(path)
            if lease is not None:
                found.append(lease)
        return found


__all__ = ["DEFAULT_CACHE_DIR", "JsonDirStore"]
