"""The result-store contract every backend implements.

A :class:`ResultStore` is a durable ledger of executed work units keyed by
the canonical :func:`~repro.store.codec.unit_key`.  The engine talks to it
through the unit-level API (:meth:`ResultStore.get` /
:meth:`ResultStore.put`); migration and inspection tools use the
record-level API (:meth:`ResultStore.get_record` /
:meth:`ResultStore.put_record` / :meth:`ResultStore.records`), which moves
raw payloads without re-deriving keys, so entries survive backend moves
byte-for-byte.

Lease-capable backends additionally implement the **work-unit lease
protocol** used by fleet execution (:mod:`repro.runner.fleet`):

* :meth:`ResultStore.claim` atomically acquires a TTL lease on one unit
  key -- exactly one worker of a fleet wins a live unit, and a unit whose
  result already exists can never be claimed.
* :meth:`ResultStore.heartbeat` extends the leases a worker holds while it
  executes, so long units survive their TTL.
* A lease whose TTL elapsed is *expired*: any worker's next
  :meth:`ResultStore.claim` takes it over, which is what makes a fleet
  crash-tolerant -- completed units are idempotent upserts, so takeover
  after a worker died mid-unit is always safe.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.runner.units import UnitResult, WorkUnit
from repro.store.codec import decode_payload, encode_result, unit_key


@dataclass
class StoreStats:
    """Hit/miss/write counters of one store instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0


@dataclass(frozen=True)
class StoreRecord:
    """One raw entry: the canonical key and the JSON-compatible payload."""

    key: str
    payload: Dict[str, Any]


@dataclass(frozen=True)
class Lease:
    """One live work-unit lease."""

    key: str
    worker: str
    expires: float

    def expired(self, now: float) -> bool:
        return self.expires <= now


@dataclass(frozen=True)
class StoreInfo:
    """Summary of a store's contents (``python -m repro cache info``)."""

    backend: str
    location: str
    entries: int
    size_bytes: int
    scheme_counts: Dict[str, int] = field(default_factory=dict)


class LeaseUnsupportedError(RuntimeError):
    """Raised when fleet execution targets a backend without lease support."""


class ResultStore(abc.ABC):
    """Pluggable backend holding executed work-unit results.

    Subclasses implement the record-level primitives; the unit-level API,
    statistics and scheme breakdown are derived here so every backend
    behaves identically at the engine boundary.
    """

    #: Registry name of the backend (``"json-dir"``, ``"sqlite"``, ...).
    backend: str = "abstract"

    #: Whether the backend implements the work-unit lease protocol.
    supports_leases: bool = False

    def __init__(self) -> None:
        self.stats = StoreStats()

    # -- unit-level API (what the engine uses) ---------------------------

    def get(self, unit: WorkUnit) -> Optional[UnitResult]:
        """Return the stored result of ``unit``, or ``None`` on a miss."""
        payload = self.get_record(unit_key(unit))
        result = None if payload is None else decode_payload(payload)
        if result is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, unit: WorkUnit, result: UnitResult) -> None:
        """Persist the result of one executed unit (idempotent upsert)."""
        self.put_record(unit_key(unit), encode_result(unit, result), unit=unit)
        self.stats.writes += 1

    def put_many(self, items: Iterable[Tuple[WorkUnit, UnitResult]]) -> int:
        """Persist a batch of results; returns the number written.

        The default writes one by one; backends with cheaper batched
        writes (sqlite) override this with a single transaction.
        """
        written = 0
        for unit, result in items:
            self.put(unit, result)
            written += 1
        return written

    # -- record-level API (migration / inspection) -----------------------

    @abc.abstractmethod
    def get_record(self, key: str) -> Optional[Dict[str, Any]]:
        """Raw payload stored under ``key``, or ``None``."""

    @abc.abstractmethod
    def put_record(
        self,
        key: str,
        payload: Dict[str, Any],
        *,
        unit: Optional[WorkUnit] = None,
    ) -> None:
        """Store ``payload`` under ``key`` (idempotent upsert).

        ``unit`` is supplied when the write comes from an execution (not a
        migration); backends with a provenance layer record it.
        """

    def delete_record(self, key: str) -> bool:
        """Remove the entry stored under ``key``; ``True`` if one existed.

        Used by the quarantine workflow (a healed unit's quarantine
        record is deleted after a successful rerun); backends without
        record deletion inherit this error.
        """
        raise NotImplementedError(
            f"store backend {self.backend!r} does not support record deletion"
        )

    @abc.abstractmethod
    def records(self) -> Iterator[StoreRecord]:
        """Iterate every readable entry (migration's source side)."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of entries currently stored."""

    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Total persistent size of the store."""

    @abc.abstractmethod
    def clear(self, scheme: Optional[str] = None) -> int:
        """Delete entries -- all of them, or only one seed scheme's.

        Returns the number of entries removed.
        """

    def scheme_counts(self) -> Dict[str, int]:
        """Entry counts per seed scheme.

        Backends with indexed scheme columns (sqlite) or cheap prefix
        scans (json-dir) override this; the default reads every payload.
        Entries written before the scheme field existed are reported under
        ``"pre-seeds"`` -- they are misses on lookup but still occupy
        space, so the breakdown accounts for them.
        """
        counts: Dict[str, int] = {}
        for record in self.records():
            scheme = record.payload.get("seed_scheme") or "pre-seeds"
            counts[scheme] = counts.get(scheme, 0) + 1
        return dict(sorted(counts.items()))

    # -- lease protocol (fleet execution) --------------------------------

    def _now(self) -> float:
        """The authoritative clock for all lease-expiry arithmetic.

        Every ``claim``/``heartbeat`` implementation derives expiry times
        from this hook -- never from a caller-supplied timestamp -- so the
        process that *owns* the store instance owns the clock.  For the
        file-backed and sqlite backends that process is the worker itself,
        which is why those paths carry a **same-host assumption**: all
        workers sharing a ``sqlite:``/``json-dir:`` store must share one
        wall clock (same machine, or NTP-synced hosts on a shared
        filesystem).  The ``http:`` backend removes that assumption by
        evaluating ``_now()`` inside the server process, making the server
        the single arbiter -- a worker with a skewed clock can never
        compute its way into a premature lease takeover.

        Overridable in tests to simulate clock skew deterministically.
        """
        return time.time()

    def _lease_unsupported(self) -> LeaseUnsupportedError:
        return LeaseUnsupportedError(
            f"store backend {self.backend!r} does not support work-unit "
            f"leases; fleet execution needs a lease-capable store "
            f"(sqlite, json-dir or memory)"
        )

    def claim(self, key: str, worker: str, ttl: float) -> bool:
        """Atomically lease ``key`` for ``worker`` for ``ttl`` seconds.

        Returns ``True`` when the lease was acquired: the key has no
        result yet and no other worker holds a live lease on it (expired
        leases are taken over).  Exactly one concurrent claimer wins.
        """
        raise self._lease_unsupported()

    def heartbeat(self, keys: Iterable[str], worker: str, ttl: float) -> int:
        """Extend the leases ``worker`` holds on ``keys`` by ``ttl``.

        Returns the number of leases successfully extended; a key whose
        lease was lost (expired and taken over) is not extended.
        """
        raise self._lease_unsupported()

    def release(self, key: str, worker: str) -> None:
        """Drop ``worker``'s lease on ``key`` (no-op if not held)."""
        raise self._lease_unsupported()

    def leases(self) -> List[Lease]:
        """Every lease currently recorded (live or expired)."""
        raise self._lease_unsupported()

    # -- lifecycle / description -----------------------------------------

    @abc.abstractmethod
    def location(self) -> str:
        """Human-readable location (path, URI, instance name)."""

    def uri(self) -> str:
        """The store URI that re-opens this store."""
        return f"{self.backend}:{self.location()}"

    def info(self) -> StoreInfo:
        """One-scan summary: entry count, size, scheme breakdown."""
        return StoreInfo(
            backend=self.backend,
            location=self.location(),
            entries=len(self),
            size_bytes=self.size_bytes(),
            scheme_counts=self.scheme_counts(),
        )

    def close(self) -> None:
        """Release backend resources (connections, handles)."""

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = [
    "Lease",
    "LeaseUnsupportedError",
    "ResultStore",
    "StoreInfo",
    "StoreRecord",
    "StoreStats",
]
