"""Pluggable result-store backends behind one :class:`ResultStore` contract.

The store is the durable ledger of what has already been simulated: every
executed work unit is one entry, keyed by a canonical backend-independent
hash of the unit's self-describing fields (:mod:`repro.store.codec`).
Three backends ship behind the registry (:mod:`repro.store.registry`):

* ``json-dir`` (:mod:`repro.store.json_dir`) -- one JSON file per unit
  under ``.repro_cache/``, byte-compatible with the pre-store cache
  layout; the default.
* ``sqlite`` (:mod:`repro.store.sqlite`) -- a single-file WAL-mode
  database that holds millions of cells with indexed config/scheme
  lookups, batched upserts, and a provenance table recording the config
  snapshot, scheme token, code version and exact re-run command per unit.
* ``memory`` (:mod:`repro.store.memory`) -- process-local, for tests.
* ``http`` (:mod:`repro.store.http`) -- a remote store behind a
  ``python -m repro cache serve`` server (:mod:`repro.store.server`),
  with server-clock lease arbitration and an opt-in write-behind spool
  for multi-host fleets.

Lease-capable backends additionally implement the **work-unit lease
protocol** (atomic TTL claims, heartbeats, expiry takeover) that
:mod:`repro.runner.fleet` builds cooperative fleet execution on: N
independent processes share one store, split one grid with no
coordinator, and tolerate worker crashes because completed units are
idempotent upserts.

:mod:`repro.store.migrate` copies entries between backends with read-back
verification, so existing ``.repro_cache/`` directories are never
orphaned by switching backends.
"""

from repro.store.base import (
    Lease,
    LeaseUnsupportedError,
    ResultStore,
    StoreInfo,
    StoreRecord,
    StoreStats,
)
from repro.store.chaos import ChaosConfig, ChaosStore
from repro.store.codec import (
    CACHE_FORMAT_VERSION,
    RESULT_SCHEMA,
    config_token,
    decode_payload,
    encode_result,
    unit_key,
    unit_provenance,
)
from repro.store.http import DEFAULT_TIMEOUT, HttpStore, HttpStoreError
from repro.store.json_dir import DEFAULT_CACHE_DIR, JsonDirStore
from repro.store.memory import MemoryStore, shared_memory_store
from repro.store.migrate import MigrationReport, StoreMigrationError, migrate_store
from repro.store.registry import (
    StoreSpec,
    available_backends,
    register_backend,
    resolve_store,
)
from repro.store.server import DEFAULT_HOST, DEFAULT_PORT, StoreServer
from repro.store.sqlite import DEFAULT_BUSY_TIMEOUT, SqliteStore

__all__ = [
    "CACHE_FORMAT_VERSION",
    "ChaosConfig",
    "ChaosStore",
    "DEFAULT_BUSY_TIMEOUT",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_TIMEOUT",
    "HttpStore",
    "HttpStoreError",
    "Lease",
    "LeaseUnsupportedError",
    "MemoryStore",
    "MigrationReport",
    "RESULT_SCHEMA",
    "ResultStore",
    "SqliteStore",
    "JsonDirStore",
    "StoreInfo",
    "StoreMigrationError",
    "StoreRecord",
    "StoreServer",
    "StoreSpec",
    "StoreStats",
    "available_backends",
    "config_token",
    "decode_payload",
    "encode_result",
    "migrate_store",
    "register_backend",
    "resolve_store",
    "shared_memory_store",
    "unit_key",
    "unit_provenance",
]
