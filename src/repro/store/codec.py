"""Canonical unit keys, entry payloads and provenance records.

Every result-store backend speaks the same wire format, defined here:

* :func:`unit_key` -- the SHA-256 cache key of one work unit, hashed over
  the canonical description of the unit (config token, channel point, run
  range, seed derivation, format version).  The key is backend-independent,
  so entries migrate between backends without rekeying and a fleet of
  workers sharing a store agree on unit identity by construction.
* :func:`encode_result` / :func:`decode_payload` -- the JSON entry payload.
  The encoder emits fields in the exact order the historical
  ``.repro_cache/`` files used (``schema`` and ``seed_scheme`` first), so
  the ``json-dir`` backend stays byte-identical to the pre-store layout
  and cheap prefix scans (scheme breakdowns) keep working.
* :func:`unit_provenance` -- the self-contained provenance record the
  ``sqlite`` backend stores per unit: full config snapshot, scheme token,
  code version and the exact command that re-executes the unit from
  nothing (the pycomex-style "archive" contract).

JSON serialises floats via ``repr`` (shortest round-trip form), so ratios
reloaded from any backend are bit-identical to freshly computed ones.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

from repro.core.config import SimulationConfig
from repro.runner.units import UnitResult, WorkUnit
from repro.seeds import get_scheme

#: Key-derivation version: bump when the canonical unit description (the
#: hashed fields) changes shape.  Version 2 added the seed-scheme token.
CACHE_FORMAT_VERSION = 2

#: Entry payload schema: bump when the stored payload changes shape.
#: Schema 2 added the ``schema`` and ``seed_scheme`` fields; entries with
#: any other schema (including pre-schema ones) are treated as misses, not
#: errors, so stale stores degrade to re-simulation.
RESULT_SCHEMA = 2


def config_token(config: SimulationConfig) -> str:
    """Canonical JSON token of the result-defining fields of a config.

    The display ``label`` is excluded: relabelling a configuration must not
    invalidate its cached results.
    """
    payload = {
        "code": config.code,
        "tx_model": config.tx_model,
        "k": config.k,
        "expansion_ratio": config.expansion_ratio,
        "nsent": config.nsent,
        "code_options": config.code_options,
        "tx_options": config.tx_options,
    }
    return json.dumps(payload, sort_keys=True, default=repr)


def unit_key(unit: WorkUnit) -> str:
    """Stable SHA-256 store key of one work unit.

    The seed-scheme *token* (name + stream-format version) is part of the
    key: schemes draw different streams, so results of one scheme must
    never satisfy a lookup under another -- unlike ``fastpath``/``kernel``,
    which are bit-identical wall-clock knobs and stay excluded.
    """
    payload = {
        "version": CACHE_FORMAT_VERSION,
        "config": config_token(unit.config),
        "p": unit.p,
        "q": unit.q,
        "seed_path": list(unit.seed_path),
        "run_start": unit.run_start,
        "run_stop": unit.run_stop,
        "base_seed": unit.base_seed,
        "fresh_code_per_run": unit.fresh_code_per_run,
        "code_seed_path": None
        if unit.code_seed_path is None
        else list(unit.code_seed_path),
        "seed_scheme": get_scheme(unit.seed_scheme).token(),
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return digest


def encode_result(unit: WorkUnit, result: UnitResult) -> Dict[str, Any]:
    """Entry payload of one executed unit, in the canonical field order.

    ``schema`` and ``seed_scheme`` come first so backends that scan entry
    prefixes (the json-dir scheme breakdown) find them in the first few
    dozen bytes -- the exact layout the historical cache files used.
    """
    return {
        "schema": RESULT_SCHEMA,
        "seed_scheme": unit.seed_scheme,
        "seed_path": list(result.seed_path),
        "run_start": result.run_start,
        "run_stop": result.run_stop,
        "inefficiency_ratios": list(result.inefficiency_ratios),
        "received_ratios": list(result.received_ratios),
        "failures": result.failures,
    }


def decode_payload(payload: Dict[str, Any]) -> Optional[UnitResult]:
    """Rebuild a :class:`UnitResult` from an entry payload.

    Returns ``None`` for payloads of a different schema generation or with
    missing/malformed fields: a store entry that cannot be decoded is a
    miss, never an error -- re-simulating one cell beats aborting a sweep.
    """
    try:
        if int(payload.get("schema", 1)) != RESULT_SCHEMA:
            return None
        return UnitResult(
            seed_path=tuple(payload["seed_path"]),
            run_start=int(payload["run_start"]),
            run_stop=int(payload["run_stop"]),
            inefficiency_ratios=tuple(payload["inefficiency_ratios"]),
            received_ratios=tuple(payload["received_ratios"]),
            failures=int(payload["failures"]),
        )
    except (ValueError, KeyError, TypeError):
        return None


def dump_entry(payload: Dict[str, Any]) -> str:
    """Serialise an entry payload exactly as the json-dir files store it."""
    return json.dumps(payload)


def rerun_command(unit: WorkUnit) -> str:
    """The exact shell command that re-executes one unit from nothing.

    ``python -m repro rerun-unit '<unit-json>'`` rebuilds the unit from its
    self-describing payload (config snapshot, channel point, run range,
    seed scheme), executes it, and prints the result payload -- so a store
    entry's provenance record is sufficient to reproduce the entry on any
    machine with the same code version.
    """
    return f"python -m repro rerun-unit '{json.dumps(unit.to_payload())}'"


def unit_provenance(unit: WorkUnit) -> Dict[str, Any]:
    """Self-contained provenance record of one unit (sqlite backend).

    The record follows the pycomex archive shape: a full config snapshot,
    the seed-scheme token, the library version that produced the entry and
    the exact re-run command, so results stay auditable and reproducible
    after the sweep that created them is gone.
    """
    from repro import __version__

    return {
        "unit": unit.to_payload(),
        "config_token": config_token(unit.config),
        "seed_scheme": get_scheme(unit.seed_scheme).token(),
        "code_version": __version__,
        "rerun_command": rerun_command(unit),
    }


__all__ = [
    "CACHE_FORMAT_VERSION",
    "RESULT_SCHEMA",
    "config_token",
    "unit_key",
    "encode_result",
    "decode_payload",
    "dump_entry",
    "rerun_command",
    "unit_provenance",
]
