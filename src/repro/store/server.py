"""The ``cache serve`` front end: any store, served over HTTP.

``python -m repro cache serve sqlite:results.db --host 0.0.0.0 --port 8737``
starts a :class:`StoreServer` -- a threaded stdlib HTTP server that fronts
one *inner* :class:`~repro.store.base.ResultStore` (typically ``sqlite:``)
and exposes the full record/lease/quarantine surface as JSON endpoints.
Remote workers talk to it through the ``http:HOST:PORT`` client backend
(:mod:`repro.store.http`), which is a drop-in store behind the usual
registry, so ``--store http:...`` composes with fleets, failure policies
and ``chaos+`` wrappers unchanged.

Why a server at all: the sqlite/json-dir lease paths assume every worker
shares one wall clock and one filesystem.  Behind this server, the inner
store instance lives in the server process, and **all** lease expiry
arithmetic runs through the inner store's
:meth:`~repro.store.base.ResultStore._now` -- i.e. the server's clock.
Clients only ever send TTL *durations*, never absolute timestamps, so a
worker with a skewed clock cannot cause a premature lease takeover.

Protocol (all bodies JSON; HTTP/1.1 keep-alive):

====================  ======  ===============================================
``/health``           GET     ``{"ok", "backend", "location", "clock"}``
``/records``          GET     every raw entry (migration / quarantine scans)
``/len``              GET     entry count
``/size_bytes``       GET     persistent size of the inner store
``/scheme_counts``    GET     per-seed-scheme entry counts
``/leases``           GET     every recorded lease (server-clock expiries)
``/get_record``       POST    ``{"key"}`` -> ``{"payload": ... | null}``
``/put_record``       POST    ``{"key", "payload", "unit": ... | null}``
``/put_many``         POST    ``{"entries": [...]}`` -> ``{"written"}``
``/delete_record``    POST    ``{"key"}`` -> ``{"deleted"}``
``/clear``            POST    ``{"scheme": ... | null}`` -> ``{"removed"}``
``/claim``            POST    ``{"key", "worker", "ttl"}`` -> ``{"claimed"}``
``/heartbeat``        POST    ``{"keys", "worker", "ttl"}`` -> ``{"extended"}``
``/release``          POST    ``{"key", "worker"}``
====================  ======  ===============================================

Writes carry the executing unit's payload when one exists, so the server
reconstructs the :class:`~repro.runner.units.WorkUnit` and the inner
store's provenance table stays exact across the network hop.

Failure mapping: a transient inner-store error surfaces as **503**, any
other server-side exception as **500** -- both of which the client maps
back to :class:`~repro.resilience.errors.StoreUnavailableError` so
``RetryingStore`` budgets apply end to end.  Authentication (``--token``)
failures are **401**, a permanent client error.
"""

from __future__ import annotations

import json
import logging
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.resilience.errors import StoreUnavailableError
from repro.runner.units import WorkUnit
from repro.store.base import ResultStore
from repro.store.codec import decode_payload, unit_key

LOGGER = logging.getLogger("repro.store.server")

#: Default bind address: loopback only -- serving a fleet means opting
#: into ``--host 0.0.0.0`` (ideally with ``--token``) explicitly.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8737


class _StoreHTTPServer(ThreadingHTTPServer):
    """Thread-per-connection server carrying the shared inner store.

    Open client connections are tracked so :meth:`close_connections` can
    sever keep-alive sockets on shutdown -- making an in-process shutdown
    indistinguishable from a killed server process, which is what the
    crash-recovery tests simulate.
    """

    daemon_threads = True
    allow_reuse_address = True

    store: ResultStore
    token: Optional[str]

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._open_sockets: set = set()
        self._sockets_lock = threading.Lock()

    def process_request(self, request: Any, client_address: Any) -> None:
        with self._sockets_lock:
            self._open_sockets.add(request)
        super().process_request(request, client_address)

    def shutdown_request(self, request: Any) -> None:
        with self._sockets_lock:
            self._open_sockets.discard(request)
        super().shutdown_request(request)

    def close_connections(self) -> None:
        with self._sockets_lock:
            sockets = list(self._open_sockets)
            self._open_sockets.clear()
        for sock in sockets:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-store"
    protocol_version = "HTTP/1.1"
    # Responses are written as several small sends (status line, headers,
    # body); with Nagle on, each waits on the client's delayed ACK and a
    # keep-alive connection stalls ~40ms per request.
    disable_nagle_algorithm = True

    # -- plumbing --------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        LOGGER.debug("%s %s", self.address_string(), format % args)

    def _send(self, status: int, body: Dict[str, Any]) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _authorized(self) -> bool:
        token = self.server.token  # type: ignore[attr-defined]
        if token is None:
            return True
        supplied = self.headers.get("Authorization", "")
        return supplied == f"Bearer {token}"

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        body = json.loads(raw.decode("utf-8"))
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        return body

    def _dispatch(self, method: str) -> None:
        # The body is drained before any early response, so keep-alive
        # framing survives 400/401/404 answers.
        try:
            body = self._read_body() if method == "POST" else {}
        except (ValueError, UnicodeDecodeError) as error:
            self._send(400, {"error": f"malformed request body: {error}"})
            return
        if not self._authorized():
            self._send(401, {"error": "missing or invalid bearer token"})
            return
        store: ResultStore = self.server.store  # type: ignore[attr-defined]
        route = _ROUTES.get((method, self.path))
        if route is None:
            self._send(404, {"error": f"unknown endpoint {self.path!r}"})
            return
        try:
            result = route(store, body)
        except StoreUnavailableError as error:
            self._send(503, {"error": str(error), "transient": True})
        except (KeyError, TypeError, ValueError) as error:
            self._send(400, {"error": f"{type(error).__name__}: {error}"})
        except Exception as error:  # noqa: BLE001 -- the server must not die
            LOGGER.exception("unhandled store error on %s", self.path)
            self._send(500, {"error": f"{type(error).__name__}: {error}"})
        else:
            self._send(200, result)

    def do_GET(self) -> None:  # noqa: N802
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")


# -- endpoint implementations (module-level so they are testable) --------


def _decode_entry(
    entry: Dict[str, Any],
) -> Tuple[str, Dict[str, Any], Optional[WorkUnit]]:
    key = str(entry["key"])
    payload = entry["payload"]
    if not isinstance(payload, dict):
        raise ValueError(f"entry payload for {key!r} must be a JSON object")
    unit_payload = entry.get("unit")
    unit = None
    if unit_payload is not None:
        unit = WorkUnit.from_payload(unit_payload)
    return key, payload, unit


def _ep_health(store: ResultStore, body: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "ok": True,
        "backend": store.backend,
        "location": store.location(),
        "leases": store.supports_leases,
        "clock": store._now(),
    }


def _ep_get_record(store: ResultStore, body: Dict[str, Any]) -> Dict[str, Any]:
    return {"payload": store.get_record(str(body["key"]))}


def _ep_put_record(store: ResultStore, body: Dict[str, Any]) -> Dict[str, Any]:
    key, payload, unit = _decode_entry(body)
    store.put_record(key, payload, unit=unit)
    return {"written": 1}


def _ep_put_many(store: ResultStore, body: Dict[str, Any]) -> Dict[str, Any]:
    entries = body["entries"]
    if not isinstance(entries, list):
        raise ValueError("put_many entries must be a list")
    # Result payloads whose unit travelled with them take the inner
    # store's batched (single-transaction) path and keep provenance
    # exact; anything else -- migrated records, quarantine entries --
    # falls back to a record-level upsert.
    batch = []
    for entry in entries:
        key, payload, unit = _decode_entry(entry)
        result = None if unit is None else decode_payload(payload)
        if unit is not None and result is not None and unit_key(unit) == key:
            batch.append((unit, result))
        else:
            store.put_record(key, payload, unit=unit)
    if batch:
        store.put_many(batch)
    return {"written": len(entries)}


def _ep_delete_record(store: ResultStore, body: Dict[str, Any]) -> Dict[str, Any]:
    return {"deleted": store.delete_record(str(body["key"]))}


def _ep_records(store: ResultStore, body: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "records": [
            {"key": record.key, "payload": record.payload}
            for record in store.records()
        ]
    }


def _ep_len(store: ResultStore, body: Dict[str, Any]) -> Dict[str, Any]:
    return {"count": len(store)}


def _ep_size_bytes(store: ResultStore, body: Dict[str, Any]) -> Dict[str, Any]:
    return {"bytes": store.size_bytes()}


def _ep_scheme_counts(store: ResultStore, body: Dict[str, Any]) -> Dict[str, Any]:
    return {"counts": store.scheme_counts()}


def _ep_clear(store: ResultStore, body: Dict[str, Any]) -> Dict[str, Any]:
    scheme = body.get("scheme")
    return {"removed": store.clear(None if scheme is None else str(scheme))}


def _ep_claim(store: ResultStore, body: Dict[str, Any]) -> Dict[str, Any]:
    # ``ttl`` is a duration: expiry is ``store._now() + ttl`` evaluated
    # here, in the server process.  The wire protocol deliberately has
    # no field for an absolute expiry time.
    claimed = store.claim(
        str(body["key"]), str(body["worker"]), float(body["ttl"])
    )
    return {"claimed": bool(claimed)}


def _ep_heartbeat(store: ResultStore, body: Dict[str, Any]) -> Dict[str, Any]:
    keys = [str(key) for key in body["keys"]]
    extended = store.heartbeat(keys, str(body["worker"]), float(body["ttl"]))
    return {"extended": int(extended)}


def _ep_release(store: ResultStore, body: Dict[str, Any]) -> Dict[str, Any]:
    store.release(str(body["key"]), str(body["worker"]))
    return {"released": True}


def _ep_leases(store: ResultStore, body: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "leases": [
            {"key": lease.key, "worker": lease.worker, "expires": lease.expires}
            for lease in store.leases()
        ]
    }


_ROUTES = {
    ("GET", "/health"): _ep_health,
    ("GET", "/records"): _ep_records,
    ("GET", "/len"): _ep_len,
    ("GET", "/size_bytes"): _ep_size_bytes,
    ("GET", "/scheme_counts"): _ep_scheme_counts,
    ("GET", "/leases"): _ep_leases,
    ("POST", "/get_record"): _ep_get_record,
    ("POST", "/put_record"): _ep_put_record,
    ("POST", "/put_many"): _ep_put_many,
    ("POST", "/delete_record"): _ep_delete_record,
    ("POST", "/clear"): _ep_clear,
    ("POST", "/claim"): _ep_claim,
    ("POST", "/heartbeat"): _ep_heartbeat,
    ("POST", "/release"): _ep_release,
}


class StoreServer:
    """One inner store served over HTTP to many remote workers.

    The inner store must be safe to call from multiple threads -- all
    bundled backends are (sqlite uses one locked connection, json-dir
    atomic filesystem ops, memory an ``RLock``).  ``port=0`` binds an
    ephemeral port; the bound address is on :attr:`host` / :attr:`port`.
    """

    def __init__(
        self,
        store: ResultStore,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        token: Optional[str] = None,
    ) -> None:
        self.store = store
        self._httpd = _StoreHTTPServer((host, port), _Handler)
        self._httpd.store = store
        self._httpd.token = token
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None
        self._serving = False

    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def store_uri(self) -> str:
        """The ``--store`` URI workers use to reach this server."""
        return f"http:{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._serving = True
        try:
            self._httpd.serve_forever(poll_interval=0.1)
        finally:
            self._serving = False

    def start(self) -> "StoreServer":
        """Serve on a daemon thread (tests, benchmarks, embedding)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-store-server", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving and close the listening socket.

        The inner store is *not* closed: the caller owns it (a restart
        re-serves the same store, which is what crash-recovery tests do).
        """
        if self._serving:
            # BaseServer.shutdown() deadlocks unless serve_forever ran.
            self._httpd.shutdown()
        self._httpd.server_close()
        self._httpd.close_connections()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "StoreServer":
        if self._thread is None and not self._serving:
            self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


__all__ = ["DEFAULT_HOST", "DEFAULT_PORT", "StoreServer"]
