"""Versioned seed-scheme subsystem.

Makes run-stream derivation a first-class, versioned strategy object: the
``"per-run"`` scheme reproduces the historical
``SeedSequence([base_seed, *seed_path, run])`` streams bit-for-bit, while
the counter-based ``"unit"`` scheme derives one Philox generator per work
unit so stochastic stages can draw whole ``(runs, n)`` blocks in one call.
See :mod:`repro.seeds.schemes` for the scheme contract and selection rules.
"""

from repro.seeds.schemes import (
    DEFAULT_SCHEME,
    ENV_VAR,
    RUN_STRIDE,
    PerRunScheme,
    SchemeSpec,
    SeedScheme,
    UnitScheme,
    UnitStreams,
    available_schemes,
    get_scheme,
    register_scheme,
    resolve_scheme_name,
)

__all__ = [
    "DEFAULT_SCHEME",
    "ENV_VAR",
    "RUN_STRIDE",
    "PerRunScheme",
    "SchemeSpec",
    "SeedScheme",
    "UnitScheme",
    "UnitStreams",
    "available_schemes",
    "get_scheme",
    "register_scheme",
    "resolve_scheme_name",
]
