"""Seed schemes: versioned strategies for deriving per-run random streams.

Every sweep in this library derives the randomness of run ``run`` of cell
``seed_path`` from a single top-level ``base_seed``.  *How* that derivation
happens used to be an implicit convention spread across four layers
(``SeedSequence([base_seed, *seed_path, run])`` hand-built in the runner,
the sweeps and the benchmarks); this module makes it a first-class,
versioned strategy object -- a :class:`SeedScheme` -- so the convention is
auditable in one place and alternative schemes can ship side by side.

Two schemes are provided:

``"per-run"`` (default)
    One ``PCG64`` generator per run, seeded from
    ``SeedSequence([base_seed, *seed_path, run])``.  This reproduces the
    historical streams bit-for-bit: results are independent of how a cell
    is sharded into work units, and any executor / cache / fastpath / kernel
    combination returns bit-identical arrays.  The per-run draws are the
    cost: every stochastic stage loops over runs because each run owns its
    own generator.

``"unit"``
    One *counter-based* ``Philox`` generator per work unit, keyed by
    ``SeedSequence([base_seed, *seed_path])`` and advanced to the counter
    window of the unit's first run (:data:`RUN_STRIDE` counter blocks per
    run, so distinct run ranges of one cell can never overlap streams).
    Because a whole unit shares one generator, the stream-defining draws
    that force a per-run loop under ``"per-run"`` -- transmission-model
    shuffles and choices, Gilbert sojourn geometrics, Bernoulli uniforms --
    are drawn as whole ``(runs, n)`` blocks in one call.  Results are
    deterministic and bit-identical between serial and parallel execution,
    but they are **not** bit-identical to ``"per-run"`` (the schemes draw
    different streams) and they depend on the unit sharding
    (``runs_per_unit``), which is why the scheme is part of the result
    cache key.

Scheme selection: an explicit ``seed_scheme=`` argument wins, then the
``REPRO_SEED_SCHEME`` environment variable, then :data:`DEFAULT_SCHEME`.
"""

from __future__ import annotations

import abc
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

#: Environment variable consulted when no explicit scheme is given.
ENV_VAR = "REPRO_SEED_SCHEME"

#: The historical scheme; reproduces pre-seeds streams bit-for-bit.
DEFAULT_SCHEME = "per-run"

#: Philox counter blocks reserved per run under the ``"unit"`` scheme.
#: ``Philox.advance(delta)`` moves the 256-bit counter by ``delta`` blocks
#: of four 64-bit outputs, so one run's window holds ``4 * 2**40 ~ 4.4e12``
#: draws -- orders of magnitude above what any unit consumes (a
#: paper-scale unit of 1000 runs at n = 50000 draws ~3e8 values), and the
#: 256-bit counter space fits ``2**88`` such windows.
RUN_STRIDE = 2 ** 40


@dataclass(frozen=True)
class UnitStreams:
    """The random streams of one work unit, as derived by a scheme.

    Attributes
    ----------
    scheme:
        Name of the deriving scheme.
    base_seed, seed_path, run_start, run_stop:
        The unit coordinates the streams were derived from.
    unit_rng:
        A single whole-unit generator for block draws, or ``None`` when the
        scheme only defines per-run streams (the ``"per-run"`` scheme).
        Consumers that receive ``None`` must use :meth:`run_rngs`.
    """

    scheme: str
    base_seed: int
    seed_path: Tuple[int, ...]
    run_start: int
    run_stop: int
    unit_rng: Optional[np.random.Generator]
    _run_rng: Callable[[int], np.random.Generator] = field(repr=False)

    @property
    def runs(self) -> int:
        return self.run_stop - self.run_start

    def run_rng(self, run: int) -> np.random.Generator:
        """Generator of one run, by *absolute* run index."""
        if not self.run_start <= run < self.run_stop:
            raise ValueError(
                f"run {run} outside unit range [{self.run_start}, {self.run_stop})"
            )
        return self._run_rng(run)

    def run_rngs(self) -> List[np.random.Generator]:
        """One independent generator per run of the unit, in run order."""
        return [self._run_rng(run) for run in range(self.run_start, self.run_stop)]


class SeedScheme(abc.ABC):
    """One versioned strategy for deriving a work unit's random streams.

    Schemes are stateless and picklable (work units carry only the scheme
    *name*; worker processes re-resolve it through the registry).  The
    ``(name, version)`` pair is the cache-key token: bump ``version``
    whenever a scheme's streams change, so stale cached results become
    misses instead of silently wrong hits.
    """

    #: Registry name; also what ``--seed-scheme`` / ``REPRO_SEED_SCHEME``
    #: match.
    name: str = "abstract"

    #: Stream-format version, part of the cache token.
    version: int = 1

    @abc.abstractmethod
    def unit_streams(
        self,
        base_seed: int,
        seed_path: Sequence[int],
        run_start: int,
        run_stop: int,
    ) -> UnitStreams:
        """Derive the streams of one work unit."""

    @property
    def batches_units(self) -> bool:
        """Whether the scheme provides a whole-unit generator."""
        return False

    def token(self) -> str:
        """Cache-key token identifying the scheme and its stream format."""
        return f"{self.name}/v{self.version}"

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<{type(self).__name__} name={self.name!r} version={self.version}>"


class PerRunScheme(SeedScheme):
    """The historical scheme: one PCG64 stream per run.

    Run ``run`` of cell ``seed_path`` draws from
    ``default_rng(SeedSequence([base_seed, *seed_path, run]))`` -- exactly
    the derivation the serial sweeps and the runner have used since PR 1,
    so any result produced under this scheme is bit-identical to the
    historical streams and independent of unit sharding.
    """

    name = "per-run"
    version = 1

    def unit_streams(
        self,
        base_seed: int,
        seed_path: Sequence[int],
        run_start: int,
        run_stop: int,
    ) -> UnitStreams:
        base = int(base_seed)
        path = tuple(int(x) for x in seed_path)

        def run_rng(run: int) -> np.random.Generator:
            return np.random.default_rng(np.random.SeedSequence([base, *path, run]))

        return UnitStreams(
            scheme=self.name,
            base_seed=base,
            seed_path=path,
            run_start=int(run_start),
            run_stop=int(run_stop),
            unit_rng=None,
            _run_rng=run_rng,
        )


class UnitScheme(SeedScheme):
    """Counter-based scheme: one Philox generator per work unit.

    The cell key is derived once from ``SeedSequence([base_seed,
    *seed_path])``; run ``run`` owns the counter window starting at
    ``run * RUN_STRIDE`` blocks.  A unit covering ``[run_start, run_stop)``
    draws from one generator positioned at ``run_start``'s window, so the
    whole unit's stream fits inside the first run's window and distinct
    units of the same cell can never overlap.  Per-run generators (used by
    ``fresh_code_per_run`` and by consumers without block-draw support) are
    the same Philox advanced to each run's own window.
    """

    name = "unit"
    version = 1

    @property
    def batches_units(self) -> bool:
        return True

    def _key(self, base_seed: int, seed_path: Tuple[int, ...]) -> np.ndarray:
        # Philox4x64 takes a 2-word (128-bit) key.
        sequence = np.random.SeedSequence([int(base_seed), *seed_path])
        return sequence.generate_state(2, dtype=np.uint64)

    def _advanced(self, key: np.ndarray, blocks: int) -> np.random.Generator:
        bit_generator = np.random.Philox(key=key)
        if blocks:
            bit_generator.advance(blocks)
        return np.random.Generator(bit_generator)

    def unit_streams(
        self,
        base_seed: int,
        seed_path: Sequence[int],
        run_start: int,
        run_stop: int,
    ) -> UnitStreams:
        base = int(base_seed)
        path = tuple(int(x) for x in seed_path)
        key = self._key(base, path)
        return UnitStreams(
            scheme=self.name,
            base_seed=base,
            seed_path=path,
            run_start=int(run_start),
            run_stop=int(run_stop),
            unit_rng=self._advanced(key, int(run_start) * RUN_STRIDE),
            _run_rng=lambda run: self._advanced(key, int(run) * RUN_STRIDE),
        )


_SCHEMES: Dict[str, SeedScheme] = {}


def register_scheme(scheme: SeedScheme) -> SeedScheme:
    """Add a scheme instance to the registry (name collisions rejected)."""
    if scheme.name in _SCHEMES:
        raise ValueError(f"seed scheme {scheme.name!r} is already registered")
    _SCHEMES[scheme.name] = scheme
    return scheme


register_scheme(PerRunScheme())
register_scheme(UnitScheme())

#: ``seed_scheme=`` arguments accept a name, a scheme instance, or None.
SchemeSpec = Union[None, str, SeedScheme]


def available_schemes() -> List[str]:
    """Registered scheme names, sorted."""
    return sorted(_SCHEMES)


def resolve_scheme_name(spec: SchemeSpec = None) -> str:
    """Collapse a scheme spec to a registered name.

    ``None`` consults ``REPRO_SEED_SCHEME`` and falls back to
    :data:`DEFAULT_SCHEME`; unknown names raise ``ValueError`` (listing the
    registered schemes) no matter where they came from.  A
    :class:`SeedScheme` *instance* must be the registered one -- the
    runner layers carry schemes by name across process boundaries, so an
    unregistered instance would be silently swapped for the registered
    scheme of the same name (and cached under its token); reject it
    loudly instead.
    """
    if isinstance(spec, SeedScheme):
        if _SCHEMES.get(spec.name) is not spec:
            raise ValueError(
                f"seed scheme instance {spec!r} is not the registered "
                f"{spec.name!r} scheme; register_scheme() it (under a "
                "distinct name) before use"
            )
        return spec.name
    name = spec if spec is not None else os.environ.get(ENV_VAR) or DEFAULT_SCHEME
    if name not in _SCHEMES:
        source = "" if spec is not None else f" (from {ENV_VAR})"
        raise ValueError(
            f"unknown seed scheme {name!r}{source}; available: "
            f"{', '.join(available_schemes())}"
        )
    return name


def get_scheme(spec: SchemeSpec = None) -> SeedScheme:
    """Resolve a scheme spec (name / instance / None) to a scheme object."""
    if isinstance(spec, SeedScheme):
        resolve_scheme_name(spec)  # reject unregistered instances loudly
        return spec
    return _SCHEMES[resolve_scheme_name(spec)]


__all__ = [
    "ENV_VAR",
    "DEFAULT_SCHEME",
    "RUN_STRIDE",
    "SchemeSpec",
    "SeedScheme",
    "PerRunScheme",
    "UnitScheme",
    "UnitStreams",
    "available_schemes",
    "get_scheme",
    "register_scheme",
    "resolve_scheme_name",
]
