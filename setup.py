"""Setuptools shim.

The offline environment used for this reproduction ships an older
setuptools without the ``wheel`` package, so PEP 660 editable installs are
unavailable; this ``setup.py`` lets ``pip install -e .`` fall back to the
legacy ``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
