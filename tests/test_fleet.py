"""Tests for cooperative fleet execution (``repro.runner.fleet``)."""

import os
import re
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import SimulationConfig
from repro.runner.engine import run_grid
from repro.runner.fleet import DEFAULT_LEASE_TTL, FleetRunner, default_worker_id
from repro.runner.units import execute_unit, plan_units
from repro.store import (
    LeaseUnsupportedError,
    MemoryStore,
    SqliteStore,
    unit_key,
)

P_VALUES = [0.0, 0.05]
Q_VALUES = [0.5, 1.0]


@pytest.fixture
def config() -> SimulationConfig:
    return SimulationConfig(
        code="ldgm-staircase", tx_model="tx_model_2", k=200, expansion_ratio=2.5
    )


def _units(config, cells=4, runs=2):
    points = [((i,), config, 0.02 * i, 0.5) for i in range(cells)]
    return plan_units(points, runs=runs, base_seed=21)


def _grids_equal(first, second) -> bool:
    return (
        np.array_equal(first.mean_inefficiency, second.mean_inefficiency, equal_nan=True)
        and np.array_equal(
            first.mean_received_ratio, second.mean_received_ratio, equal_nan=True
        )
        and np.array_equal(first.failure_counts, second.failure_counts)
    )


class _NoLeaseStore(MemoryStore):
    supports_leases = False


class TestFleetRunner:
    def test_single_worker_executes_everything(self, config):
        store = MemoryStore()
        runner = FleetRunner(store, worker_id="solo")
        units = _units(config)
        collected = {}
        runner.run(units, lambda r: collected.__setitem__(r.seed_path, r))
        assert len(collected) == len(units)
        assert runner.stats.executed == len(units)
        assert runner.stats.absorbed == 0
        for unit in units:
            assert collected[unit.seed_path] == execute_unit(unit)
        # Everything was persisted and released.
        assert len(store) == len(units)
        assert store.leases() == []

    def test_absorbs_results_finished_elsewhere(self, config):
        store = MemoryStore()
        units = _units(config)
        for unit in units[:2]:
            store.put(unit, execute_unit(unit))
        runner = FleetRunner(store, worker_id="late")
        collected = []
        runner.run(units, collected.append)
        assert len(collected) == len(units)
        assert runner.stats.absorbed == 2
        assert runner.stats.executed == len(units) - 2

    def test_requires_a_lease_capable_store(self):
        with pytest.raises(LeaseUnsupportedError):
            FleetRunner(_NoLeaseStore())

    def test_rejects_nonpositive_ttl(self):
        with pytest.raises(ValueError):
            FleetRunner(MemoryStore(), lease_ttl=0.0)

    def test_default_worker_id_shape(self):
        assert re.fullmatch(r".+:\d+", default_worker_id())

    def test_two_workers_split_without_duplication(self, config):
        store = MemoryStore()
        units = _units(config, cells=6)
        all_keys = {unit_key(unit) for unit in units}
        runners = [
            FleetRunner(
                store, worker_id=f"w{i}", claim_batch=1, poll_interval=0.01
            )
            for i in range(2)
        ]
        results = [[], []]
        threads = [
            threading.Thread(target=runners[i].run, args=(units, results[i].append))
            for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        # Every worker returns the complete sweep...
        assert len(results[0]) == len(units)
        assert len(results[1]) == len(units)
        # ...but each unit was *executed* exactly once, fleet-wide.
        executed = [set(runner.stats.executed_keys) for runner in runners]
        assert executed[0].isdisjoint(executed[1])
        assert executed[0] | executed[1] == all_keys
        assert store.stats.writes == len(units)

    def test_expired_leases_of_a_dead_worker_are_taken_over(self, config):
        store = MemoryStore()
        units = _units(config)
        # A zombie claimed two units and died without heartbeating.
        for unit in units[:2]:
            assert store.claim(unit_key(unit), "zombie", ttl=0.3)
        runner = FleetRunner(
            store, worker_id="survivor", lease_ttl=5.0, poll_interval=0.05
        )
        collected = []
        runner.run(units, collected.append)
        assert len(collected) == len(units)
        assert runner.stats.executed == len(units)
        # The zombie's leases were reclaimed, not waited out forever.
        assert all(lease.worker != "zombie" for lease in store.leases())

    def test_late_finish_by_a_zombie_converges(self, config):
        # A worker that lost its lease but finishes anyway performs an
        # idempotent upsert: the store ends with one identical entry.
        store = MemoryStore()
        unit = _units(config, cells=1)[0]
        result = execute_unit(unit)
        assert store.claim(unit_key(unit), "zombie", ttl=0.05)
        time.sleep(0.1)
        runner = FleetRunner(store, worker_id="survivor", poll_interval=0.01)
        runner.run([unit], lambda r: None)
        store.put(unit, result)  # the zombie's late write
        assert len(store) == 1
        assert store.get(unit) == result


class TestFleetEngine:
    @pytest.mark.parametrize("scheme", ["per-run", "unit"])
    def test_fleet_grid_identical_to_serial(self, tmp_path, config, scheme):
        serial = run_grid(
            config, P_VALUES, Q_VALUES, runs=2, seed=7, seed_scheme=scheme
        )
        store = SqliteStore(tmp_path / "fleet.db")
        fleet = run_grid(
            config, P_VALUES, Q_VALUES, runs=2, seed=7, seed_scheme=scheme,
            cache=store, fleet=True, lease_ttl=10.0,
        )
        assert _grids_equal(serial, fleet)
        assert store.stats.writes == len(P_VALUES) * len(Q_VALUES)
        store.close()

    def test_fleet_requires_a_store(self, config):
        with pytest.raises(ValueError):
            run_grid(config, P_VALUES, Q_VALUES, runs=1, fleet=True)

    def test_two_engine_workers_share_one_grid(self, config):
        store = MemoryStore()
        serial = run_grid(config, P_VALUES, Q_VALUES, runs=2, seed=9)
        grids = {}

        def worker(name):
            grids[name] = run_grid(
                config, P_VALUES, Q_VALUES, runs=2, seed=9,
                cache=store, fleet=True, lease_ttl=10.0, worker_id=name,
            )

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert _grids_equal(serial, grids["w0"])
        assert _grids_equal(serial, grids["w1"])
        # One execution per grid cell, fleet-wide.
        assert store.stats.writes == len(P_VALUES) * len(Q_VALUES)

    def test_resumed_fleet_run_absorbs_everything(self, tmp_path, config):
        store = SqliteStore(tmp_path / "fleet.db")
        first = run_grid(
            config, P_VALUES, Q_VALUES, runs=2, seed=7, cache=store, fleet=True
        )
        writes_before = store.stats.writes
        again = run_grid(
            config, P_VALUES, Q_VALUES, runs=2, seed=7, cache=store, fleet=True
        )
        assert _grids_equal(first, again)
        assert store.stats.writes == writes_before
        store.close()


_WRITES = re.compile(r"(\d+) writes")


class TestFleetCli:
    def _spawn(self, *argv, cwd=None):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [sys.executable, "-m", "repro", *argv],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=cwd,
        )

    def _run(self, *argv, cwd=None):
        process = self._spawn(*argv, cwd=cwd)
        stdout, stderr = process.communicate(timeout=600)
        return process.returncode, stdout, stderr

    @pytest.mark.parametrize("scheme", ["per-run", "unit"])
    def test_two_process_fleet_matches_serial_bit_for_bit(self, tmp_path, scheme):
        base = (
            "run", "fig07", "--scale", "tiny", "--runs", "1",
            "--seed-scheme", scheme, "--quiet",
        )
        code, _, stderr = self._run(
            *base, "--cache-dir", str(tmp_path / "serial"),
            "--csv-dir", str(tmp_path / "csv_serial"), cwd=tmp_path,
        )
        assert code == 0, stderr

        store_uri = f"sqlite:{tmp_path}/fleet.db"
        workers = [
            self._spawn(
                *base, "--store", store_uri, "--fleet", "--lease-ttl", "10",
                "--worker-id", f"w{i}", "--csv-dir", str(tmp_path / f"csv_w{i}"),
                cwd=tmp_path,
            )
            for i in range(2)
        ]
        outputs = [worker.communicate(timeout=600) for worker in workers]
        assert all(worker.returncode == 0 for worker in workers), outputs

        (serial_csv,) = sorted((tmp_path / "csv_serial").glob("*.csv"))
        for i in range(2):
            (fleet_csv,) = sorted((tmp_path / f"csv_w{i}").glob("*.csv"))
            assert fleet_csv.read_bytes() == serial_csv.read_bytes()

        # Zero duplicated executions: the workers' writes partition the grid.
        writes = [int(_WRITES.search(stdout).group(1)) for stdout, _ in outputs]
        store = SqliteStore(tmp_path / "fleet.db")
        assert sum(writes) == len(store) == 16  # tiny scale: 4 x 4 grid
        store.close()

    def test_killed_worker_rerun_converges(self, tmp_path):
        argv = (
            "run", "fig07", "--scale", "tiny", "--runs", "2", "--quiet",
            "--store", f"sqlite:{tmp_path}/fleet.db", "--fleet",
            "--lease-ttl", "2",
        )
        victim = self._spawn(*argv, cwd=tmp_path)
        time.sleep(0.3)
        victim.kill()
        victim.communicate(timeout=600)

        # Stale leases from the killed worker may still be live; the rerun
        # waits them out (TTL 2s), takes them over, and completes.
        code, _, stderr = self._run(
            *argv, "--csv-dir", str(tmp_path / "csv_rerun"), cwd=tmp_path
        )
        assert code == 0, stderr

        code, _, stderr = self._run(
            "run", "fig07", "--scale", "tiny", "--runs", "2", "--quiet",
            "--cache-dir", str(tmp_path / "serial"),
            "--csv-dir", str(tmp_path / "csv_serial"), cwd=tmp_path,
        )
        assert code == 0, stderr
        (rerun_csv,) = sorted((tmp_path / "csv_rerun").glob("*.csv"))
        (serial_csv,) = sorted((tmp_path / "csv_serial").glob("*.csv"))
        assert rerun_csv.read_bytes() == serial_csv.read_bytes()
