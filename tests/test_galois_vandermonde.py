"""Unit tests for Vandermonde/Cauchy constructions (MDS property)."""

import itertools

import numpy as np
import pytest

from repro.galois.matrix import gf_mat_rank
from repro.galois.vandermonde import (
    cauchy_matrix,
    systematic_generator_matrix,
    vandermonde_matrix,
)


class TestVandermonde:
    def test_shape(self):
        assert vandermonde_matrix(10, 4).shape == (10, 4)

    def test_first_row_is_unit_vector(self):
        matrix = vandermonde_matrix(5, 3)
        assert matrix[0].tolist() == [1, 0, 0]

    def test_any_k_rows_are_independent_small(self):
        k, n = 3, 8
        matrix = vandermonde_matrix(n, k)
        for rows in itertools.combinations(range(n), k):
            assert gf_mat_rank(matrix[list(rows)]) == k

    def test_too_many_rows_rejected(self):
        with pytest.raises(ValueError):
            vandermonde_matrix(257, 3)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            vandermonde_matrix(0, 3)


class TestCauchy:
    def test_shape_and_nonzero(self):
        matrix = cauchy_matrix(4, 6)
        assert matrix.shape == (4, 6)
        assert np.all(matrix != 0)

    def test_every_square_submatrix_invertible_small(self):
        rows, cols = 3, 5
        matrix = cauchy_matrix(rows, cols)
        for size in (1, 2, 3):
            for row_set in itertools.combinations(range(rows), size):
                for col_set in itertools.combinations(range(cols), size):
                    sub = matrix[np.ix_(row_set, col_set)]
                    assert gf_mat_rank(sub) == size

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            cauchy_matrix(200, 100)


class TestSystematicGenerator:
    @pytest.mark.parametrize("construction", ["vandermonde", "cauchy"])
    def test_top_is_identity(self, construction):
        generator = systematic_generator_matrix(5, 12, construction)
        assert np.array_equal(generator[:5], np.eye(5, dtype=np.uint8))

    @pytest.mark.parametrize("construction", ["vandermonde", "cauchy"])
    def test_mds_property_small(self, construction):
        k, n = 4, 9
        generator = systematic_generator_matrix(k, n, construction)
        for rows in itertools.combinations(range(n), k):
            assert gf_mat_rank(generator[list(rows)]) == k, rows

    def test_unknown_construction_rejected(self):
        with pytest.raises(ValueError):
            systematic_generator_matrix(3, 6, "unknown")

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ValueError):
            systematic_generator_matrix(5, 5)
        with pytest.raises(ValueError):
            systematic_generator_matrix(5, 300)
