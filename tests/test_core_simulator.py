"""Unit tests for the single-run simulator."""

import numpy as np
import pytest

from repro.channel import BernoulliChannel, GilbertChannel, PerfectChannel, PeriodicBurstChannel
from repro.core.config import SimulationConfig
from repro.core.simulator import Simulator, simulate_once
from repro.fec import make_code
from repro.scheduling import make_tx_model


class TestSimulator:
    def test_perfect_channel_tx1_is_ideal(self):
        """Sending source packets first over a perfect channel needs exactly k."""
        code = make_code("ldgm-staircase", k=100, expansion_ratio=2.5, seed=0)
        simulator = Simulator(code, make_tx_model("tx_model_1"), PerfectChannel())
        result = simulator.run(np.random.default_rng(0))
        assert result.decoded
        assert result.n_necessary == 100
        assert result.inefficiency_ratio == pytest.approx(1.0)

    def test_all_lost_fails(self):
        code = make_code("ldgm-staircase", k=50, expansion_ratio=2.5, seed=0)
        simulator = Simulator(code, make_tx_model("tx_model_1"), BernoulliChannel(1.0))
        result = simulator.run(np.random.default_rng(0))
        assert not result.decoded
        assert result.n_received == 0
        assert np.isnan(result.inefficiency_ratio)

    def test_nsent_truncation(self):
        code = make_code("ldgm-staircase", k=50, expansion_ratio=2.5, seed=0)
        simulator = Simulator(code, make_tx_model("tx_model_1"), PerfectChannel())
        result = simulator.run(np.random.default_rng(0), nsent=60)
        assert result.n_sent == 60
        assert result.decoded

    def test_nsent_too_small_fails(self):
        code = make_code("ldgm-staircase", k=50, expansion_ratio=2.5, seed=0)
        simulator = Simulator(code, make_tx_model("tx_model_1"), PerfectChannel())
        result = simulator.run(np.random.default_rng(0), nsent=30)
        assert not result.decoded

    def test_invalid_nsent_rejected(self):
        code = make_code("ldgm-staircase", k=50, expansion_ratio=2.5, seed=0)
        simulator = Simulator(code, make_tx_model("tx_model_1"), PerfectChannel())
        with pytest.raises(ValueError):
            simulator.run(np.random.default_rng(0), nsent=0)

    def test_counts_are_consistent(self):
        code = make_code("ldgm-triangle", k=100, expansion_ratio=2.5, seed=1)
        simulator = Simulator(code, make_tx_model("tx_model_4"), GilbertChannel(0.05, 0.5))
        result = simulator.run(np.random.default_rng(3))
        assert result.n_sent == 250
        assert result.n_received <= result.n_sent
        if result.decoded:
            assert result.k <= result.n_necessary <= result.n_received

    def test_default_channel_is_perfect(self):
        code = make_code("rse", k=50, expansion_ratio=2.0, seed=0)
        simulator = Simulator(code, make_tx_model("tx_model_4"))
        result = simulator.run(np.random.default_rng(0))
        assert result.n_received == result.n_sent

    def test_run_many_returns_independent_results(self):
        code = make_code("ldgm-staircase", k=100, expansion_ratio=2.5, seed=0)
        simulator = Simulator(code, make_tx_model("tx_model_4"), BernoulliChannel(0.2))
        results = simulator.run_many(5, np.random.default_rng(1))
        assert len(results) == 5
        assert len({result.n_necessary for result in results}) > 1

    def test_deterministic_given_seed(self):
        code = make_code("ldgm-staircase", k=100, expansion_ratio=2.5, seed=0)
        channel = GilbertChannel(0.1, 0.5)
        simulator = Simulator(code, make_tx_model("tx_model_4"), channel)
        first = simulator.run(np.random.default_rng(42))
        second = simulator.run(np.random.default_rng(42))
        assert first == second

    def test_periodic_burst_channel_integration(self):
        """A deterministic burst channel gives a fully reproducible run."""
        code = make_code("rse", k=100, expansion_ratio=2.5, seed=0)
        channel = PeriodicBurstChannel(period=10, burst_length=2)
        simulator = Simulator(code, make_tx_model("tx_model_5"), channel)
        result = simulator.run(np.random.default_rng(0))
        assert result.decoded
        assert result.n_received == result.n_sent * 8 // 10


class TestSimulateOnce:
    def test_with_gilbert_parameters(self, small_staircase_config):
        result = simulate_once(small_staircase_config, p=0.05, q=0.5, seed=3)
        assert result.decoded

    def test_with_channel_object(self, small_staircase_config):
        result = simulate_once(small_staircase_config, channel=BernoulliChannel(0.1), seed=3)
        assert result.decoded

    def test_defaults_to_perfect_channel(self, small_staircase_config):
        result = simulate_once(small_staircase_config, seed=3)
        assert result.n_received == result.n_sent

    def test_rejects_both_channel_and_parameters(self, small_staircase_config):
        with pytest.raises(ValueError):
            simulate_once(small_staircase_config, p=0.1, q=0.5, channel=PerfectChannel())

    def test_rejects_partial_parameters(self, small_staircase_config):
        with pytest.raises(ValueError):
            simulate_once(small_staircase_config, p=0.1)

    def test_respects_config_nsent(self, small_staircase_config):
        config = small_staircase_config.with_updates(nsent=220, tx_model="tx_model_1")
        result = simulate_once(config, seed=1)
        assert result.n_sent == 220
