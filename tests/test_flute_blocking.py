"""Unit tests for the FLUTE byte-level blocking helpers."""

import pytest

from repro.flute.blocking import compute_blocking, reassemble_object, slice_object


class TestComputeBlocking:
    def test_exact_multiple(self):
        blocking = compute_blocking(1024, 256)
        assert blocking.num_symbols == 4
        assert blocking.padding == 0
        assert blocking.padded_length == 1024

    def test_with_padding(self):
        blocking = compute_blocking(1000, 256)
        assert blocking.num_symbols == 4
        assert blocking.padding == 24

    def test_single_symbol(self):
        blocking = compute_blocking(10, 256)
        assert blocking.num_symbols == 1
        assert blocking.padding == 246

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            compute_blocking(0, 256)
        with pytest.raises(ValueError):
            compute_blocking(100, 0)


class TestSliceAndReassemble:
    def test_roundtrip(self):
        data = bytes(range(256)) * 5 + b"tail"
        symbols = slice_object(data, 100)
        assert all(len(symbol) == 100 for symbol in symbols)
        assert reassemble_object(symbols, len(data)) == data

    def test_padding_is_zeroes(self):
        symbols = slice_object(b"abc", 8)
        assert symbols == [b"abc\x00\x00\x00\x00\x00"]

    def test_reassemble_with_too_few_symbols_rejected(self):
        with pytest.raises(ValueError):
            reassemble_object([b"abc"], 100)
