"""Unit tests for the repetition (no FEC) baseline of section 4.2."""

import numpy as np
import pytest

from repro.fec.repetition import RepetitionCode


class TestConstruction:
    def test_copies(self):
        code = RepetitionCode(k=10, n=20)
        assert code.copies == 2
        assert code.layout.k == 10 and code.layout.n == 20

    def test_non_multiple_rejected(self):
        with pytest.raises(ValueError):
            RepetitionCode(k=10, n=25)

    def test_source_of_mapping(self):
        code = RepetitionCode(k=5, n=15)
        assert [code.source_of(i) for i in (0, 4, 5, 9, 14)] == [0, 4, 0, 4, 4]
        with pytest.raises(IndexError):
            code.source_of(15)


class TestSymbolicDecoder:
    def test_needs_every_distinct_source(self):
        code = RepetitionCode(k=4, n=8)
        decoder = code.new_symbolic_decoder()
        assert not decoder.add_packet(0)
        assert not decoder.add_packet(4)  # duplicate of source 0
        assert decoder.decoded_source_count == 1
        decoder.add_packet(1)
        decoder.add_packet(2)
        assert not decoder.is_complete
        assert decoder.add_packet(7)  # source 3
        assert decoder.is_complete

    def test_receiving_one_full_copy_is_enough(self):
        code = RepetitionCode(k=50, n=100)
        decoder = code.new_symbolic_decoder()
        consumed = decoder.add_packets(range(50, 100))
        assert decoder.is_complete
        assert consumed == 50


class TestPayloadRoundtrip:
    def test_roundtrip(self, rng):
        code = RepetitionCode(k=6, n=18)
        payloads = [bytes(rng.integers(0, 256, size=10, dtype=np.uint8)) for _ in range(6)]
        encoded = code.new_encoder().encode(payloads)
        assert len(encoded) == 18
        assert encoded[6:12] == payloads
        decoder = code.new_decoder()
        for index in (12, 13, 2, 9, 4, 17):
            decoder.add_packet(index, encoded[index])
        assert decoder.is_complete
        assert decoder.source_payloads() == payloads

    def test_incomplete_refuses_payloads(self):
        code = RepetitionCode(k=3, n=6)
        decoder = code.new_decoder()
        with pytest.raises(RuntimeError):
            decoder.source_payloads()
