"""Unit tests for the experiment presets."""

import pytest

from repro.core.experiments import (
    EXPERIMENTS,
    SCALES,
    TABLE_TO_EXPERIMENT,
    get_experiment,
    run_experiment,
)


class TestRegistry:
    def test_every_paper_figure_has_a_preset(self):
        for figure in ("fig07", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15"):
            assert figure in EXPERIMENTS

    def test_every_appendix_table_maps_to_an_experiment(self):
        for table in (f"table{i}" for i in range(1, 10)):
            assert table in TABLE_TO_EXPERIMENT
            assert TABLE_TO_EXPERIMENT[table][0] in EXPERIMENTS

    def test_get_experiment_accepts_table_ids(self):
        assert get_experiment("table5").experiment_id == "fig11"
        assert get_experiment("FIG09").experiment_id == "fig09"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_scales_defined(self):
        assert set(SCALES) == {"tiny", "small", "paper"}
        assert SCALES["paper"].k == 20000
        assert SCALES["paper"].runs == 100
        assert len(SCALES["paper"].grid_percent) == 14

    def test_scaled_configs_replace_k(self):
        spec = get_experiment("fig09")
        configs = spec.scaled_configs(SCALES["tiny"])
        assert all(config.k == SCALES["tiny"].k for config in configs)

    def test_fig09_covers_all_codes_and_ratios(self):
        spec = get_experiment("fig09")
        codes = {config.code for config in spec.configs}
        ratios = {config.expansion_ratio for config in spec.configs}
        assert codes == {"rse", "ldgm-staircase", "ldgm-triangle"}
        assert ratios == {1.5, 2.5}

    def test_fig13_uses_tx_model_6_at_ratio_2_5(self):
        spec = get_experiment("fig13")
        assert all(config.tx_model == "tx_model_6" for config in spec.configs)
        assert all(config.expansion_ratio == 2.5 for config in spec.configs)


class TestRunExperiment:
    def test_run_tiny_experiment(self):
        results = run_experiment("fig07", scale="tiny", seed=1, runs=2)
        assert len(results) == 1
        grid = next(iter(results.values()))
        assert grid.shape == (len(SCALES["tiny"].grid_percent),) * 2
        # Figure 7's headline: with repetition instead of FEC, only the
        # p = 0 row decodes reliably.
        assert grid.decodable_mask[0].all()
        assert not grid.decodable_mask[1:].any()

    def test_unknown_scale_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig09", scale="enormous")

    def test_custom_scale_object(self):
        from repro.core.experiments import ExperimentScale

        scale = ExperimentScale(name="custom", k=150, runs=1, grid_percent=(0, 50))
        results = run_experiment("fig12", scale=scale, seed=0)
        assert all(grid.shape == (2, 2) for grid in results.values())
