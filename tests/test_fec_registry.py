"""Unit tests for the FEC code registry."""

import pytest

from repro.fec import (
    LDGMStaircaseCode,
    LDGMTriangleCode,
    ReedSolomonCode,
    available_codes,
    make_code,
)
from repro.fec.registry import register_code, resolve_code_name


class TestRegistry:
    def test_all_paper_codes_registered(self):
        names = available_codes()
        for expected in ("rse", "ldgm", "ldgm-staircase", "ldgm-triangle", "repetition"):
            assert expected in names

    def test_make_code_by_ratio(self):
        code = make_code("ldgm-staircase", k=100, expansion_ratio=1.5, seed=0)
        assert isinstance(code, LDGMStaircaseCode)
        assert code.k == 100 and code.n == 150

    def test_make_code_by_n(self):
        code = make_code("ldgm-triangle", k=100, n=230, seed=0)
        assert isinstance(code, LDGMTriangleCode)
        assert code.n == 230

    def test_aliases_resolve(self):
        assert resolve_code_name("Reed-Solomon") == "rse"
        assert resolve_code_name("staircase") == "ldgm-staircase"
        assert resolve_code_name("TRIANGLE") == "ldgm-triangle"

    def test_unknown_code_rejected(self):
        with pytest.raises(KeyError):
            make_code("totally-unknown", k=10, expansion_ratio=2.0)

    def test_requires_exactly_one_size_argument(self):
        with pytest.raises(ValueError):
            make_code("rse", k=10)
        with pytest.raises(ValueError):
            make_code("rse", k=10, n=20, expansion_ratio=2.0)

    def test_n_not_larger_than_k_rejected(self):
        with pytest.raises(ValueError):
            make_code("rse", k=10, n=10)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_code("rse", ReedSolomonCode)

    def test_expansion_ratio_and_code_rate(self):
        code = make_code("rse", k=100, expansion_ratio=2.5)
        assert code.expansion_ratio == pytest.approx(2.5)
        assert code.code_rate == pytest.approx(0.4)
        assert code.is_mds

    def test_repr_contains_dimensions(self):
        code = make_code("ldgm", k=20, expansion_ratio=2.0, seed=0)
        assert "k=20" in repr(code) and "n=40" in repr(code)
