"""Unit tests for the n_sent optimiser and the recommendation engine."""

import numpy as np
import pytest

from repro.core.optimizer import (
    optimal_nsent,
    optimal_nsent_for_object,
    worked_example_section_6_2_1,
)
from repro.core.recommendations import (
    DEFAULT_CANDIDATES,
    recommend_for_channel,
    universal_recommendations,
)


class TestOptimalNsent:
    def test_no_loss_no_margin(self):
        plan = optimal_nsent(1000, 1.0, 0.0, expansion_ratio=2.5, margin_fraction=0.0)
        assert plan.nsent == 1000
        assert plan.nsent_with_margin == 1000
        assert plan.saved_packets == 1500

    def test_loss_increases_nsent(self):
        lossless = optimal_nsent(1000, 1.1, 0.0, expansion_ratio=2.5)
        lossy = optimal_nsent(1000, 1.1, 0.3, expansion_ratio=2.5)
        assert lossy.nsent > lossless.nsent

    def test_capped_at_n(self):
        plan = optimal_nsent(1000, 1.4, 0.6, expansion_ratio=1.5)
        assert plan.nsent == 1500
        assert plan.nsent_with_margin == 1500
        assert plan.saved_packets == 0

    def test_margin_applied(self):
        plan = optimal_nsent(1000, 1.0, 0.0, expansion_ratio=2.5, margin_fraction=0.2)
        assert plan.nsent_with_margin == 1200

    def test_saved_fraction(self):
        plan = optimal_nsent(1000, 1.0, 0.0, expansion_ratio=2.0, margin_fraction=0.0)
        assert plan.saved_fraction == pytest.approx(0.5)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            optimal_nsent(1000, 0.9, 0.1, expansion_ratio=2.5)
        with pytest.raises(ValueError):
            optimal_nsent(1000, 1.1, 1.0, expansion_ratio=2.5)

    def test_for_object_helper(self):
        plan = optimal_nsent_for_object(
            1_000_000, 1000, 1.05, 0.01, 0.8, expansion_ratio=1.5
        )
        assert plan.k == 1000
        assert plan.nsent >= 1050


class TestWorkedExample:
    def test_matches_paper_numbers(self):
        """Section 6.2.1: ~50 041 packets needed, ~55 000 with margin, out of ~73 243."""
        plan = worked_example_section_6_2_1()
        assert plan.k == 48829
        assert plan.n == pytest.approx(73243, abs=2)
        assert plan.nsent == pytest.approx(50041, abs=5)
        assert plan.nsent_with_margin == pytest.approx(55000, rel=0.01)
        assert plan.saved_packets > 18000


class TestRecommendations:
    def test_universal_recommendations_match_paper(self):
        recommendations = universal_recommendations()
        pairs = {(rec.code, rec.tx_model) for rec in recommendations}
        assert ("ldgm-triangle", "tx_model_4") in pairs
        assert ("ldgm-staircase", "tx_model_6") in pairs
        assert ("rse", "tx_model_5") in pairs
        assert all(rec.describe() for rec in recommendations)

    def test_recommend_for_known_channel(self):
        recommendations = recommend_for_channel(
            0.01, 0.8, k=300, runs=3, seed=1, expansion_ratios=(1.5, 2.5)
        )
        assert len(recommendations) == len(DEFAULT_CANDIDATES) * 2
        best = recommendations[0]
        assert best.reliable
        assert best.mean_inefficiency < 1.2
        # Reliable recommendations are sorted by increasing inefficiency.
        reliable = [rec for rec in recommendations if rec.reliable]
        values = [rec.mean_inefficiency for rec in reliable]
        assert values == sorted(values)

    def test_nsent_plan_attached_to_reliable_recommendations(self):
        recommendations = recommend_for_channel(0.01, 0.8, k=300, runs=3, seed=1)
        for recommendation in recommendations:
            if recommendation.reliable:
                assert recommendation.nsent_plan is not None
                assert recommendation.nsent_plan.nsent <= recommendation.nsent_plan.n

    def test_hopeless_channel_yields_unreliable_recommendations(self):
        recommendations = recommend_for_channel(
            0.9, 0.05, k=200, runs=2, seed=1, expansion_ratios=(1.5,)
        )
        assert all(not rec.reliable for rec in recommendations)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            recommend_for_channel(1.5, 0.5)
