"""Unit tests for grid and parameter sweeps."""

import numpy as np
import pytest

from repro.core.config import SimulationConfig
from repro.core.sweep import simulate_grid, sweep_parameter


@pytest.fixture(scope="module")
def small_grid():
    config = SimulationConfig(code="ldgm-staircase", tx_model="tx_model_2", k=200, expansion_ratio=2.5)
    return simulate_grid(
        config,
        p_values=[0.0, 0.05, 0.3],
        q_values=[0.2, 0.6, 1.0],
        runs=3,
        seed=7,
    )


class TestSimulateGrid:
    def test_shapes_and_metadata(self, small_grid):
        assert small_grid.shape == (3, 3)
        assert small_grid.runs == 3
        assert small_grid.metadata["code"] == "ldgm-staircase"
        assert small_grid.metadata["k"] == 200

    def test_perfect_row_is_ideal(self, small_grid):
        # p = 0 -> no loss -> source packets arrive first -> inefficiency 1.0.
        assert np.allclose(small_grid.mean_inefficiency[0], 1.0)
        assert np.all(small_grid.failure_counts[0] == 0)

    def test_received_ratio_bounded_by_expansion(self, small_grid):
        finite = small_grid.mean_received_ratio[np.isfinite(small_grid.mean_received_ratio)]
        assert np.all(finite <= 2.5 + 1e-9)

    def test_inefficiency_at_least_one(self, small_grid):
        finite = small_grid.mean_inefficiency[np.isfinite(small_grid.mean_inefficiency)]
        assert np.all(finite >= 1.0 - 1e-9)

    def test_failed_cells_reported_as_nan(self, small_grid):
        failures = small_grid.failure_counts > 0
        assert np.all(np.isnan(small_grid.mean_inefficiency[failures]))

    def test_reproducible_for_same_seed(self):
        config = SimulationConfig(code="ldgm-staircase", tx_model="tx_model_4", k=150, expansion_ratio=2.5)
        first = simulate_grid(config, [0.05], [0.5], runs=3, seed=11)
        second = simulate_grid(config, [0.05], [0.5], runs=3, seed=11)
        assert np.array_equal(first.mean_inefficiency, second.mean_inefficiency, equal_nan=True)

    def test_different_seed_changes_results(self):
        config = SimulationConfig(code="ldgm-staircase", tx_model="tx_model_4", k=150, expansion_ratio=2.5)
        first = simulate_grid(config, [0.05], [0.5], runs=3, seed=11)
        second = simulate_grid(config, [0.05], [0.5], runs=3, seed=12)
        assert not np.array_equal(first.mean_inefficiency, second.mean_inefficiency, equal_nan=True)

    def test_default_grid_is_papers(self):
        config = SimulationConfig(code="rse", tx_model="tx_model_5", k=100, expansion_ratio=2.5)
        grid = simulate_grid(config, runs=1, seed=0)
        assert grid.shape == (14, 14)

    def test_progress_callback_invoked(self):
        config = SimulationConfig(code="rse", tx_model="tx_model_5", k=100, expansion_ratio=2.5)
        calls = []
        simulate_grid(
            config, [0.0, 0.1], [0.5], runs=1, seed=0, progress=lambda done, total: calls.append((done, total))
        )
        assert calls == [(1, 2), (2, 2)]

    def test_fresh_code_per_run(self):
        config = SimulationConfig(code="ldgm-staircase", tx_model="tx_model_4", k=150, expansion_ratio=2.5)
        grid = simulate_grid(config, [0.05], [0.5], runs=2, seed=3, fresh_code_per_run=True)
        assert np.isfinite(grid.mean_inefficiency).all()

    def test_invalid_runs_rejected(self):
        config = SimulationConfig(k=100, expansion_ratio=2.5)
        with pytest.raises(ValueError):
            simulate_grid(config, [0.0], [0.5], runs=0)


class TestSweepParameter:
    def test_rx_model_sweep(self):
        def make_config(num_source):
            return SimulationConfig(
                code="ldgm-staircase",
                tx_model="rx_model_1",
                k=300,
                expansion_ratio=2.5,
                tx_options={"num_source_packets": int(num_source)},
            )

        series = sweep_parameter(
            make_config,
            [1, 10, 50],
            parameter_name="received source packets",
            p=0.0,
            q=1.0,
            runs=3,
            seed=5,
        )
        assert series.parameter_values.tolist() == [1.0, 10.0, 50.0]
        assert series.mean_inefficiency.shape == (3,)
        assert np.all(series.failure_counts == 0)
        assert np.all(series.mean_inefficiency >= 1.0)

    def test_invalid_runs_rejected(self):
        with pytest.raises(ValueError):
            sweep_parameter(lambda value: SimulationConfig(k=10, expansion_ratio=2.0), [1.0], runs=0)

    def test_progress_callback_invoked(self):
        calls = []
        sweep_parameter(
            lambda value: SimulationConfig(k=100, expansion_ratio=2.0),
            [1.0, 2.0, 3.0],
            runs=1,
            seed=0,
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls == [(1, 3), (2, 3), (3, 3)]

    def test_fresh_code_per_run(self):
        series = sweep_parameter(
            lambda value: SimulationConfig(
                code="ldgm-staircase", tx_model="tx_model_4", k=150, expansion_ratio=2.5
            ),
            [1.0, 2.0],
            p=0.05,
            q=0.5,
            runs=2,
            seed=3,
            fresh_code_per_run=True,
        )
        assert np.isfinite(series.mean_inefficiency).all()

    def test_code_seed_derivation_avoids_index_collisions(self):
        # Historically index i at base seed s shared its code stream with
        # index i-1 at base seed s+1; the SeedSequence([base_seed, index])
        # derivation must keep them distinct.
        def make_config(value):
            return SimulationConfig(
                code="ldgm-staircase", tx_model="tx_model_4", k=150, expansion_ratio=2.5
            )

        first = sweep_parameter(make_config, [1.0, 2.0], p=0.05, q=0.5, runs=3, seed=11)
        shifted = sweep_parameter(make_config, [1.0, 2.0], p=0.05, q=0.5, runs=3, seed=12)
        assert np.isfinite(first.mean_inefficiency[1])
        assert np.isfinite(shifted.mean_inefficiency[0])
        assert first.mean_inefficiency[1] != shifted.mean_inefficiency[0]

    def test_accepts_generator_parameter_values(self):
        series = sweep_parameter(
            lambda value: SimulationConfig(k=100, expansion_ratio=2.0),
            (float(value) for value in (1, 2)),
            runs=1,
            seed=0,
        )
        assert series.parameter_values.tolist() == [1.0, 2.0]

    def test_reproducible_for_same_seed(self):
        def make_config(value):
            return SimulationConfig(
                code="ldgm-staircase", tx_model="tx_model_4", k=150, expansion_ratio=2.5
            )

        first = sweep_parameter(make_config, [1.0, 2.0], p=0.05, q=0.5, runs=3, seed=11)
        second = sweep_parameter(make_config, [1.0, 2.0], p=0.05, q=0.5, runs=3, seed=11)
        assert np.array_equal(
            first.mean_inefficiency, second.mean_inefficiency, equal_nan=True
        )
