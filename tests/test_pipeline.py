"""Batched run-synthesis pipeline: batch/serial equivalence and columnar results.

The pipeline contract is that every batched stage -- ``schedule_batch``,
``loss_mask_batch``, the received-batch assembly and the columnar
``RunResultBatch`` -- is bit-identical to the per-run incremental path for
any seed.  This suite sweeps the full tx model x rx model x channel matrix
(including the trace and periodic channels, which have no decoder-level
parity test elsewhere), drives a hypothesis sweep over random
configurations, and pins the dispatch rules (shared generators, duck-typed
models, ragged schedules) to the per-run reference loop.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.channel.bernoulli import BernoulliChannel, PerfectChannel
from repro.channel.gilbert import GilbertChannel
from repro.channel.periodic import PeriodicBurstChannel
from repro.channel.trace import TraceChannel
from repro.core.metrics import CellStats, RunResultBatch
from repro.core.simulator import Simulator
from repro.fastpath import simulate_batch, simulate_batch_columnar
from repro.fec.registry import make_code
from repro.kernels import get_backend
from repro.pipeline import can_batch_stages, synthesize_runs
from repro.runner.units import WorkUnit, execute_unit
from repro.scheduling.interleaver import (
    _block_interleave_reference,
    _proportional_interleave_reference,
    block_interleave,
    proportional_interleave,
)
from repro.scheduling.registry import available_tx_models, make_tx_model

#: A loss trace with structure (bursts and gaps), for the replay channels.
_TRACE = (np.sin(np.arange(41) * 1.7) > 0.2).tolist()

#: Every channel family; trace and periodic previously lacked a batched
#: parity test at the simulation level.
CHANNELS = [
    GilbertChannel(0.05, 0.5),
    GilbertChannel(0.3, 0.2),
    GilbertChannel(0.99, 0.99),
    GilbertChannel(0.0, 0.5),
    GilbertChannel(0.2, 0.0),
    BernoulliChannel(0.2),
    BernoulliChannel(0.0),
    BernoulliChannel(1.0),
    PerfectChannel(),
    PeriodicBurstChannel(7, 2, offset=3),
    TraceChannel(_TRACE),
    TraceChannel(_TRACE, cyclic=False),
    TraceChannel(_TRACE, random_offset=True),
    TraceChannel(_TRACE, cyclic=False, random_offset=True),
]

TX_MODELS = [(f"tx_model_{i}", {}) for i in range(1, 7)] + [
    ("rx_model_1", {"num_source_packets": 17}),
    ("rx_model_1", {"num_source_packets": 17, "pick_randomly": False}),
]

CODES = [("ldgm-staircase", 2.5), ("rse", 2.5), ("repetition", 2.0)]


def seeded_rngs(salt, runs):
    return [
        np.random.default_rng(np.random.SeedSequence([1811, salt, run]))
        for run in range(runs)
    ]


def reference_results(code, tx_model, channel, rngs, nsent=None):
    """One incremental Simulator.run per generator (the ground truth)."""
    return [
        Simulator(code, tx_model, channel).run(rng, nsent=nsent) for rng in rngs
    ]


class TestScheduleBatch:
    """schedule_batch row i == schedule(rngs[i]), generators consumed alike."""

    @pytest.mark.parametrize("tx_name,options", TX_MODELS)
    @pytest.mark.parametrize("code_name,ratio", CODES)
    def test_rows_and_generator_state(self, tx_name, options, code_name, ratio):
        code = make_code(code_name, k=60, expansion_ratio=ratio, seed=5)
        model = make_tx_model(tx_name, **options)
        serial_rngs, batch_rngs = seeded_rngs(0, 6), seeded_rngs(0, 6)
        rows = [model.schedule(code.layout, rng) for rng in serial_rngs]
        batch = model.schedule_batch(code.layout, batch_rngs)
        assert batch.shape == (6, rows[0].size)
        for index, row in enumerate(rows):
            assert np.array_equal(batch[index], row)
        for serial_rng, batch_rng in zip(serial_rngs, batch_rngs):
            assert serial_rng.integers(1 << 30) == batch_rng.integers(1 << 30)

    def test_deterministic_models_broadcast(self):
        code = make_code("rse", k=60, expansion_ratio=2.5, seed=5)
        for name in ("tx_model_1", "tx_model_5"):
            model = make_tx_model(name)
            assert not model.uses_rng
            batch = model.schedule_batch(code.layout, seeded_rngs(1, 4))
            assert batch.base is not None  # a broadcast view, not 4 copies
            assert np.array_equal(batch[0], model.schedule(code.layout))

    def test_default_implementation_stacks_third_party_models(self):
        class ThirdPartyModel(make_tx_model("tx_model_1").__class__.__mro__[1]):
            name = "third-party"

            def schedule(self, layout, rng=None):
                rng = np.random.default_rng(0) if rng is None else rng
                return np.sort(rng.choice(layout.n, size=5, replace=False))

        code = make_code("ldgm-staircase", k=40, expansion_ratio=2.5, seed=1)
        model = ThirdPartyModel()
        batch = model.schedule_batch(code.layout, seeded_rngs(2, 3))
        rows = [model.schedule(code.layout, rng) for rng in seeded_rngs(2, 3)]
        assert isinstance(batch, np.ndarray) and batch.shape == (3, 5)
        for index, row in enumerate(rows):
            assert np.array_equal(batch[index], row)

    def test_default_implementation_returns_ragged_rows_as_list(self):
        class RaggedModel(make_tx_model("tx_model_1").__class__.__mro__[1]):
            name = "ragged"

            def schedule(self, layout, rng=None):
                size = 3 + int(rng.integers(4))
                return np.arange(size, dtype=np.int64)

        code = make_code("ldgm-staircase", k=40, expansion_ratio=2.5, seed=1)
        batch = RaggedModel().schedule_batch(code.layout, seeded_rngs(3, 8))
        rows = [RaggedModel().schedule(code.layout, rng) for rng in seeded_rngs(3, 8)]
        assert isinstance(batch, list)
        assert [row.size for row in batch] == [row.size for row in rows]


class TestLossMaskBatch:
    """loss_mask_batch row i == loss_mask(rngs[i]), for every channel."""

    @pytest.mark.parametrize("channel", CHANNELS, ids=repr)
    @pytest.mark.parametrize("count", [0, 1, 23, 400])
    def test_rows_and_generator_state(self, channel, count):
        serial = np.stack(
            [channel.loss_mask(count, rng) for rng in seeded_rngs(4, 5)]
        ).reshape(5, count)
        batch = channel.loss_mask_batch(count, seeded_rngs(4, 5))
        assert np.array_equal(np.asarray(batch), serial)
        serial_rngs, batch_rngs = seeded_rngs(4, 5), seeded_rngs(4, 5)
        for rng in serial_rngs:
            channel.loss_mask(count, rng)
        channel.loss_mask_batch(count, batch_rngs)
        for serial_rng, batch_rng in zip(serial_rngs, batch_rngs):
            assert serial_rng.integers(1 << 30) == batch_rng.integers(1 << 30)

    def test_deterministic_channels_do_not_consume_generators(self):
        for channel in (
            PerfectChannel(),
            PeriodicBurstChannel(5, 2),
            TraceChannel(_TRACE),
        ):
            assert not channel.uses_rng
            rngs = seeded_rngs(5, 3)
            channel.loss_mask_batch(50, rngs)
            fresh = seeded_rngs(5, 3)
            for used, untouched in zip(rngs, fresh):
                assert used.integers(1 << 30) == untouched.integers(1 << 30)

    def test_uses_rng_flags(self):
        assert GilbertChannel(0.1, 0.5).uses_rng
        assert not GilbertChannel(0.0, 0.5).uses_rng
        assert not GilbertChannel(0.1, 0.0).uses_rng
        assert BernoulliChannel(0.5).uses_rng
        assert not BernoulliChannel(0.0).uses_rng
        assert not BernoulliChannel(1.0).uses_rng
        assert TraceChannel(_TRACE, random_offset=True).uses_rng
        assert not TraceChannel(_TRACE).uses_rng

    def test_gilbert_batch_matches_serial_reference_chain(self):
        channel = GilbertChannel(0.07, 0.3)
        masks = channel.loss_mask_batch(300, seeded_rngs(6, 4))
        for index, rng in enumerate(seeded_rngs(6, 4)):
            assert np.array_equal(masks[index], channel._loss_mask_serial(300, rng))

    def test_fill_sojourns_batch_matches_per_row_fill(self):
        rng = np.random.default_rng(11)
        states = rng.random(8) < 0.5
        gap_runs = rng.geometric(0.1, size=(8, 16)).astype(np.int64)
        burst_runs = rng.geometric(0.6, size=(8, 16)).astype(np.int64)
        from repro.kernels import available_backends

        reference = None
        for kernel in available_backends():
            backend = get_backend(kernel)
            masks = np.empty((8, 40), dtype=bool)
            filled = backend.fill_sojourns_batch(masks, states, gap_runs, burst_runs)
            rows = np.empty((8, 40), dtype=bool)
            expected = [
                backend.fill_sojourns(rows[i], 0, bool(states[i]), gap_runs[i], burst_runs[i])
                for i in range(8)
            ]
            assert filled.tolist() == expected
            for i, count in enumerate(expected):
                assert np.array_equal(masks[i, :count], rows[i, :count])
            if reference is None:
                reference = (filled.copy(), masks.copy())
            else:
                assert np.array_equal(reference[0], filled)
                for i, count in enumerate(expected):
                    assert np.array_equal(reference[1][i, :count], masks[i, :count])


class TestPipelineEquivalence:
    """Full matrix: batched pipeline == per-run incremental simulator."""

    @pytest.mark.parametrize("channel", CHANNELS, ids=repr)
    @pytest.mark.parametrize("tx_name,options", TX_MODELS)
    def test_tx_by_channel(self, tx_name, options, channel):
        code = make_code("ldgm-staircase", k=40, expansion_ratio=2.5, seed=3)
        tx_model = make_tx_model(tx_name, **options)
        expected = reference_results(code, tx_model, channel, seeded_rngs(7, 4))
        actual = simulate_batch(code, tx_model, channel, seeded_rngs(7, 4))
        assert actual == expected

    @pytest.mark.parametrize("code_name,ratio", CODES)
    @pytest.mark.parametrize(
        "channel",
        [GilbertChannel(0.1, 0.4), PeriodicBurstChannel(9, 3), TraceChannel(_TRACE, random_offset=True)],
        ids=repr,
    )
    def test_codes_by_channel(self, code_name, ratio, channel):
        code = make_code(code_name, k=60, expansion_ratio=ratio, seed=2)
        tx_model = make_tx_model("tx_model_2")
        expected = reference_results(code, tx_model, channel, seeded_rngs(8, 5))
        actual = simulate_batch(code, tx_model, channel, seeded_rngs(8, 5))
        assert actual == expected

    def test_nsent_truncation(self):
        code = make_code("rse", k=60, expansion_ratio=2.5, seed=2)
        tx_model = make_tx_model("tx_model_4")
        channel = TraceChannel(_TRACE)
        for nsent in (1, 40, 5000):
            expected = reference_results(
                code, tx_model, channel, seeded_rngs(9, 4), nsent=nsent
            )
            actual = simulate_batch(
                code, tx_model, channel, seeded_rngs(9, 4), nsent=nsent
            )
            assert actual == expected

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        code_index=st.integers(min_value=0, max_value=len(CODES) - 1),
        tx_index=st.integers(min_value=0, max_value=len(TX_MODELS) - 1),
        channel_index=st.integers(min_value=0, max_value=len(CHANNELS) - 1),
        k=st.integers(min_value=2, max_value=70),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        runs=st.integers(min_value=1, max_value=5),
        nsent=st.none() | st.integers(min_value=1, max_value=250),
    )
    def test_random_configurations_bit_identical(
        self, code_index, tx_index, channel_index, k, seed, runs, nsent
    ):
        code_name, ratio = CODES[code_index]
        try:
            code = make_code(code_name, k=k, expansion_ratio=ratio, seed=seed)
        except ValueError:
            return  # degenerate dimensions (e.g. RSE without parity room)
        tx_name, options = TX_MODELS[tx_index]
        tx_model = make_tx_model(tx_name, **options)
        channel = CHANNELS[channel_index]
        rngs = lambda: [
            np.random.default_rng(np.random.SeedSequence([seed, run]))
            for run in range(runs)
        ]
        expected = reference_results(code, tx_model, channel, rngs(), nsent=nsent)
        actual = simulate_batch(code, tx_model, channel, rngs(), nsent=nsent)
        assert actual == expected


class TestDispatch:
    """Stage-major batching only where provably draw-identical."""

    def _layout_rngs(self, shared):
        if shared:
            rng = np.random.default_rng(5)
            return [rng] * 4
        return seeded_rngs(10, 4)

    def test_distinct_generators_batch(self):
        assert can_batch_stages(
            make_tx_model("tx_model_2"), GilbertChannel(0.1, 0.5), self._layout_rngs(False)
        )

    def test_shared_generator_with_two_stochastic_stages_falls_back(self):
        assert not can_batch_stages(
            make_tx_model("tx_model_2"), GilbertChannel(0.1, 0.5), self._layout_rngs(True)
        )

    def test_shared_generator_with_one_stochastic_stage_batches(self):
        assert can_batch_stages(
            make_tx_model("tx_model_1"), GilbertChannel(0.1, 0.5), self._layout_rngs(True)
        )
        assert can_batch_stages(
            make_tx_model("tx_model_2"), PerfectChannel(), self._layout_rngs(True)
        )

    def test_duck_typed_model_falls_back(self):
        class DuckModel:
            name = "duck"

            def schedule(self, layout, rng=None):
                return np.arange(layout.n, dtype=np.int64)

            def validate_schedule(self, layout, schedule):
                return np.asarray(schedule, dtype=np.int64)

        assert not can_batch_stages(
            DuckModel(), PerfectChannel(), self._layout_rngs(False)
        )
        code = make_code("ldgm-staircase", k=30, expansion_ratio=2.5, seed=1)
        expected = reference_results(
            code, DuckModel(), GilbertChannel(0.2, 0.4), seeded_rngs(11, 3)
        )
        actual = simulate_batch(
            code, DuckModel(), GilbertChannel(0.2, 0.4), seeded_rngs(11, 3)
        )
        assert actual == expected

    def test_shared_generator_pipeline_still_bit_identical(self):
        code = make_code("ldgm-staircase", k=50, expansion_ratio=2.5, seed=4)
        for tx_name, channel in [
            ("tx_model_2", GilbertChannel(0.1, 0.5)),  # fallback path
            ("tx_model_1", GilbertChannel(0.1, 0.5)),  # batched, shared rng
            ("tx_model_2", PeriodicBurstChannel(6, 2)),  # batched, shared rng
        ]:
            tx_model = make_tx_model(tx_name)
            serial = reference_results(
                code, tx_model, channel, [np.random.default_rng(9)] * 5
            )
            batched = simulate_batch(
                code, tx_model, channel, [np.random.default_rng(9)] * 5
            )
            assert batched == serial

    def test_shared_generator_gilbert_continuation_draw_order(self):
        # Regression: with a shared generator, a deterministic tx model and
        # a Gilbert chain whose first sojourn batch does not cover the mask
        # (short sojourns, long schedule), the serial path draws a run's
        # continuation batches *before* the next run's state draw.  The
        # batched channel stage must pre-draw them in that exact order.
        code = make_code("ldgm-staircase", k=1500, expansion_ratio=2.0, seed=11)
        channel = GilbertChannel(0.9, 0.9)  # mean sojourn ~1.1: continuation certain
        for tx_name in ("tx_model_1", "tx_model_5"):
            tx_model = make_tx_model(tx_name)
            serial = reference_results(
                code, tx_model, channel, [np.random.default_rng(42)] * 8
            )
            batched = simulate_batch(
                code, tx_model, channel, [np.random.default_rng(42)] * 8
            )
            assert batched == serial

    def test_ragged_third_party_schedules_flow_through(self):
        from repro.scheduling.base import TransmissionModel

        class RaggedModel(TransmissionModel):
            name = "ragged"

            def schedule(self, layout, rng=None):
                size = 5 + int(rng.integers(layout.n - 5))
                order = np.arange(layout.n, dtype=np.int64)
                rng.shuffle(order)
                return order[:size]

        code = make_code("ldgm-staircase", k=30, expansion_ratio=2.5, seed=6)
        expected = reference_results(
            code, RaggedModel(), PerfectChannel(), seeded_rngs(12, 5)
        )
        actual = simulate_batch(
            code, RaggedModel(), PerfectChannel(), seeded_rngs(12, 5)
        )
        assert actual == expected


class TestValidation:
    def test_out_of_range_index_raises_once_per_unit(self):
        from repro.scheduling.base import TransmissionModel

        class BadModel(TransmissionModel):
            name = "bad"
            uses_rng = False

            def schedule(self, layout, rng=None):
                schedule = np.arange(layout.n, dtype=np.int64)
                schedule[-1] = layout.n  # out of range
                return schedule

        code = make_code("ldgm-staircase", k=30, expansion_ratio=2.5, seed=0)
        with pytest.raises(ValueError, match="outside"):
            simulate_batch(code, BadModel(), PerfectChannel(), seeded_rngs(13, 3))

    def test_schedule_validated_once_not_per_run(self):
        calls = {"count": 0}
        model = make_tx_model("tx_model_2")
        original = model.validate_schedule

        def counting_validate(layout, schedule):
            calls["count"] += 1
            return original(layout, schedule)

        model.validate_schedule = counting_validate
        code = make_code("ldgm-staircase", k=30, expansion_ratio=2.5, seed=0)
        # Batched path: bounds are checked on the assembled arrays, so the
        # per-run validate hook is not consulted at all.
        simulate_batch(code, model, GilbertChannel(0.1, 0.5), seeded_rngs(14, 6))
        assert calls["count"] == 0
        # Interleaved reference path: exactly one validation per work unit.
        simulate_batch(
            code, model, GilbertChannel(0.1, 0.5), [np.random.default_rng(3)] * 6
        )
        assert calls["count"] == 1


class TestColumnarResults:
    def _batch(self):
        code = make_code("ldgm-staircase", k=40, expansion_ratio=2.5, seed=3)
        return (
            simulate_batch_columnar(
                code,
                make_tx_model("tx_model_2"),
                BernoulliChannel(0.4),
                seeded_rngs(15, 8),
            ),
            code,
        )

    def test_columnar_matches_scalar_results(self):
        batch, code = self._batch()
        results = simulate_batch(
            code,
            make_tx_model("tx_model_2"),
            BernoulliChannel(0.4),
            seeded_rngs(15, 8),
        )
        assert batch.to_results() == results
        assert batch.runs == len(results)
        assert batch.failures == sum(1 for r in results if not r.decoded)
        assert batch.received_ratios().tolist() == [r.received_ratio for r in results]
        assert batch.inefficiency_ratios().tolist() == [
            r.inefficiency_ratio for r in results if r.decoded
        ]

    def test_from_results_roundtrip(self):
        batch, _ = self._batch()
        rebuilt = RunResultBatch.from_results(batch.to_results())
        assert np.array_equal(rebuilt.decoded, batch.decoded)
        assert np.array_equal(rebuilt.n_necessary, batch.n_necessary)
        assert np.array_equal(rebuilt.n_received, batch.n_received)
        assert np.array_equal(rebuilt.n_sent, batch.n_sent)
        assert (rebuilt.k, rebuilt.n) == (batch.k, batch.n)

    def test_concatenate(self):
        batch, _ = self._batch()
        first, second = batch.to_results()[:3], batch.to_results()[3:]
        joined = RunResultBatch.concatenate(
            [RunResultBatch.from_results(first), RunResultBatch.from_results(second)]
        )
        assert joined.to_results() == batch.to_results()
        assert RunResultBatch.concatenate([]).runs == 0
        with pytest.raises(ValueError, match="dimensions"):
            RunResultBatch.concatenate(
                [batch, RunResultBatch(
                    decoded=np.zeros(1, dtype=bool),
                    n_necessary=np.full(1, -1, dtype=np.int64),
                    n_received=np.zeros(1, dtype=np.int64),
                    n_sent=np.zeros(1, dtype=np.int64),
                    k=batch.k + 1,
                    n=batch.n,
                )]
            )

    def test_cellstats_add_batch_matches_per_result_add(self):
        batch, _ = self._batch()
        columnar, scalar = CellStats(), CellStats()
        columnar.add_batch(batch)
        for result in batch.to_results():
            scalar.add(result)
        assert columnar == scalar

    def test_simulator_run_batch(self):
        code = make_code("rse", k=40, expansion_ratio=2.5, seed=1)
        simulator = Simulator(
            code, make_tx_model("tx_model_5"), GilbertChannel(0.1, 0.6)
        )
        batch = simulator.run_batch(6, rng=21)
        expected = Simulator(
            code, make_tx_model("tx_model_5"), GilbertChannel(0.1, 0.6)
        ).run_many(6, rng=21)
        assert batch.to_results() == expected

    def test_empty_batch(self):
        code = make_code("ldgm-staircase", k=30, expansion_ratio=2.5, seed=0)
        batch = simulate_batch_columnar(
            code, make_tx_model("tx_model_1"), PerfectChannel(), []
        )
        assert batch.runs == 0
        assert batch.to_results() == []


class TestRunnerColumnar:
    def test_execute_unit_matches_reference(self):
        from repro.core.config import SimulationConfig

        unit = WorkUnit(
            config=SimulationConfig(
                code="ldgm-staircase", tx_model="tx_model_2", k=80, expansion_ratio=2.5
            ),
            p=0.1,
            q=0.5,
            seed_path=(1, 2),
            run_start=0,
            run_stop=6,
            base_seed=33,
        )
        fast = execute_unit(unit)
        slow = execute_unit(
            WorkUnit(**{**unit.__dict__, "fastpath": False})
        )
        assert fast == slow


class TestVectorisedInterleavers:
    def test_block_interleave_matches_reference(self):
        for code_name, k in [("rse", 95), ("rse", 200), ("repetition", 30)]:
            code = make_code(code_name, k=k, expansion_ratio=2.0, seed=1)
            assert np.array_equal(
                block_interleave(code.layout),
                _block_interleave_reference(code.layout),
            )

    def test_proportional_interleave_matches_reference(self):
        rng = np.random.default_rng(17)
        for _ in range(300):
            first = rng.integers(0, 500, size=int(rng.integers(0, 60)))
            second = rng.integers(500, 1000, size=int(rng.integers(0, 60)))
            assert np.array_equal(
                proportional_interleave(first, second),
                _proportional_interleave_reference(first, second),
            )

    @settings(max_examples=60, deadline=None)
    @given(
        first_size=st.integers(min_value=0, max_value=200),
        second_size=st.integers(min_value=0, max_value=200),
    )
    def test_proportional_interleave_property(self, first_size, second_size):
        first = np.arange(first_size, dtype=np.int64)
        second = np.arange(1000, 1000 + second_size, dtype=np.int64)
        assert np.array_equal(
            proportional_interleave(first, second),
            _proportional_interleave_reference(first, second),
        )


class TestSynthesizeRuns:
    def test_synthesis_matches_manual_front_end(self):
        code = make_code("ldgm-staircase", k=50, expansion_ratio=2.5, seed=7)
        tx_model = make_tx_model("tx_model_3")
        channel = GilbertChannel(0.15, 0.45)
        synthesis = synthesize_runs(
            code.layout, tx_model, channel, seeded_rngs(16, 5)
        )
        for index, rng in enumerate(seeded_rngs(16, 5)):
            schedule = tx_model.schedule(code.layout, rng)
            mask = channel.loss_mask(schedule.size, rng)
            expected = schedule[~mask]
            assert synthesis.n_sent[index] == schedule.size
            assert np.array_equal(synthesis.batch.run(index), expected)
        assert synthesis.num_runs == 5
        assert np.array_equal(
            synthesis.n_received, synthesis.batch.lengths
        )

    def test_empty_rngs(self):
        code = make_code("ldgm-staircase", k=30, expansion_ratio=2.5, seed=0)
        synthesis = synthesize_runs(
            code.layout, make_tx_model("tx_model_1"), PerfectChannel(), []
        )
        assert synthesis.num_runs == 0
        assert synthesis.n_sent.size == 0
