"""Unit tests for the multi-block RSE object codec and its symbolic decoder."""

import numpy as np
import pytest

from repro.fec import ReedSolomonCode


def make_payloads(rng, count, length=16):
    return [bytes(rng.integers(0, 256, size=length, dtype=np.uint8)) for _ in range(count)]


class TestLayout:
    def test_single_block_object(self):
        code = ReedSolomonCode(k=50, n=125)
        assert code.num_blocks == 1
        assert code.layout.k == 50 and code.layout.n == 125
        assert code.is_mds

    def test_multi_block_object(self):
        code = ReedSolomonCode(k=500, n=1250)
        assert code.num_blocks > 1
        assert code.layout.k == 500 and code.layout.n == 1250
        assert code.partition.max_block_n <= 256


class TestPayloadRoundtrip:
    def test_roundtrip_no_loss(self, rng):
        code = ReedSolomonCode(k=30, n=60)
        payloads = make_payloads(rng, 30)
        encoded = code.new_encoder().encode(payloads)
        assert len(encoded) == 60
        assert encoded[:30] == payloads
        decoder = code.new_decoder()
        complete = False
        for index, payload in enumerate(encoded[:30]):
            complete = decoder.add_packet(index, payload)
        assert complete
        assert decoder.source_payloads() == payloads

    def test_roundtrip_parity_only(self, rng):
        code = ReedSolomonCode(k=20, n=60)
        payloads = make_payloads(rng, 20)
        encoded = code.new_encoder().encode(payloads)
        decoder = code.new_decoder()
        for index in range(20, 60):
            if decoder.add_packet(index, encoded[index]):
                break
        assert decoder.is_complete
        assert decoder.source_payloads() == payloads

    def test_roundtrip_multi_block_random_subset(self, rng):
        code = ReedSolomonCode(k=300, n=750)
        payloads = make_payloads(rng, 300, length=4)
        encoded = code.new_encoder().encode(payloads)
        decoder = code.new_decoder()
        order = rng.permutation(750)
        for index in order:
            if decoder.add_packet(int(index), encoded[int(index)]):
                break
        assert decoder.is_complete
        assert decoder.source_payloads() == payloads

    def test_duplicate_packets_ignored(self, rng):
        code = ReedSolomonCode(k=10, n=25)
        payloads = make_payloads(rng, 10)
        encoded = code.new_encoder().encode(payloads)
        decoder = code.new_decoder()
        for _ in range(5):
            decoder.add_packet(0, encoded[0])
        assert not decoder.is_complete

    def test_mismatched_payload_length_rejected(self, rng):
        code = ReedSolomonCode(k=10, n=25)
        payloads = make_payloads(rng, 10)
        encoded = code.new_encoder().encode(payloads)
        decoder = code.new_decoder()
        decoder.add_packet(0, encoded[0])
        with pytest.raises(ValueError):
            decoder.add_packet(1, encoded[1][:-1])

    def test_incomplete_decoder_refuses_payloads(self, rng):
        code = ReedSolomonCode(k=10, n=25)
        decoder = code.new_decoder()
        with pytest.raises(RuntimeError):
            decoder.source_payloads()

    def test_encoder_validates_payload_count(self, rng):
        code = ReedSolomonCode(k=10, n=25)
        with pytest.raises(ValueError):
            code.new_encoder().encode(make_payloads(rng, 9))


class TestSymbolicDecoder:
    def test_mds_property_any_k_packets(self, rng):
        code = ReedSolomonCode(k=40, n=100)
        for _ in range(10):
            decoder = code.new_symbolic_decoder()
            order = rng.permutation(100)
            consumed = decoder.add_packets(int(i) for i in order)
            assert decoder.is_complete
            # Never more than n, never fewer than k packets.
            assert 40 <= consumed <= 100

    def test_exactly_k_needed_single_block(self):
        code = ReedSolomonCode(k=40, n=100)
        assert code.num_blocks == 1
        decoder = code.new_symbolic_decoder()
        consumed = decoder.add_packets(range(100))
        assert consumed == 40

    def test_multi_block_needs_every_block(self):
        code = ReedSolomonCode(k=200, n=500)
        assert code.num_blocks >= 2
        decoder = code.new_symbolic_decoder()
        first_block = code.layout.blocks[0]
        # Receiving the whole first block does not complete the object.
        for index in first_block.all_indices:
            decoder.add_packet(int(index))
        assert not decoder.is_complete
        assert decoder.decoded_source_count == first_block.k

    def test_duplicates_do_not_count(self):
        code = ReedSolomonCode(k=10, n=25)
        decoder = code.new_symbolic_decoder()
        for _ in range(9):
            decoder.add_packet(0)
        assert not decoder.is_complete

    def test_out_of_range_rejected(self):
        code = ReedSolomonCode(k=10, n=25)
        decoder = code.new_symbolic_decoder()
        with pytest.raises(IndexError):
            decoder.add_packet(25)

    def test_decoded_source_count_partial(self):
        code = ReedSolomonCode(k=10, n=25)
        decoder = code.new_symbolic_decoder()
        decoder.add_packet(0)
        decoder.add_packet(1)
        assert decoder.decoded_source_count == 2

    def test_symbolic_agrees_with_payload_decoder(self, rng):
        code = ReedSolomonCode(k=60, n=150)
        payloads = make_payloads(rng, 60, length=4)
        encoded = code.new_encoder().encode(payloads)
        order = [int(i) for i in rng.permutation(150)]
        symbolic = code.new_symbolic_decoder()
        payload_decoder = code.new_decoder()
        symbolic_needed = symbolic.add_packets(order)
        needed = None
        for count, index in enumerate(order, start=1):
            if payload_decoder.add_packet(index, encoded[index]):
                needed = count
                break
        assert symbolic.is_complete and payload_decoder.is_complete
        assert needed == symbolic_needed
