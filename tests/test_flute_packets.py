"""Unit tests for LCT headers, ALC packets, OTI and FDT instances."""

import pytest

from repro.fec import LDGMStaircaseCode, ReedSolomonCode
from repro.flute.alc import AlcPacket
from repro.flute.fdt import FdtInstance, FileEntry
from repro.flute.lct import LctHeader
from repro.flute.oti import FecObjectTransmissionInformation


class TestLctHeader:
    def test_roundtrip(self):
        header = LctHeader(tsi=7, toi=42, close_object=True, is_fdt=False)
        parsed = LctHeader.from_bytes(header.to_bytes())
        assert parsed == header

    def test_fdt_flag_roundtrip(self):
        header = LctHeader(tsi=1, toi=0, is_fdt=True, close_session=True)
        parsed = LctHeader.from_bytes(header.to_bytes())
        assert parsed.is_fdt and parsed.close_session

    def test_size_constant(self):
        assert len(LctHeader(tsi=0, toi=0).to_bytes()) == LctHeader.SIZE == 12

    def test_short_buffer_rejected(self):
        with pytest.raises(ValueError):
            LctHeader.from_bytes(b"\x01\x00")

    def test_wrong_version_rejected(self):
        data = bytearray(LctHeader(tsi=0, toi=0).to_bytes())
        data[0] = 9
        with pytest.raises(ValueError):
            LctHeader.from_bytes(bytes(data))

    def test_field_limits(self):
        with pytest.raises(ValueError):
            LctHeader(tsi=2**32, toi=0)
        with pytest.raises(ValueError):
            LctHeader(tsi=0, toi=-1)


class TestAlcPacket:
    def test_roundtrip(self):
        packet = AlcPacket(
            header=LctHeader(tsi=3, toi=5),
            source_block_number=2,
            encoding_symbol_id=17,
            payload=b"hello world",
        )
        parsed = AlcPacket.from_bytes(packet.to_bytes())
        assert parsed == packet
        assert len(packet) == len(packet.to_bytes())

    def test_empty_payload_roundtrip(self):
        packet = AlcPacket(LctHeader(tsi=0, toi=1), 0, 0, b"")
        assert AlcPacket.from_bytes(packet.to_bytes()).payload == b""

    def test_truncated_packet_rejected(self):
        packet = AlcPacket(LctHeader(tsi=0, toi=1), 0, 0, b"abc")
        with pytest.raises(ValueError):
            AlcPacket.from_bytes(packet.to_bytes()[: LctHeader.SIZE + 2])

    def test_field_limits(self):
        with pytest.raises(ValueError):
            AlcPacket(LctHeader(tsi=0, toi=1), -1, 0, b"")


class TestOti:
    def test_dict_roundtrip(self):
        oti = FecObjectTransmissionInformation(
            code_name="ldgm-staircase", k=100, n=250, symbol_size=64,
            object_length=6000, seed=1234,
        )
        assert FecObjectTransmissionInformation.from_dict(oti.to_dict()) == oti

    def test_build_code_reconstructs_same_ldgm_matrix(self):
        oti = FecObjectTransmissionInformation(
            code_name="ldgm-staircase", k=50, n=125, symbol_size=64,
            object_length=3000, seed=77,
        )
        first = oti.build_code()
        second = oti.build_code()
        assert isinstance(first, LDGMStaircaseCode)
        for row in range(first.matrix.num_checks):
            assert first.matrix.source_cols[row].tolist() == second.matrix.source_cols[row].tolist()

    def test_build_code_rse_with_block_limit(self):
        oti = FecObjectTransmissionInformation(
            code_name="rse", k=100, n=200, symbol_size=64,
            object_length=6400, max_block_size=64,
        )
        code = oti.build_code()
        assert isinstance(code, ReedSolomonCode)
        assert code.partition.max_block_n <= 64

    def test_expansion_ratio(self):
        oti = FecObjectTransmissionInformation("rse", 100, 250, 64, 6400)
        assert oti.expansion_ratio == pytest.approx(2.5)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            FecObjectTransmissionInformation("rse", 0, 10, 64, 100)
        with pytest.raises(ValueError):
            FecObjectTransmissionInformation("rse", 10, 10, 64, 100)
        with pytest.raises(ValueError):
            FecObjectTransmissionInformation("rse", 10, 20, 0, 100)


class TestFdt:
    def make_entry(self, toi=1):
        oti = FecObjectTransmissionInformation(
            code_name="ldgm-triangle", k=20, n=50, symbol_size=32,
            object_length=640, seed=5, max_block_size=None,
        )
        return FileEntry(toi=toi, content_location="movie.bin", content_length=640, oti=oti)

    def test_xml_roundtrip(self):
        fdt = FdtInstance(instance_id=3)
        fdt.add_file(self.make_entry())
        parsed = FdtInstance.from_xml(fdt.to_xml())
        assert parsed.instance_id == 3
        assert len(parsed) == 1
        entry = parsed.get_file(1)
        assert entry.content_location == "movie.bin"
        assert entry.oti.code_name == "ldgm-triangle"
        assert entry.oti.seed == 5

    def test_multiple_files(self):
        fdt = FdtInstance()
        fdt.add_file(self.make_entry(toi=1))
        fdt.add_file(self.make_entry(toi=2))
        parsed = FdtInstance.from_xml(fdt.to_xml())
        assert {entry.toi for entry in parsed} == {1, 2}

    def test_duplicate_toi_rejected(self):
        fdt = FdtInstance()
        fdt.add_file(self.make_entry())
        with pytest.raises(ValueError):
            fdt.add_file(self.make_entry())

    def test_unknown_toi_lookup_rejected(self):
        with pytest.raises(KeyError):
            FdtInstance().get_file(9)

    def test_fdt_toi_zero_reserved(self):
        oti = FecObjectTransmissionInformation("rse", 10, 20, 32, 320)
        with pytest.raises(ValueError):
            FileEntry(toi=0, content_location="x", content_length=320, oti=oti)

    def test_non_fdt_xml_rejected(self):
        with pytest.raises(ValueError):
            FdtInstance.from_xml(b"<NotAnFdt/>")
