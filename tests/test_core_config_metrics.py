"""Unit tests for SimulationConfig and the metric containers."""

import numpy as np
import pytest

from repro.core.config import SimulationConfig
from repro.core.metrics import CellStats, GridResult, RunResult, SeriesResult
from repro.fec import LDGMTriangleCode, ReedSolomonCode
from repro.scheduling import TxModel2


class TestSimulationConfig:
    def test_defaults_and_n(self):
        config = SimulationConfig(k=100, expansion_ratio=2.5)
        assert config.n == 250
        assert "ldgm-staircase" in config.display_label

    def test_build_code_and_tx_model(self):
        config = SimulationConfig(code="rse", tx_model="tx_model_2", k=100, expansion_ratio=2.5)
        assert isinstance(config.build_code(seed=0), ReedSolomonCode)
        assert isinstance(config.build_tx_model(), TxModel2)

    def test_code_options_forwarded(self):
        config = SimulationConfig(
            code="rse", k=400, expansion_ratio=2.0, code_options={"max_block_size": 64}
        )
        code = config.build_code()
        assert code.partition.max_block_n <= 64

    def test_tx_options_forwarded(self):
        config = SimulationConfig(
            tx_model="tx_model_6", k=100, expansion_ratio=2.5, tx_options={"source_fraction": 0.4}
        )
        assert config.build_tx_model().source_fraction == 0.4

    def test_unknown_names_rejected_eagerly(self):
        with pytest.raises(KeyError):
            SimulationConfig(code="nope", k=10, expansion_ratio=2.0)
        with pytest.raises(KeyError):
            SimulationConfig(tx_model="nope", k=10, expansion_ratio=2.0)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(k=0, expansion_ratio=2.0)
        with pytest.raises(ValueError):
            SimulationConfig(k=10, expansion_ratio=1.0)

    def test_with_updates(self):
        config = SimulationConfig(k=100, expansion_ratio=2.5)
        larger = config.with_updates(k=500)
        assert larger.k == 500 and config.k == 100

    def test_custom_label(self):
        config = SimulationConfig(k=100, expansion_ratio=2.5, label="my run")
        assert config.display_label == "my run"


class TestRunResult:
    def test_successful_run(self):
        result = RunResult(decoded=True, n_necessary=1100, n_received=2000, n_sent=2500, k=1000, n=2500)
        assert result.inefficiency_ratio == pytest.approx(1.1)
        assert result.received_ratio == pytest.approx(2.0)
        assert result.loss_fraction == pytest.approx(0.2)
        assert result.excess_packets == 900

    def test_failed_run(self):
        result = RunResult(decoded=False, n_necessary=None, n_received=900, n_sent=2500, k=1000, n=2500)
        assert np.isnan(result.inefficiency_ratio)
        assert result.excess_packets is None

    def test_zero_sent(self):
        result = RunResult(decoded=False, n_necessary=None, n_received=0, n_sent=0, k=10, n=25)
        assert result.loss_fraction == 0.0


class TestCellStats:
    def test_all_success_aggregation(self):
        stats = CellStats()
        for necessary in (1050, 1100):
            stats.add(RunResult(True, necessary, 2000, 2500, 1000, 2500))
        assert stats.all_decoded
        assert stats.mean_inefficiency == pytest.approx(1.075)
        assert stats.mean_received_ratio == pytest.approx(2.0)

    def test_single_failure_poisons_the_cell(self):
        stats = CellStats()
        stats.add(RunResult(True, 1050, 2000, 2500, 1000, 2500))
        stats.add(RunResult(False, None, 900, 2500, 1000, 2500))
        assert not stats.all_decoded
        assert np.isnan(stats.mean_inefficiency)
        # The successes-only mean is still available for diagnostics.
        assert stats.mean_inefficiency_of_successes == pytest.approx(1.05)

    def test_empty_cell(self):
        stats = CellStats()
        assert not stats.all_decoded
        assert np.isnan(stats.mean_inefficiency)


class TestGridResult:
    def make_grid(self):
        return GridResult(
            p_values=[0.0, 0.1],
            q_values=[0.5, 1.0],
            mean_inefficiency=np.array([[1.0, 1.1], [np.nan, 1.2]]),
            mean_received_ratio=np.array([[2.5, 2.5], [1.0, 2.0]]),
            failure_counts=np.array([[0, 0], [3, 0]]),
            runs=3,
            label="test",
        )

    def test_masks_and_coverage(self):
        grid = self.make_grid()
        assert grid.shape == (2, 2)
        assert grid.decodable_mask.tolist() == [[True, True], [False, True]]
        assert grid.coverage == pytest.approx(0.75)

    def test_extrema(self):
        grid = self.make_grid()
        assert grid.min_inefficiency() == pytest.approx(1.0)
        assert grid.max_inefficiency() == pytest.approx(1.2)
        assert grid.mean_over_decodable() == pytest.approx(1.1)

    def test_value_at_nearest_point(self):
        grid = self.make_grid()
        assert grid.value_at(0.11, 0.95) == pytest.approx(1.2)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GridResult(
                p_values=[0.0, 0.1],
                q_values=[0.5],
                mean_inefficiency=np.zeros((2, 2)),
                mean_received_ratio=np.zeros((2, 1)),
                failure_counts=np.zeros((2, 1)),
                runs=1,
            )


class TestSeriesResult:
    def test_best_parameter_skips_failures(self):
        series = SeriesResult(
            parameter_name="x",
            parameter_values=np.array([1.0, 2.0, 3.0]),
            mean_inefficiency=np.array([1.05, 1.01, 1.2]),
            failure_counts=np.array([0, 2, 0]),
            runs=3,
        )
        assert series.best_parameter() == 1.0
