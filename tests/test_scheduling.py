"""Unit tests for the transmission and reception models."""

import numpy as np
import pytest

from repro.fec import make_code
from repro.fec.packet import multi_block_layout, single_block_layout
from repro.scheduling import (
    RxModel1,
    TxModel1,
    TxModel2,
    TxModel3,
    TxModel4,
    TxModel5,
    TxModel6,
    available_tx_models,
    block_interleave,
    make_tx_model,
    proportional_interleave,
)
from repro.scheduling.registry import resolve_tx_model_name


@pytest.fixture
def ldgm_layout():
    return single_block_layout(100, 250)


@pytest.fixture
def rse_layout():
    return multi_block_layout([40, 40, 20], [100, 100, 50])


class TestTxModel1:
    def test_source_then_parity_sequential(self, ldgm_layout, rng):
        schedule = TxModel1().schedule(ldgm_layout, rng)
        assert schedule.tolist() == list(range(250))

    def test_multi_block_order(self, rse_layout, rng):
        schedule = TxModel1().schedule(rse_layout, rng)
        assert schedule[:100].tolist() == list(range(100))  # all source first
        assert sorted(schedule[100:].tolist()) == list(range(100, 250))


class TestTxModel2:
    def test_source_sequential_parity_random(self, ldgm_layout, rng):
        schedule = TxModel2().schedule(ldgm_layout, rng)
        assert schedule[:100].tolist() == list(range(100))
        parity_part = schedule[100:].tolist()
        assert sorted(parity_part) == list(range(100, 250))
        assert parity_part != list(range(100, 250))  # actually shuffled


class TestTxModel3:
    def test_parity_sequential_source_random(self, ldgm_layout, rng):
        schedule = TxModel3().schedule(ldgm_layout, rng)
        assert schedule[:150].tolist() == list(range(100, 250))
        source_part = schedule[150:].tolist()
        assert sorted(source_part) == list(range(100))
        assert source_part != list(range(100))


class TestTxModel4:
    def test_full_permutation(self, ldgm_layout, rng):
        schedule = TxModel4().schedule(ldgm_layout, rng)
        assert sorted(schedule.tolist()) == list(range(250))
        assert schedule.tolist() != list(range(250))

    def test_different_rngs_give_different_orders(self, ldgm_layout):
        first = TxModel4().schedule(ldgm_layout, np.random.default_rng(1))
        second = TxModel4().schedule(ldgm_layout, np.random.default_rng(2))
        assert first.tolist() != second.tolist()


class TestTxModel5:
    def test_block_interleaving_for_rse(self, rse_layout, rng):
        schedule = TxModel5().schedule(rse_layout, rng)
        assert sorted(schedule.tolist()) == list(range(250))
        # The first packets must come from different blocks.
        blocks = [rse_layout.block_of(int(i)) for i in schedule[:3]]
        assert blocks == [0, 1, 2]

    def test_proportional_interleaving_for_ldgm(self, ldgm_layout, rng):
        schedule = TxModel5().schedule(ldgm_layout, rng)
        assert sorted(schedule.tolist()) == list(range(250))
        # In any prefix, the share of source packets stays close to k/n.
        prefix = schedule[:50]
        source_count = int(np.count_nonzero(prefix < 100))
        assert 15 <= source_count <= 25  # ideal is 20

    def test_deterministic(self, ldgm_layout):
        first = TxModel5().schedule(ldgm_layout, np.random.default_rng(1))
        second = TxModel5().schedule(ldgm_layout, np.random.default_rng(99))
        assert first.tolist() == second.tolist()


class TestTxModel6:
    def test_sends_fraction_of_source_plus_all_parity(self, ldgm_layout, rng):
        schedule = TxModel6(source_fraction=0.2).schedule(ldgm_layout, rng)
        source_sent = [i for i in schedule.tolist() if i < 100]
        parity_sent = [i for i in schedule.tolist() if i >= 100]
        assert len(source_sent) == 20
        assert len(set(source_sent)) == 20
        assert sorted(parity_sent) == list(range(100, 250))

    def test_zero_fraction(self, ldgm_layout, rng):
        schedule = TxModel6(source_fraction=0.0).schedule(ldgm_layout, rng)
        assert sorted(schedule.tolist()) == list(range(100, 250))

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            TxModel6(source_fraction=1.5)


class TestRxModel1:
    def test_source_prefix_then_random_parity(self, ldgm_layout, rng):
        schedule = RxModel1(num_source_packets=10).schedule(ldgm_layout, rng)
        assert schedule.size == 10 + 150
        assert all(i < 100 for i in schedule[:10].tolist())
        assert sorted(schedule[10:].tolist()) == list(range(100, 250))

    def test_sequential_pick(self, ldgm_layout, rng):
        schedule = RxModel1(num_source_packets=5, pick_randomly=False).schedule(ldgm_layout, rng)
        assert schedule[:5].tolist() == [0, 1, 2, 3, 4]

    def test_count_capped_at_k(self, ldgm_layout, rng):
        schedule = RxModel1(num_source_packets=1000).schedule(ldgm_layout, rng)
        assert schedule.size == 250


class TestRegistryAndValidation:
    def test_all_models_registered(self):
        names = available_tx_models()
        for expected in [f"tx_model_{i}" for i in range(1, 7)] + ["rx_model_1"]:
            assert expected in names

    def test_aliases(self):
        assert resolve_tx_model_name("interleaving") == "tx_model_5"
        assert resolve_tx_model_name("TX4") == "tx_model_4"

    def test_make_with_options(self):
        model = make_tx_model("tx_model_6", source_fraction=0.3)
        assert isinstance(model, TxModel6)
        assert model.source_fraction == 0.3

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            make_tx_model("tx_model_99")

    def test_validate_schedule_catches_bad_indices(self, ldgm_layout):
        model = TxModel1()
        with pytest.raises(ValueError):
            model.validate_schedule(ldgm_layout, np.array([0, 1, 250]))

    def test_description(self):
        assert "random" in TxModel4().description().lower()

    def test_schedules_work_with_real_codes(self, rng):
        for code_name in ("rse", "ldgm-staircase", "ldgm-triangle"):
            code = make_code(code_name, k=120, expansion_ratio=2.5, seed=0)
            for tx_name in [f"tx_model_{i}" for i in range(1, 6)]:
                model = make_tx_model(tx_name)
                schedule = model.schedule(code.layout, rng)
                assert sorted(schedule.tolist()) == list(range(code.n)), (code_name, tx_name)


class TestInterleavers:
    def test_block_interleave_round_robin(self):
        layout = multi_block_layout([2, 2], [4, 4])
        schedule = block_interleave(layout)
        # block 0: [0,1,4,5]; block 1: [2,3,6,7] -> round robin.
        assert schedule.tolist() == [0, 2, 1, 3, 4, 6, 5, 7]

    def test_block_interleave_uneven_blocks(self):
        layout = multi_block_layout([3, 2], [5, 4])
        schedule = block_interleave(layout)
        assert sorted(schedule.tolist()) == list(range(9))

    def test_proportional_interleave_balance(self):
        first = np.arange(10)
        second = np.arange(10, 40)
        merged = proportional_interleave(first, second)
        assert sorted(merged.tolist()) == list(range(40))
        # The ratio in every prefix stays close to 1:3.
        for prefix_len in (4, 8, 20, 40):
            prefix = merged[:prefix_len]
            count_first = int(np.count_nonzero(prefix < 10))
            assert abs(count_first - prefix_len / 4) <= 1

    def test_proportional_interleave_empty_streams(self):
        assert proportional_interleave(np.array([]), np.array([])).size == 0
        only_second = proportional_interleave(np.array([]), np.array([5, 6]))
        assert only_second.tolist() == [5, 6]


class TestScheduleBatchContract:
    """The batched face of every model (exhaustive parity in test_pipeline)."""

    def _rngs(self, runs=4):
        return [
            np.random.default_rng(np.random.SeedSequence([55, run]))
            for run in range(runs)
        ]

    def test_every_builtin_model_batches_uniform_rows(self, ldgm_layout):
        models = [TxModel1(), TxModel2(), TxModel3(), TxModel4(), TxModel5(),
                  TxModel6(0.2), RxModel1(num_source_packets=13)]
        for model in models:
            batch = model.schedule_batch(ldgm_layout, self._rngs())
            assert isinstance(batch, np.ndarray) and batch.ndim == 2
            rows = [model.schedule(ldgm_layout, rng) for rng in self._rngs()]
            for index, row in enumerate(rows):
                assert np.array_equal(batch[index], row), type(model).__name__

    def test_uses_rng_flags(self):
        assert not TxModel1().uses_rng
        assert not TxModel5().uses_rng
        for model in (TxModel2(), TxModel3(), TxModel4(), TxModel6(), RxModel1(5)):
            assert model.uses_rng

    def test_interleavers_match_retained_references(self, rse_layout, ldgm_layout):
        from repro.scheduling.interleaver import (
            _block_interleave_reference,
            _proportional_interleave_reference,
        )

        assert np.array_equal(
            block_interleave(rse_layout), _block_interleave_reference(rse_layout)
        )
        first = ldgm_layout.source_indices
        second = ldgm_layout.parity_indices
        assert np.array_equal(
            proportional_interleave(first, second),
            _proportional_interleave_reference(first, second),
        )
