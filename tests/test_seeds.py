"""Tests for the versioned seed-scheme subsystem (``repro.seeds``)."""

import json

import numpy as np
import pytest

from repro.channel.bernoulli import BernoulliChannel
from repro.channel.gilbert import GilbertChannel
from repro.core.config import SimulationConfig
from repro.core.simulator import Simulator
from repro.core.sweep import simulate_grid
from repro.fec.registry import make_code
from repro.pipeline.synthesis import synthesize_runs_unit
from repro.runner.cache import RESULT_SCHEMA, ResultCache, unit_key
from repro.runner.units import execute_unit, plan_units
from repro.scheduling.registry import make_tx_model
from repro.seeds import (
    DEFAULT_SCHEME,
    ENV_VAR,
    PerRunScheme,
    UnitScheme,
    available_schemes,
    get_scheme,
    resolve_scheme_name,
)


@pytest.fixture
def config() -> SimulationConfig:
    return SimulationConfig(
        code="ldgm-staircase", tx_model="tx_model_2", k=200, expansion_ratio=2.5
    )


class TestRegistry:
    def test_builtin_schemes_registered(self):
        assert available_schemes() == ["per-run", "unit"]
        assert isinstance(get_scheme("per-run"), PerRunScheme)
        assert isinstance(get_scheme("unit"), UnitScheme)

    def test_default_resolution(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_scheme_name(None) == DEFAULT_SCHEME

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "unit")
        assert resolve_scheme_name(None) == "unit"
        # An explicit argument beats the environment.
        assert resolve_scheme_name("per-run") == "per-run"

    def test_unknown_scheme_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown seed scheme"):
            resolve_scheme_name("nope")
        monkeypatch.setenv(ENV_VAR, "stale-name")
        with pytest.raises(ValueError, match="REPRO_SEED_SCHEME"):
            resolve_scheme_name(None)

    def test_scheme_instance_passthrough(self):
        scheme = get_scheme("unit")
        assert get_scheme(scheme) is scheme
        assert resolve_scheme_name(scheme) == "unit"

    def test_tokens_are_versioned(self):
        assert get_scheme("per-run").token() == "per-run/v1"
        assert get_scheme("unit").token() == "unit/v1"


class TestPerRunGoldenStreams:
    """``"per-run"`` must reproduce the pre-seeds streams bit-for-bit."""

    def test_streams_match_seed_sequence_formula(self):
        streams = get_scheme("per-run").unit_streams(42, (3, 5), 2, 6)
        assert streams.unit_rng is None
        for run, rng in zip(range(2, 6), streams.run_rngs()):
            reference = np.random.default_rng(
                np.random.SeedSequence([42, 3, 5, run])
            )
            assert np.array_equal(
                rng.integers(0, 2**63, size=8), reference.integers(0, 2**63, size=8)
            )

    def test_golden_values_pinned(self):
        # Literal first draws of run 0 of cell (0, 0) at base seed 0 --
        # the exact stream every pre-PR-5 sweep consumed.  If this test
        # fails, historical results are no longer reproducible.
        rng = get_scheme("per-run").unit_streams(0, (0, 0), 0, 1).run_rng(0)
        assert rng.integers(0, 2**31, size=4).tolist() == [
            1826701615,
            1367864807,
            1097657232,
            579362556,
        ]

    def test_run_rng_range_checked(self):
        streams = get_scheme("per-run").unit_streams(0, (0,), 2, 4)
        with pytest.raises(ValueError):
            streams.run_rng(1)
        with pytest.raises(ValueError):
            streams.run_rng(4)


class TestUnitScheme:
    def test_unit_rng_present_and_deterministic(self):
        scheme = get_scheme("unit")
        first = scheme.unit_streams(9, (1, 2), 0, 4)
        second = scheme.unit_streams(9, (1, 2), 0, 4)
        assert first.unit_rng is not None
        assert np.array_equal(
            first.unit_rng.integers(0, 2**63, size=16),
            second.unit_rng.integers(0, 2**63, size=16),
        )

    def test_distinct_cells_distinct_streams(self):
        scheme = get_scheme("unit")
        a = scheme.unit_streams(9, (1, 2), 0, 4).unit_rng.integers(0, 2**63, size=8)
        b = scheme.unit_streams(9, (2, 1), 0, 4).unit_rng.integers(0, 2**63, size=8)
        c = scheme.unit_streams(8, (1, 2), 0, 4).unit_rng.integers(0, 2**63, size=8)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_run_windows_do_not_overlap_unit_stream(self):
        # The unit generator of [0, N) lives inside run 0's counter
        # window; run 1's window starts RUN_STRIDE blocks later, so even
        # a huge unit draw cannot reach it.
        scheme = get_scheme("unit")
        streams = scheme.unit_streams(3, (0,), 0, 2)
        unit_draws = streams.unit_rng.integers(0, 2**63, size=100_000)
        run1 = scheme.unit_streams(3, (0,), 0, 2).run_rng(1)
        run1_draws = run1.integers(0, 2**63, size=8)
        # Any window overlap would make run 1's draws a subsequence of
        # the unit stream; check a full-match window scan.
        view = np.lib.stride_tricks.sliding_window_view(unit_draws, 8)
        assert not (view == run1_draws).all(axis=1).any()

    def test_disjoint_unit_ranges_distinct_streams(self):
        scheme = get_scheme("unit")
        a = scheme.unit_streams(3, (0,), 0, 4).unit_rng.integers(0, 2**63, size=8)
        b = scheme.unit_streams(3, (0,), 4, 8).unit_rng.integers(0, 2**63, size=8)
        assert not np.array_equal(a, b)


class TestSchedulingUnitBatches:
    def test_unit_rows_are_valid_schedules(self):
        layout = make_code("ldgm-staircase", k=50, expansion_ratio=2.0, seed=1).layout
        rng = np.random.default_rng(0)
        for name in ("tx_model_2", "tx_model_3", "tx_model_4"):
            model = make_tx_model(name)
            rows = model.schedule_batch_unit(layout, np.random.default_rng(0), 6)
            assert rows.shape == (6, layout.n)
            for row in rows:
                assert sorted(row.tolist()) == list(range(layout.n))
        # Rows must not all be equal (each run gets its own shuffle).
        rows = make_tx_model("tx_model_4").schedule_batch_unit(layout, rng, 6)
        assert len({tuple(row) for row in rows}) > 1

    def test_tx6_unit_rows_subset_plus_parity(self):
        layout = make_code("ldgm-staircase", k=50, expansion_ratio=2.0, seed=1).layout
        model = make_tx_model("tx_model_6")
        keep = int(round(model.source_fraction * layout.k))
        rows = model.schedule_batch_unit(layout, np.random.default_rng(0), 5)
        assert rows.shape == (5, keep + layout.parity_indices.size)
        source = set(layout.source_indices.tolist())
        parity = set(layout.parity_indices.tolist())
        for row in rows:
            values = row.tolist()
            assert len(set(values)) == len(values)
            assert parity <= set(values)
            assert set(values) - parity <= source

    def test_deterministic_models_broadcast(self):
        layout = make_code("ldgm-staircase", k=50, expansion_ratio=2.0, seed=1).layout
        model = make_tx_model("tx_model_1")
        rows = model.schedule_batch_unit(layout, np.random.default_rng(0), 3)
        reference = model.schedule(layout)
        assert np.array_equal(rows, np.broadcast_to(reference, (3, layout.n)))


class TestChannelUnitBatches:
    def test_bernoulli_matches_rate(self):
        masks = BernoulliChannel(0.3).loss_mask_batch_unit(
            4000, np.random.default_rng(0), 8
        )
        assert masks.shape == (8, 4000)
        assert abs(masks.mean() - 0.3) < 0.02

    def test_gilbert_unit_block_statistics(self):
        channel = GilbertChannel(0.05, 0.5)
        masks = channel.loss_mask_batch_unit(5000, np.random.default_rng(1), 8)
        assert masks.shape == (8, 5000)
        assert abs(masks.mean() - channel.global_loss_probability) < 0.03

    def test_gilbert_unit_continuation_rows(self):
        # p = q = 0.999 makes every sojourn ~1 packet, so one 256-sojourn
        # batch covers ~256 packets and count = 2000 forces the
        # chain-style continuation for every row.
        channel = GilbertChannel(0.999, 0.999)
        masks = channel.loss_mask_batch_unit(2000, np.random.default_rng(2), 4)
        assert masks.shape == (4, 2000)
        assert abs(masks.mean() - 0.5) < 0.1

    def test_gilbert_unit_deterministic(self):
        channel = GilbertChannel(0.05, 0.5)
        a = channel.loss_mask_batch_unit(500, np.random.default_rng(3), 4)
        b = channel.loss_mask_batch_unit(500, np.random.default_rng(3), 4)
        assert np.array_equal(a, b)

    def test_degenerate_chains_broadcast(self):
        assert not GilbertChannel(0.0, 0.5).loss_mask_batch_unit(
            10, np.random.default_rng(0), 3
        ).any()
        assert GilbertChannel(0.5, 0.0).loss_mask_batch_unit(
            10, np.random.default_rng(0), 3
        ).all()


class TestUnitSynthesis:
    def test_unit_synthesis_deterministic_and_shaped(self):
        code = make_code("ldgm-staircase", k=100, expansion_ratio=2.0, seed=1)
        tx_model = make_tx_model("tx_model_2")
        channel = GilbertChannel(0.05, 0.5)
        first = synthesize_runs_unit(
            code.layout, tx_model, channel, np.random.default_rng(5), 6
        )
        second = synthesize_runs_unit(
            code.layout, tx_model, channel, np.random.default_rng(5), 6
        )
        assert first.num_runs == 6
        assert np.array_equal(first.batch.flat, second.batch.flat)
        assert np.array_equal(first.n_sent, second.n_sent)
        assert (first.n_received <= first.n_sent).all()

    def test_duck_typed_models_fall_back(self):
        # A model/channel without the *_batch_unit APIs must still work
        # (sequential draws from the shared generator).
        code = make_code("ldgm-staircase", k=60, expansion_ratio=2.0, seed=1)

        class DuckTx:
            uses_rng = True

            def schedule(self, layout, rng=None):
                order = np.arange(layout.n, dtype=np.int64)
                rng.shuffle(order)
                return order

            def validate_schedule(self, layout, schedule):
                return np.asarray(schedule, dtype=np.int64)

        class DuckChannel:
            uses_rng = True

            def loss_mask(self, count, rng=None, *, kernel=None):
                return rng.random(count) < 0.1

        synthesis = synthesize_runs_unit(
            code.layout, DuckTx(), DuckChannel(), np.random.default_rng(0), 4
        )
        assert synthesis.num_runs == 4


class TestSimulatorSchemes:
    def test_run_batch_unit_scheme_deterministic(self):
        code = make_code("ldgm-staircase", k=100, expansion_ratio=2.0, seed=1)
        simulator = Simulator(code, make_tx_model("tx_model_2"), GilbertChannel(0.05, 0.5))
        a = simulator.run_batch(8, 3, seed_scheme="unit")
        b = simulator.run_batch(8, 3, seed_scheme="unit")
        assert np.array_equal(a.n_necessary, b.n_necessary)

    def test_run_many_honours_fastpath_false_per_scheme(self):
        # fastpath=False must decode with the incremental reference, not
        # silently route to the fast path -- and stay bit-identical to
        # fastpath=True within each scheme.
        code = make_code("ldgm-staircase", k=100, expansion_ratio=2.0, seed=1)
        simulator = Simulator(code, make_tx_model("tx_model_2"), GilbertChannel(0.05, 0.5))
        for scheme in ("per-run", "unit"):
            fast = simulator.run_many(4, 9, seed_scheme=scheme)
            slow = simulator.run_many(4, 9, seed_scheme=scheme, fastpath=False)
            assert fast == slow

    def test_batch_streams_from_generator_not_narrowed(self):
        # A Generator seed must consume four 63-bit words (matching the
        # spawn_rngs fix), not as_seed_int's single 31-bit draw.
        code = make_code("ldgm-staircase", k=100, expansion_ratio=2.0, seed=1)
        simulator = Simulator(code, make_tx_model("tx_model_2"), GilbertChannel(0.05, 0.5))
        source = np.random.default_rng(77)
        simulator._batch_streams(2, source, "unit")
        after = np.random.default_rng(77)
        after.integers(0, 2**63 - 1, size=4)
        assert np.array_equal(
            source.integers(0, 2**63, size=2), after.integers(0, 2**63, size=2)
        )

    def test_run_many_per_run_scheme_matches_formula(self):
        code = make_code("ldgm-staircase", k=100, expansion_ratio=2.0, seed=1)
        simulator = Simulator(code, make_tx_model("tx_model_2"), GilbertChannel(0.05, 0.5))
        results = simulator.run_many(3, 5, seed_scheme="per-run")
        reference = [
            simulator.run(np.random.default_rng(np.random.SeedSequence([5, run])))
            for run in range(3)
        ]
        assert results == reference


class TestRunnerUnitScheme:
    def test_parallel_bit_identical_to_serial(self, config):
        serial = simulate_grid(
            config, [0.0, 0.05, 0.3], [0.2, 0.6, 1.0], runs=3, seed=7,
            seed_scheme="unit",
        )
        parallel = simulate_grid(
            config, [0.0, 0.05, 0.3], [0.2, 0.6, 1.0], runs=3, seed=7,
            seed_scheme="unit", executor="process", workers=2,
        )
        assert np.array_equal(
            serial.mean_inefficiency, parallel.mean_inefficiency, equal_nan=True
        )
        assert np.array_equal(
            serial.mean_received_ratio, parallel.mean_received_ratio, equal_nan=True
        )
        assert np.array_equal(serial.failure_counts, parallel.failure_counts)

    def test_incremental_bit_identical_to_fastpath(self, config):
        fast = simulate_grid(
            config, [0.05], [0.5], runs=3, seed=7, seed_scheme="unit"
        )
        slow = simulate_grid(
            config, [0.05], [0.5], runs=3, seed=7, seed_scheme="unit",
            fastpath=False,
        )
        assert np.array_equal(
            fast.mean_inefficiency, slow.mean_inefficiency, equal_nan=True
        )

    def test_fresh_code_per_run_deterministic(self, config):
        first = simulate_grid(
            config, [0.05], [0.5], runs=2, seed=3, seed_scheme="unit",
            fresh_code_per_run=True,
        )
        second = simulate_grid(
            config, [0.05], [0.5], runs=2, seed=3, seed_scheme="unit",
            fresh_code_per_run=True,
        )
        assert np.array_equal(
            first.mean_inefficiency, second.mean_inefficiency, equal_nan=True
        )

    def test_schemes_differ_but_sharding_is_stable_per_scheme(self, config):
        per_run = simulate_grid(
            config, [0.05], [0.5], runs=4, seed=11, seed_scheme="per-run"
        )
        unit = simulate_grid(
            config, [0.05], [0.5], runs=4, seed=11, seed_scheme="unit"
        )
        assert not np.array_equal(
            per_run.mean_inefficiency, unit.mean_inefficiency, equal_nan=True
        )
        # Under "unit" the sharding is part of the stream definition:
        # different runs_per_unit values are allowed to (and generally do)
        # produce different -- but individually deterministic -- results.
        from repro.runner.engine import run_grid

        sharded_a = run_grid(
            config, [0.05], [0.5], runs=4, seed=11, seed_scheme="unit",
            runs_per_unit=2,
        )
        sharded_b = run_grid(
            config, [0.05], [0.5], runs=4, seed=11, seed_scheme="unit",
            runs_per_unit=2,
        )
        assert np.array_equal(
            sharded_a.mean_inefficiency, sharded_b.mean_inefficiency, equal_nan=True
        )

    def test_env_default_reaches_runner(self, config, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "unit")
        grid = simulate_grid(config, [0.05], [0.5], runs=2, seed=1)
        assert grid.metadata["seed_scheme"] == "unit"
        explicit = simulate_grid(
            config, [0.05], [0.5], runs=2, seed=1, seed_scheme="unit"
        )
        assert np.array_equal(
            grid.mean_inefficiency, explicit.mean_inefficiency, equal_nan=True
        )


class TestCrossSchemeStatistics:
    def test_inefficiency_estimates_agree(self, config):
        # The two schemes draw different streams of the *same* model, so
        # their decoding-inefficiency estimates must agree within
        # Monte-Carlo tolerance.  160 runs of the k=200 staircase give a
        # standard error of ~0.004 on the mean inefficiency; 0.03 is ~7
        # sigma -- loose enough to be flake-free, tight enough to catch a
        # biased block draw (a wrong subset distribution shifts the mean
        # by far more).
        kw = dict(runs=160, seed=13)
        per_run = simulate_grid(config, [0.05], [0.5], seed_scheme="per-run", **kw)
        unit = simulate_grid(config, [0.05], [0.5], seed_scheme="unit", **kw)
        assert per_run.failure_counts.sum() == 0
        assert unit.failure_counts.sum() == 0
        delta = abs(
            float(per_run.mean_inefficiency[0, 0]) - float(unit.mean_inefficiency[0, 0])
        )
        assert delta < 0.03, delta

    def test_received_ratio_estimates_agree(self, config):
        kw = dict(runs=160, seed=17)
        per_run = simulate_grid(config, [0.3], [0.6], seed_scheme="per-run", **kw)
        unit = simulate_grid(config, [0.3], [0.6], seed_scheme="unit", **kw)
        delta = abs(
            float(per_run.mean_received_ratio[0, 0])
            - float(unit.mean_received_ratio[0, 0])
        )
        assert delta < 0.03, delta


class TestCacheSchemeHygiene:
    def test_scheme_is_part_of_the_key(self, config):
        per_run = plan_units(
            [((0, 0), config, 0.05, 0.5)], runs=2, base_seed=9, seed_scheme="per-run"
        )[0]
        unit = plan_units(
            [((0, 0), config, 0.05, 0.5)], runs=2, base_seed=9, seed_scheme="unit"
        )[0]
        assert unit_key(per_run) != unit_key(unit)

    def test_payload_records_scheme_and_schema(self, config, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        unit = plan_units(
            [((0, 0), config, 0.05, 0.5)], runs=2, base_seed=9, seed_scheme="unit"
        )[0]
        cache.put(unit, execute_unit(unit))
        path = cache._path(unit_key(unit))
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["schema"] == RESULT_SCHEMA
        assert payload["seed_scheme"] == "unit"
        assert cache.get(unit) is not None

    def test_old_schema_entry_is_a_miss(self, config, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        unit = plan_units([((0, 0), config, 0.05, 0.5)], runs=2, base_seed=9)[0]
        cache.put(unit, execute_unit(unit))
        path = cache._path(unit_key(unit))
        payload = json.loads(path.read_text(encoding="utf-8"))
        del payload["schema"]
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.get(unit) is None  # a miss, not an error

    def test_scheme_counts(self, config, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        for scheme in ("per-run", "unit"):
            for seed in (1, 2):
                unit = plan_units(
                    [((0, 0), config, 0.05, 0.5)],
                    runs=1,
                    base_seed=seed,
                    seed_scheme=scheme,
                )[0]
                cache.put(unit, execute_unit(unit))
        assert cache.scheme_counts() == {"per-run": 2, "unit": 2}


class TestSpawnRngsRegression:
    def test_generator_entropy_not_narrowed(self):
        # Regression for the single-63-bit-draw funnel: spawning from a
        # Generator must consume four words and seed the SeedSequence
        # with all of them.
        from repro.utils.rng import spawn_rngs

        source = np.random.default_rng(123)
        spawned = spawn_rngs(source, 3)
        reference_source = np.random.default_rng(123)
        entropy = [
            int(word) for word in reference_source.integers(0, 2**63 - 1, size=4)
        ]
        reference = [
            np.random.default_rng(child)
            for child in np.random.SeedSequence(entropy).spawn(3)
        ]
        for left, right in zip(spawned, reference):
            assert np.array_equal(
                left.integers(0, 2**63, size=4), right.integers(0, 2**63, size=4)
            )
        # And the generator advanced past a single draw (the old funnel).
        after = np.random.default_rng(123)
        after.integers(0, 2**63 - 1, size=4)
        assert np.array_equal(
            source.integers(0, 2**63, size=2), after.integers(0, 2**63, size=2)
        )
