"""Tests for the resilience layer: failure policies, fault injection,
retrying stores, quarantine, and chaos convergence of the fleet."""

import json
import os
import pickle
import re
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import SimulationConfig
from repro.kernels import get_backend, get_backend_for_run
from repro.resilience import (
    DEFAULT_POLICY,
    ON_ERROR_ACTIONS,
    FailurePolicy,
    PoisonUnitError,
    ResilienceError,
    RetryingStore,
    StoreUnavailableError,
    UnitExecutionError,
    UnitFailure,
    UnitTimeoutError,
    clear_quarantine,
    deterministic_jitter,
    failure_summary,
    format_quarantine_report,
    is_quarantined,
    quarantine_entries,
    quarantine_key,
    read_quarantine,
    resolve_policy,
    run_unit_with_policy,
    write_quarantine,
)
from repro.resilience.faults import FaultInjectingExecutor, FaultPlan
from repro.runner.engine import run_grid
from repro.runner.executors import SerialExecutor
from repro.runner.fleet import HEARTBEAT_FAILURE_LIMIT, FleetRunner
from repro.runner.units import execute_unit, plan_units
from repro.store import (
    ChaosConfig,
    ChaosStore,
    MemoryStore,
    SqliteStore,
    available_backends,
    resolve_store,
    unit_key,
)
from repro.store.chaos import parse_chaos_location

P_VALUES = [0.0, 0.05]
Q_VALUES = [0.5, 1.0]


@pytest.fixture
def config() -> SimulationConfig:
    return SimulationConfig(
        code="ldgm-staircase", tx_model="tx_model_2", k=200, expansion_ratio=2.5
    )


def _units(config, cells=4, runs=2, seed_scheme=None):
    points = [((i,), config, 0.02 * i, 0.5) for i in range(cells)]
    kwargs = {} if seed_scheme is None else {"seed_scheme": seed_scheme}
    return plan_units(points, runs=runs, base_seed=21, **kwargs)


def _fast_policy(**overrides):
    """A policy whose backoffs are too small to slow the test suite."""
    defaults = dict(
        max_retries=2,
        backoff_base=0.001,
        backoff_max=0.002,
        store_backoff_base=0.001,
        store_backoff_max=0.002,
    )
    defaults.update(overrides)
    return FailurePolicy(**defaults)


class TestErrorTaxonomy:
    def test_hierarchy(self):
        assert issubclass(StoreUnavailableError, ResilienceError)
        assert issubclass(UnitExecutionError, ResilienceError)
        assert issubclass(UnitTimeoutError, UnitExecutionError)
        assert issubclass(PoisonUnitError, ResilienceError)
        assert issubclass(ResilienceError, RuntimeError)

    def test_poison_carries_the_structured_failure(self):
        failure = UnitFailure(
            unit_key="abc", seed_path=(0,), run_start=0, run_stop=2,
            error_type="ValueError", message="boom", attempts=3, unit_payload={},
        )
        error = PoisonUnitError(failure.describe(), failure)
        assert error.failure is failure
        assert "abc" in str(error)


class TestFailurePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            FailurePolicy(on_error="explode")
        with pytest.raises(ValueError):
            FailurePolicy(max_retries=-1)
        with pytest.raises(ValueError):
            FailurePolicy(unit_timeout=0.0)
        with pytest.raises(ValueError):
            FailurePolicy(store_retries=-1)

    def test_attempts(self):
        assert FailurePolicy().attempts == 1
        assert FailurePolicy(max_retries=3).attempts == 4

    def test_actions_cover_the_cli_choices(self):
        assert ON_ERROR_ACTIONS == ("raise", "skip", "quarantine")

    def test_resolve_policy(self):
        policy = FailurePolicy()
        assert resolve_policy(None) is None
        assert resolve_policy(policy) is policy
        with pytest.raises(TypeError):
            resolve_policy("retry-a-lot")

    def test_jitter_is_deterministic_and_bounded(self):
        values = [deterministic_jitter(f"unit-{i}") for i in range(64)]
        assert values == [deterministic_jitter(f"unit-{i}") for i in range(64)]
        assert all(0.0 <= value < 1.0 for value in values)
        assert len(set(values)) > 32  # actually spreads

    def test_backoff_is_deterministic_and_exponential(self):
        policy = FailurePolicy(backoff_base=0.1, backoff_max=10.0)
        first = [policy.backoff_delay("k1", attempt) for attempt in range(5)]
        assert first == [policy.backoff_delay("k1", attempt) for attempt in range(5)]
        assert first != [policy.backoff_delay("k2", attempt) for attempt in range(5)]
        for attempt, delay in enumerate(first):
            base = min(10.0, 0.1 * 2.0**attempt)
            assert 0.5 * base <= delay < 1.5 * base

    def test_backoff_is_capped(self):
        policy = FailurePolicy(backoff_base=1.0, backoff_max=2.0)
        assert policy.backoff_delay("k", 30) < 2.0 * 1.5


class TestRunUnitWithPolicy:
    def test_success_passes_through(self, config):
        unit = _units(config, cells=1, runs=1)[0]
        outcome = run_unit_with_policy(unit, FailurePolicy())
        assert outcome.failure is None
        assert outcome.result == execute_unit(unit)

    def test_transient_failure_recovers(self, config):
        unit = _units(config, cells=1, runs=1)[0]
        calls = []

        def flaky(u):
            calls.append(u)
            if len(calls) < 3:
                raise UnitExecutionError("flake")
            return execute_unit(u)

        slept = []
        outcome = run_unit_with_policy(
            unit, _fast_policy(max_retries=2), execute=flaky, sleep=slept.append
        )
        assert outcome.result == execute_unit(unit)
        assert len(calls) == 3
        # The backoff schedule is the policy's deterministic one.
        key = unit_key(unit)
        policy = _fast_policy(max_retries=2)
        assert slept == [policy.backoff_delay(key, 0), policy.backoff_delay(key, 1)]

    def test_exhausted_attempts_return_a_structured_failure(self, config):
        unit = _units(config, cells=1, runs=1)[0]

        def poisoned(u):
            raise UnitExecutionError("always broken")

        outcome = run_unit_with_policy(
            unit, _fast_policy(max_retries=1), execute=poisoned, sleep=lambda s: None
        )
        failure = outcome.failure
        assert outcome.result is None
        assert failure.unit_key == unit_key(unit)
        assert failure.seed_path == unit.seed_path
        assert failure.error_type == "UnitExecutionError"
        assert failure.attempts == 2
        assert failure.unit_payload == unit.to_payload()
        # Crosses process-pool boundaries.
        assert pickle.loads(pickle.dumps(failure)) == failure
        summary = failure_summary(failure)
        assert summary["seed_path"] == list(unit.seed_path)
        assert "unit_payload" not in summary
        json.dumps(summary)  # JSON-compatible

    def test_unit_timeout_is_a_retryable_failure(self, config):
        unit = _units(config, cells=1, runs=1)[0]

        def hangs(u):
            time.sleep(5.0)

        outcome = run_unit_with_policy(
            unit,
            _fast_policy(max_retries=0, unit_timeout=0.05),
            execute=hangs,
            sleep=lambda s: None,
        )
        assert outcome.failure is not None
        assert outcome.failure.error_type == "UnitTimeoutError"


class _FlakyStore(MemoryStore):
    """Fails the first ``n`` calls of each wrapped operation."""

    def __init__(self, fail_first: int):
        super().__init__()
        self.fail_first = fail_first
        self.failures = 0

    def _maybe_fail(self):
        if self.failures < self.fail_first:
            self.failures += 1
            raise StoreUnavailableError("flaky store")

    def get_record(self, key):
        self._maybe_fail()
        return super().get_record(key)

    def put_record(self, key, payload, *, unit=None):
        self._maybe_fail()
        super().put_record(key, payload, unit=unit)

    def claim(self, key, worker, ttl):
        self._maybe_fail()
        return super().claim(key, worker, ttl)

    def heartbeat(self, keys, worker, ttl):
        self._maybe_fail()
        return super().heartbeat(keys, worker, ttl)


class TestRetryingStore:
    def test_wrap_passes_through_none_and_wrapped(self):
        assert RetryingStore.wrap(None) is None
        store = MemoryStore()
        wrapped = RetryingStore.wrap(store)
        assert RetryingStore.wrap(wrapped) is wrapped
        assert wrapped.inner is store
        assert wrapped.backend == store.backend
        assert wrapped.uri() == store.uri()
        assert wrapped.supports_leases

    def test_transient_failures_are_retried(self, config):
        store = RetryingStore(_FlakyStore(fail_first=2), _fast_policy())
        unit = _units(config, cells=1, runs=1)[0]
        store.put(unit, execute_unit(unit))
        assert store.retry_stats.retries == 2
        assert store.get(unit) == execute_unit(unit)

    def test_gives_up_after_the_retry_budget(self):
        store = RetryingStore(_FlakyStore(fail_first=99), _fast_policy())
        with pytest.raises(StoreUnavailableError):
            store.get_record("missing")
        assert store.retry_stats.gave_up == 1

    def test_non_transient_errors_are_not_retried(self):
        class Broken(MemoryStore):
            calls = 0

            def get_record(self, key):
                type(self).calls += 1
                raise RuntimeError("programming error")

        store = RetryingStore(Broken(), _fast_policy())
        with pytest.raises(RuntimeError):
            store.get_record("x")
        assert Broken.calls == 1

    def test_claim_backoff_respects_the_lease_budget(self):
        # With a tiny TTL the backoff budget (ttl/2) forbids any sleep at
        # all, so the claim gives up on the first transient failure
        # instead of outliving the lease it is trying to take.
        policy = FailurePolicy(store_backoff_base=1.0, store_backoff_max=1.0)
        store = RetryingStore(_FlakyStore(fail_first=99), policy)
        started = time.perf_counter()
        with pytest.raises(StoreUnavailableError):
            store.claim("key", "worker", ttl=0.2)
        assert time.perf_counter() - started < 0.2


class TestChaosStore:
    def test_parse_location(self):
        inner, cfg = parse_chaos_location("results.db")
        assert inner == "results.db"
        assert cfg == ChaosConfig()
        inner, cfg = parse_chaos_location(
            "fleet.db?rate=0.5&seed=7&burst=3&latency=0.01&ops=put,claim"
        )
        assert inner == "fleet.db"
        assert cfg.rate == 0.5 and cfg.seed == 7 and cfg.burst == 3
        assert cfg.latency == 0.01 and cfg.ops == ("put", "claim")
        with pytest.raises(ValueError):
            parse_chaos_location("fleet.db?rat=0.5")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(rate=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(burst=0)
        with pytest.raises(ValueError):
            ChaosConfig(ops=("frobnicate",))

    def test_registered_backends(self):
        names = available_backends()
        for name in ("chaos+json-dir", "chaos+sqlite", "chaos+memory"):
            assert name in names

    def test_resolve_chaos_uri(self, tmp_path):
        store = resolve_store(f"chaos+sqlite:{tmp_path}/c.db?rate=0.5&seed=3")
        assert isinstance(store, ChaosStore)
        assert store.backend == "chaos+sqlite"
        assert store.config.rate == 0.5 and store.config.seed == 3
        assert store.uri().startswith("chaos+sqlite:")
        store.close()

    def test_schedule_is_deterministic(self):
        def pattern(store, n=40):
            outcomes = []
            for _ in range(n):
                try:
                    store.get_record("k")
                    outcomes.append(False)
                except StoreUnavailableError:
                    outcomes.append(True)
            return outcomes

        first = pattern(ChaosStore(MemoryStore(), ChaosConfig(seed=5, rate=0.5)))
        second = pattern(ChaosStore(MemoryStore(), ChaosConfig(seed=5, rate=0.5)))
        other = pattern(ChaosStore(MemoryStore(), ChaosConfig(seed=6, rate=0.5)))
        assert first == second
        assert first != other
        assert any(first) and not all(first)

    def test_burst_cap_bounds_consecutive_failures(self):
        store = ChaosStore(MemoryStore(), ChaosConfig(seed=0, rate=1.0, burst=2))
        consecutive = longest = 0
        for _ in range(50):
            try:
                store.get_record("k")
                consecutive = 0
            except StoreUnavailableError:
                consecutive += 1
                longest = max(longest, consecutive)
        assert longest == 2  # rate=1.0 would fail forever without the cap
        assert store.injected["get"] > 0

    def test_injection_happens_before_the_effect(self, config):
        store = ChaosStore(
            MemoryStore(), ChaosConfig(seed=0, rate=1.0, burst=1, ops=("put",))
        )
        unit = _units(config, cells=1, runs=1)[0]
        with pytest.raises(StoreUnavailableError):
            store.put(unit, execute_unit(unit))
        assert len(store.inner) == 0  # nothing landed
        store.put(unit, execute_unit(unit))  # burst spent: this one works
        assert store.inner.get(unit) == execute_unit(unit)

    def test_torn_put_many_converges_under_retry(self, config):
        inner = MemoryStore()
        chaos = ChaosStore(
            inner, ChaosConfig(seed=0, rate=1.0, burst=1, ops=("put_many",))
        )
        units = _units(config, cells=4, runs=1)
        batch = [(unit, execute_unit(unit)) for unit in units]
        with pytest.raises(StoreUnavailableError):
            chaos.put_many(batch)
        assert 0 < len(inner) < len(batch)  # the torn half landed
        retrying = RetryingStore(chaos, _fast_policy())
        retrying.put_many(batch)
        assert len(inner) == len(batch)
        for unit in units:
            assert inner.get(unit) == execute_unit(unit)


class TestFaultInjectingExecutor:
    def test_transient_faults_recover_under_retries(self, config):
        units = _units(config, cells=3, runs=1)
        plan = FaultPlan(transient={(0,): 2, (1,): 1})
        executor = FaultInjectingExecutor(plan, policy=_fast_policy(max_retries=2))
        collected = []
        executor.run(units, collected.append)
        assert len(collected) == len(units)
        assert executor.injected["transient"] == 3
        for unit, result in zip(units, sorted(collected, key=lambda r: r.seed_path)):
            assert result == execute_unit(unit)

    def test_poison_raises_without_a_failure_sink(self, config):
        units = _units(config, cells=2, runs=1)
        plan = FaultPlan(poison=frozenset({(1,)}))
        executor = FaultInjectingExecutor(plan, policy=_fast_policy(max_retries=1))
        with pytest.raises(PoisonUnitError) as excinfo:
            executor.run(units, lambda r: None)
        assert excinfo.value.failure.seed_path == (1,)
        assert excinfo.value.failure.attempts == 2

    def test_poison_is_skipped_with_a_failure_sink(self, config):
        units = _units(config, cells=3, runs=1)
        plan = FaultPlan(poison=frozenset({(1,)}))
        executor = FaultInjectingExecutor(
            plan, policy=_fast_policy(max_retries=0, on_error="skip")
        )
        results, failures = [], []
        executor.run(units, results.append, failures.append)
        assert {r.seed_path for r in results} == {(0,), (2,)}
        assert [f.seed_path for f in failures] == [(1,)]

    def test_hang_is_cut_by_the_unit_timeout(self, config):
        units = _units(config, cells=1, runs=1)
        plan = FaultPlan(hang={(0,): 1}, hang_seconds=5.0)
        executor = FaultInjectingExecutor(
            plan, policy=_fast_policy(max_retries=1, unit_timeout=0.1)
        )
        collected = []
        started = time.perf_counter()
        executor.run(units, collected.append)
        assert time.perf_counter() - started < 5.0
        assert executor.injected["hang"] == 1
        assert collected[0] == execute_unit(units[0])


class TestQuarantine:
    def test_write_read_clear_roundtrip(self, config):
        store = MemoryStore()
        unit = _units(config, cells=1, runs=1)[0]
        outcome = run_unit_with_policy(
            unit,
            _fast_policy(max_retries=0, on_error="quarantine"),
            execute=lambda u: (_ for _ in ()).throw(UnitExecutionError("bad")),
            sleep=lambda s: None,
        )
        key = write_quarantine(store, outcome.failure, worker="w0")
        assert key == quarantine_key(unit_key(unit))
        assert is_quarantined(store, unit_key(unit))
        entry = read_quarantine(store, unit_key(unit))
        assert entry.unit_key == unit_key(unit)
        assert entry.worker == "w0"
        assert entry.rerun.startswith("python -m repro rerun-unit ")
        assert entry.as_failure().unit_key == outcome.failure.unit_key
        report = format_quarantine_report(quarantine_entries(store))
        assert "1 unit(s)" in report and "rerun:" in report
        # Quarantine records never satisfy result lookups.
        assert store.get(unit) is None
        assert clear_quarantine(store, unit_key(unit))
        assert not is_quarantined(store, unit_key(unit))
        assert quarantine_entries(store) == []

    def test_rerun_command_heals_the_quarantined_unit(self, config):
        store = MemoryStore()
        unit = _units(config, cells=1, runs=1)[0]
        entry_rerun = None
        outcome = run_unit_with_policy(
            unit,
            _fast_policy(max_retries=0),
            execute=lambda u: (_ for _ in ()).throw(UnitExecutionError("bad")),
            sleep=lambda s: None,
        )
        write_quarantine(store, outcome.failure)
        entry = quarantine_entries(store)[0]
        # The recorded rerun command re-executes the exact unit payload.
        match = re.fullmatch(r"python -m repro rerun-unit '(.+)'", entry.rerun)
        assert match is not None
        from repro.runner.units import WorkUnit

        rerun_unit = WorkUnit.from_payload(json.loads(match.group(1)))
        assert execute_unit(rerun_unit) == execute_unit(unit)


class TestEngineResilience:
    def test_skip_keeps_the_sweep_alive_and_marks_the_cell(self, config):
        baseline = run_grid(config, P_VALUES, Q_VALUES, runs=2, seed=7)
        plan = FaultPlan(poison=frozenset({(0, 0)}))
        policy = _fast_policy(max_retries=1, on_error="skip")
        grid = run_grid(
            config, P_VALUES, Q_VALUES, runs=2, seed=7,
            executor=FaultInjectingExecutor(plan, policy=policy),
            failure_policy=policy,
        )
        # The poisoned cell is NaN; every surviving cell is bit-identical.
        assert np.isnan(grid.mean_inefficiency[0, 0])
        mask = ~(np.arange(4).reshape(2, 2) == 0)
        assert np.array_equal(
            grid.mean_inefficiency[mask], baseline.mean_inefficiency[mask]
        )
        failed = grid.metadata["failed_units"]
        assert [tuple(f["seed_path"]) for f in failed] == [(0, 0)]

    def test_raise_policy_escalates(self, config):
        plan = FaultPlan(poison=frozenset({(0, 0)}))
        policy = _fast_policy(max_retries=0, on_error="raise")
        with pytest.raises(PoisonUnitError):
            run_grid(
                config, P_VALUES, Q_VALUES, runs=1, seed=7,
                executor=FaultInjectingExecutor(plan, policy=policy),
                failure_policy=policy,
            )

    def test_quarantine_records_land_in_the_store(self, config):
        store = MemoryStore()
        plan = FaultPlan(poison=frozenset({(0, 1)}))
        policy = _fast_policy(max_retries=0, on_error="quarantine")
        grid = run_grid(
            config, P_VALUES, Q_VALUES, runs=1, seed=7, cache=store,
            executor=FaultInjectingExecutor(plan, policy=policy),
            failure_policy=policy,
        )
        entries = quarantine_entries(store)
        assert [tuple(e.seed_path) for e in entries] == [(0, 1)]
        assert np.isnan(grid.mean_inefficiency[0, 1])

    def test_transient_faults_are_invisible_in_the_result(self, config):
        baseline = run_grid(config, P_VALUES, Q_VALUES, runs=2, seed=7)
        plan = FaultPlan(transient={(0, 0): 1, (1, 1): 2})
        policy = _fast_policy(max_retries=2)
        executor = FaultInjectingExecutor(plan, policy=policy)
        grid = run_grid(
            config, P_VALUES, Q_VALUES, runs=2, seed=7,
            executor=executor, failure_policy=policy,
        )
        assert executor.injected["transient"] == 3
        assert np.array_equal(
            grid.mean_inefficiency, baseline.mean_inefficiency, equal_nan=True
        )
        assert "failed_units" not in grid.metadata


class TestKernelDegradation:
    def test_unknown_backend_degrades_to_auto_with_a_warning(self, caplog):
        with caplog.at_level("WARNING", logger="repro.kernels"):
            backend = get_backend_for_run("no-such-kernel")
        assert backend is get_backend("auto")
        assert any(
            "falling back to auto selection" in record.message
            for record in caplog.records
        )

    def test_known_backend_resolves_without_noise(self, caplog):
        with caplog.at_level("WARNING", logger="repro.kernels"):
            backend = get_backend_for_run("numpy")
        assert backend is get_backend("numpy")
        assert caplog.records == []


class _DeadHeartbeatStore(MemoryStore):
    """Claims work normally but every heartbeat fails."""

    def heartbeat(self, keys, worker, ttl):
        raise StoreUnavailableError("heartbeat table is on fire")


class TestHeartbeatHardening:
    def test_transient_misses_recover(self, config):
        store = _FlakyStore(fail_first=2)
        runner = FleetRunner(
            store, worker_id="w0", lease_ttl=5.0, heartbeat_interval=0.01,
            policy=_fast_policy(),
        )
        units = _units(config, cells=2, runs=1)
        collected = []
        runner.run(units, collected.append)
        assert len(collected) == len(units)

    def test_permanent_heartbeat_failure_stops_the_run(self, config):
        # Misses only count while a lease is held, so slow execution
        # itself (not on_result, which runs after release) to keep keys
        # held long enough for the heartbeat to exhaust its limit.
        class _SlowExecutor(SerialExecutor):
            def _execute_one(self, unit):
                time.sleep(0.05)
                return execute_unit(unit)

        runner = FleetRunner(
            _DeadHeartbeatStore(), worker_id="w0", lease_ttl=0.5,
            heartbeat_interval=0.01, poll_interval=0.01,
            claim_batch=1, policy=_fast_policy(),
            executor=_SlowExecutor(policy=_fast_policy()),
        )
        units = _units(config, cells=12, runs=1)
        with pytest.raises(StoreUnavailableError, match="gave up after"):
            runner.run(units, lambda r: None)


class TestFleetChaosConvergence:
    @pytest.mark.parametrize("scheme", ["per-run", "unit"])
    def test_two_chaotic_workers_converge_bit_identically(self, config, scheme):
        units = _units(config, cells=4, runs=2, seed_scheme=scheme)
        baseline = {unit.seed_path: execute_unit(unit) for unit in units}
        poison_cell = (2,)
        all_keys = {unit_key(unit) for unit in units}
        poison_keys = {
            unit_key(unit) for unit in units if unit.seed_path == poison_cell
        }

        shared = MemoryStore()
        policy = _fast_policy(max_retries=2, on_error="quarantine")
        runners = []
        for i in range(2):
            chaos = ChaosStore(
                shared,
                # Faults on every protocol op, including heartbeats and
                # claims; burst 2 stays under the retry budget (3).
                ChaosConfig(seed=i + 1, rate=0.25, burst=2),
            )
            executor = FaultInjectingExecutor(
                FaultPlan(poison=frozenset({poison_cell}), transient={(0,): 1}),
                policy=policy,
            )
            runners.append(
                FleetRunner(
                    chaos, executor=executor, worker_id=f"w{i}",
                    lease_ttl=10.0, heartbeat_interval=0.05,
                    poll_interval=0.01, claim_batch=1, policy=policy,
                )
            )

        results = [{}, {}]
        failures = [[], []]
        errors = []

        def drive(i):
            try:
                runners[i].run(
                    units,
                    lambda r: results[i].__setitem__(r.seed_path, r),
                    failures[i].append,
                )
            except BaseException as exc:  # surfaced to the main thread
                errors.append(exc)

        threads = [threading.Thread(target=drive, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert errors == []

        survivors = {path for path in baseline if path != poison_cell}
        for i in range(2):
            # Every worker returns the complete surviving sweep,
            # bit-identical to the fault-free serial execution.
            assert set(results[i]) == survivors
            for path in survivors:
                assert results[i][path] == baseline[path]
            # ...and saw the poisoned unit exactly once as a failure.
            assert {f.unit_key for f in failures[i]} == poison_keys

        # Zero duplicated executions fleet-wide.
        executed = [set(r.stats.executed_keys) for r in runners]
        assert executed[0].isdisjoint(executed[1])
        assert executed[0] | executed[1] == all_keys - poison_keys

        # The quarantine lists exactly the poisoned unit, and chaos
        # actually fired (the run wasn't accidentally fault-free).
        assert {e.unit_key for e in quarantine_entries(shared)} == poison_keys
        assert sum(r.store.inner.injected.total() for r in runners) > 0

    def test_chaotic_sqlite_fleet_through_the_engine(self, tmp_path, config):
        serial = run_grid(config, P_VALUES, Q_VALUES, runs=2, seed=7)
        policy = _fast_policy(max_retries=1)
        uri = f"chaos+sqlite:{tmp_path}/fleet.db?rate=0.2&seed=4&burst=2"
        grids = {}
        errors = []

        def worker(name):
            try:
                grids[name] = run_grid(
                    config, P_VALUES, Q_VALUES, runs=2, seed=7,
                    cache=uri, fleet=True, lease_ttl=10.0, worker_id=name,
                    failure_policy=policy,
                )
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert errors == []
        for name in ("w0", "w1"):
            assert np.array_equal(
                grids[name].mean_inefficiency,
                serial.mean_inefficiency,
                equal_nan=True,
            )

        store = SqliteStore(tmp_path / "fleet.db")
        assert len(store) == len(P_VALUES) * len(Q_VALUES)
        store.close()


_WRITES = re.compile(r"(\d+) writes")


class TestResilienceCli:
    def _run(self, *argv, cwd=None, stdin=None):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", *argv],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=cwd,
        )
        stdout, stderr = process.communicate(timeout=600, input=stdin)
        return process.returncode, stdout, stderr

    def test_run_accepts_the_failure_flags(self, tmp_path):
        code, stdout, stderr = self._run(
            "run", "fig07", "--scale", "tiny", "--runs", "1", "--quiet",
            "--store", f"sqlite:{tmp_path}/r.db",
            "--max-retries", "2", "--unit-timeout", "60",
            "--on-error", "quarantine",
            cwd=tmp_path,
        )
        assert code == 0, stderr
        assert "retries=2 on-error=quarantine" in stdout
        assert "quarantine" not in stdout.split("done in")[1]  # clean run

    def test_chaos_store_run_matches_plain_run(self, tmp_path):
        base = ("run", "fig07", "--scale", "tiny", "--runs", "1", "--quiet")
        code, _, stderr = self._run(
            *base, "--store", f"sqlite:{tmp_path}/plain.db",
            "--csv-dir", str(tmp_path / "csv_plain"), cwd=tmp_path,
        )
        assert code == 0, stderr
        code, _, stderr = self._run(
            *base,
            "--store", f"chaos+sqlite:{tmp_path}/chaos.db?rate=0.2&seed=9&burst=2",
            "--max-retries", "1",
            "--csv-dir", str(tmp_path / "csv_chaos"), cwd=tmp_path,
        )
        assert code == 0, stderr
        (plain_csv,) = sorted((tmp_path / "csv_plain").glob("*.csv"))
        (chaos_csv,) = sorted((tmp_path / "csv_chaos").glob("*.csv"))
        assert chaos_csv.read_bytes() == plain_csv.read_bytes()

    def test_rerun_unit_store_heals_a_quarantined_cell(self, tmp_path, config):
        db = tmp_path / "heal.db"
        unit = _units(config, cells=1, runs=1)[0]
        outcome = run_unit_with_policy(
            unit,
            _fast_policy(max_retries=0),
            execute=lambda u: (_ for _ in ()).throw(UnitExecutionError("bad")),
            sleep=lambda s: None,
        )
        with SqliteStore(db) as store:
            write_quarantine(store, outcome.failure, worker="w0")

        code, stdout, stderr = self._run(
            "cache", "info", "--store", f"sqlite:{db}", cwd=tmp_path
        )
        assert code == 0, stderr
        assert "quarantine: 1 unit(s)" in stdout
        assert "rerun: python -m repro rerun-unit" in stdout

        code, stdout, stderr = self._run(
            "rerun-unit", json.dumps(unit.to_payload()),
            "--store", f"sqlite:{db}", cwd=tmp_path,
        )
        assert code == 0, stderr
        assert "quarantine record cleared" in stdout

        with SqliteStore(db) as store:
            assert quarantine_entries(store) == []
            assert store.get(unit) == execute_unit(unit)

    def test_on_error_quarantine_requires_a_store(self, tmp_path):
        code, _, stderr = self._run(
            "run", "fig07", "--scale", "tiny", "--runs", "1", "--quiet",
            "--no-cache", "--on-error", "quarantine", cwd=tmp_path,
        )
        assert code == 2
        assert "needs a result store" in stderr


class TestStoreHardening:
    def test_sqlite_busy_timeout_default(self, tmp_path):
        from repro.store import DEFAULT_BUSY_TIMEOUT

        assert DEFAULT_BUSY_TIMEOUT > 0
        with SqliteStore(tmp_path / "t.db") as store:
            (timeout_ms,) = store._conn.execute("PRAGMA busy_timeout").fetchone()
            assert timeout_ms == int(DEFAULT_BUSY_TIMEOUT * 1000)

    def test_sqlite_lock_maps_to_transient_error(self, tmp_path, config):
        import sqlite3

        db = tmp_path / "locked.db"
        unit = _units(config, cells=1, runs=1)[0]
        with SqliteStore(db) as warmup:
            warmup.put(unit, execute_unit(unit))
        store = SqliteStore(db, timeout=0.1)
        blocker = sqlite3.connect(db)
        try:
            blocker.execute("BEGIN EXCLUSIVE")
            with pytest.raises(StoreUnavailableError, match="busy"):
                store.put(unit, execute_unit(unit))
        finally:
            blocker.rollback()
            blocker.close()
            store.close()

    @pytest.mark.parametrize("backend", ["memory", "sqlite", "json-dir"])
    def test_delete_record_and_idempotent_claim(self, tmp_path, backend, config):
        store = resolve_store(f"{backend}:{tmp_path}/{backend}-store")
        unit = _units(config, cells=1, runs=1)[0]
        key = unit_key(unit)
        store.put(unit, execute_unit(unit))
        assert store.delete_record(key)
        assert not store.delete_record(key)
        assert store.get(unit) is None
        # Claims are worker-idempotent: the holder may re-claim (and
        # thereby refresh) its own live lease; others may not.
        assert store.claim(key, "w0", ttl=30.0)
        assert store.claim(key, "w0", ttl=30.0)
        assert not store.claim(key, "w1", ttl=30.0)
        store.close()
