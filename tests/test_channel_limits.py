"""Unit tests for the analytic decodability limits (figure 6)."""

import numpy as np
import pytest

from repro.channel.limits import (
    decodable_region,
    expected_received_fraction,
    is_decodable,
    minimum_q_for_decoding,
)


class TestExpectedReceivedFraction:
    def test_no_loss(self):
        assert expected_received_fraction(0.0, 0.5, 2.5) == pytest.approx(2.5)

    def test_half_loss(self):
        assert expected_received_fraction(0.5, 0.5, 2.0) == pytest.approx(1.0)

    def test_invalid_nsent_rejected(self):
        with pytest.raises(ValueError):
            expected_received_fraction(0.1, 0.5, 0.0)


class TestMinimumQ:
    def test_paper_formula(self):
        # q = p * inef / (nsent/k - inef); ratio 2.5, inef 1 -> q = p / 1.5.
        assert minimum_q_for_decoding(0.3, 2.5) == pytest.approx(0.3 / 1.5)
        assert minimum_q_for_decoding(0.3, 1.5) == pytest.approx(0.3 / 0.5)

    def test_p_zero_needs_no_q(self):
        assert minimum_q_for_decoding(0.0, 1.5) == 0.0

    def test_clipped_to_one(self):
        assert minimum_q_for_decoding(1.0, 1.5) == 1.0

    def test_sending_too_few_packets_is_hopeless(self):
        assert minimum_q_for_decoding(0.2, 2.5, nsent_over_k=1.0) == float("inf")

    def test_larger_inefficiency_raises_the_limit(self):
        ideal = minimum_q_for_decoding(0.3, 2.5, inef_ratio=1.0)
        lossy = minimum_q_for_decoding(0.3, 2.5, inef_ratio=1.2)
        assert lossy > ideal

    def test_cannot_send_more_than_n(self):
        with pytest.raises(ValueError):
            minimum_q_for_decoding(0.3, 1.5, nsent_over_k=2.0)

    def test_invalid_inefficiency_rejected(self):
        with pytest.raises(ValueError):
            minimum_q_for_decoding(0.3, 1.5, inef_ratio=0.9)


class TestIsDecodableAndRegion:
    def test_ratio_2_5_wider_than_1_5(self):
        # Figure 6: the non-decodable area is larger for the smaller ratio.
        p_values = np.linspace(0, 1, 11)
        q_values = np.linspace(0, 1, 11)
        region_15 = decodable_region(p_values, q_values, 1.5)
        region_25 = decodable_region(p_values, q_values, 2.5)
        assert region_25.sum() > region_15.sum()
        # Whatever is decodable at 1.5 is decodable at 2.5.
        assert np.all(region_25[region_15])

    def test_perfect_channel_always_decodable(self):
        assert is_decodable(0.0, 0.0, 1.5)

    def test_uncorrelated_high_loss_not_decodable_at_small_ratio(self):
        # p = 0.6, q = 0.4 -> 60% loss; ratio 1.5 cannot cope on average.
        assert not is_decodable(0.6, 0.4, 1.5)
        assert is_decodable(0.2, 0.8, 1.5)

    def test_region_shape(self):
        region = decodable_region([0.0, 0.5], [0.1, 0.9, 1.0], 2.5)
        assert region.shape == (2, 3)

    def test_monotone_in_q(self):
        p = 0.4
        flags = [is_decodable(p, q, 1.5) for q in np.linspace(0, 1, 21)]
        # Once decodable, it stays decodable as q grows.
        first_true = flags.index(True) if True in flags else len(flags)
        assert all(flags[first_true:])
