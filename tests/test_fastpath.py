"""Equivalence suite for the vectorised decode fast path.

The contract of :mod:`repro.fastpath` is *bit-identity*: for any seed, the
batched decoders must produce exactly the :class:`RunResult`s the
incremental per-packet path produces.  These tests enforce the contract
across every registered code family, the six transmission models plus the
reception model, the Gilbert / Bernoulli / periodic / perfect channels and
``nsent`` truncation, using the same ``SeedSequence`` scheme the runner
uses.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.channel.bernoulli import BernoulliChannel, PerfectChannel
from repro.channel.gilbert import GilbertChannel
from repro.channel.periodic import PeriodicBurstChannel
from repro.core.config import SimulationConfig
from repro.core.simulator import Simulator
from repro.core.sweep import simulate_grid, sweep_parameter
from repro.fastpath import (
    IncrementalPrototype,
    LDGMPrototype,
    compile_prototype,
    simulate_batch,
)
from repro.fastpath.prototypes import NOT_DECODED, BlockCountPrototype
from repro.fec.registry import make_code
from repro.kernels import available_backends
from repro.runner.units import WorkUnit, execute_unit
from repro.scheduling.registry import make_tx_model

#: Every kernel backend this machine can run: the equivalence contract
#: holds for all of them, so the parity machinery sweeps each one.
KERNELS = list(available_backends())

#: One representative configuration per code family.
CODES = [
    ("ldgm-staircase", 2.5),
    ("ldgm-triangle", 2.5),
    ("ldgm", 1.5),
    ("rse", 2.5),
    ("repetition", 2.0),
]

CHANNELS = [
    GilbertChannel(0.05, 0.5),
    GilbertChannel(0.3, 0.2),
    GilbertChannel(0.9, 0.05),
    BernoulliChannel(0.2),
    PeriodicBurstChannel(10, 3),
    PerfectChannel(),
]

TX_MODELS = [f"tx_model_{i}" for i in range(1, 7)]


def legacy_runs(code, tx_model, channel, rngs, nsent=None):
    """Reference results: one incremental Simulator.run per generator."""
    return [
        Simulator(code, tx_model, channel).run(rng, nsent=nsent) for rng in rngs
    ]


def seeded_rngs(salt, runs):
    return [
        np.random.default_rng(np.random.SeedSequence([421, salt, run]))
        for run in range(runs)
    ]


class TestBatchEquivalence:
    @pytest.mark.parametrize("code_name,ratio", CODES)
    @pytest.mark.parametrize("tx_name", TX_MODELS)
    def test_codes_by_tx_model(self, code_name, ratio, tx_name):
        code = make_code(code_name, k=120, expansion_ratio=ratio, seed=3)
        tx_model = make_tx_model(tx_name)
        for salt, channel in enumerate(CHANNELS):
            expected = legacy_runs(code, tx_model, channel, seeded_rngs(salt, 5))
            actual = simulate_batch(
                code, tx_model, channel, seeded_rngs(salt, 5)
            )
            assert actual == expected

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("code_name,ratio", CODES)
    def test_codes_by_kernel_backend(self, kernel, code_name, ratio):
        code = make_code(code_name, k=90, expansion_ratio=ratio, seed=6)
        tx_model = make_tx_model("tx_model_2")
        for salt, channel in enumerate(CHANNELS[:4]):
            expected = legacy_runs(code, tx_model, channel, seeded_rngs(salt, 4))
            actual = simulate_batch(
                code, tx_model, channel, seeded_rngs(salt, 4), kernel=kernel
            )
            assert actual == expected, f"kernel {kernel} diverged on {code_name}"

    @pytest.mark.parametrize("code_name,ratio", CODES)
    def test_nsent_truncation(self, code_name, ratio):
        code = make_code(code_name, k=100, expansion_ratio=ratio, seed=1)
        tx_model = make_tx_model("tx_model_2")
        channel = GilbertChannel(0.1, 0.4)
        for nsent in (1, 50, 120, 10_000):
            expected = legacy_runs(
                code, tx_model, channel, seeded_rngs(nsent, 4), nsent=nsent
            )
            actual = simulate_batch(
                code, tx_model, channel, seeded_rngs(nsent, 4), nsent=nsent
            )
            assert actual == expected

    def test_rx_model(self):
        code = make_code("ldgm-staircase", k=150, expansion_ratio=2.5, seed=7)
        tx_model = make_tx_model("rx_model_1", num_source_packets=40)
        channel = PerfectChannel()
        expected = legacy_runs(code, tx_model, channel, seeded_rngs(0, 4))
        assert simulate_batch(code, tx_model, channel, seeded_rngs(0, 4)) == expected

    def test_total_loss_and_undecodable(self):
        code = make_code("ldgm-staircase", k=60, expansion_ratio=2.5, seed=2)
        tx_model = make_tx_model("tx_model_1")
        for channel in (BernoulliChannel(1.0), BernoulliChannel(0.95)):
            expected = legacy_runs(code, tx_model, channel, seeded_rngs(1, 5))
            actual = simulate_batch(code, tx_model, channel, seeded_rngs(1, 5))
            assert actual == expected
        assert not any(result.decoded for result in actual)

    def test_shared_generator_matches_run_many(self):
        code = make_code("ldgm-triangle", k=150, expansion_ratio=2.5, seed=2)

        def build():
            return Simulator(
                code, make_tx_model("tx_model_3"), GilbertChannel(0.1, 0.4)
            )

        expected = build().run_many(8, rng=5, fastpath=False)
        assert build().run_many(8, rng=5, fastpath=True) == expected

    def test_duplicate_indices_in_schedule(self):
        # Models never emit duplicates, but the decoders tolerate them; the
        # batch path must agree run by run.
        class DuplicatingModel:
            name = "dup"

            def schedule(self, layout, rng=None):
                base = np.arange(layout.n, dtype=np.int64)
                rng.shuffle(base)
                return np.concatenate([base[:10], base])

            def validate_schedule(self, layout, schedule):
                return np.asarray(schedule, dtype=np.int64)

        for code_name, ratio in CODES:
            code = make_code(code_name, k=60, expansion_ratio=ratio, seed=4)
            tx_model = DuplicatingModel()
            channel = GilbertChannel(0.2, 0.3)
            expected = legacy_runs(code, tx_model, channel, seeded_rngs(2, 4))
            assert (
                simulate_batch(code, tx_model, channel, seeded_rngs(2, 4))
                == expected
            )


class TestPrototypes:
    def test_registry_dispatch(self):
        assert isinstance(
            compile_prototype(make_code("ldgm-staircase", k=20, n=50, seed=0)),
            LDGMPrototype,
        )
        assert isinstance(
            compile_prototype(make_code("rse", k=20, n=50)), BlockCountPrototype
        )
        assert isinstance(
            compile_prototype(make_code("repetition", k=20, n=40)),
            BlockCountPrototype,
        )

    def test_prototype_cached_per_instance(self):
        code = make_code("ldgm-staircase", k=20, n=50, seed=0)
        assert compile_prototype(code) is compile_prototype(code)
        other = make_code("ldgm-staircase", k=20, n=50, seed=0)
        assert compile_prototype(other) is not compile_prototype(code)

    def test_incremental_fallback_matches(self):
        # The fallback prototype replays the incremental decoder, so using
        # it on a registered code must reproduce the specialised results.
        code = make_code("ldgm-staircase", k=80, expansion_ratio=2.5, seed=5)
        specialised = compile_prototype(code)
        fallback = IncrementalPrototype(code)
        received = [
            np.random.default_rng(np.random.SeedSequence([7, run])).permutation(
                np.arange(code.n, dtype=np.int64)
            )[: 80 + 30 * (run % 3)]
            for run in range(6)
        ]
        decoded_a, necessary_a = specialised.decode_batch(received)
        decoded_b, necessary_b = fallback.decode_batch(received)
        assert np.array_equal(decoded_a, decoded_b)
        assert np.array_equal(necessary_a, necessary_b)

    def test_empty_and_short_sequences(self):
        code = make_code("ldgm-staircase", k=30, expansion_ratio=2.5, seed=1)
        prototype = compile_prototype(code)
        empty = np.zeros(0, dtype=np.int64)
        short = np.arange(10, dtype=np.int64)
        decoded, necessary = prototype.decode_batch([empty, short])
        assert not decoded.any()
        assert (necessary == NOT_DECODED).all()


class TestGilbertVectorisedFill:
    def test_bit_identical_to_serial_chain(self):
        grid = [0.0, 1e-12, 0.01, 0.05, 0.3, 0.5, 0.9, 1.0]
        for p in grid:
            for q in grid:
                channel = GilbertChannel(p, q)
                for count in (0, 1, 255, 256, 257, 1000):
                    fast_rng = np.random.default_rng(99)
                    slow_rng = np.random.default_rng(99)
                    assert np.array_equal(
                        channel.loss_mask(count, fast_rng),
                        channel._loss_mask_serial(count, slow_rng),
                    )
                    # The generators must also end in the same state.
                    assert fast_rng.integers(1 << 30) == slow_rng.integers(1 << 30)

    def test_out_of_range_schedule_raises_not_corrupts(self):
        # The stacked batch state would let a bad index from a later run
        # bleed into a neighbour run; simulate_batch must raise instead.
        class BadModel:
            name = "bad"
            calls = 0

            def schedule(self, layout, rng=None):
                BadModel.calls += 1
                base = np.arange(layout.n, dtype=np.int64)
                if BadModel.calls > 1:
                    base[0] = layout.n  # out of range from the 2nd run on
                return base

            def validate_schedule(self, layout, schedule):
                return np.asarray(schedule, dtype=np.int64)

        code = make_code("ldgm-staircase", k=40, expansion_ratio=2.5, seed=0)
        with pytest.raises(ValueError, match="outside"):
            simulate_batch(code, BadModel(), PerfectChannel(), seeded_rngs(3, 3))


class TestRunnerFastpath:
    def _unit(self, **overrides):
        parameters = dict(
            config=SimulationConfig(
                code="ldgm-staircase", tx_model="tx_model_2", k=120, expansion_ratio=2.5
            ),
            p=0.1,
            q=0.5,
            seed_path=(2, 3),
            run_start=0,
            run_stop=6,
            base_seed=11,
        )
        parameters.update(overrides)
        return WorkUnit(**parameters)

    def test_execute_unit_batch_equals_serial(self):
        fast = execute_unit(self._unit(fastpath=True))
        slow = execute_unit(self._unit(fastpath=False))
        assert fast == slow

    def test_execute_unit_fresh_code_per_run(self):
        fast = execute_unit(self._unit(fastpath=True, fresh_code_per_run=True))
        slow = execute_unit(self._unit(fastpath=False, fresh_code_per_run=True))
        assert fast == slow

    def test_grid_sweep_equivalence(self, small_staircase_config):
        kwargs = dict(runs=3, seed=7)
        fast = simulate_grid(
            small_staircase_config, [0.0, 0.3], [0.2, 1.0], fastpath=True, **kwargs
        )
        slow = simulate_grid(
            small_staircase_config, [0.0, 0.3], [0.2, 1.0], fastpath=False, **kwargs
        )
        assert np.array_equal(
            fast.mean_inefficiency, slow.mean_inefficiency, equal_nan=True
        )
        assert np.array_equal(
            fast.mean_received_ratio, slow.mean_received_ratio, equal_nan=True
        )
        assert np.array_equal(fast.failure_counts, slow.failure_counts)

    def test_series_sweep_equivalence(self):
        def make(value):
            return SimulationConfig(
                code="rse", tx_model="tx_model_5", k=100, expansion_ratio=float(value)
            )

        kwargs = dict(p=0.1, q=0.5, runs=3, seed=3)
        fast = sweep_parameter(make, [1.5, 2.5], fastpath=True, **kwargs)
        slow = sweep_parameter(make, [1.5, 2.5], fastpath=False, **kwargs)
        assert np.array_equal(
            fast.mean_inefficiency, slow.mean_inefficiency, equal_nan=True
        )
        assert np.array_equal(fast.failure_counts, slow.failure_counts)


class TestFastpathProperties:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        code_index=st.integers(min_value=0, max_value=len(CODES) - 1),
        tx_index=st.integers(min_value=0, max_value=len(TX_MODELS) - 1),
        k=st.integers(min_value=2, max_value=80),
        p=st.floats(min_value=0.0, max_value=1.0),
        q=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        nsent=st.none() | st.integers(min_value=1, max_value=300),
    )
    def test_random_configurations_bit_identical(
        self, code_index, tx_index, k, p, q, seed, nsent
    ):
        code_name, ratio = CODES[code_index]
        try:
            code = make_code(code_name, k=k, expansion_ratio=ratio, seed=seed)
        except ValueError:
            # Degenerate dimensions (e.g. RSE blocks without parity room).
            return
        tx_model = make_tx_model(TX_MODELS[tx_index])
        channel = GilbertChannel(p, q)
        rngs = lambda: [
            np.random.default_rng(np.random.SeedSequence([seed, run]))
            for run in range(3)
        ]
        expected = legacy_runs(code, tx_model, channel, rngs(), nsent=nsent)
        actual = simulate_batch(code, tx_model, channel, rngs(), nsent=nsent)
        assert actual == expected
